//! Levelized full-evaluation simulator (the VFsim substrate).

use eraser_ir::{
    run_tape, tapes_for_backend, BehavioralId, BehavioralNode, CombItem, Design, EvalBackend,
    Sensitivity, SignalId, TapeProgram, TapeRef,
};
use eraser_logic::{LogicBit, LogicVec};
use eraser_sim::{
    assign_logic_slice, eval_rtl_node, execute_into, execute_tape_into, ExecCtx, ExecMonitor,
    ExecOutcome, NoopMonitor, ProbeMonitor, ReplaySim, SimSnapshot, SiteProbe, SlotWrite,
    ValueStore,
};

/// Bound on evaluation rounds per settle step.
const ROUND_LIMIT: usize = 10_000;

/// A compiled-style simulator: no event queue, no fanout tracking — every
/// combinational item is evaluated every round in the design's precomputed
/// topological order, Verilator-fashion.
///
/// Sequential activation, non-blocking commit ordering, edge rules and
/// four-state semantics are identical to the event-driven
/// [`Simulator`](eraser_sim::Simulator), so both produce identical traces;
/// only the *work profile* differs (constant full-design work per step
/// versus activity-proportional work).
#[derive(Debug, Clone)]
pub struct CompiledSim<'d> {
    design: &'d Design,
    /// Compiled evaluation tapes when running on the tape backend.
    tapes: Option<TapeRef<'d>>,
    /// Execution scratch (expression arena + tape slots).
    ctx: ExecCtx,
    values: ValueStore,
    edge_prev: Vec<LogicVec>,
    /// Signals watched by edge-triggered nodes (precomputed).
    watched: Vec<SignalId>,
    forces: Vec<(SignalId, u32, LogicBit)>,
    nba: Vec<SlotWrite>,
    /// Activation probe for instrumented good replays (`None` = the
    /// zero-overhead default).
    probe: Option<Box<SiteProbe>>,
}

impl<'d> CompiledSim<'d> {
    /// Creates the simulator and performs the initial full evaluation. The
    /// evaluation backend follows `ERASER_EVAL` (tree walker by default).
    pub fn new(design: &'d Design) -> Self {
        Self::with_backend(design, EvalBackend::from_env())
    }

    /// Creates the simulator pinned to `backend`.
    pub fn with_backend(design: &'d Design, backend: EvalBackend) -> Self {
        Self::build(design, tapes_for_backend(design, backend))
    }

    /// Creates the simulator on the tape backend with a shared,
    /// pre-compiled program (one lowering per campaign, not per fault).
    pub fn with_tapes(design: &'d Design, tapes: &'d TapeProgram) -> Self {
        Self::build(design, Some(TapeRef::Shared(tapes)))
    }

    fn build(design: &'d Design, tapes: Option<TapeRef<'d>>) -> Self {
        let values = ValueStore::new(design);
        let edge_prev = design
            .signals()
            .iter()
            .map(|s| LogicVec::new_x(s.width))
            .collect();
        let watched = (0..design.num_signals())
            .map(SignalId::from_index)
            .filter(|s| !design.edge_fanout(*s).is_empty())
            .collect();
        let mut sim = CompiledSim {
            design,
            tapes,
            ctx: ExecCtx::new(),
            values,
            edge_prev,
            watched,
            forces: Vec::new(),
            nba: Vec::new(),
            probe: None,
        };
        sim.settle_step(&[]);
        sim
    }

    /// The current value of a signal.
    pub fn value(&self, sig: SignalId) -> &LogicVec {
        self.values.get(sig)
    }

    /// Permanently forces one bit of a signal (fault injection).
    pub fn add_force(&mut self, sig: SignalId, bit: u32, value: LogicBit) {
        self.forces.push((sig, bit, value));
        let v = self.values.get(sig).clone();
        self.commit(sig, v);
        self.settle_step(&[]);
    }

    fn commit(&mut self, sig: SignalId, mut value: LogicVec) -> bool {
        for &(fs, bit, b) in &self.forces {
            if fs == sig && bit < value.width() {
                value.set_bit(bit, b);
            }
        }
        if let Some(p) = &mut self.probe {
            p.observe_commit(sig, &value);
        }
        self.values.set(sig, value)
    }

    /// Applies input changes and settles: full combinational evaluation
    /// rounds, edge detection, sequential execution and NBA commit, until
    /// stable.
    ///
    /// # Panics
    ///
    /// Panics if the design fails to settle within an internal bound.
    pub fn settle_step(&mut self, changes: &[(SignalId, LogicVec)]) {
        for (sig, v) in changes {
            let v = v.resize(self.design.signal(*sig).width);
            self.commit(*sig, v);
        }
        for _ in 0..ROUND_LIMIT {
            self.eval_comb_fixpoint();
            let activated = self.detect_edges();
            for b in &activated {
                self.run_seq(*b);
            }
            let committed = self.commit_nba();
            if activated.is_empty() && !committed {
                return;
            }
        }
        panic!("design did not settle within {ROUND_LIMIT} evaluation rounds");
    }

    /// Evaluates every combinational item, in topological order, until no
    /// value changes (one pass normally suffices).
    fn eval_comb_fixpoint(&mut self) {
        for _ in 0..ROUND_LIMIT {
            let mut changed = false;
            for item in self.design.comb_order() {
                match item {
                    CombItem::Rtl(id) => {
                        let node = self.design.rtl_node(*id);
                        let out = match &self.tapes {
                            Some(t) => {
                                let mut out = LogicVec::default();
                                run_tape(
                                    t.program().rtl(id.index()),
                                    &self.values,
                                    &mut self.ctx.tape,
                                    &mut out,
                                );
                                out
                            }
                            None => eval_rtl_node(self.design, node, &self.values),
                        };
                        changed |= self.commit(node.output, out);
                    }
                    CombItem::Beh(id) => {
                        let out = self.execute_behavioral(*id);
                        for (sig, val) in out.blocking {
                            changed |= self.commit(sig, val);
                        }
                        self.nba.extend(out.nba);
                    }
                }
            }
            if !changed {
                return;
            }
        }
        panic!("combinational network failed to reach a fixpoint");
    }

    /// Executes one behavioral node on the configured backend, feeding the
    /// activation probe when one is attached.
    fn execute_behavioral(&mut self, id: BehavioralId) -> ExecOutcome {
        let node = self.design.behavioral(id);
        let mut out = ExecOutcome::default();
        match self.probe.take() {
            Some(mut p) => {
                let mut mon = ProbeMonitor::new(&mut p, &node.vdg);
                self.exec_node(node, id, &mut mon, &mut out);
                self.probe = Some(p);
            }
            None => self.exec_node(node, id, &mut NoopMonitor, &mut out),
        }
        out
    }

    fn exec_node<M: ExecMonitor + ?Sized>(
        &mut self,
        node: &BehavioralNode,
        id: BehavioralId,
        monitor: &mut M,
        out: &mut ExecOutcome,
    ) {
        match &self.tapes {
            Some(t) => execute_tape_into(
                self.design,
                node,
                t.program().behavioral(id.index()),
                &self.values,
                monitor,
                &mut self.ctx,
                out,
            ),
            None => execute_into(self.design, node, &self.values, monitor, &mut self.ctx, out),
        }
    }

    fn detect_edges(&mut self) -> Vec<BehavioralId> {
        let mut activated = Vec::new();
        for wi in 0..self.watched.len() {
            let sig = self.watched[wi];
            let prev = self.edge_prev[sig.index()].clone();
            let cur = self.values.get(sig).clone();
            if prev == cur {
                continue;
            }
            for &b in self.design.edge_fanout(sig) {
                if activated.contains(&b) {
                    continue;
                }
                let node = self.design.behavioral(b);
                if let Sensitivity::Edges(edges) = &node.sensitivity {
                    let fired = edges.iter().any(|(kind, s)| {
                        *s == sig && kind.matches(prev.bit_or_x(0), cur.bit_or_x(0))
                    });
                    if fired {
                        activated.push(b);
                    }
                }
            }
            self.edge_prev[sig.index()] = cur;
        }
        activated
    }

    fn run_seq(&mut self, id: BehavioralId) {
        let out = self.execute_behavioral(id);
        for (sig, val) in out.blocking {
            self.commit(sig, val);
        }
        self.nba.extend(out.nba);
    }

    fn commit_nba(&mut self) -> bool {
        if self.nba.is_empty() {
            return false;
        }
        let writes = std::mem::take(&mut self.nba);
        let mut any = false;
        for w in writes {
            let next = w.apply(self.values.get(w.target));
            any |= self.commit(w.target, next);
        }
        any
    }
}

impl ReplaySim for CompiledSim<'_> {
    fn capture_into(&self, snap: &mut SimSnapshot) {
        assert!(self.nba.is_empty(), "capture requires a settled simulator");
        assign_logic_slice(&mut snap.values, self.values.as_slice());
        assign_logic_slice(&mut snap.edge_prev, &self.edge_prev);
        snap.forces.clear();
        snap.forces.extend_from_slice(&self.forces);
        snap.deltas = 0;
    }

    fn restore_from(&mut self, snap: &SimSnapshot) {
        self.values.restore_from_slice(&snap.values);
        assert_eq!(
            self.edge_prev.len(),
            snap.edge_prev.len(),
            "snapshot covers a different design"
        );
        for (slot, v) in self.edge_prev.iter_mut().zip(&snap.edge_prev) {
            slot.assign_from(v);
        }
        self.forces.clear();
        self.forces.extend_from_slice(&snap.forces);
        self.nba.clear();
    }

    fn replay_step(&mut self, changes: &[(SignalId, LogicVec)]) {
        self.settle_step(changes);
    }

    fn signal_value(&self, sig: SignalId) -> &LogicVec {
        self.value(sig)
    }

    fn force_bit(&mut self, sig: SignalId, bit: u32, value: LogicBit) {
        self.add_force(sig, bit, value);
    }

    fn attach_probe(&mut self, mut probe: SiteProbe) {
        probe.observe_initial(self.design, &self.values);
        self.probe = Some(Box::new(probe));
    }

    fn take_probe(&mut self) -> Option<SiteProbe> {
        self.probe.take().map(|p| *p)
    }

    fn begin_probe_step(&mut self, step: usize) {
        if let Some(p) = &mut self.probe {
            p.begin_step(step);
        }
    }

    fn fully_defined(&self) -> bool {
        self.values.fully_defined()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_frontend::compile;
    use eraser_sim::Simulator;

    #[test]
    fn matches_event_driven_simulator() {
        let d = compile(
            "module m(input wire clk, input wire rst, input wire [3:0] a,
                      output reg [7:0] acc, output wire [7:0] mix);
               wire [7:0] ext;
               assign ext = {a, a};
               assign mix = acc ^ ext;
               always @(posedge clk) begin
                 if (rst) acc <= 8'h00;
                 else acc <= acc + ext;
               end
             endmodule",
            None,
        )
        .unwrap();
        let clk = d.find_signal("clk").unwrap();
        let rst = d.find_signal("rst").unwrap();
        let a = d.find_signal("a").unwrap();
        let acc = d.find_signal("acc").unwrap();
        let mix = d.find_signal("mix").unwrap();
        let mut ev = Simulator::new(&d);
        let mut cp = CompiledSim::new(&d);
        let drive = |ev: &mut Simulator, cp: &mut CompiledSim, sig, val: u64, w| {
            ev.set_input(sig, &LogicVec::from_u64(w, val));
            ev.step();
            cp.settle_step(&[(sig, LogicVec::from_u64(w, val))]);
        };
        drive(&mut ev, &mut cp, rst, 1, 1);
        for i in 0..20u64 {
            drive(&mut ev, &mut cp, a, i * 3 % 16, 4);
            if i == 1 {
                drive(&mut ev, &mut cp, rst, 0, 1);
            }
            drive(&mut ev, &mut cp, clk, 0, 1);
            drive(&mut ev, &mut cp, clk, 1, 1);
            assert_eq!(ev.value(acc), cp.value(acc), "cycle {i}");
            assert_eq!(ev.value(mix), cp.value(mix), "cycle {i}");
        }
    }

    #[test]
    fn snapshot_roundtrip_matches_uninterrupted_run() {
        let d = compile(
            "module m(input wire clk, input wire rst, input wire [3:0] a,
                      output reg [7:0] acc, output wire [7:0] mix);
               wire [7:0] ext;
               assign ext = {a, a};
               assign mix = acc ^ ext;
               always @(posedge clk) begin
                 if (rst) acc <= 8'h00;
                 else acc <= acc + ext;
               end
             endmodule",
            None,
        )
        .unwrap();
        let clk = d.find_signal("clk").unwrap();
        let rst = d.find_signal("rst").unwrap();
        let a = d.find_signal("a").unwrap();
        let steps: Vec<Vec<(SignalId, LogicVec)>> = (0..20u64)
            .flat_map(|i| {
                vec![
                    vec![
                        (clk, LogicVec::from_u64(1, 0)),
                        (rst, LogicVec::from_u64(1, (i < 2) as u64)),
                        (a, LogicVec::from_u64(4, i * 11 % 16)),
                    ],
                    vec![(clk, LogicVec::from_u64(1, 1))],
                ]
            })
            .collect();
        let mut full = CompiledSim::new(&d);
        let mut snap = SimSnapshot::new();
        let k = 13;
        for (si, step) in steps.iter().enumerate() {
            if si == k {
                full.capture_into(&mut snap);
            }
            full.settle_step(step);
        }
        // Restore into a dirty instance and replay only the suffix.
        let mut resumed = CompiledSim::new(&d);
        resumed.settle_step(&steps[0]);
        resumed.restore_from(&snap);
        for step in &steps[k..] {
            resumed.settle_step(step);
        }
        for i in 0..d.num_signals() {
            let s = SignalId::from_index(i);
            assert_eq!(full.value(s), resumed.value(s), "signal {i} diverged");
        }
    }

    #[test]
    fn force_pins_bit() {
        let d = compile(
            "module m(input wire [3:0] a, output wire [3:0] y);
               wire [3:0] t;
               assign t = a;
               assign y = t;
             endmodule",
            None,
        )
        .unwrap();
        let a = d.find_signal("a").unwrap();
        let t = d.find_signal("t").unwrap();
        let y = d.find_signal("y").unwrap();
        let mut cp = CompiledSim::new(&d);
        cp.add_force(t, 0, LogicBit::One);
        cp.settle_step(&[(a, LogicVec::from_u64(4, 0))]);
        assert_eq!(cp.value(y).to_u64(), Some(1));
        cp.settle_step(&[(a, LogicVec::from_u64(4, 0b1110))]);
        assert_eq!(cp.value(y).to_u64(), Some(0b1111));
    }
}
