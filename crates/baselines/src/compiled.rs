//! Levelized full-evaluation simulator (the VFsim substrate).

use eraser_ir::{
    run_tape, tapes_for_backend, BehavioralId, CombItem, Design, EvalBackend, Sensitivity,
    SignalId, TapeProgram, TapeRef,
};
use eraser_logic::{LogicBit, LogicVec};
use eraser_sim::{
    eval_rtl_node, execute_behavioral, execute_tape_into, ExecCtx, ExecOutcome, NoopMonitor,
    SlotWrite, ValueStore,
};

/// Bound on evaluation rounds per settle step.
const ROUND_LIMIT: usize = 10_000;

/// A compiled-style simulator: no event queue, no fanout tracking — every
/// combinational item is evaluated every round in the design's precomputed
/// topological order, Verilator-fashion.
///
/// Sequential activation, non-blocking commit ordering, edge rules and
/// four-state semantics are identical to the event-driven
/// [`Simulator`](eraser_sim::Simulator), so both produce identical traces;
/// only the *work profile* differs (constant full-design work per step
/// versus activity-proportional work).
#[derive(Debug, Clone)]
pub struct CompiledSim<'d> {
    design: &'d Design,
    /// Compiled evaluation tapes when running on the tape backend.
    tapes: Option<TapeRef<'d>>,
    /// Execution scratch (expression arena + tape slots).
    ctx: ExecCtx,
    values: ValueStore,
    edge_prev: Vec<LogicVec>,
    /// Signals watched by edge-triggered nodes (precomputed).
    watched: Vec<SignalId>,
    forces: Vec<(SignalId, u32, LogicBit)>,
    nba: Vec<SlotWrite>,
}

impl<'d> CompiledSim<'d> {
    /// Creates the simulator and performs the initial full evaluation. The
    /// evaluation backend follows `ERASER_EVAL` (tree walker by default).
    pub fn new(design: &'d Design) -> Self {
        Self::with_backend(design, EvalBackend::from_env())
    }

    /// Creates the simulator pinned to `backend`.
    pub fn with_backend(design: &'d Design, backend: EvalBackend) -> Self {
        Self::build(design, tapes_for_backend(design, backend))
    }

    /// Creates the simulator on the tape backend with a shared,
    /// pre-compiled program (one lowering per campaign, not per fault).
    pub fn with_tapes(design: &'d Design, tapes: &'d TapeProgram) -> Self {
        Self::build(design, Some(TapeRef::Shared(tapes)))
    }

    fn build(design: &'d Design, tapes: Option<TapeRef<'d>>) -> Self {
        let values = ValueStore::new(design);
        let edge_prev = design
            .signals()
            .iter()
            .map(|s| LogicVec::new_x(s.width))
            .collect();
        let watched = (0..design.num_signals())
            .map(SignalId::from_index)
            .filter(|s| !design.edge_fanout(*s).is_empty())
            .collect();
        let mut sim = CompiledSim {
            design,
            tapes,
            ctx: ExecCtx::new(),
            values,
            edge_prev,
            watched,
            forces: Vec::new(),
            nba: Vec::new(),
        };
        sim.settle_step(&[]);
        sim
    }

    /// The current value of a signal.
    pub fn value(&self, sig: SignalId) -> &LogicVec {
        self.values.get(sig)
    }

    /// Permanently forces one bit of a signal (fault injection).
    pub fn add_force(&mut self, sig: SignalId, bit: u32, value: LogicBit) {
        self.forces.push((sig, bit, value));
        let v = self.values.get(sig).clone();
        self.commit(sig, v);
        self.settle_step(&[]);
    }

    fn commit(&mut self, sig: SignalId, mut value: LogicVec) -> bool {
        for &(fs, bit, b) in &self.forces {
            if fs == sig && bit < value.width() {
                value.set_bit(bit, b);
            }
        }
        self.values.set(sig, value)
    }

    /// Applies input changes and settles: full combinational evaluation
    /// rounds, edge detection, sequential execution and NBA commit, until
    /// stable.
    ///
    /// # Panics
    ///
    /// Panics if the design fails to settle within an internal bound.
    pub fn settle_step(&mut self, changes: &[(SignalId, LogicVec)]) {
        for (sig, v) in changes {
            let v = v.resize(self.design.signal(*sig).width);
            self.commit(*sig, v);
        }
        for _ in 0..ROUND_LIMIT {
            self.eval_comb_fixpoint();
            let activated = self.detect_edges();
            for b in &activated {
                self.run_seq(*b);
            }
            let committed = self.commit_nba();
            if activated.is_empty() && !committed {
                return;
            }
        }
        panic!("design did not settle within {ROUND_LIMIT} evaluation rounds");
    }

    /// Evaluates every combinational item, in topological order, until no
    /// value changes (one pass normally suffices).
    fn eval_comb_fixpoint(&mut self) {
        for _ in 0..ROUND_LIMIT {
            let mut changed = false;
            for item in self.design.comb_order() {
                match item {
                    CombItem::Rtl(id) => {
                        let node = self.design.rtl_node(*id);
                        let out = match &self.tapes {
                            Some(t) => {
                                let mut out = LogicVec::default();
                                run_tape(
                                    t.program().rtl(id.index()),
                                    &self.values,
                                    &mut self.ctx.tape,
                                    &mut out,
                                );
                                out
                            }
                            None => eval_rtl_node(self.design, node, &self.values),
                        };
                        changed |= self.commit(node.output, out);
                    }
                    CombItem::Beh(id) => {
                        let out = self.execute_behavioral(*id);
                        for (sig, val) in out.blocking {
                            changed |= self.commit(sig, val);
                        }
                        self.nba.extend(out.nba);
                    }
                }
            }
            if !changed {
                return;
            }
        }
        panic!("combinational network failed to reach a fixpoint");
    }

    /// Executes one behavioral node on the configured backend.
    fn execute_behavioral(&mut self, id: BehavioralId) -> ExecOutcome {
        let node = self.design.behavioral(id);
        match &self.tapes {
            Some(t) => {
                let mut out = ExecOutcome::default();
                execute_tape_into(
                    self.design,
                    node,
                    t.program().behavioral(id.index()),
                    &self.values,
                    &mut NoopMonitor,
                    &mut self.ctx,
                    &mut out,
                );
                out
            }
            None => execute_behavioral(self.design, node, &self.values, false).0,
        }
    }

    fn detect_edges(&mut self) -> Vec<BehavioralId> {
        let mut activated = Vec::new();
        for wi in 0..self.watched.len() {
            let sig = self.watched[wi];
            let prev = self.edge_prev[sig.index()].clone();
            let cur = self.values.get(sig).clone();
            if prev == cur {
                continue;
            }
            for &b in self.design.edge_fanout(sig) {
                if activated.contains(&b) {
                    continue;
                }
                let node = self.design.behavioral(b);
                if let Sensitivity::Edges(edges) = &node.sensitivity {
                    let fired = edges.iter().any(|(kind, s)| {
                        *s == sig && kind.matches(prev.bit_or_x(0), cur.bit_or_x(0))
                    });
                    if fired {
                        activated.push(b);
                    }
                }
            }
            self.edge_prev[sig.index()] = cur;
        }
        activated
    }

    fn run_seq(&mut self, id: BehavioralId) {
        let out = self.execute_behavioral(id);
        for (sig, val) in out.blocking {
            self.commit(sig, val);
        }
        self.nba.extend(out.nba);
    }

    fn commit_nba(&mut self) -> bool {
        if self.nba.is_empty() {
            return false;
        }
        let writes = std::mem::take(&mut self.nba);
        let mut any = false;
        for w in writes {
            let next = w.apply(self.values.get(w.target));
            any |= self.commit(w.target, next);
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_frontend::compile;
    use eraser_sim::Simulator;

    #[test]
    fn matches_event_driven_simulator() {
        let d = compile(
            "module m(input wire clk, input wire rst, input wire [3:0] a,
                      output reg [7:0] acc, output wire [7:0] mix);
               wire [7:0] ext;
               assign ext = {a, a};
               assign mix = acc ^ ext;
               always @(posedge clk) begin
                 if (rst) acc <= 8'h00;
                 else acc <= acc + ext;
               end
             endmodule",
            None,
        )
        .unwrap();
        let clk = d.find_signal("clk").unwrap();
        let rst = d.find_signal("rst").unwrap();
        let a = d.find_signal("a").unwrap();
        let acc = d.find_signal("acc").unwrap();
        let mix = d.find_signal("mix").unwrap();
        let mut ev = Simulator::new(&d);
        let mut cp = CompiledSim::new(&d);
        let drive = |ev: &mut Simulator, cp: &mut CompiledSim, sig, val: u64, w| {
            ev.set_input(sig, &LogicVec::from_u64(w, val));
            ev.step();
            cp.settle_step(&[(sig, LogicVec::from_u64(w, val))]);
        };
        drive(&mut ev, &mut cp, rst, 1, 1);
        for i in 0..20u64 {
            drive(&mut ev, &mut cp, a, i * 3 % 16, 4);
            if i == 1 {
                drive(&mut ev, &mut cp, rst, 0, 1);
            }
            drive(&mut ev, &mut cp, clk, 0, 1);
            drive(&mut ev, &mut cp, clk, 1, 1);
            assert_eq!(ev.value(acc), cp.value(acc), "cycle {i}");
            assert_eq!(ev.value(mix), cp.value(mix), "cycle {i}");
        }
    }

    #[test]
    fn force_pins_bit() {
        let d = compile(
            "module m(input wire [3:0] a, output wire [3:0] y);
               wire [3:0] t;
               assign t = a;
               assign y = t;
             endmodule",
            None,
        )
        .unwrap();
        let a = d.find_signal("a").unwrap();
        let t = d.find_signal("t").unwrap();
        let y = d.find_signal("y").unwrap();
        let mut cp = CompiledSim::new(&d);
        cp.add_force(t, 0, LogicBit::One);
        cp.settle_step(&[(a, LogicVec::from_u64(4, 0))]);
        assert_eq!(cp.value(y).to_u64(), Some(1));
        cp.settle_step(&[(a, LogicVec::from_u64(4, 0b1110))]);
        assert_eq!(cp.value(y).to_u64(), Some(0b1111));
    }
}
