//! Shared driver for per-fault serial fault simulation, with optional
//! checkpointed good-state replay.
//!
//! The driver is generic over [`ReplaySim`], so one implementation serves
//! both the event-driven IFsim substrate ([`Simulator`](eraser_sim::Simulator))
//! and the levelized VFsim substrate ([`CompiledSim`](crate::CompiledSim)).
//!
//! # Non-checkpointed mode (`CheckpointConfig::disabled`)
//!
//! The historical protocol: simulate the fault-free design once recording
//! the value of every primary output after each stimulus step (the good
//! trace); then, per fault, a fresh simulator with the force applied
//! replays the whole stimulus, comparing outputs against the good trace
//! and stopping at the first detection (per-fault dropping).
//!
//! # Checkpointed mode
//!
//! The good replay additionally carries a [`SiteProbe`] and captures a
//! [`SimSnapshot`] every `interval` settle steps (noting whether the
//! state is fully defined). [`ActivationWindows`] then gives each fault
//! its earliest possible divergence step, and the fault loop — ordered by
//! ascending window, so faults sharing a start checkpoint run
//! consecutively — restores the latest eligible checkpoint, applies the
//! force, and replays only the suffix. Faults that provably cannot
//! diverge within the stimulus are skipped outright. Coverage records
//! (first-detection steps and outputs included) are bit-identical to the
//! non-checkpointed run (see the soundness model in
//! [`eraser_fault::ActivationWindows`]); what changes is the work, which
//! the returned [`RedundancyStats`] quantifies via `skipped_prefix_steps`,
//! `skipped_faults` and `dropped_faults`.

use eraser_core::{CheckpointConfig, EngineResult, RedundancyStats};
use eraser_fault::{
    detectable_mismatch, ActivationWindows, CoverageReport, Detection, Fault, FaultList,
};
use eraser_ir::Design;
use eraser_logic::LogicVec;
use eraser_sim::{ReplaySim, SimSnapshot, SiteProbe, Stimulus};
use std::time::Instant;

/// Runs a serial (one-simulation-per-fault) campaign; checkpointed
/// good-state replay when `checkpoint` is enabled. `make_sim` builds a
/// fault-free simulator; `inject` applies one stuck-at force and settles.
pub fn serial_campaign<Sim: ReplaySim>(
    name: &str,
    design: &Design,
    faults: &FaultList,
    stimulus: &Stimulus,
    checkpoint: CheckpointConfig,
    mut make_sim: impl FnMut() -> Sim,
    mut inject: impl FnMut(&mut Sim, &Fault),
) -> EngineResult {
    let t0 = Instant::now();
    let outputs = design.outputs().to_vec();
    let steps = &stimulus.steps;

    if !checkpoint.is_enabled() {
        // Historical protocol: full replay per fault from a fresh sim.
        let good_trace = record_good_trace(&mut make_sim(), steps, &outputs);
        let mut coverage = CoverageReport::new(faults.len());
        for fault in faults.iter() {
            let mut sim = make_sim();
            inject(&mut sim, fault);
            replay_fault(
                &mut sim,
                steps,
                0,
                &outputs,
                &good_trace,
                fault,
                &mut coverage,
            );
        }
        return EngineResult::new(name, coverage).with_wall(t0.elapsed());
    }

    // Instrumented good replay: trace + probe + periodic snapshots.
    let mut sim = make_sim();
    sim.attach_probe(SiteProbe::new(design, faults.iter().map(|f| f.signal)));
    let mut checkpoints: Vec<(usize, bool, SimSnapshot)> = Vec::new();
    let mut good_trace: Vec<Vec<LogicVec>> = Vec::with_capacity(steps.len());
    for (si, step) in steps.iter().enumerate() {
        if checkpoint.is_boundary(si) {
            let mut snap = SimSnapshot::new();
            sim.capture_into(&mut snap);
            checkpoints.push((si, sim.fully_defined(), snap));
        }
        sim.begin_probe_step(si);
        sim.replay_step(step);
        good_trace.push(
            outputs
                .iter()
                .map(|&o| sim.signal_value(o).clone())
                .collect(),
        );
    }
    let probe = sim.take_probe().expect("probe attached above");
    let windows = ActivationWindows::derive(design, faults, &probe, steps.len());
    let boundaries: Vec<(usize, bool)> = checkpoints.iter().map(|&(s, d, _)| (s, d)).collect();

    // Activation-window schedule: ascending window, so consecutive faults
    // share start checkpoints; the good sim doubles as the reusable fault
    // workhorse.
    let mut stats = RedundancyStats::default();
    let mut coverage = CoverageReport::new(faults.len());
    for id in windows.order_by_window() {
        let fault = faults.fault(id);
        if windows.never_active(id) {
            stats.skipped_faults += 1;
            continue;
        }
        let ci = windows.start_checkpoint(fault, &boundaries);
        let (start, _, snap) = &checkpoints[ci];
        sim.restore_from(snap);
        inject(&mut sim, fault);
        stats.skipped_prefix_steps += *start as u64;
        if replay_fault(
            &mut sim,
            steps,
            *start,
            &outputs,
            &good_trace,
            fault,
            &mut coverage,
        ) {
            stats.dropped_faults += 1;
        }
    }
    stats.time_total = t0.elapsed();
    EngineResult::new(name, coverage)
        .with_stats(stats)
        .with_wall(t0.elapsed())
}

/// Replays the whole stimulus on the fault-free simulator, recording every
/// output after each settle step.
fn record_good_trace<Sim: ReplaySim>(
    sim: &mut Sim,
    steps: &[Vec<(eraser_ir::SignalId, LogicVec)>],
    outputs: &[eraser_ir::SignalId],
) -> Vec<Vec<LogicVec>> {
    let mut trace = Vec::with_capacity(steps.len());
    for step in steps {
        sim.replay_step(step);
        trace.push(
            outputs
                .iter()
                .map(|&o| sim.signal_value(o).clone())
                .collect(),
        );
    }
    trace
}

/// Replays steps `start..` on a forced simulator, comparing outputs
/// against the good trace after each settle step and stopping at the
/// first detection. Returns whether the fault was detected (and thus
/// dropped).
fn replay_fault<Sim: ReplaySim>(
    sim: &mut Sim,
    steps: &[Vec<(eraser_ir::SignalId, LogicVec)>],
    start: usize,
    outputs: &[eraser_ir::SignalId],
    good_trace: &[Vec<LogicVec>],
    fault: &Fault,
    coverage: &mut CoverageReport,
) -> bool {
    for (si, step) in steps.iter().enumerate().skip(start) {
        sim.replay_step(step);
        for (oi, &o) in outputs.iter().enumerate() {
            if detectable_mismatch(&good_trace[si][oi], sim.signal_value(o)) {
                coverage.record(
                    fault.id,
                    Detection {
                        step: si,
                        output: o,
                    },
                );
                return true;
            }
        }
    }
    false
}
