//! Shared driver for per-fault serial fault simulation.

use eraser_core::EngineResult;
use eraser_fault::{detectable_mismatch, CoverageReport, Detection, Fault, FaultList};
use eraser_ir::Design;
use eraser_logic::LogicVec;
use eraser_sim::Stimulus;
use std::time::Instant;

/// Runs a serial (one-simulation-per-fault) campaign.
///
/// First simulates the fault-free design once, recording the value of every
/// primary output after each stimulus step (the good trace). Then, per
/// fault: a fresh simulator with the force applied replays the stimulus;
/// after each step the outputs are compared against the good trace with the
/// shared detection predicate; the simulation stops at the first detection
/// (per-fault dropping).
pub fn serial_campaign<Sim>(
    name: &str,
    design: &Design,
    faults: &FaultList,
    stimulus: &Stimulus,
    mut make_sim: impl FnMut(Option<&Fault>) -> Sim,
    mut apply_step: impl FnMut(&mut Sim, &[(eraser_ir::SignalId, LogicVec)]),
    mut read: impl FnMut(&Sim, eraser_ir::SignalId) -> LogicVec,
) -> EngineResult {
    let t0 = Instant::now();
    let outputs = design.outputs().to_vec();

    // Good trace: outputs after every step.
    let mut good_trace: Vec<Vec<LogicVec>> = Vec::with_capacity(stimulus.steps.len());
    {
        let mut sim = make_sim(None);
        for step in &stimulus.steps {
            apply_step(&mut sim, step);
            good_trace.push(outputs.iter().map(|&o| read(&sim, o)).collect());
        }
    }

    let mut coverage = CoverageReport::new(faults.len());
    for fault in faults.iter() {
        let mut sim = make_sim(Some(fault));
        'steps: for (si, step) in stimulus.steps.iter().enumerate() {
            apply_step(&mut sim, step);
            for (oi, &o) in outputs.iter().enumerate() {
                let fv = read(&sim, o);
                if detectable_mismatch(&good_trace[si][oi], &fv) {
                    coverage.record(
                        fault.id,
                        Detection {
                            step: si,
                            output: o,
                        },
                    );
                    break 'steps;
                }
            }
        }
    }
    EngineResult::new(name, coverage).with_wall(t0.elapsed())
}
