//! Shared driver for per-fault serial fault simulation, with optional
//! checkpointed good-state replay and fault-parallel execution.
//!
//! The driver is generic over [`ReplaySim`], so one implementation serves
//! both the event-driven IFsim substrate ([`Simulator`](eraser_sim::Simulator))
//! and the levelized VFsim substrate ([`CompiledSim`](crate::CompiledSim)).
//!
//! # Non-checkpointed mode (`CheckpointConfig::disabled`)
//!
//! The historical protocol: simulate the fault-free design once recording
//! the value of every primary output after each stimulus step (the good
//! trace); then, per fault, a fresh simulator with the force applied
//! replays the whole stimulus, comparing outputs against the good trace
//! and stopping at the first detection (per-fault dropping). With
//! `parallel` threads > 1 the per-fault replays drain a shared work queue
//! ([`run_queue`]); each fault is independent, so results are identical
//! at any thread count.
//!
//! # Checkpointed mode
//!
//! The good replay additionally carries a [`SiteProbe`] and captures a
//! [`SimSnapshot`] every `interval` settle steps (noting whether the
//! state is fully defined). [`ActivationWindows`] then gives each fault
//! its earliest possible divergence step, and the
//! [`WindowPlan`](eraser_fault::WindowPlan) groups faults by their latest
//! eligible checkpoint — the same worker-count-independent schedule the
//! concurrent campaign driver uses. Each window shard gets one reusable
//! simulator: per fault it restores the shared checkpoint snapshot,
//! applies the force, and replays only the suffix. Faults that provably
//! cannot diverge within the stimulus are skipped outright. Coverage
//! records (first-detection steps and outputs included) are bit-identical
//! to the non-checkpointed run (see the soundness model in
//! [`eraser_fault::ActivationWindows`]), and — because the plan never
//! looks at the worker count — so are the [`RedundancyStats`] counters at
//! every thread count: `skipped_prefix_steps`, `skipped_faults` and
//! `dropped_faults` quantify the trimmed work.

use eraser_core::{run_queue, CheckpointConfig, EngineResult, ParallelConfig, RedundancyStats};
use eraser_fault::{
    detectable_mismatch, ActivationWindows, CoverageReport, Detection, Fault, FaultList, WindowPlan,
};
use eraser_ir::Design;
use eraser_logic::LogicVec;
use eraser_sim::{ReplaySim, SimSnapshot, SiteProbe, Stimulus};
use std::time::Instant;

/// Runs a serial (one-simulation-per-fault) campaign; checkpointed
/// good-state replay when `checkpoint` is enabled, fault-parallel across
/// `parallel` worker threads. `make_sim` builds a fault-free simulator;
/// `inject` applies one stuck-at force and settles. Both closures are
/// shared across workers, hence `Fn + Sync`.
#[allow(clippy::too_many_arguments)]
pub fn serial_campaign<Sim: ReplaySim + Send>(
    name: &str,
    design: &Design,
    faults: &FaultList,
    stimulus: &Stimulus,
    checkpoint: CheckpointConfig,
    parallel: ParallelConfig,
    make_sim: impl Fn() -> Sim + Sync,
    inject: impl Fn(&mut Sim, &Fault) + Sync,
) -> EngineResult {
    let t0 = Instant::now();
    let outputs = design.outputs().to_vec();
    let steps = &stimulus.steps;
    let threads = if faults.len() > 1 {
        parallel.effective_threads()
    } else {
        1
    };

    if !checkpoint.is_enabled() {
        // Historical protocol: full replay per fault from a fresh sim.
        // Faults are mutually independent, so the queue order cannot
        // affect any per-fault outcome.
        let good_trace = record_good_trace(&mut make_sim(), steps, &outputs);
        let fault_refs: Vec<&Fault> = faults.iter().collect();
        let detections = run_queue(&fault_refs, threads, |fault| {
            let mut sim = make_sim();
            inject(&mut sim, fault);
            replay_fault(&mut sim, steps, 0, &outputs, &good_trace)
        });
        let mut coverage = CoverageReport::new(faults.len());
        for (fault, det) in fault_refs.iter().zip(detections) {
            if let Some(det) = det {
                coverage.record(fault.id, det);
            }
        }
        return EngineResult::new(name, coverage)
            .with_wall(t0.elapsed())
            .with_threads(threads);
    }

    // Instrumented good replay: trace + probe + periodic snapshots.
    let mut sim = make_sim();
    sim.attach_probe(SiteProbe::new(design, faults.iter().map(|f| f.signal)));
    let mut checkpoints: Vec<(usize, bool, SimSnapshot)> = Vec::new();
    let mut good_trace: Vec<Vec<LogicVec>> = Vec::with_capacity(steps.len());
    for (si, step) in steps.iter().enumerate() {
        if checkpoint.is_boundary(si) {
            let mut snap = SimSnapshot::new();
            sim.capture_into(&mut snap);
            checkpoints.push((si, sim.fully_defined(), snap));
        }
        sim.begin_probe_step(si);
        sim.replay_step(step);
        good_trace.push(
            outputs
                .iter()
                .map(|&o| sim.signal_value(o).clone())
                .collect(),
        );
    }
    let probe = sim.take_probe().expect("probe attached above");
    let windows = ActivationWindows::derive(design, faults, &probe, steps.len());
    let boundaries: Vec<(usize, bool)> = checkpoints.iter().map(|&(s, d, _)| (s, d)).collect();

    // Window-plan schedule: faults grouped by latest eligible checkpoint
    // (never-active faults already dropped into `plan.skipped`), groups
    // drained costliest-first over the worker queue. One reusable
    // simulator per group; every fault restores the group snapshot before
    // injection, so per-fault results are position-independent.
    let plan = WindowPlan::build(faults, &windows, &boundaries);
    let results = run_queue(&plan.shards, threads, |ws| {
        let mut sim = make_sim();
        let (start, _, snap) = &checkpoints[ws.checkpoint];
        let mut coverage = CoverageReport::new(ws.shard.len());
        let mut stats = RedundancyStats::default();
        for fault in ws.shard.list.iter() {
            sim.restore_from(snap);
            inject(&mut sim, fault);
            stats.skipped_prefix_steps += *start as u64;
            if let Some(det) = replay_fault(&mut sim, steps, *start, &outputs, &good_trace) {
                coverage.record(fault.id, det);
                stats.dropped_faults += 1;
            }
        }
        (coverage, stats)
    });

    let mut coverage = CoverageReport::new(faults.len());
    let mut stats = RedundancyStats {
        skipped_faults: plan.skipped.len() as u64,
        ..RedundancyStats::default()
    };
    for (ws, (shard_cov, shard_stats)) in plan.shards.iter().zip(&results) {
        ws.shard.merge_coverage_into(shard_cov, &mut coverage);
        stats.merge(shard_stats);
    }
    stats.time_total = t0.elapsed();
    EngineResult::new(name, coverage)
        .with_stats(stats)
        .with_wall(t0.elapsed())
        .with_threads(threads)
}

/// Replays the whole stimulus on the fault-free simulator, recording every
/// output after each settle step.
fn record_good_trace<Sim: ReplaySim>(
    sim: &mut Sim,
    steps: &[Vec<(eraser_ir::SignalId, LogicVec)>],
    outputs: &[eraser_ir::SignalId],
) -> Vec<Vec<LogicVec>> {
    let mut trace = Vec::with_capacity(steps.len());
    for step in steps {
        sim.replay_step(step);
        trace.push(
            outputs
                .iter()
                .map(|&o| sim.signal_value(o).clone())
                .collect(),
        );
    }
    trace
}

/// Replays steps `start..` on a forced simulator, comparing outputs
/// against the good trace after each settle step and stopping at the
/// first detection (the fault is dropped there).
fn replay_fault<Sim: ReplaySim>(
    sim: &mut Sim,
    steps: &[Vec<(eraser_ir::SignalId, LogicVec)>],
    start: usize,
    outputs: &[eraser_ir::SignalId],
    good_trace: &[Vec<LogicVec>],
) -> Option<Detection> {
    for (si, step) in steps.iter().enumerate().skip(start) {
        sim.replay_step(step);
        for (oi, &o) in outputs.iter().enumerate() {
            if detectable_mismatch(&good_trace[si][oi], sim.signal_value(o)) {
                return Some(Detection {
                    step: si,
                    output: o,
                });
            }
        }
    }
    None
}
