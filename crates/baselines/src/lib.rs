//! Baseline RTL fault simulators for the ERASER evaluation.
//!
//! Implements the three comparison engines of the paper's Fig. 6, as
//! documented substitutions (see `DESIGN.md`), all behind the
//! [`FaultSimEngine`] trait from `eraser-core`:
//!
//! * [`IFsim`] — per-fault serial *event-driven* re-simulation with the
//!   fault imposed through a `force`, the Icarus-Verilog-with-`force`
//!   baseline (the 1× reference of Fig. 6).
//! * [`VFsim`] — per-fault serial *levelized full evaluation*: every
//!   combinational node is evaluated every settle step in a precomputed
//!   topological order, with no event scheduling — the performance
//!   character of Verilator-based fault simulation (cheap, constant work
//!   per cycle; total cost ∝ faults × whole design).
//! * [`CfSim`] — the Z01X proxy: concurrent (batched) fault simulation
//!   with *explicit* behavioral redundancy elimination only, i.e. the
//!   ERASER engine pinned to
//!   [`RedundancyMode::Explicit`](eraser_core::RedundancyMode).
//!
//! [`all_engines`] returns the full Fig. 6 engine line-up (the three
//! baselines plus full ERASER) as trait objects, so benchmark harnesses,
//! parity tests and examples enumerate engines instead of hand-calling
//! each one:
//!
//! ```
//! use eraser_baselines::all_engines;
//! use eraser_core::CampaignRunner;
//! use eraser_fault::{generate_faults, FaultListConfig};
//! use eraser_frontend::compile;
//! use eraser_logic::LogicVec;
//! use eraser_sim::StimulusBuilder;
//!
//! let design = compile(
//!     "module dut(input wire clk, input wire [3:0] a, output reg [3:0] q);
//!        always @(posedge clk) q <= q + a;
//!      endmodule",
//!     None,
//! )?;
//! let faults = generate_faults(&design, &FaultListConfig::default());
//! let clk = design.find_signal("clk").unwrap();
//! let a = design.find_signal("a").unwrap();
//! let mut sb = StimulusBuilder::new();
//! for i in 0..20 {
//!     sb.add_cycle(clk, &[(a, LogicVec::from_u64(4, i * 7 % 16))]);
//! }
//! let stim = sb.finish();
//! let runner = CampaignRunner::new(&design, &faults, &stim);
//! let results = runner.run_all(&all_engines());
//! CampaignRunner::check_parity(&results)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! All engines share the detection predicate
//! ([`eraser_fault::detectable_mismatch`]), observation points (primary
//! outputs, checked after every stimulus step) and fault-dropping
//! semantics, so their coverage must agree bit-for-bit — the Table II
//! parity criterion.

mod compiled;
mod serial;

pub use compiled::CompiledSim;
pub use eraser_core::{EngineResult, Eraser, FaultSimEngine, Parallel, ParallelConfig};

use eraser_core::{run_collapsed, CampaignConfig, EvalBackend, TapeProgram};
use eraser_fault::FaultList;
use eraser_ir::Design;
use eraser_sim::{ReplaySim, Simulator, Stimulus};

/// The per-campaign tape compilation a serial baseline shares across its
/// per-fault simulator instances: lowering happens once, not once per
/// fault.
fn campaign_tapes(design: &Design, config: &CampaignConfig) -> Option<TapeProgram> {
    TapeProgram::for_backend(design, config.backend)
}

/// IFsim: one event-driven re-simulation per fault, with the stuck-at
/// imposed as a force; outputs are compared against a recorded good trace
/// after every stimulus step, stopping at first detection.
///
/// As a serial engine it always drops a fault at first detection (coverage
/// is insensitive to dropping). Honors [`CampaignConfig::backend`]: on the
/// tape backend the design is lowered once and every per-fault simulator
/// replays the shared program. Honors [`CampaignConfig::checkpoint`]:
/// with checkpointing enabled the good run is snapshotted periodically,
/// each fault starts from the latest checkpoint preceding its activation
/// window (bit-identical coverage, see
/// [`eraser_fault::ActivationWindows`]), and the result carries
/// [`RedundancyStats`](eraser_core::RedundancyStats) with the
/// skipped-prefix / skipped-fault / dropped-fault counters. Honors
/// [`CampaignConfig::parallel`] natively: per-fault replays (or, when
/// checkpointed, whole window groups) drain a shared work queue, with
/// coverage and counters bit-identical at every thread count.
#[derive(Debug, Clone, Copy, Default)]
pub struct IFsim;

impl FaultSimEngine for IFsim {
    fn name(&self) -> String {
        "IFsim".to_string()
    }

    fn run(
        &self,
        design: &Design,
        faults: &FaultList,
        stimulus: &Stimulus,
        config: &CampaignConfig,
    ) -> EngineResult {
        // Static collapsing wraps the serial campaign like every other
        // driver: only representatives are re-simulated per fault.
        run_collapsed(design, faults, config, |faults, config| {
            let tapes = campaign_tapes(design, config);
            serial::serial_campaign(
                "IFsim",
                design,
                faults,
                stimulus,
                config.checkpoint,
                config.parallel,
                || match &tapes {
                    Some(tp) => Simulator::with_tapes(design, tp),
                    None => Simulator::with_backend(design, EvalBackend::Tree),
                },
                // Settle the force at injection so all engines agree on
                // when a forced power-on edge (X -> stuck value) fires
                // relative to the next stimulus step (ReplaySim::force_bit
                // steps the sim).
                |sim, f| sim.force_bit(f.signal, f.bit, f.stuck.bit()),
            )
        })
    }
}

/// VFsim: one levelized full-evaluation simulation per fault (no event
/// scheduling), same observation, dropping and checkpointing rules as
/// [`IFsim`]. Honors [`CampaignConfig::backend`] with one shared tape
/// compilation.
#[derive(Debug, Clone, Copy, Default)]
pub struct VFsim;

impl FaultSimEngine for VFsim {
    fn name(&self) -> String {
        "VFsim".to_string()
    }

    fn run(
        &self,
        design: &Design,
        faults: &FaultList,
        stimulus: &Stimulus,
        config: &CampaignConfig,
    ) -> EngineResult {
        run_collapsed(design, faults, config, |faults, config| {
            let tapes = campaign_tapes(design, config);
            serial::serial_campaign(
                "VFsim",
                design,
                faults,
                stimulus,
                config.checkpoint,
                config.parallel,
                || match &tapes {
                    Some(tp) => CompiledSim::with_tapes(design, tp),
                    None => CompiledSim::with_backend(design, EvalBackend::Tree),
                },
                |sim, f| sim.force_bit(f.signal, f.bit, f.stuck.bit()),
            )
        })
    }
}

/// CfSim (Z01X proxy): the concurrent engine pinned to explicit-only
/// redundancy elimination. Honors every [`CampaignConfig`] field except
/// `mode`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CfSim;

impl FaultSimEngine for CfSim {
    fn name(&self) -> String {
        "CfSim".to_string()
    }

    fn run(
        &self,
        design: &Design,
        faults: &FaultList,
        stimulus: &Stimulus,
        config: &CampaignConfig,
    ) -> EngineResult {
        let mut result = Eraser::explicit().run(design, faults, stimulus, config);
        result.name = self.name();
        result
    }
}

/// The full Fig. 6 engine line-up as trait objects, in the paper's column
/// order: IFsim (the 1× reference), VFsim, CfSim, and full ERASER.
pub fn all_engines() -> Vec<Box<dyn FaultSimEngine>> {
    vec![
        Box::new(IFsim),
        Box::new(VFsim),
        Box::new(CfSim),
        Box::new(Eraser::full()),
    ]
}

/// Every engine of the workspace — the Fig. 6 line-up plus the remaining
/// two ERASER ablation variants — wrapped in the fault-parallel
/// [`Parallel`] adapter under one shared [`ParallelConfig`], in the same
/// order as [`all_engines`] followed by `Eraser-` and `Eraser--`.
///
/// The serial baselines also honor `CampaignConfig::parallel` natively
/// now, but the [`Parallel`] adapter forces its inner campaigns serial,
/// so wrapping never nests thread pools; merged coverage stays
/// bit-identical for each engine, and the whole line-up still passes the
/// Table II parity check.
pub fn all_engines_parallel(config: ParallelConfig) -> Vec<Box<dyn FaultSimEngine>> {
    vec![
        Box::new(Parallel::new(IFsim, config)),
        Box::new(Parallel::new(VFsim, config)),
        Box::new(Parallel::new(CfSim, config)),
        Box::new(Parallel::new(Eraser::full(), config)),
        Box::new(Parallel::new(Eraser::explicit(), config)),
        Box::new(Parallel::new(Eraser::none(), config)),
    ]
}

/// Runs the IFsim baseline with default configuration (compatibility
/// wrapper over [`IFsim`]).
pub fn run_ifsim(design: &Design, faults: &FaultList, stimulus: &Stimulus) -> EngineResult {
    IFsim.run(design, faults, stimulus, &CampaignConfig::default())
}

/// Runs the VFsim baseline with default configuration (compatibility
/// wrapper over [`VFsim`]).
pub fn run_vfsim(design: &Design, faults: &FaultList, stimulus: &Stimulus) -> EngineResult {
    VFsim.run(design, faults, stimulus, &CampaignConfig::default())
}

/// Runs the CfSim baseline with default configuration (compatibility
/// wrapper over [`CfSim`]).
pub fn run_cfsim(design: &Design, faults: &FaultList, stimulus: &Stimulus) -> EngineResult {
    CfSim.run(design, faults, stimulus, &CampaignConfig::default())
}

/// Runs the full ERASER engine with default configuration (compatibility
/// wrapper over [`Eraser::full`]).
pub fn run_eraser(design: &Design, faults: &FaultList, stimulus: &Stimulus) -> EngineResult {
    Eraser::full().run(design, faults, stimulus, &CampaignConfig::default())
}
