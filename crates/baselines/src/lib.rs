//! Baseline RTL fault simulators for the ERASER evaluation.
//!
//! Implements the three comparison engines of the paper's Fig. 6, as
//! documented substitutions (see `DESIGN.md`):
//!
//! * [`run_ifsim`] — **IFsim**: per-fault serial *event-driven*
//!   re-simulation with the fault imposed through a `force`, the
//!   Icarus-Verilog-with-`force` baseline (the 1× reference of Fig. 6).
//! * [`run_vfsim`] — **VFsim**: per-fault serial *levelized full
//!   evaluation*: every combinational node is evaluated every settle step
//!   in a precomputed topological order, with no event scheduling — the
//!   performance character of Verilator-based fault simulation
//!   (cheap, constant work per cycle; total cost ∝ faults × whole design).
//! * [`run_cfsim`] — **CfSim**: the Z01X proxy — concurrent (batched) fault
//!   simulation with *explicit* behavioral redundancy elimination only,
//!   i.e. the ERASER engine with
//!   [`RedundancyMode::Explicit`](eraser_core::RedundancyMode).
//!
//! All engines share the detection predicate
//! ([`eraser_fault::detectable_mismatch`]), observation points (primary
//! outputs, checked after every stimulus step) and fault-dropping
//! semantics, so their coverage must agree bit-for-bit — the Table II
//! parity criterion.

mod compiled;
mod serial;

pub use compiled::CompiledSim;
pub use serial::EngineResult;

use eraser_core::{run_campaign, CampaignConfig, RedundancyMode};
use eraser_fault::FaultList;
use eraser_ir::Design;
use eraser_sim::{Simulator, Stimulus};
use std::time::Instant;

/// Runs the IFsim baseline: one event-driven re-simulation per fault, with
/// the stuck-at imposed as a force; outputs are compared against a recorded
/// good trace after every stimulus step, stopping at first detection.
pub fn run_ifsim(design: &Design, faults: &FaultList, stimulus: &Stimulus) -> EngineResult {
    serial::serial_campaign(
        "IFsim",
        design,
        faults,
        stimulus,
        |fault| {
            let mut sim = Simulator::new(design);
            if let Some(f) = fault {
                sim.add_force(f.signal, f.bit, f.stuck.bit());
                // Settle the force at construction so all engines agree on
                // when a forced power-on edge (X -> stuck value) fires
                // relative to the first stimulus step.
                sim.step();
            }
            sim
        },
        |sim, changes| {
            for (sig, v) in changes {
                sim.set_input(*sig, v.clone());
            }
            sim.step();
        },
        |sim, sig| sim.value(sig).clone(),
    )
}

/// Runs the VFsim baseline: one levelized full-evaluation simulation per
/// fault (no event scheduling), same observation and dropping rules.
pub fn run_vfsim(design: &Design, faults: &FaultList, stimulus: &Stimulus) -> EngineResult {
    serial::serial_campaign(
        "VFsim",
        design,
        faults,
        stimulus,
        |fault| {
            let mut sim = CompiledSim::new(design);
            if let Some(f) = fault {
                sim.add_force(f.signal, f.bit, f.stuck.bit());
            }
            sim
        },
        |sim, changes| sim.settle_step(changes),
        |sim, sig| sim.value(sig).clone(),
    )
}

/// Runs the CfSim baseline (Z01X proxy): the concurrent engine with
/// explicit-only redundancy elimination.
pub fn run_cfsim(design: &Design, faults: &FaultList, stimulus: &Stimulus) -> EngineResult {
    let t0 = Instant::now();
    let res = run_campaign(
        design,
        faults,
        stimulus,
        &CampaignConfig {
            mode: RedundancyMode::Explicit,
            drop_detected: true,
        },
    );
    EngineResult {
        name: "CfSim".to_string(),
        coverage: res.coverage,
        wall: t0.elapsed(),
    }
}

/// Runs the full ERASER engine (for symmetric result collection in the
/// benchmark harness).
pub fn run_eraser(design: &Design, faults: &FaultList, stimulus: &Stimulus) -> EngineResult {
    let t0 = Instant::now();
    let res = run_campaign(
        design,
        faults,
        stimulus,
        &CampaignConfig {
            mode: RedundancyMode::Full,
            drop_detected: true,
        },
    );
    EngineResult {
        name: "Eraser".to_string(),
        coverage: res.coverage,
        wall: t0.elapsed(),
    }
}
