//! Experiment harness for the ERASER evaluation.
//!
//! One report binary per table/figure of the paper (see `DESIGN.md` §3 for
//! the experiment index):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1_redundancy_ratio` | Fig. 1(b) explicit/implicit redundancy ratio |
//! | `table2_benchmarks` | Table II benchmark info + coverage parity |
//! | `fig6_performance` | Fig. 6 engine time comparison + speedups |
//! | `fig7_ablation` | Fig. 7 Eraser--/Eraser-/Eraser ablation |
//! | `table3_redundancy` | Table III redundancy proportions + §V-C time split |
//! | `fig8_scaling` | fault-parallel thread-count scaling (1/2/4/8) |
//! | `fig9_checkpoint` | checkpointed good-state replay on the serial baselines |
//! | `fig10_batch` | 64-wide bit-parallel fault batching vs scalar on the concurrent engine |
//! | `fig11_collapse` | static fault collapsing (equivalence classes + undetectable drops) vs full universe |
//! | `fig13_netlist` | Yosys-JSON netlist intake: batch occupancy + collapse ratio on the gate-level fixtures |
//! | `bench_schema_check` | validates every `BENCH_*.json` against its schema |
//!
//! Run with `cargo run --release -p eraser-bench --bin <name>`. The
//! environment variable `ERASER_BENCH_SCALE` (default `1.0`) scales every
//! stimulus length, e.g. `ERASER_BENCH_SCALE=0.25` for a quick pass;
//! `ERASER_BENCH_ONLY` (comma-separated Table II names and/or netlist
//! fixture names) restricts the design set; `ERASER_THREADS` /
//! `ERASER_PARTITION` configure fault-parallel campaign execution for
//! every report.

pub mod json;
pub mod legacy;
pub mod schema;

use eraser_core::ParallelConfig;
use eraser_designs::{netlist_fixtures, Benchmark, DesignSource, NETLIST_FIXTURE_NAMES};
use eraser_fault::{generate_faults, FaultList};
use eraser_ir::analysis::design_stats;
use eraser_ir::Design;
use eraser_sim::Stimulus;
use std::time::Duration;

/// A design with everything needed to run a campaign — produced from any
/// [`DesignSource`] (a Table II benchmark or a bundled netlist fixture).
pub struct Prepared {
    /// Display name (Table II benchmark name or netlist fixture name).
    pub name: String,
    /// The elaborated design.
    pub design: Design,
    /// The fault universe.
    pub faults: FaultList,
    /// The stimulus (scaled).
    pub stimulus: Stimulus,
}

/// Reads the stimulus scale factor from `ERASER_BENCH_SCALE`.
pub fn env_scale() -> f64 {
    std::env::var("ERASER_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(1.0)
}

/// The benchmarks a report binary should cover: all ten by default, or the
/// subset named in `ERASER_BENCH_ONLY` (comma-separated Table II display
/// names, case-insensitive — e.g. `ERASER_BENCH_ONLY="APB,ALU"`). An
/// unset or blank variable selects the full suite; any name that matches
/// no benchmark is a configuration error and aborts, so a typo can never
/// silently change what a run covers.
pub fn selected_benchmarks() -> Vec<Benchmark> {
    let all = Benchmark::all();
    match validated_filter() {
        None => all.to_vec(),
        Some(wanted) => all
            .into_iter()
            .filter(|b| wanted.iter().any(|w| b.name().eq_ignore_ascii_case(w)))
            .collect(),
    }
}

/// The bundled Yosys-JSON netlist fixtures a report binary should cover,
/// honoring the same `ERASER_BENCH_ONLY` filter (fixture module names —
/// e.g. `counter8_gate` — are valid selection names alongside the
/// Table II benchmarks).
pub fn selected_netlist_fixtures() -> Vec<DesignSource> {
    let filter = validated_filter();
    // Check the names before paying for the imports.
    if let Some(wanted) = &filter {
        if !NETLIST_FIXTURE_NAMES
            .iter()
            .any(|n| wanted.iter().any(|w| n.eq_ignore_ascii_case(w)))
        {
            return Vec::new();
        }
    }
    netlist_fixtures()
        .into_iter()
        .filter(|f| match &filter {
            None => true,
            Some(wanted) => wanted.iter().any(|w| f.name().eq_ignore_ascii_case(w)),
        })
        .collect()
}

/// The full design-source line-up for reports that cover netlist intake:
/// every selected benchmark plus every selected netlist fixture.
pub fn selected_sources() -> Vec<DesignSource> {
    let mut sources: Vec<DesignSource> = selected_benchmarks()
        .into_iter()
        .map(DesignSource::benchmark)
        .collect();
    sources.extend(selected_netlist_fixtures());
    sources
}

/// Parses `ERASER_BENCH_ONLY`, aborting on names that match neither a
/// Table II benchmark nor a bundled netlist fixture — a typo can never
/// silently change what a run covers.
fn validated_filter() -> Option<Vec<String>> {
    let filter = std::env::var("ERASER_BENCH_ONLY").ok()?;
    let wanted: Vec<String> = filter
        .split(',')
        .map(|s| s.trim().to_ascii_lowercase())
        .filter(|s| !s.is_empty())
        .collect();
    if wanted.is_empty() {
        return None;
    }
    let all = Benchmark::all();
    let unmatched: Vec<&str> = wanted
        .iter()
        .filter(|w| {
            !all.iter().any(|b| b.name().eq_ignore_ascii_case(w))
                && !NETLIST_FIXTURE_NAMES
                    .iter()
                    .any(|n| n.eq_ignore_ascii_case(w))
        })
        .map(String::as_str)
        .collect();
    if !unmatched.is_empty() {
        eprintln!(
            "error: ERASER_BENCH_ONLY names unknown benchmark(s) {unmatched:?}; \
             valid names: {}, {}",
            all.map(|b| b.name()).join(", "),
            NETLIST_FIXTURE_NAMES.join(", ")
        );
        std::process::exit(2);
    }
    Some(wanted)
}

/// Intersects a report's fixed default circuit list with the
/// `ERASER_BENCH_ONLY` selection, so every report binary honors the
/// filter even when it does not cover the full Table II suite. An unset
/// filter keeps the defaults; names outside `defaults` simply select
/// nothing from this report (they still validate against the full suite
/// in [`selected_benchmarks`]).
pub fn selected_subset(defaults: &[Benchmark]) -> Vec<Benchmark> {
    let selected = selected_benchmarks();
    defaults
        .iter()
        .copied()
        .filter(|b| selected.contains(b))
        .collect()
}

/// Generates the fault universe and builds the stimulus for any design
/// source, with `scale` applied to the source's default cycle count.
pub fn prepare_source(source: &DesignSource, scale: f64) -> Prepared {
    let cycles = ((source.default_cycles() as f64 * scale).round() as usize).max(16);
    Prepared {
        name: source.name().to_string(),
        faults: generate_faults(source.design(), source.fault_config()),
        stimulus: source.stimulus_with_cycles(cycles),
        design: source.design().clone(),
    }
}

/// Compiles a benchmark, generates its fault universe and builds its
/// stimulus with `scale` applied to the default cycle count.
pub fn prepare(bench: Benchmark, scale: f64) -> Prepared {
    prepare_source(&DesignSource::benchmark(bench), scale)
}

/// Formats a duration in seconds with millisecond resolution.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Dependency-free micro-benchmark support for the `harness = false` bench
/// targets: runs a closure repeatedly and reports min / mean wall time.
/// `ERASER_BENCH_ITERS` overrides the sample count (default 5).
pub fn micro_bench(label: &str, mut f: impl FnMut()) -> Duration {
    let iters: u32 = std::env::var("ERASER_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|n: &u32| *n > 0)
        .unwrap_or(5);
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        f();
        let dt = t0.elapsed();
        total += dt;
        min = min.min(dt);
    }
    println!(
        "{label:<32} min {:>10}  mean {:>10}  ({iters} runs)",
        fmt_secs(min),
        fmt_secs(total / iters)
    );
    min
}

/// Prints the evaluation-environment header (the analog of the paper's
/// Table I) common to every report, including the actual fault-parallel
/// thread count the campaigns will use (from `ERASER_THREADS`, default 1).
pub fn print_environment(title: &str) {
    let parallel = ParallelConfig::default();
    println!("# {title}");
    println!();
    println!(
        "Environment: {} / Rust (release), {} (set ERASER_THREADS / ERASER_PARTITION);",
        std::env::consts::OS,
        parallel
    );
    println!(
        "scale = {} (set ERASER_BENCH_SCALE to adjust stimulus length).",
        env_scale()
    );
    println!();
}

/// One-line design summary used by several reports.
pub fn design_summary(p: &Prepared) -> String {
    let st = design_stats(&p.design);
    format!(
        "{:<11} cells={:<6} faults={:<5} stimulus={} steps",
        p.name,
        st.cells(),
        p.faults.len(),
        p.stimulus.num_steps()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_produces_consistent_bundle() {
        let p = prepare(Benchmark::Apb, 0.1);
        assert_eq!(p.name, Benchmark::Apb.name());
        assert!(!p.faults.is_empty());
        assert!(p.stimulus.num_steps() >= 16);
        assert!(design_summary(&p).contains("APB"));
    }

    #[test]
    fn prepare_source_covers_netlist_fixtures() {
        for f in netlist_fixtures() {
            let p = prepare_source(&f, 0.1);
            assert!(NETLIST_FIXTURE_NAMES.contains(&p.name.as_str()));
            assert!(!p.faults.is_empty(), "{}: empty fault list", p.name);
            assert!(p.stimulus.num_steps() >= 16);
        }
    }

    #[test]
    fn scale_shrinks_stimulus() {
        let small = prepare(Benchmark::Alu64, 0.1);
        let big = prepare(Benchmark::Alu64, 0.5);
        assert!(small.stimulus.num_steps() < big.stimulus.num_steps());
    }
}
