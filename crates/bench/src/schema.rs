//! Benchmark-record schema validation.
//!
//! Every report binary emits `BENCH_<binary>.json` — an array of flat
//! records, each stamped with a `schema` tag. This module holds the
//! registry of known schemas (tag → required keys and their types) and a
//! dependency-free JSON reader, so CI can validate every uploaded record
//! file and fail the build on malformed output instead of letting it land
//! silently (the `bench_schema_check` binary).
//!
//! Validation is **strict**: a record must carry exactly the registered
//! key set of its schema (no missing keys, no strays), with the right
//! primitive type per key — the cheapest way to catch a renamed field or
//! a half-migrated writer.

use std::collections::BTreeMap;

/// Value type a schema key must hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// A JSON string.
    Str,
    /// A JSON number.
    Num,
}

/// The registered schemas: tag → `(key, type)` list.
///
/// Adding a record format to any report binary requires registering it
/// here, or CI rejects the file — by design.
pub fn registry() -> Vec<(&'static str, Vec<(&'static str, Ty)>)> {
    use Ty::*;
    vec![
        (
            // The shared BenchRecord (crate::json::SCHEMA).
            "eraser-bench-v2",
            vec![
                ("schema", Str),
                ("binary", Str),
                ("benchmark", Str),
                ("engine", Str),
                ("cells", Num),
                ("faults", Num),
                ("stimulus_steps", Num),
                ("detected", Num),
                ("coverage_percent", Num),
                ("wall_seconds", Num),
                ("threads", Num),
            ],
        ),
        (
            // fig7_hotpath per-backend hot-path records.
            "eraser-fig7-hotpath-v2",
            vec![
                ("schema", Str),
                ("binary", Str),
                ("benchmark", Str),
                ("mode", Str),
                ("backend", Str),
                ("cycles", Num),
                ("wall_seconds", Num),
                ("cycles_per_sec", Num),
                ("steady_allocs", Num),
            ],
        ),
        (
            // fig9_checkpoint temporal-redundancy records.
            "eraser-fig9-checkpoint-v1",
            vec![
                ("schema", Str),
                ("binary", Str),
                ("benchmark", Str),
                ("engine", Str),
                ("faults", Num),
                ("stimulus_steps", Num),
                ("checkpoint_interval", Num),
                ("wall_off_seconds", Num),
                ("wall_on_seconds", Num),
                ("speedup", Num),
                ("skipped_prefix_steps", Num),
                ("skipped_faults", Num),
                ("dropped_faults", Num),
                ("detected", Num),
                ("coverage_percent", Num),
            ],
        ),
        (
            // fig10_batch bit-parallel fault-batching records.
            "eraser-fig10-batch-v1",
            vec![
                ("schema", Str),
                ("binary", Str),
                ("benchmark", Str),
                ("backend", Str),
                ("faults", Num),
                ("stimulus_steps", Num),
                ("wall_scalar_seconds", Num),
                ("wall_batch_seconds", Num),
                ("speedup", Num),
                ("faults_per_sec_scalar", Num),
                ("faults_per_sec_batch", Num),
                ("batch_groups", Num),
                ("batch_lanes", Num),
                ("batch_scalar_fallbacks", Num),
                ("lane_occupancy_percent", Num),
                ("detected", Num),
                ("coverage_percent", Num),
            ],
        ),
        (
            // fig12_twodim two-dimensional parallelism records.
            "eraser-fig12-twodim-v1",
            vec![
                ("schema", Str),
                ("binary", Str),
                ("benchmark", Str),
                ("engine", Str),
                ("faults", Num),
                ("stimulus_steps", Num),
                ("checkpoint_interval", Num),
                ("threads", Num),
                ("wall_serial_seconds", Num),
                ("wall_parallel_seconds", Num),
                ("wall_ckpt_seconds", Num),
                ("wall_composed_seconds", Num),
                ("speedup_parallel", Num),
                ("speedup_ckpt", Num),
                ("speedup_composed", Num),
                ("skipped_prefix_steps_ckpt", Num),
                ("skipped_prefix_steps_composed", Num),
                ("skipped_faults", Num),
                ("dropped_faults", Num),
                ("detected", Num),
                ("coverage_percent", Num),
            ],
        ),
        (
            // fig11_collapse static fault-collapsing records.
            "eraser-fig11-collapse-v1",
            vec![
                ("schema", Str),
                ("binary", Str),
                ("benchmark", Str),
                ("engine", Str),
                ("faults_before", Num),
                ("faults_after", Num),
                ("collapse_ratio", Num),
                ("dropped_unobservable", Num),
                ("wall_off_seconds", Num),
                ("wall_on_seconds", Num),
                ("speedup", Num),
                ("detected", Num),
                ("coverage_percent", Num),
            ],
        ),
        (
            // fig13_netlist Yosys-JSON intake records.
            "eraser-fig13-netlist-v1",
            vec![
                ("schema", Str),
                ("binary", Str),
                ("benchmark", Str),
                ("backend", Str),
                ("cells", Num),
                ("faults", Num),
                ("stimulus_steps", Num),
                ("batch_groups", Num),
                ("batch_lanes", Num),
                ("batch_scalar_fallbacks", Num),
                ("lane_occupancy_percent", Num),
                ("collapse_classes", Num),
                ("collapse_ratio", Num),
                ("dropped_unobservable", Num),
                ("detected", Num),
                ("coverage_percent", Num),
            ],
        ),
    ]
}

/// A parsed flat JSON value (only what bench records need).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// String.
    Str(String),
    /// Number (kept as text; records never need the numeric value).
    Num(String),
    /// `true`/`false`.
    Bool(bool),
    /// `null`.
    Null,
    /// Array.
    Arr(Vec<Json>),
    /// Object (sorted map — record keys are unique).
    Obj(BTreeMap<String, Json>),
}

/// Parses a complete JSON document (object/array/scalar), rejecting
/// trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let Json::Str(key) = parse_value(b, pos)? else {
                    return Err(format!("object key at byte {pos} is not a string"));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                if map.insert(key.clone(), value).is_some() {
                    return Err(format!("duplicate key `{key}`"));
                }
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex =
                                    b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                s.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Multi-byte UTF-8 passes through unmodified.
                        let ch_len = utf8_len(c);
                        let chunk = b
                            .get(*pos..*pos + ch_len)
                            .ok_or("truncated UTF-8 sequence")?;
                        s.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                        *pos += ch_len;
                    }
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map_err(|_| format!("bad number `{text}`"))?;
            Ok(Json::Num(text.to_string()))
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(&c) => Err(format!("unexpected byte `{}` at {pos}", c as char)),
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Validates one record file's text: a JSON array of records, each
/// matching its registered schema exactly. Returns the record count.
pub fn validate_records(text: &str) -> Result<usize, String> {
    let registry = registry();
    let doc = parse_json(text)?;
    let Json::Arr(records) = doc else {
        return Err("top level is not an array".into());
    };
    for (i, rec) in records.iter().enumerate() {
        validate_record(rec, &registry).map_err(|e| format!("record {i}: {e}"))?;
    }
    Ok(records.len())
}

fn validate_record(
    rec: &Json,
    registry: &[(&'static str, Vec<(&'static str, Ty)>)],
) -> Result<(), String> {
    let Json::Obj(map) = rec else {
        return Err("not an object".into());
    };
    let Some(Json::Str(tag)) = map.get("schema") else {
        return Err("missing `schema` string".into());
    };
    let Some((_, keys)) = registry.iter().find(|(t, _)| t == tag) else {
        return Err(format!("unknown schema `{tag}`"));
    };
    for (key, ty) in keys {
        match (map.get(*key), ty) {
            (Some(Json::Str(_)), Ty::Str) | (Some(Json::Num(_)), Ty::Num) => {}
            (Some(v), _) => return Err(format!("key `{key}` has wrong type: {v:?}")),
            (None, _) => return Err(format!("missing key `{key}`")),
        }
    }
    for key in map.keys() {
        if !keys.iter().any(|(k, _)| k == key) {
            return Err(format!("stray key `{key}` not in schema `{tag}`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::BenchRecord;

    fn sample_record() -> String {
        BenchRecord {
            binary: "fig6_performance".into(),
            benchmark: "APB".into(),
            engine: "Eraser".into(),
            cells: 42,
            faults: 100,
            stimulus_steps: 600,
            detected: 97,
            coverage_percent: 97.0,
            wall_seconds: 1.25,
            threads: 1,
        }
        .to_json()
    }

    #[test]
    fn accepts_well_formed_bench_records() {
        let text = format!("[\n  {}\n]\n", sample_record());
        assert_eq!(validate_records(&text).unwrap(), 1);
        assert_eq!(validate_records("[]").unwrap(), 0);
    }

    #[test]
    fn rejects_malformations() {
        // Unknown schema tag.
        let bad = sample_record().replace("eraser-bench-v2", "eraser-bench-v999");
        assert!(validate_records(&format!("[{bad}]"))
            .unwrap_err()
            .contains("unknown schema"));
        // Missing key.
        let bad = sample_record().replace("\"threads\":1", "\"threadz\":1");
        let err = validate_records(&format!("[{bad}]")).unwrap_err();
        assert!(err.contains("missing key `threads`") || err.contains("stray key"));
        // Wrong type.
        let bad = sample_record().replace("\"threads\":1", "\"threads\":\"one\"");
        assert!(validate_records(&format!("[{bad}]"))
            .unwrap_err()
            .contains("wrong type"));
        // Not an array.
        assert!(validate_records(&sample_record()).is_err());
        // Trailing garbage / syntax errors.
        assert!(validate_records("[{}] x").is_err());
        assert!(validate_records("[{]").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v = parse_json(r#"{"a":"q\"\nA","b":-1.5e3,"c":[true,false,null]}"#).unwrap();
        let Json::Obj(m) = v else { panic!() };
        assert_eq!(m["a"], Json::Str("q\"\nA".into()));
        assert_eq!(m["b"], Json::Num("-1.5e3".into()));
        let Json::Arr(arr) = &m["c"] else { panic!() };
        assert_eq!(arr.len(), 3);
        // Duplicate keys are rejected.
        assert!(parse_json(r#"{"a":1,"a":2}"#).is_err());
    }

    #[test]
    fn registry_covers_every_emitted_schema() {
        // The shared BenchRecord tag must stay registered under the same
        // name the writer stamps.
        assert!(registry().iter().any(|(t, _)| *t == crate::json::SCHEMA));
    }
}
