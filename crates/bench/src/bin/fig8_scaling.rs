//! **Fig. 8** (beyond the paper): fault-parallel scaling of the full
//! ERASER engine. For every benchmark, the campaign runs serially (the
//! reference) and then through the [`Parallel`] adapter at 1/2/4/8 worker
//! threads under the configured partition strategy, asserting that every
//! merged coverage report is *bit-identical* to the serial one (detections,
//! first-detection steps, outputs) and reporting wall-time speedups. Emits
//! `BENCH_fig8_scaling.json` (one record per benchmark/thread-count, with
//! the `threads` field set).
//!
//! `ERASER_PARTITION` selects the strategy (default `site-affinity`);
//! `ERASER_BENCH_ONLY` restricts the benchmark set (used by CI to keep the
//! record fresh on two small designs); `ERASER_FIG8_THREADS` overrides the
//! sweep (comma-separated, default `1,2,4,8`).

use eraser_bench::json::{write_records, BenchRecord};
use eraser_bench::{env_scale, fmt_secs, prepare, print_environment, selected_benchmarks};
use eraser_core::{CampaignConfig, Eraser, FaultSimEngine, Parallel, ParallelConfig};

const BINARY: &str = "fig8_scaling";

fn thread_sweep() -> Vec<usize> {
    std::env::var("ERASER_FIG8_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

fn main() {
    print_environment("Fig. 8 — fault-parallel scaling of the ERASER engine");
    let scale = env_scale();
    let threads = thread_sweep();
    let strategy = ParallelConfig::default().strategy;
    // The reference and all shard campaigns run under one serial config;
    // the Parallel adapter owns every thread.
    let config = CampaignConfig::serial();

    print!("{:<11} {:>10}", "benchmark", "serial");
    for &t in &threads {
        print!(" {:>9}", format!("p{t}"));
    }
    for &t in &threads {
        print!(" {:>6}", format!("p{t} x"));
    }
    println!("   coverage");

    let mut records = Vec::new();
    let mut geo = vec![0.0f64; threads.len()];
    let mut n = 0usize;
    for bench in selected_benchmarks() {
        let p = prepare(bench, scale);
        let serial = Eraser::full().run(&p.design, &p.faults, &p.stimulus, &config);
        let mut row = Vec::new();
        for &t in &threads {
            let engine = Parallel::new(
                Eraser::full(),
                ParallelConfig {
                    threads: t,
                    strategy,
                },
            );
            let result = engine.run(&p.design, &p.faults, &p.stimulus, &config);
            assert_eq!(
                serial.coverage,
                result.coverage,
                "{} p{t}: merged coverage is not bit-identical to the serial run",
                bench.name()
            );
            records.push(BenchRecord::from_result(BINARY, &p, &result));
            row.push(result);
        }
        print!("{:<11} {:>10}", bench.name(), fmt_secs(serial.wall));
        for r in &row {
            print!(" {:>9}", fmt_secs(r.wall));
        }
        for (i, r) in row.iter().enumerate() {
            let sp = serial.wall.as_secs_f64() / r.wall.as_secs_f64();
            geo[i] += sp.ln();
            print!(" {:>5.1}x", sp);
        }
        println!("   {}", serial.coverage);
        records.push(BenchRecord::from_result(BINARY, &p, &serial));
        n += 1;
    }

    println!();
    let parts: Vec<String> = threads
        .iter()
        .enumerate()
        .map(|(i, t)| format!("p{t} {:.2}x", (geo[i] / n as f64).exp()))
        .collect();
    println!(
        "geomean speedup vs serial ({strategy} partition): {}",
        parts.join(", ")
    );
    println!("(coverage asserted bit-identical to the serial engine at every thread count)");
    write_records(BINARY, &records);
}
