//! **Fig. 7 (hot path)** — before/after measurement of the
//! zero-allocation evaluation core and the compiled-tape backend.
//!
//! For every selected benchmark (default `APB,ALU,Conv_acc`; override
//! with `ERASER_BENCH_ONLY`), the report:
//!
//! 1. replays the full stimulus on the frozen **pre-change replica**
//!    ([`eraser_bench::legacy::LegacySimulator`]: clone-per-read, fresh
//!    `LogicVec` per AST node, fresh work lists per activation) and on the
//!    current zero-allocation [`Simulator`] on **both** evaluation
//!    backends — the tree walker and the compiled instruction tapes —
//!    asserting **bit-identical outputs after every settle step**,
//! 2. reports cycles/sec for all three, the zero-alloc speedup over the
//!    replica, and the tape speedup over the tree walker,
//! 3. counts heap allocations (via the `alloc-count` counting global
//!    allocator) over a steady-state window after warm-up, for the good
//!    simulator and the full ERASER engine campaign loop, per backend,
//! 4. writes `BENCH_fig7_hotpath.json` (schema `eraser-fig7-hotpath-v2`:
//!    v1 plus a `backend` field — `legacy`, `tree` or `tape` — with one
//!    record per benchmark/mode/backend), so the perf trajectory tracks
//!    both backends.
//!
//! With `ERASER_FIG7_STRICT=1` (the CI perf-smoke job), the binary exits
//! nonzero if any steady-state hot-path allocation count is nonzero on
//! either backend or any parity check fails — the allocation-freedom and
//! backend-equivalence regression gate.

use eraser_bench::json::write_json_objects;
use eraser_bench::legacy::LegacySimulator;
use eraser_bench::{env_scale, prepare, print_environment, selected_benchmarks, Prepared};
use eraser_core::{EraserEngine, EvalBackend};
use eraser_designs::Benchmark;
use eraser_logic::counting_alloc::CountingAlloc;
use eraser_sim::Simulator;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const BINARY: &str = "fig7_hotpath";
const SCHEMA: &str = "eraser-fig7-hotpath-v2";

/// Warm-up cycles before the allocation-count window opens.
const WARMUP_CYCLES: usize = 100;

struct Record {
    benchmark: String,
    mode: &'static str,
    backend: &'static str,
    cycles: usize,
    wall_seconds: f64,
    cycles_per_sec: f64,
    steady_allocs: u64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"{}\",\"binary\":\"{}\",\"benchmark\":\"{}\",",
                "\"mode\":\"{}\",\"backend\":\"{}\",\"cycles\":{},",
                "\"wall_seconds\":{:.6},\"cycles_per_sec\":{:.1},\"steady_allocs\":{}}}"
            ),
            SCHEMA,
            BINARY,
            self.benchmark,
            self.mode,
            self.backend,
            self.cycles,
            self.wall_seconds,
            self.cycles_per_sec,
            self.steady_allocs,
        )
    }
}

fn write_records(records: &[Record]) {
    let lines: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    write_json_objects(BINARY, &lines);
}

/// One stimulus entry: the input drives of a settle step.
type StimStep = Vec<(eraser_ir::SignalId, eraser_logic::LogicVec)>;

/// Steady-state allocation count of any stepper over the shared window:
/// warm up on the first half (capped at [`WARMUP_CYCLES`]), count over the
/// rest. The single window definition keeps the before/after comparison
/// honest for every simulator variant.
fn windowed_allocs<S>(p: &Prepared, sim: &mut S, mut apply: impl FnMut(&mut S, &StimStep)) -> u64 {
    let warm = WARMUP_CYCLES.min(p.stimulus.steps.len() / 2);
    for step in &p.stimulus.steps[..warm] {
        apply(sim, step);
    }
    let before = CountingAlloc::allocations();
    for step in &p.stimulus.steps[warm..] {
        apply(sim, step);
    }
    CountingAlloc::allocations() - before
}

/// Steady-state allocation count of the good simulator on `backend`.
fn sim_steady_allocs(p: &Prepared, backend: EvalBackend) -> u64 {
    let mut sim = Simulator::with_backend(&p.design, backend);
    windowed_allocs(p, &mut sim, |sim, step| {
        for (sig, val) in step {
            sim.set_input(*sig, val);
        }
        sim.step();
    })
}

/// Steady-state allocation count of the pre-change replica over the same
/// window — the "before" number the zero-allocation core is gated against.
fn legacy_steady_allocs(p: &Prepared) -> u64 {
    let mut sim = LegacySimulator::new(&p.design);
    windowed_allocs(p, &mut sim, |sim, step| {
        for (sig, val) in step {
            sim.set_input(*sig, val.clone());
        }
        sim.step();
    })
}

/// Steady-state allocation count and measured-window wall time of the full
/// ERASER engine loop (set-inputs, settle, observe with fault dropping) on
/// `backend`. Warm-up is two complete stimulus passes — every reachable
/// buffer shape has been seen — and the measured window replays the
/// stimulus a third time (the same methodology as the pre-tape recordings,
/// so the trajectory stays comparable).
fn engine_steady(p: &Prepared, backend: EvalBackend) -> (u64, f64, usize) {
    let mut engine = EraserEngine::session(&p.design, &p.faults)
        .backend(backend)
        .start();
    let drive = |engine: &mut EraserEngine, steps: &[StimStep]| {
        for step in steps {
            for (sig, val) in step {
                engine.set_input(*sig, val);
            }
            engine.step();
            engine.observe();
        }
    };
    drive(&mut engine, &p.stimulus.steps);
    drive(&mut engine, &p.stimulus.steps);
    let before = CountingAlloc::allocations();
    let t0 = Instant::now();
    if std::env::var("ERASER_FIG7_DEBUG").is_ok() {
        for (i, step) in p.stimulus.steps.iter().enumerate() {
            let b0 = CountingAlloc::allocations();
            for (sig, val) in step {
                engine.set_input(*sig, val);
            }
            let b1 = CountingAlloc::allocations();
            engine.step();
            let b2 = CountingAlloc::allocations();
            engine.observe();
            let b3 = CountingAlloc::allocations();
            if b3 - b0 > 0 {
                eprintln!(
                    "  debug: step {i}: set_input {} step {} observe {}",
                    b1 - b0,
                    b2 - b1,
                    b3 - b2
                );
            }
        }
    } else {
        drive(&mut engine, &p.stimulus.steps);
    }
    let wall = t0.elapsed().as_secs_f64();
    (
        CountingAlloc::allocations() - before,
        wall,
        p.stimulus.steps.len(),
    )
}

/// Best-of-three full-stimulus replay wall time of the current simulator
/// on `backend` (fresh instance per attempt; the box may be noisy).
fn sim_wall(p: &Prepared, backend: EvalBackend) -> std::time::Duration {
    (0..3)
        .map(|_| {
            let mut sim = Simulator::with_backend(&p.design, backend);
            let t0 = Instant::now();
            sim.run_stimulus(&p.stimulus);
            t0.elapsed()
        })
        .min()
        .unwrap()
}

fn main() {
    print_environment(
        "Fig. 7 (hot path) — zero-allocation core + compiled-tape backend, before/after",
    );
    let scale = env_scale();
    let strict = std::env::var("ERASER_FIG7_STRICT").is_ok_and(|v| v == "1");

    println!(
        "{:<11} {:>11} {:>11} {:>11} {:>8} {:>8} {:>6} {:>6} {:>6} {:>6}",
        "benchmark",
        "legacy c/s",
        "tree c/s",
        "tape c/s",
        "tree/lg",
        "tape/tr",
        "simT",
        "simTp",
        "engT",
        "engTp"
    );

    let mut records = Vec::new();
    let mut failed = false;
    for bench in selected(scale) {
        let p = prepare(bench, scale);
        let cycles = p.stimulus.steps.len();
        let outputs = p.design.outputs().to_vec();

        // Parity pass: legacy replica, tree walker and tape backend in
        // lockstep, outputs compared after every settle step.
        let mut legacy = LegacySimulator::new(&p.design);
        let mut tree = Simulator::with_backend(&p.design, EvalBackend::Tree);
        let mut tape = Simulator::with_backend(&p.design, EvalBackend::Tape);
        for step in &p.stimulus.steps {
            for (sig, val) in step {
                legacy.set_input(*sig, val.clone());
            }
            legacy.step();
            for (sig, val) in step {
                tree.set_input(*sig, val);
                tape.set_input(*sig, val);
            }
            tree.step();
            tape.step();
            for &o in &outputs {
                if legacy.value(o) != tree.value(o) || tree.value(o) != tape.value(o) {
                    eprintln!(
                        "PARITY FAILURE: {} output {:?} diverged (legacy/tree/tape)",
                        bench.name(),
                        o
                    );
                    failed = true;
                }
            }
        }

        // Timing: separate uninterleaved full-stimulus replays on fresh
        // instances, best of three for every simulator variant (identical
        // sampling keeps the cross-variant ratios unbiased).
        let legacy_wall = (0..3)
            .map(|_| {
                let mut sim = LegacySimulator::new(&p.design);
                let t0 = Instant::now();
                sim.run_stimulus(&p.stimulus);
                t0.elapsed()
            })
            .min()
            .unwrap();
        let tree_wall = sim_wall(&p, EvalBackend::Tree);
        let tape_wall = sim_wall(&p, EvalBackend::Tape);

        let baseline_allocs = legacy_steady_allocs(&p);
        let sim_allocs_tree = sim_steady_allocs(&p, EvalBackend::Tree);
        let sim_allocs_tape = sim_steady_allocs(&p, EvalBackend::Tape);
        let (eng_allocs_tree, eng_wall_tree, eng_cycles) = engine_steady(&p, EvalBackend::Tree);
        let (eng_allocs_tape, eng_wall_tape, _) = engine_steady(&p, EvalBackend::Tape);

        let legacy_cps = cycles as f64 / legacy_wall.as_secs_f64();
        let tree_cps = cycles as f64 / tree_wall.as_secs_f64();
        let tape_cps = cycles as f64 / tape_wall.as_secs_f64();
        println!(
            "{:<11} {:>11.0} {:>11.0} {:>11.0} {:>7.2}x {:>7.2}x {:>6} {:>6} {:>6} {:>6}",
            bench.name(),
            legacy_cps,
            tree_cps,
            tape_cps,
            tree_cps / legacy_cps,
            tape_cps / tree_cps,
            sim_allocs_tree,
            sim_allocs_tape,
            eng_allocs_tree,
            eng_allocs_tape
        );

        records.push(Record {
            benchmark: bench.name().to_string(),
            mode: "baseline",
            backend: "legacy",
            cycles,
            wall_seconds: legacy_wall.as_secs_f64(),
            cycles_per_sec: legacy_cps,
            steady_allocs: baseline_allocs,
        });
        for (backend, wall, cps, allocs) in [
            ("tree", tree_wall, tree_cps, sim_allocs_tree),
            ("tape", tape_wall, tape_cps, sim_allocs_tape),
        ] {
            records.push(Record {
                benchmark: bench.name().to_string(),
                mode: "zero_alloc",
                backend,
                cycles,
                wall_seconds: wall.as_secs_f64(),
                cycles_per_sec: cps,
                steady_allocs: allocs,
            });
        }
        for (backend, wall, allocs) in [
            ("tree", eng_wall_tree, eng_allocs_tree),
            ("tape", eng_wall_tape, eng_allocs_tape),
        ] {
            records.push(Record {
                benchmark: bench.name().to_string(),
                mode: "engine_zero_alloc",
                backend,
                cycles: eng_cycles,
                wall_seconds: wall,
                cycles_per_sec: eng_cycles as f64 / wall,
                steady_allocs: allocs,
            });
        }

        // The zero-allocation guarantee is defined for designs whose
        // signals all fit the 64-bit inline representation; wider designs
        // reuse storage opportunistically and are reported but not gated.
        let inline_only = p.design.signals().iter().all(|s| s.width <= 64);
        if inline_only
            && (sim_allocs_tree != 0
                || sim_allocs_tape != 0
                || eng_allocs_tree != 0
                || eng_allocs_tape != 0)
        {
            eprintln!(
                "STEADY-STATE ALLOCATIONS on {}: sim tree={sim_allocs_tree} tape={sim_allocs_tape} \
                 engine tree={eng_allocs_tree} tape={eng_allocs_tape}",
                bench.name()
            );
            failed = true;
        }
    }

    write_records(&records);
    if strict && failed {
        eprintln!("fig7_hotpath: strict mode failure (parity or nonzero steady-state allocations)");
        std::process::exit(1);
    }
}

/// Benchmarks to run: `ERASER_BENCH_ONLY` if set, else APB + ALU (the CI
/// perf-smoke gate pair, all-inline widths) plus Conv_acc (wide values,
/// where trimming clone-per-read buys the most).
fn selected(_scale: f64) -> Vec<Benchmark> {
    if std::env::var("ERASER_BENCH_ONLY").is_ok() {
        selected_benchmarks()
    } else {
        vec![Benchmark::Apb, Benchmark::Alu64, Benchmark::ConvAcc]
    }
}
