//! **Fig. 7 (hot path)** — before/after measurement of the
//! zero-allocation evaluation core.
//!
//! For every selected benchmark (default `APB,ALU`; override with
//! `ERASER_BENCH_ONLY`), the report:
//!
//! 1. replays the full stimulus on the frozen **pre-change replica**
//!    ([`eraser_bench::legacy::LegacySimulator`]: clone-per-read, fresh
//!    `LogicVec` per AST node, fresh work lists per activation) and on the
//!    current zero-allocation [`Simulator`], asserting **bit-identical
//!    outputs after every settle step**,
//! 2. reports cycles/sec for both, and the speedup,
//! 3. counts heap allocations (via the `alloc-count` counting global
//!    allocator) over a steady-state window after warm-up, for the good
//!    simulator and for the full ERASER engine campaign loop,
//! 4. writes `BENCH_fig7_hotpath.json` (schema `eraser-fig7-hotpath-v1`,
//!    one record per benchmark/mode).
//!
//! With `ERASER_FIG7_STRICT=1` (the CI perf-smoke job), the binary exits
//! nonzero if any steady-state hot-path allocation count is nonzero or the
//! parity check fails — the allocation-freedom regression gate.

use eraser_bench::json::write_json_objects;
use eraser_bench::legacy::LegacySimulator;
use eraser_bench::{env_scale, prepare, print_environment, selected_benchmarks, Prepared};
use eraser_core::{EraserEngine, RedundancyMode};
use eraser_designs::Benchmark;
use eraser_logic::counting_alloc::CountingAlloc;
use eraser_sim::Simulator;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const BINARY: &str = "fig7_hotpath";
const SCHEMA: &str = "eraser-fig7-hotpath-v1";

/// Warm-up cycles before the allocation-count window opens.
const WARMUP_CYCLES: usize = 100;

struct Record {
    benchmark: String,
    mode: &'static str,
    cycles: usize,
    wall_seconds: f64,
    cycles_per_sec: f64,
    steady_allocs: u64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"{}\",\"binary\":\"{}\",\"benchmark\":\"{}\",",
                "\"mode\":\"{}\",\"cycles\":{},\"wall_seconds\":{:.6},",
                "\"cycles_per_sec\":{:.1},\"steady_allocs\":{}}}"
            ),
            SCHEMA,
            BINARY,
            self.benchmark,
            self.mode,
            self.cycles,
            self.wall_seconds,
            self.cycles_per_sec,
            self.steady_allocs,
        )
    }
}

fn write_records(records: &[Record]) {
    let lines: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    write_json_objects(BINARY, &lines);
}

/// One stimulus entry: the input drives of a settle step.
type StimStep = Vec<(eraser_ir::SignalId, eraser_logic::LogicVec)>;

/// Steady-state allocation count of any stepper over the shared window:
/// warm up on the first half (capped at [`WARMUP_CYCLES`]), count over the
/// rest. The single window definition keeps the before/after comparison
/// honest for every simulator variant.
fn windowed_allocs<S>(p: &Prepared, sim: &mut S, mut apply: impl FnMut(&mut S, &StimStep)) -> u64 {
    let warm = WARMUP_CYCLES.min(p.stimulus.steps.len() / 2);
    for step in &p.stimulus.steps[..warm] {
        apply(sim, step);
    }
    let before = CountingAlloc::allocations();
    for step in &p.stimulus.steps[warm..] {
        apply(sim, step);
    }
    CountingAlloc::allocations() - before
}

/// Steady-state allocation count of the good simulator.
fn sim_steady_allocs(p: &Prepared) -> u64 {
    let mut sim = Simulator::new(&p.design);
    windowed_allocs(p, &mut sim, |sim, step| {
        for (sig, val) in step {
            sim.set_input(*sig, val.clone());
        }
        sim.step();
    })
}

/// Steady-state allocation count of the pre-change replica over the same
/// window — the "before" number the zero-allocation core is gated against.
fn legacy_steady_allocs(p: &Prepared) -> u64 {
    let mut sim = LegacySimulator::new(&p.design);
    windowed_allocs(p, &mut sim, |sim, step| {
        for (sig, val) in step {
            sim.set_input(*sig, val.clone());
        }
        sim.step();
    })
}

/// Steady-state allocation count and measured-window wall time of the full
/// ERASER engine loop (set-inputs, settle, observe with fault dropping).
/// Warm-up is one complete stimulus pass — every reachable buffer shape has
/// been seen — and the measured window replays the stimulus a second time.
fn engine_steady(p: &Prepared) -> (u64, f64, usize) {
    let mut engine = EraserEngine::new(&p.design, &p.faults, RedundancyMode::Full, true);
    let drive = |engine: &mut EraserEngine, steps: &[StimStep]| {
        for step in steps {
            for (sig, val) in step {
                engine.set_input(*sig, val.clone());
            }
            engine.step();
            engine.observe();
        }
    };
    // Two warm-up passes: the first sizes every pooled buffer, the second
    // settles the high-water marks that shift as detected faults drop out.
    drive(&mut engine, &p.stimulus.steps);
    drive(&mut engine, &p.stimulus.steps);
    let before = CountingAlloc::allocations();
    let t0 = Instant::now();
    if std::env::var("ERASER_FIG7_DEBUG").is_ok() {
        for (i, step) in p.stimulus.steps.iter().enumerate() {
            let b0 = CountingAlloc::allocations();
            for (sig, val) in step {
                engine.set_input(*sig, val.clone());
            }
            let b1 = CountingAlloc::allocations();
            engine.step();
            let b2 = CountingAlloc::allocations();
            engine.observe();
            let b3 = CountingAlloc::allocations();
            if b3 - b0 > 0 {
                eprintln!(
                    "  debug: step {i}: set_input {} step {} observe {}",
                    b1 - b0,
                    b2 - b1,
                    b3 - b2
                );
            }
        }
    } else {
        drive(&mut engine, &p.stimulus.steps);
    }
    let wall = t0.elapsed().as_secs_f64();
    (
        CountingAlloc::allocations() - before,
        wall,
        p.stimulus.steps.len(),
    )
}

fn main() {
    print_environment("Fig. 7 (hot path) — zero-allocation evaluation core, before/after");
    let scale = env_scale();
    let strict = std::env::var("ERASER_FIG7_STRICT").is_ok_and(|v| v == "1");

    println!(
        "{:<11} {:>12} {:>12} {:>8} {:>13} {:>13}",
        "benchmark", "legacy c/s", "zeroalloc", "speedup", "sim allocs", "engine allocs"
    );

    let mut records = Vec::new();
    let mut failed = false;
    for bench in selected(scale) {
        let p = prepare(bench, scale);
        let cycles = p.stimulus.steps.len();
        let outputs = p.design.outputs().to_vec();

        // Parity pass: legacy replica and zero-allocation core in
        // lockstep, outputs compared after every settle step.
        let mut legacy = LegacySimulator::new(&p.design);
        let mut current = Simulator::new(&p.design);
        for step in &p.stimulus.steps {
            for (sig, val) in step {
                legacy.set_input(*sig, val.clone());
            }
            legacy.step();
            for (sig, val) in step {
                current.set_input(*sig, val.clone());
            }
            current.step();
            for &o in &outputs {
                if legacy.value(o) != current.value(o) {
                    eprintln!(
                        "PARITY FAILURE: {} output {:?} diverged from the pre-change replica",
                        bench.name(),
                        o
                    );
                    failed = true;
                }
            }
        }

        // Timing: separate uninterleaved full-stimulus replays on fresh
        // instances, best of two (the box may be noisy).
        let legacy_wall = (0..2)
            .map(|_| {
                let mut sim = LegacySimulator::new(&p.design);
                let t0 = Instant::now();
                sim.run_stimulus(&p.stimulus);
                t0.elapsed()
            })
            .min()
            .unwrap();
        let current_wall = (0..2)
            .map(|_| {
                let mut sim = Simulator::new(&p.design);
                let t0 = Instant::now();
                sim.run_stimulus(&p.stimulus);
                t0.elapsed()
            })
            .min()
            .unwrap();

        let baseline_allocs = legacy_steady_allocs(&p);
        let sim_allocs = sim_steady_allocs(&p);
        let (engine_allocs, engine_wall, engine_cycles) = engine_steady(&p);

        let legacy_cps = cycles as f64 / legacy_wall.as_secs_f64();
        let current_cps = cycles as f64 / current_wall.as_secs_f64();
        let speedup = current_cps / legacy_cps;
        println!(
            "{:<11} {:>12.0} {:>12.0} {:>7.2}x {:>13} {:>13}",
            bench.name(),
            legacy_cps,
            current_cps,
            speedup,
            sim_allocs,
            engine_allocs
        );

        records.push(Record {
            benchmark: bench.name().to_string(),
            mode: "baseline",
            cycles,
            wall_seconds: legacy_wall.as_secs_f64(),
            cycles_per_sec: legacy_cps,
            steady_allocs: baseline_allocs,
        });
        records.push(Record {
            benchmark: bench.name().to_string(),
            mode: "zero_alloc",
            cycles,
            wall_seconds: current_wall.as_secs_f64(),
            cycles_per_sec: current_cps,
            steady_allocs: sim_allocs,
        });
        records.push(Record {
            benchmark: bench.name().to_string(),
            mode: "engine_zero_alloc",
            cycles: engine_cycles,
            wall_seconds: engine_wall,
            cycles_per_sec: engine_cycles as f64 / engine_wall,
            steady_allocs: engine_allocs,
        });

        // The zero-allocation guarantee is defined for designs whose
        // signals all fit the 64-bit inline representation; wider designs
        // reuse storage opportunistically and are reported but not gated.
        let inline_only = p.design.signals().iter().all(|s| s.width <= 64);
        if inline_only && (sim_allocs != 0 || engine_allocs != 0) {
            eprintln!(
                "STEADY-STATE ALLOCATIONS on {}: sim={sim_allocs} engine={engine_allocs}",
                bench.name()
            );
            failed = true;
        }
    }

    write_records(&records);
    if strict && failed {
        eprintln!("fig7_hotpath: strict mode failure (parity or nonzero steady-state allocations)");
        std::process::exit(1);
    }
}

/// Benchmarks to run: `ERASER_BENCH_ONLY` if set, else APB + ALU (the CI
/// perf-smoke gate pair, all-inline widths) plus Conv_acc (wide values,
/// where trimming clone-per-read buys the most).
fn selected(_scale: f64) -> Vec<Benchmark> {
    if std::env::var("ERASER_BENCH_ONLY").is_ok() {
        selected_benchmarks()
    } else {
        vec![Benchmark::Apb, Benchmark::Alu64, Benchmark::ConvAcc]
    }
}
