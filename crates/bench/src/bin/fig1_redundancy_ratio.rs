//! Regenerates **Fig. 1(b)**: the split of redundant behavioral executions
//! into explicit (identical inputs) and implicit (differing inputs, same
//! execution result) on SHA256, APB, Sodor Core and RISCV Mini. Emits
//! `BENCH_fig1_redundancy_ratio.json`.

use eraser_bench::json::{write_records, BenchRecord};
use eraser_bench::{env_scale, prepare, print_environment, selected_subset};
use eraser_core::{CampaignRunner, Eraser};
use eraser_designs::Benchmark;

const BINARY: &str = "fig1_redundancy_ratio";

fn main() {
    print_environment("Fig. 1(b) — explicit vs implicit share of redundant executions");
    let circuits = selected_subset(&[
        Benchmark::Sha256Hv,
        Benchmark::Apb,
        Benchmark::SodorCore,
        Benchmark::RiscvMini,
    ]);
    println!(
        "{:<11} {:>12} {:>14} {:>14}  bar (e=explicit, i=implicit)",
        "benchmark", "#eliminated", "explicit share", "implicit share"
    );
    let scale = env_scale();
    let mut records = Vec::new();
    for bench in circuits {
        let p = prepare(bench, scale);
        let runner = CampaignRunner::new(&p.design, &p.faults, &p.stimulus);
        let res = runner.run(&Eraser::full());
        let s = res.stats.as_ref().expect("concurrent engine has stats");
        let elim = s.eliminated().max(1);
        let ex = 100.0 * s.explicit_skipped as f64 / elim as f64;
        let im = 100.0 * s.implicit_skipped as f64 / elim as f64;
        let bar_e = "e".repeat((ex / 2.5).round() as usize);
        let bar_i = "i".repeat((im / 2.5).round() as usize);
        println!(
            "{:<11} {:>12} {:>13.1}% {:>13.1}%  {}{}",
            bench.name(),
            s.eliminated(),
            ex,
            im,
            bar_e,
            bar_i
        );
        records.push(BenchRecord::from_result(BINARY, &p, &res));
    }
    println!();
    println!("(paper: implicit redundancy is roughly half of all redundant executions on");
    println!(" these circuits — the overlooked bottleneck motivating ERASER)");
    write_records(BINARY, &records);
}
