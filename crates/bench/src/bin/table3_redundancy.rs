//! Regenerates **Table III**: the proportion of redundant behavioral-node
//! executions — time share of behavioral nodes, total faulty execution
//! opportunities, eliminations, and the explicit/implicit split — plus the
//! §V-C headline numbers (behavioral share of runtime, redundancy share of
//! behavioral executions). Emits `BENCH_table3_redundancy.json`.

use eraser_bench::json::{write_records, BenchRecord};
use eraser_bench::{env_scale, prepare, print_environment, selected_subset};
use eraser_core::{CampaignRunner, Eraser};
use eraser_designs::Benchmark;

const BINARY: &str = "table3_redundancy";

fn main() {
    print_environment("Table III — proportion of redundant behavioral node executions");
    let circuits = selected_subset(&[
        Benchmark::Alu64,
        Benchmark::Fpu32,
        Benchmark::Sha256Hv,
        Benchmark::Apb,
        Benchmark::RiscvMini,
        Benchmark::PicoRv32,
        Benchmark::Sha256C2v,
    ]);
    println!(
        "{:<11} {:>9} {:>12} {:>12} {:>10} {:>10}",
        "benchmark", "BN time%", "#total BN", "#eliminated", "explicit%", "implicit%"
    );
    let scale = env_scale();
    let mut records = Vec::new();
    let mut sum_expl = 0.0;
    let mut sum_impl = 0.0;
    let mut n = 0.0;
    for bench in circuits {
        let p = prepare(bench, scale);
        let runner = CampaignRunner::new(&p.design, &p.faults, &p.stimulus);
        let res = runner.run(&Eraser::full());
        let s = res.stats.as_ref().expect("concurrent engine has stats");
        println!(
            "{:<11} {:>9.0} {:>12} {:>12} {:>10.1} {:>10.1}",
            bench.name(),
            s.behavioral_time_percent(),
            s.opportunities,
            s.eliminated(),
            s.explicit_percent(),
            s.implicit_percent(),
        );
        sum_expl += s.explicit_percent();
        sum_impl += s.implicit_percent();
        n += 1.0;
        records.push(BenchRecord::from_result(BINARY, &p, &res));
    }
    println!(
        "{:<11} {:>9} {:>12} {:>12} {:>10.1} {:>10.1}",
        "Average",
        "-",
        "-",
        "-",
        sum_expl / n,
        sum_impl / n
    );
    println!();
    println!("(paper: explicit and implicit redundancy average ~46% / ~44% of opportunities;");
    println!(" behavioral nodes ~60% of runtime except SHA256_C2V at ~1%)");
    write_records(BINARY, &records);
}
