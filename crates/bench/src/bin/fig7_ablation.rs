//! Regenerates **Fig. 7**: the redundancy-elimination ablation. Three
//! engine variants on the paper's seven ablation circuits:
//! Eraser-- (no elimination), Eraser- (explicit only), Eraser (full).

use eraser_bench::{env_scale, fmt_secs, prepare, print_environment};
use eraser_core::{run_campaign, CampaignConfig, RedundancyMode};
use eraser_designs::Benchmark;

fn main() {
    print_environment("Fig. 7 — ablation study on redundancy elimination");
    let circuits = [
        Benchmark::Alu64,
        Benchmark::Fpu32,
        Benchmark::Sha256Hv,
        Benchmark::Apb,
        Benchmark::RiscvMini,
        Benchmark::PicoRv32,
        Benchmark::Sha256C2v,
    ];
    println!(
        "{:<11} {:>10} {:>10} {:>10}   {:>9} {:>9}",
        "benchmark", "Eraser--", "Eraser-", "Eraser", "E- x", "E x"
    );
    let scale = env_scale();
    for bench in circuits {
        let p = prepare(bench, scale);
        let mut walls = Vec::new();
        let mut first = None;
        for mode in [RedundancyMode::None, RedundancyMode::Explicit, RedundancyMode::Full] {
            let t0 = std::time::Instant::now();
            let res = run_campaign(
                &p.design,
                &p.faults,
                &p.stimulus,
                &CampaignConfig {
                    mode,
                    drop_detected: true,
                },
            );
            walls.push(t0.elapsed());
            match &first {
                None => first = Some(res.coverage),
                Some(base) => assert!(
                    base.same_detected_set(&res.coverage),
                    "{}: {mode} changes coverage",
                    bench.name()
                ),
            }
        }
        let base = walls[0].as_secs_f64();
        println!(
            "{:<11} {:>10} {:>10} {:>10}   {:>8.2}x {:>8.2}x",
            bench.name(),
            fmt_secs(walls[0]),
            fmt_secs(walls[1]),
            fmt_secs(walls[2]),
            base / walls[1].as_secs_f64(),
            base / walls[2].as_secs_f64(),
        );
    }
    println!();
    println!("(paper: Eraser up to 2.8x over Eraser--; ~parity on SHA256_C2V where behavioral");
    println!(" nodes are a negligible share of the work — compare shapes, not absolutes)");
}
