//! Regenerates **Fig. 7**: the redundancy-elimination ablation. Three
//! engine variants on the paper's seven ablation circuits:
//! Eraser-- (no elimination), Eraser- (explicit only), Eraser (full) —
//! enumerated as [`Eraser::ablation`] trait objects. Emits
//! `BENCH_fig7_ablation.json` (one record per variant/benchmark).

use eraser_bench::json::{write_records, BenchRecord};
use eraser_bench::{env_scale, fmt_secs, prepare, print_environment, selected_subset};
use eraser_core::{CampaignRunner, Eraser};
use eraser_designs::Benchmark;

const BINARY: &str = "fig7_ablation";

fn main() {
    print_environment("Fig. 7 — ablation study on redundancy elimination");
    let circuits = selected_subset(&[
        Benchmark::Alu64,
        Benchmark::Fpu32,
        Benchmark::Sha256Hv,
        Benchmark::Apb,
        Benchmark::RiscvMini,
        Benchmark::PicoRv32,
        Benchmark::Sha256C2v,
    ]);
    println!(
        "{:<11} {:>10} {:>10} {:>10}   {:>9} {:>9}",
        "benchmark", "Eraser--", "Eraser-", "Eraser", "E- x", "E x"
    );
    let scale = env_scale();
    let variants = Eraser::ablation();
    let mut records = Vec::new();
    for bench in circuits {
        let p = prepare(bench, scale);
        let runner = CampaignRunner::new(&p.design, &p.faults, &p.stimulus);
        let results = runner.run_all(&variants);
        if let Err(mismatch) = CampaignRunner::check_parity(&results) {
            panic!("{}: {mismatch}", bench.name());
        }
        let base = results[0].wall.as_secs_f64();
        println!(
            "{:<11} {:>10} {:>10} {:>10}   {:>8.2}x {:>8.2}x",
            bench.name(),
            fmt_secs(results[0].wall),
            fmt_secs(results[1].wall),
            fmt_secs(results[2].wall),
            base / results[1].wall.as_secs_f64(),
            base / results[2].wall.as_secs_f64(),
        );
        records.extend(
            results
                .iter()
                .map(|r| BenchRecord::from_result(BINARY, &p, r)),
        );
    }
    println!();
    println!("(paper: Eraser up to 2.8x over Eraser--; ~parity on SHA256_C2V where behavioral");
    println!(" nodes are a negligible share of the work — compare shapes, not absolutes)");
    write_records(BINARY, &records);
}
