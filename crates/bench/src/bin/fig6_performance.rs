//! Regenerates **Fig. 6**: execution time of IFsim / VFsim / CfSim (Z01X
//! proxy) / ERASER on all ten benchmarks, with speedups relative to IFsim,
//! plus the cross-engine coverage-parity check of Table II.

use eraser_baselines::{run_cfsim, run_eraser, run_ifsim, run_vfsim};
use eraser_bench::{env_scale, fmt_secs, prepare, print_environment};
use eraser_designs::Benchmark;

fn main() {
    print_environment("Fig. 6 — performance comparison of RTL fault simulators");
    println!(
        "{:<11} {:>10} {:>10} {:>10} {:>10}   {:>7} {:>7} {:>7}   coverage",
        "benchmark", "IFsim", "VFsim", "CfSim", "Eraser", "VF x", "Cf x", "Er x"
    );
    let scale = env_scale();
    let mut geo_cf = 0.0f64;
    let mut geo_er = 0.0f64;
    let mut geo_er_over_cf = 0.0f64;
    let mut n = 0usize;
    for bench in Benchmark::all() {
        let p = prepare(bench, scale);
        let ifsim = run_ifsim(&p.design, &p.faults, &p.stimulus);
        let vfsim = run_vfsim(&p.design, &p.faults, &p.stimulus);
        let cfsim = run_cfsim(&p.design, &p.faults, &p.stimulus);
        let eraser = run_eraser(&p.design, &p.faults, &p.stimulus);
        for (name, r) in [("VFsim", &vfsim), ("CfSim", &cfsim), ("Eraser", &eraser)] {
            assert!(
                ifsim.coverage.same_detected_set(&r.coverage),
                "{}: {name} coverage mismatch ({} vs {})",
                bench.name(),
                ifsim.coverage,
                r.coverage
            );
        }
        let base = ifsim.wall.as_secs_f64();
        let sp = |w: std::time::Duration| base / w.as_secs_f64();
        println!(
            "{:<11} {:>10} {:>10} {:>10} {:>10}   {:>6.1}x {:>6.1}x {:>6.1}x   {}",
            bench.name(),
            fmt_secs(ifsim.wall),
            fmt_secs(vfsim.wall),
            fmt_secs(cfsim.wall),
            fmt_secs(eraser.wall),
            sp(vfsim.wall),
            sp(cfsim.wall),
            sp(eraser.wall),
            eraser.coverage
        );
        geo_cf += sp(cfsim.wall).ln();
        geo_er += sp(eraser.wall).ln();
        geo_er_over_cf += (cfsim.wall.as_secs_f64() / eraser.wall.as_secs_f64()).ln();
        n += 1;
    }
    println!();
    println!(
        "geomean speedup vs IFsim: CfSim {:.2}x, Eraser {:.2}x; Eraser vs CfSim (Z01X proxy): {:.2}x",
        (geo_cf / n as f64).exp(),
        (geo_er / n as f64).exp(),
        (geo_er_over_cf / n as f64).exp()
    );
    println!("(paper: Eraser 3.9x vs Z01X, 5.9x vs VFsim on their testbed — compare shapes, not absolutes)");
}
