//! Regenerates **Fig. 6**: execution time of IFsim / VFsim / CfSim (Z01X
//! proxy) / ERASER on all ten benchmarks, with speedups relative to IFsim,
//! plus the cross-engine coverage-parity check of Table II. The engines are
//! enumerated through the [`FaultSimEngine`](eraser_core::FaultSimEngine)
//! trait and driven by one [`CampaignRunner`]. Emits
//! `BENCH_fig6_performance.json` (one record per engine/benchmark).

use eraser_baselines::all_engines;
use eraser_bench::json::{write_records, BenchRecord};
use eraser_bench::{env_scale, fmt_secs, prepare, print_environment, selected_benchmarks};
use eraser_core::CampaignRunner;

const BINARY: &str = "fig6_performance";

fn main() {
    print_environment("Fig. 6 — performance comparison of RTL fault simulators");
    let engines = all_engines();
    print!("{:<11}", "benchmark");
    for e in &engines {
        print!(" {:>10}", e.name());
    }
    for e in &engines[1..] {
        print!(" {:>7}", format!("{} x", e.name()));
    }
    println!("   coverage");
    let scale = env_scale();
    let mut records = Vec::new();
    let mut geo = vec![0.0f64; engines.len()];
    let mut n = 0usize;
    for bench in selected_benchmarks() {
        let p = prepare(bench, scale);
        let runner = CampaignRunner::new(&p.design, &p.faults, &p.stimulus);
        let results = runner.run_all(&engines);
        if let Err(mismatch) = CampaignRunner::check_parity(&results) {
            panic!("{}: {mismatch}", bench.name());
        }
        let base = results[0].wall.as_secs_f64();
        print!("{:<11}", bench.name());
        for r in &results {
            print!(" {:>10}", fmt_secs(r.wall));
        }
        print!("  ");
        for (i, r) in results.iter().enumerate() {
            let sp = base / r.wall.as_secs_f64();
            geo[i] += sp.ln();
            if i > 0 {
                print!(" {:>6.1}x", sp);
            }
        }
        print!(" ");
        println!("   {}", results.last().unwrap().coverage);
        records.extend(
            results
                .iter()
                .map(|r| BenchRecord::from_result(BINARY, &p, r)),
        );
        n += 1;
    }
    println!();
    let gm = |i: usize| (geo[i] / n as f64).exp();
    let reference = engines[0].name();
    let parts: Vec<String> = engines
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, e)| format!("{} {:.2}x", e.name(), gm(i)))
        .collect();
    print!("geomean speedup vs {reference}: {}", parts.join(", "));
    // The paper's headline ratio, when both engines are in the line-up.
    let idx = |name: &str| engines.iter().position(|e| e.name() == name);
    if let (Some(er), Some(cf)) = (idx("Eraser"), idx("CfSim")) {
        print!("; Eraser vs CfSim (Z01X proxy): {:.2}x", gm(er) / gm(cf));
    }
    println!();
    println!("(paper: Eraser 3.9x vs Z01X, 5.9x vs VFsim on their testbed — compare shapes, not absolutes)");
    write_records(BINARY, &records);
}
