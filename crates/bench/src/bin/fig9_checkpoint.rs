//! **Fig. 9** (beyond the paper): temporal redundancy trimming on the
//! serial baselines — checkpointed good-state replay plus activation
//! windows.
//!
//! For every selected benchmark, runs IFsim and VFsim once without and
//! once with checkpointing (`--` the identical campaign otherwise),
//! asserts the coverage records are **bit-identical** (first-detection
//! steps and outputs included), and reports the wall-time speedup next to
//! the trimming counters: good-prefix settle steps skipped, faults
//! skipped outright (activation window beyond the stimulus) and faults
//! dropped at first detection. Emits `BENCH_fig9_checkpoint.json`
//! (schema `eraser-fig9-checkpoint-v1`).
//!
//! Knobs: `ERASER_FIG9_CKPT` overrides the checkpoint interval in settle
//! steps (default: `stimulus_steps / 16`, at least 4);
//! `ERASER_BENCH_ONLY` restricts the benchmark set; `ERASER_FIG9_STRICT=1`
//! additionally fails the run unless at least one design recorded a
//! nonzero prefix skip (the CI gate against the analysis silently
//! collapsing every window to zero).

use eraser_baselines::{IFsim, VFsim};
use eraser_bench::json::write_json_objects;
use eraser_bench::{
    env_scale, fmt_secs, prepare, print_environment, selected_benchmarks, Prepared,
};
use eraser_core::{CampaignConfig, CheckpointConfig, EngineResult, FaultSimEngine, ParallelConfig};

const BINARY: &str = "fig9_checkpoint";
const SCHEMA: &str = "eraser-fig9-checkpoint-v1";

struct Record {
    benchmark: String,
    engine: String,
    faults: usize,
    stimulus_steps: usize,
    checkpoint_interval: usize,
    wall_off_seconds: f64,
    wall_on_seconds: f64,
    speedup: f64,
    skipped_prefix_steps: u64,
    skipped_faults: u64,
    dropped_faults: u64,
    detected: usize,
    coverage_percent: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"{}\",\"binary\":\"{}\",\"benchmark\":\"{}\",",
                "\"engine\":\"{}\",\"faults\":{},\"stimulus_steps\":{},",
                "\"checkpoint_interval\":{},\"wall_off_seconds\":{:.6},",
                "\"wall_on_seconds\":{:.6},\"speedup\":{:.4},",
                "\"skipped_prefix_steps\":{},\"skipped_faults\":{},",
                "\"dropped_faults\":{},\"detected\":{},\"coverage_percent\":{:.4}}}"
            ),
            SCHEMA,
            BINARY,
            self.benchmark,
            self.engine,
            self.faults,
            self.stimulus_steps,
            self.checkpoint_interval,
            self.wall_off_seconds,
            self.wall_on_seconds,
            self.speedup,
            self.skipped_prefix_steps,
            self.skipped_faults,
            self.dropped_faults,
            self.detected,
            self.coverage_percent,
        )
    }
}

fn interval_for(steps: usize) -> usize {
    std::env::var("ERASER_FIG9_CKPT")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| (steps / 16).max(4))
}

/// One engine, off vs on, with the coverage-identity assertion.
fn measure(
    engine: &dyn FaultSimEngine,
    p: &Prepared,
    interval: usize,
) -> (EngineResult, EngineResult) {
    let base = CampaignConfig {
        parallel: ParallelConfig::serial(),
        checkpoint: CheckpointConfig::disabled(),
        ..Default::default()
    };
    let off = engine.run(&p.design, &p.faults, &p.stimulus, &base);
    let on = engine.run(
        &p.design,
        &p.faults,
        &p.stimulus,
        &CampaignConfig {
            checkpoint: CheckpointConfig::every(interval),
            ..base
        },
    );
    assert_eq!(
        off.coverage,
        on.coverage,
        "{} on {}: checkpointed coverage records diverged",
        engine.name(),
        p.name
    );
    (off, on)
}

fn main() {
    print_environment("Fig. 9 — checkpointed good-state replay on the serial baselines");
    let scale = env_scale();
    let engines: Vec<Box<dyn FaultSimEngine>> = vec![Box::new(IFsim), Box::new(VFsim)];

    println!(
        "{:<11} {:<6} {:>6} {:>10} {:>10} {:>7} {:>12} {:>8} {:>8}   coverage",
        "benchmark", "engine", "ckpt", "off", "on", "x", "skip-steps", "skip-f", "drop-f"
    );

    let mut records = Vec::new();
    let mut geo: Vec<(String, f64, usize)> =
        engines.iter().map(|e| (e.name(), 0.0f64, 0usize)).collect();
    let mut any_prefix_skip = false;
    for bench in selected_benchmarks() {
        let p = prepare(bench, scale);
        let interval = interval_for(p.stimulus.num_steps());
        for (ei, engine) in engines.iter().enumerate() {
            let (off, on) = measure(engine.as_ref(), &p, interval);
            let stats = on
                .stats
                .as_ref()
                .expect("checkpointed serial campaigns carry stats");
            let speedup = off.wall.as_secs_f64() / on.wall.as_secs_f64();
            geo[ei].1 += speedup.ln();
            geo[ei].2 += 1;
            any_prefix_skip |= stats.skipped_prefix_steps > 0;
            println!(
                "{:<11} {:<6} {:>6} {:>10} {:>10} {:>6.2}x {:>12} {:>8} {:>8}   {}",
                bench.name(),
                on.name,
                interval,
                fmt_secs(off.wall),
                fmt_secs(on.wall),
                speedup,
                stats.skipped_prefix_steps,
                stats.skipped_faults,
                stats.dropped_faults,
                on.coverage
            );
            records.push(Record {
                benchmark: bench.name().to_string(),
                engine: on.name.clone(),
                faults: p.faults.len(),
                stimulus_steps: p.stimulus.num_steps(),
                checkpoint_interval: interval,
                wall_off_seconds: off.wall.as_secs_f64(),
                wall_on_seconds: on.wall.as_secs_f64(),
                speedup,
                skipped_prefix_steps: stats.skipped_prefix_steps,
                skipped_faults: stats.skipped_faults,
                dropped_faults: stats.dropped_faults,
                detected: on.coverage.detected(),
                coverage_percent: on.coverage.coverage_percent(),
            });
        }
    }

    println!();
    for (name, ln_sum, n) in &geo {
        if *n > 0 {
            println!(
                "{name}: geomean speedup with checkpointing {:.2}x over {n} designs",
                (ln_sum / *n as f64).exp()
            );
        }
    }
    println!("(coverage records asserted bit-identical, checkpointing on vs off, per design)");
    let lines: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    write_json_objects(BINARY, &lines);

    if std::env::var("ERASER_FIG9_STRICT")
        .map(|v| v == "1")
        .unwrap_or(false)
        && !any_prefix_skip
    {
        eprintln!(
            "STRICT: no design recorded a nonzero skipped-prefix — activation windows collapsed"
        );
        std::process::exit(1);
    }
}
