//! **Fig. 13** (beyond the paper): Yosys-JSON netlist intake — the bundled
//! gate-level fixtures run through the concurrent engine with batching and
//! collapsing.
//!
//! For every bundled netlist fixture (imported through the design-source
//! layer exactly as an external `yosys -p 'prep; write_json'` file would
//! be), runs the concurrent ERASER engine three times on the compiled-tape
//! backend — plain, with 64-wide bit-parallel fault batching, and with
//! static fault collapsing — asserts all three coverage records are
//! **bit-identical**, and reports the batch occupancy counters and the
//! collapse accounting. The campaigns run serial: fault sharding shrinks
//! each worker's resident-fault pool, which starves batch groups and would
//! understate the occupancy a gate-level netlist actually sustains. Emits
//! `BENCH_fig13_netlist.json` (schema `eraser-fig13-netlist-v1`).
//!
//! Knobs: `ERASER_BENCH_ONLY` restricts the fixture set (fixture module
//! names select); `ERASER_FIG13_STRICT=1` additionally fails the run
//! unless batching engaged at above 50% mean lane occupancy on at least
//! one netlist design (the CI gate: an all-1-bit gate-level import is
//! exactly where the batch path must pull its weight).

use eraser_bench::json::write_json_objects;
use eraser_bench::{
    env_scale, prepare_source, print_environment, selected_netlist_fixtures, Prepared,
};
use eraser_core::{
    run_campaign, BatchConfig, CampaignConfig, CampaignResult, CollapseConfig, EvalBackend,
    ParallelConfig, RedundancyMode,
};
use eraser_fault::CollapsedFaultList;
use eraser_ir::analysis::design_stats;

const BINARY: &str = "fig13_netlist";
const SCHEMA: &str = "eraser-fig13-netlist-v1";

struct Record {
    benchmark: String,
    backend: String,
    cells: usize,
    faults: usize,
    stimulus_steps: usize,
    batch_groups: u64,
    batch_lanes: u64,
    batch_scalar_fallbacks: u64,
    lane_occupancy_percent: f64,
    collapse_classes: usize,
    collapse_ratio: f64,
    dropped_unobservable: usize,
    detected: usize,
    coverage_percent: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"{}\",\"binary\":\"{}\",\"benchmark\":\"{}\",",
                "\"backend\":\"{}\",\"cells\":{},\"faults\":{},",
                "\"stimulus_steps\":{},\"batch_groups\":{},\"batch_lanes\":{},",
                "\"batch_scalar_fallbacks\":{},\"lane_occupancy_percent\":{:.2},",
                "\"collapse_classes\":{},\"collapse_ratio\":{:.4},",
                "\"dropped_unobservable\":{},\"detected\":{},",
                "\"coverage_percent\":{:.4}}}"
            ),
            SCHEMA,
            BINARY,
            self.benchmark,
            self.backend,
            self.cells,
            self.faults,
            self.stimulus_steps,
            self.batch_groups,
            self.batch_lanes,
            self.batch_scalar_fallbacks,
            self.lane_occupancy_percent,
            self.collapse_classes,
            self.collapse_ratio,
            self.dropped_unobservable,
            self.detected,
            self.coverage_percent,
        )
    }
}

/// One serial campaign on the tape backend with the given knobs.
fn run(p: &Prepared, batch: BatchConfig, collapse: CollapseConfig) -> CampaignResult {
    run_campaign(
        &p.design,
        &p.faults,
        &p.stimulus,
        &CampaignConfig {
            mode: RedundancyMode::Full,
            drop_detected: true,
            parallel: ParallelConfig::serial(),
            backend: EvalBackend::Tape,
            batch,
            collapse,
            ..Default::default()
        },
    )
}

fn main() {
    print_environment("Fig. 13 — Yosys-JSON netlist intake (batch occupancy + collapse ratio)");
    let scale = env_scale();

    let fixtures = selected_netlist_fixtures();
    if fixtures.is_empty() {
        println!("no netlist fixtures selected (ERASER_BENCH_ONLY excludes them all)");
        write_json_objects(BINARY, &[]);
        return;
    }

    println!(
        "{:<13} {:>6} {:>6} {:>9} {:>7} {:>9} {:>8} {:>7} {:>6}   coverage",
        "design", "cells", "faults", "groups", "occ%", "fallback", "classes", "ratio", "drop"
    );

    let mut records = Vec::new();
    let mut best_occupancy = 0.0f64;
    for source in &fixtures {
        let p = prepare_source(source, scale);
        let plain = run(&p, BatchConfig::disabled(), CollapseConfig::disabled());
        let batched = run(&p, BatchConfig::enabled(), CollapseConfig::disabled());
        let collapsed = run(&p, BatchConfig::disabled(), CollapseConfig::enabled());
        assert_eq!(
            plain.coverage, batched.coverage,
            "{}: batched coverage records diverged from plain",
            p.name
        );
        assert_eq!(
            plain.coverage, collapsed.coverage,
            "{}: collapsed coverage records diverged from plain",
            p.name
        );

        let s = &batched.stats;
        let occupancy = if s.batch_groups > 0 {
            100.0 * s.batch_lanes as f64 / (s.batch_groups * 64) as f64
        } else {
            0.0
        };
        best_occupancy = best_occupancy.max(occupancy);

        let plan = CollapsedFaultList::build(&p.design, &p.faults);
        let ratio = plan.total() as f64 / plan.num_classes().max(1) as f64;
        let st = design_stats(&p.design);
        println!(
            "{:<13} {:>6} {:>6} {:>9} {:>6.1}% {:>9} {:>8} {:>6.2}x {:>6}   {}",
            p.name,
            st.cells(),
            p.faults.len(),
            s.batch_groups,
            occupancy,
            s.batch_scalar_fallbacks,
            plan.num_classes(),
            ratio,
            plan.dropped().len(),
            plain.coverage
        );
        records.push(Record {
            benchmark: p.name.clone(),
            backend: EvalBackend::Tape.to_string(),
            cells: st.cells(),
            faults: p.faults.len(),
            stimulus_steps: p.stimulus.num_steps(),
            batch_groups: s.batch_groups,
            batch_lanes: s.batch_lanes,
            batch_scalar_fallbacks: s.batch_scalar_fallbacks,
            lane_occupancy_percent: occupancy,
            collapse_classes: plan.num_classes(),
            collapse_ratio: ratio,
            dropped_unobservable: plan.dropped().len(),
            detected: plain.coverage.detected(),
            coverage_percent: plain.coverage.coverage_percent(),
        });
    }

    println!();
    println!(
        "best mean lane occupancy {best_occupancy:.1}% over {} netlist designs",
        records.len()
    );
    println!("(coverage records asserted bit-identical: plain vs batch vs collapse, per design)");
    let lines: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    write_json_objects(BINARY, &lines);

    if std::env::var("ERASER_FIG13_STRICT")
        .map(|v| v == "1")
        .unwrap_or(false)
        && best_occupancy <= 50.0
    {
        eprintln!(
            "STRICT: best mean batch lane occupancy {best_occupancy:.1}% \
             (need > 50% on at least one netlist design)"
        );
        std::process::exit(1);
    }
}
