//! **Fig. 10** (beyond the paper): bit-parallel fault batching — 64-wide
//! PPSFP-style evaluation on the RTL plane of the concurrent engine.
//!
//! For every selected design — the Table II benchmarks plus the bundled
//! Yosys-JSON netlist fixtures — runs the concurrent ERASER engine once
//! scalar and once with `--batch` (the identical campaign otherwise, both
//! on the compiled-tape backend), asserts the coverage records are
//! **bit-identical**, and reports wall-time speedup, fault throughput and
//! the batch occupancy counters: groups formed, lanes filled (occupancy)
//! and scalar fallbacks. Designs whose RTL plane is empty or unbatchable
//! legitimately show no engagement — the batch path concerns RTL nodes
//! only. Emits `BENCH_fig10_batch.json` (schema `eraser-fig10-batch-v1`).
//!
//! Knobs: `ERASER_BENCH_ONLY` restricts the design set (benchmark and
//! fixture names both select);
//! `ERASER_FIG10_STRICT=1` additionally fails the run unless at least one
//! design filled batch lanes (the CI gate against the batch path silently
//! never engaging).

use eraser_bench::json::write_json_objects;
use eraser_bench::{
    env_scale, fmt_secs, prepare_source, print_environment, selected_sources, Prepared,
};
use eraser_core::{
    run_campaign, BatchConfig, CampaignConfig, CampaignResult, EvalBackend, ParallelConfig,
    RedundancyMode,
};
use std::time::Instant;

const BINARY: &str = "fig10_batch";
const SCHEMA: &str = "eraser-fig10-batch-v1";

struct Record {
    benchmark: String,
    backend: String,
    faults: usize,
    stimulus_steps: usize,
    wall_scalar_seconds: f64,
    wall_batch_seconds: f64,
    speedup: f64,
    faults_per_sec_scalar: f64,
    faults_per_sec_batch: f64,
    batch_groups: u64,
    batch_lanes: u64,
    batch_scalar_fallbacks: u64,
    lane_occupancy_percent: f64,
    detected: usize,
    coverage_percent: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"{}\",\"binary\":\"{}\",\"benchmark\":\"{}\",",
                "\"backend\":\"{}\",\"faults\":{},\"stimulus_steps\":{},",
                "\"wall_scalar_seconds\":{:.6},\"wall_batch_seconds\":{:.6},",
                "\"speedup\":{:.4},\"faults_per_sec_scalar\":{:.2},",
                "\"faults_per_sec_batch\":{:.2},\"batch_groups\":{},",
                "\"batch_lanes\":{},\"batch_scalar_fallbacks\":{},",
                "\"lane_occupancy_percent\":{:.2},\"detected\":{},",
                "\"coverage_percent\":{:.4}}}"
            ),
            SCHEMA,
            BINARY,
            self.benchmark,
            self.backend,
            self.faults,
            self.stimulus_steps,
            self.wall_scalar_seconds,
            self.wall_batch_seconds,
            self.speedup,
            self.faults_per_sec_scalar,
            self.faults_per_sec_batch,
            self.batch_groups,
            self.batch_lanes,
            self.batch_scalar_fallbacks,
            self.lane_occupancy_percent,
            self.detected,
            self.coverage_percent,
        )
    }
}

/// One timed campaign on the tape backend.
fn timed_run(p: &Prepared, batch: BatchConfig) -> (CampaignResult, f64) {
    let t0 = Instant::now();
    let result = run_campaign(
        &p.design,
        &p.faults,
        &p.stimulus,
        &CampaignConfig {
            mode: RedundancyMode::Full,
            drop_detected: true,
            parallel: ParallelConfig::serial(),
            backend: EvalBackend::Tape,
            batch,
            ..Default::default()
        },
    );
    (result, t0.elapsed().as_secs_f64())
}

fn main() {
    print_environment("Fig. 10 — bit-parallel fault batching (64-wide PPSFP on the RTL plane)");
    let scale = env_scale();

    println!(
        "{:<13} {:>6} {:>10} {:>10} {:>7} {:>9} {:>7} {:>9}   coverage",
        "design", "faults", "scalar", "batch", "x", "groups", "occ%", "fallback"
    );

    let mut records = Vec::new();
    let mut ln_sum = 0.0f64;
    let mut n = 0usize;
    let mut any_lanes = false;
    for source in selected_sources() {
        let p = prepare_source(&source, scale);
        let (scalar, wall_scalar) = timed_run(&p, BatchConfig::disabled());
        let (batched, wall_batch) = timed_run(&p, BatchConfig::enabled());
        assert_eq!(
            scalar.coverage, batched.coverage,
            "{}: batched coverage records diverged from scalar",
            p.name
        );
        let s = &batched.stats;
        let speedup = wall_scalar / wall_batch;
        ln_sum += speedup.ln();
        n += 1;
        any_lanes |= s.batch_lanes > 0;
        let occupancy = if s.batch_groups > 0 {
            100.0 * s.batch_lanes as f64 / (s.batch_groups * 64) as f64
        } else {
            0.0
        };
        println!(
            "{:<13} {:>6} {:>10} {:>10} {:>6.2}x {:>9} {:>6.1}% {:>9}   {}",
            p.name,
            p.faults.len(),
            fmt_secs(std::time::Duration::from_secs_f64(wall_scalar)),
            fmt_secs(std::time::Duration::from_secs_f64(wall_batch)),
            speedup,
            s.batch_groups,
            occupancy,
            s.batch_scalar_fallbacks,
            batched.coverage
        );
        records.push(Record {
            benchmark: p.name.clone(),
            backend: EvalBackend::Tape.to_string(),
            faults: p.faults.len(),
            stimulus_steps: p.stimulus.num_steps(),
            wall_scalar_seconds: wall_scalar,
            wall_batch_seconds: wall_batch,
            speedup,
            faults_per_sec_scalar: p.faults.len() as f64 / wall_scalar,
            faults_per_sec_batch: p.faults.len() as f64 / wall_batch,
            batch_groups: s.batch_groups,
            batch_lanes: s.batch_lanes,
            batch_scalar_fallbacks: s.batch_scalar_fallbacks,
            lane_occupancy_percent: occupancy,
            detected: batched.coverage.detected(),
            coverage_percent: batched.coverage.coverage_percent(),
        });
    }

    println!();
    if n > 0 {
        println!(
            "geomean speedup with batching {:.2}x over {n} designs",
            (ln_sum / n as f64).exp()
        );
    }
    println!("(coverage records asserted bit-identical, batching on vs off, per design)");
    let lines: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    write_json_objects(BINARY, &lines);

    if std::env::var("ERASER_FIG10_STRICT")
        .map(|v| v == "1")
        .unwrap_or(false)
        && !any_lanes
    {
        eprintln!("STRICT: no design filled any batch lane — the batch path never engaged");
        std::process::exit(1);
    }
}
