//! **Fig. 11** (beyond the paper): static fault collapsing — equivalence
//! classes and provably-undetectable drops pruned before a single cycle
//! runs.
//!
//! For every selected design — the Table II benchmarks plus the bundled
//! Yosys-JSON netlist fixtures — builds the static collapse plan once
//! (reporting the fault-count reduction and the dropped-undetectable
//! count), then runs each engine — the concurrent ERASER engine and the
//! serial IFsim/VFsim baselines — once without and once with `--collapse`
//! (the identical campaign otherwise, both on the compiled-tape backend),
//! asserts the lifted coverage records are **bit-identical** to the
//! uncollapsed run, and reports the wall-clock speedup. Emits
//! `BENCH_fig11_collapse.json` (schema `eraser-fig11-collapse-v1`).
//!
//! Knobs: `ERASER_BENCH_ONLY` restricts the design set (benchmark and
//! fixture names both select);
//! `ERASER_FIG11_STRICT=1` additionally fails the run unless the collapse
//! ratio exceeds 1.0 on at least three designs (the CI gate against the
//! collapse pass silently never engaging).

use eraser_baselines::{IFsim, VFsim};
use eraser_bench::json::write_json_objects;
use eraser_bench::{
    env_scale, fmt_secs, prepare_source, print_environment, selected_sources, Prepared,
};
use eraser_core::{
    CampaignConfig, CollapseConfig, Eraser, EvalBackend, FaultSimEngine, RedundancyMode,
};
use eraser_fault::CollapsedFaultList;
use std::time::Instant;

const BINARY: &str = "fig11_collapse";
const SCHEMA: &str = "eraser-fig11-collapse-v1";

struct Record {
    benchmark: String,
    engine: String,
    faults_before: usize,
    faults_after: usize,
    collapse_ratio: f64,
    dropped_unobservable: usize,
    wall_off_seconds: f64,
    wall_on_seconds: f64,
    speedup: f64,
    detected: usize,
    coverage_percent: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"{}\",\"binary\":\"{}\",\"benchmark\":\"{}\",",
                "\"engine\":\"{}\",\"faults_before\":{},\"faults_after\":{},",
                "\"collapse_ratio\":{:.4},\"dropped_unobservable\":{},",
                "\"wall_off_seconds\":{:.6},\"wall_on_seconds\":{:.6},",
                "\"speedup\":{:.4},\"detected\":{},\"coverage_percent\":{:.4}}}"
            ),
            SCHEMA,
            BINARY,
            self.benchmark,
            self.engine,
            self.faults_before,
            self.faults_after,
            self.collapse_ratio,
            self.dropped_unobservable,
            self.wall_off_seconds,
            self.wall_on_seconds,
            self.speedup,
            self.detected,
            self.coverage_percent,
        )
    }
}

/// One timed campaign of `engine` on the tape backend.
fn timed_run(
    p: &Prepared,
    engine: &dyn FaultSimEngine,
    collapse: CollapseConfig,
) -> (eraser_core::EngineResult, f64) {
    let t0 = Instant::now();
    let result = engine.run(
        &p.design,
        &p.faults,
        &p.stimulus,
        &CampaignConfig {
            mode: RedundancyMode::Full,
            backend: EvalBackend::Tape,
            collapse,
            ..CampaignConfig::serial()
        },
    );
    (result, t0.elapsed().as_secs_f64())
}

fn main() {
    print_environment(
        "Fig. 11 — static fault collapsing (equivalence classes + undetectable drops)",
    );
    let scale = env_scale();

    println!(
        "{:<13} {:<7} {:>6} {:>6} {:>6} {:>7} {:>10} {:>10} {:>7}   coverage",
        "design", "engine", "before", "after", "drop", "ratio", "off", "on", "x"
    );

    let engines: Vec<Box<dyn FaultSimEngine>> =
        vec![Box::new(Eraser::full()), Box::new(IFsim), Box::new(VFsim)];
    let mut records = Vec::new();
    let mut ln_sum = 0.0f64;
    let mut n = 0usize;
    let mut engaged_designs = 0usize;
    for source in selected_sources() {
        let p = prepare_source(&source, scale);
        // The plan is engine-independent pure analysis: build it once for
        // the universe accounting the records carry.
        let plan = CollapsedFaultList::build(&p.design, &p.faults);
        let before = plan.total();
        let after = plan.num_classes();
        let ratio = before as f64 / after.max(1) as f64;
        ln_sum += ratio.ln();
        n += 1;
        if ratio > 1.0 {
            engaged_designs += 1;
        }
        for engine in &engines {
            let (full, wall_off) = timed_run(&p, engine.as_ref(), CollapseConfig::disabled());
            let (collapsed, wall_on) = timed_run(&p, engine.as_ref(), CollapseConfig::enabled());
            assert_eq!(
                full.coverage,
                collapsed.coverage,
                "{} ({}): collapsed coverage records diverged from full",
                p.name,
                engine.name()
            );
            let speedup = wall_off / wall_on;
            println!(
                "{:<13} {:<7} {:>6} {:>6} {:>6} {:>6.2}x {:>10} {:>10} {:>6.2}x   {}",
                p.name,
                engine.name(),
                before,
                after,
                plan.dropped().len(),
                ratio,
                fmt_secs(std::time::Duration::from_secs_f64(wall_off)),
                fmt_secs(std::time::Duration::from_secs_f64(wall_on)),
                speedup,
                collapsed.coverage
            );
            records.push(Record {
                benchmark: p.name.clone(),
                engine: engine.name(),
                faults_before: before,
                faults_after: after,
                collapse_ratio: ratio,
                dropped_unobservable: plan.dropped().len(),
                wall_off_seconds: wall_off,
                wall_on_seconds: wall_on,
                speedup,
                detected: collapsed.coverage.detected(),
                coverage_percent: collapsed.coverage.coverage_percent(),
            });
        }
    }

    println!();
    if n > 0 {
        println!(
            "geomean fault-count reduction {:.2}x over {n} designs \
             ({engaged_designs} with ratio > 1.0)",
            (ln_sum / n as f64).exp()
        );
    }
    println!("(coverage records asserted bit-identical, collapse on vs off, per design × engine)");
    let lines: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    write_json_objects(BINARY, &lines);

    if std::env::var("ERASER_FIG11_STRICT")
        .map(|v| v == "1")
        .unwrap_or(false)
        && engaged_designs < 3
    {
        eprintln!(
            "STRICT: collapse engaged on only {engaged_designs} designs \
             (need ratio > 1.0 on at least 3)"
        );
        std::process::exit(1);
    }
}
