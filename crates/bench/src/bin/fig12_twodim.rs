//! **Fig. 12** (beyond the paper): two-dimensional parallelism — the
//! composed window-aware checkpointed + fault-parallel campaign path.
//!
//! For every selected benchmark, runs the concurrent ERASER engine in
//! four configurations of the *identical* campaign:
//!
//! * `serial`   — one thread, checkpointing off (the reference),
//! * `parallel` — N worker threads, checkpointing off,
//! * `ckpt`     — one thread, checkpointed window-aware schedule,
//! * `composed` — N worker threads *and* the checkpointed schedule:
//!   faults grouped by latest eligible checkpoint, every shard engine
//!   resuming from the shared good-state snapshot.
//!
//! Coverage records are asserted **bit-identical** across all four
//! configurations, and — because the window plan is worker-count-
//! independent — the composed run must report the *same* trimming
//! counters as the single-threaded checkpointed run: the regression gate
//! against the historical silent degradation where enabling threads
//! forfeited every checkpoint skip. Emits `BENCH_fig12_twodim.json`
//! (schema `eraser-fig12-twodim-v1`).
//!
//! Knobs: `ERASER_FIG12_THREADS` sets the worker count (default 4);
//! `ERASER_FIG12_CKPT` overrides the checkpoint interval in settle steps
//! (default: `stimulus_steps / 16`, at least 4); `ERASER_BENCH_ONLY`
//! restricts the benchmark set; `ERASER_FIG12_STRICT=1` additionally
//! fails the run unless every design's composed run kept at least the
//! single-threaded checkpointed run's skipped-prefix-steps, and at least
//! one design recorded a nonzero prefix skip.

use eraser_bench::json::write_json_objects;
use eraser_bench::{
    env_scale, fmt_secs, prepare, print_environment, selected_benchmarks, Prepared,
};
use eraser_core::{
    CampaignConfig, CheckpointConfig, EngineResult, Eraser, FaultSimEngine, ParallelConfig,
};

const BINARY: &str = "fig12_twodim";
const SCHEMA: &str = "eraser-fig12-twodim-v1";

struct Record {
    benchmark: String,
    engine: String,
    faults: usize,
    stimulus_steps: usize,
    checkpoint_interval: usize,
    threads: usize,
    wall_serial_seconds: f64,
    wall_parallel_seconds: f64,
    wall_ckpt_seconds: f64,
    wall_composed_seconds: f64,
    speedup_parallel: f64,
    speedup_ckpt: f64,
    speedup_composed: f64,
    skipped_prefix_steps_ckpt: u64,
    skipped_prefix_steps_composed: u64,
    skipped_faults: u64,
    dropped_faults: u64,
    detected: usize,
    coverage_percent: f64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"{}\",\"binary\":\"{}\",\"benchmark\":\"{}\",",
                "\"engine\":\"{}\",\"faults\":{},\"stimulus_steps\":{},",
                "\"checkpoint_interval\":{},\"threads\":{},",
                "\"wall_serial_seconds\":{:.6},\"wall_parallel_seconds\":{:.6},",
                "\"wall_ckpt_seconds\":{:.6},\"wall_composed_seconds\":{:.6},",
                "\"speedup_parallel\":{:.4},\"speedup_ckpt\":{:.4},",
                "\"speedup_composed\":{:.4},\"skipped_prefix_steps_ckpt\":{},",
                "\"skipped_prefix_steps_composed\":{},\"skipped_faults\":{},",
                "\"dropped_faults\":{},\"detected\":{},\"coverage_percent\":{:.4}}}"
            ),
            SCHEMA,
            BINARY,
            self.benchmark,
            self.engine,
            self.faults,
            self.stimulus_steps,
            self.checkpoint_interval,
            self.threads,
            self.wall_serial_seconds,
            self.wall_parallel_seconds,
            self.wall_ckpt_seconds,
            self.wall_composed_seconds,
            self.speedup_parallel,
            self.speedup_ckpt,
            self.speedup_composed,
            self.skipped_prefix_steps_ckpt,
            self.skipped_prefix_steps_composed,
            self.skipped_faults,
            self.dropped_faults,
            self.detected,
            self.coverage_percent,
        )
    }
}

fn interval_for(steps: usize) -> usize {
    std::env::var("ERASER_FIG12_CKPT")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| (steps / 16).max(4))
}

fn thread_count() -> usize {
    std::env::var("ERASER_FIG12_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(4)
}

fn run(p: &Prepared, threads: usize, interval: usize) -> EngineResult {
    Eraser::full().run(
        &p.design,
        &p.faults,
        &p.stimulus,
        &CampaignConfig {
            parallel: ParallelConfig::with_threads(threads),
            checkpoint: CheckpointConfig::every(interval),
            ..Default::default()
        },
    )
}

fn main() {
    print_environment("Fig. 12 — two-dimensional parallelism (threads x checkpoints)");
    let scale = env_scale();
    let threads = thread_count();

    println!(
        "{:<11} {:>6} {:>3} {:>10} {:>10} {:>10} {:>10} {:>7} {:>12} {:>8}   coverage",
        "benchmark",
        "ckpt",
        "thr",
        "serial",
        "parallel",
        "ckpt",
        "composed",
        "x",
        "skip-steps",
        "skip-f"
    );

    let mut records = Vec::new();
    let mut ln_sum = 0.0f64;
    let mut designs = 0usize;
    let mut any_prefix_skip = false;
    let mut degraded: Vec<String> = Vec::new();
    for bench in selected_benchmarks() {
        let p = prepare(bench, scale);
        let interval = interval_for(p.stimulus.num_steps());
        let serial = run(&p, 1, 0);
        let parallel = run(&p, threads, 0);
        let ckpt = run(&p, 1, interval);
        let composed = run(&p, threads, interval);
        for (name, r) in [
            ("parallel", &parallel),
            ("ckpt", &ckpt),
            ("composed", &composed),
        ] {
            assert_eq!(
                serial.coverage,
                r.coverage,
                "{}: {name} coverage records diverged from serial",
                bench.name()
            );
        }
        let ckpt_stats = ckpt.stats.as_ref().expect("checkpointed runs carry stats");
        let composed_stats = composed.stats.as_ref().expect("composed runs carry stats");
        if composed_stats.skipped_prefix_steps < ckpt_stats.skipped_prefix_steps {
            degraded.push(format!(
                "{}: composed skipped {} prefix steps < ckpt-only {}",
                bench.name(),
                composed_stats.skipped_prefix_steps,
                ckpt_stats.skipped_prefix_steps
            ));
        }
        any_prefix_skip |= composed_stats.skipped_prefix_steps > 0;
        let speedup_parallel = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64();
        let speedup_ckpt = serial.wall.as_secs_f64() / ckpt.wall.as_secs_f64();
        let speedup_composed = serial.wall.as_secs_f64() / composed.wall.as_secs_f64();
        ln_sum += speedup_composed.ln();
        designs += 1;
        println!(
            "{:<11} {:>6} {:>3} {:>10} {:>10} {:>10} {:>10} {:>6.2}x {:>12} {:>8}   {}",
            bench.name(),
            interval,
            threads,
            fmt_secs(serial.wall),
            fmt_secs(parallel.wall),
            fmt_secs(ckpt.wall),
            fmt_secs(composed.wall),
            speedup_composed,
            composed_stats.skipped_prefix_steps,
            composed_stats.skipped_faults,
            composed.coverage
        );
        records.push(Record {
            benchmark: bench.name().to_string(),
            engine: composed.name.clone(),
            faults: p.faults.len(),
            stimulus_steps: p.stimulus.num_steps(),
            checkpoint_interval: interval,
            threads,
            wall_serial_seconds: serial.wall.as_secs_f64(),
            wall_parallel_seconds: parallel.wall.as_secs_f64(),
            wall_ckpt_seconds: ckpt.wall.as_secs_f64(),
            wall_composed_seconds: composed.wall.as_secs_f64(),
            speedup_parallel,
            speedup_ckpt,
            speedup_composed,
            skipped_prefix_steps_ckpt: ckpt_stats.skipped_prefix_steps,
            skipped_prefix_steps_composed: composed_stats.skipped_prefix_steps,
            skipped_faults: composed_stats.skipped_faults,
            dropped_faults: composed_stats.dropped_faults,
            detected: composed.coverage.detected(),
            coverage_percent: composed.coverage.coverage_percent(),
        });
    }

    println!();
    if designs > 0 {
        println!(
            "composed: geomean speedup over serial {:.2}x across {designs} designs",
            (ln_sum / designs as f64).exp()
        );
    }
    println!("(coverage asserted bit-identical across serial/parallel/ckpt/composed, per design)");
    let lines: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    write_json_objects(BINARY, &lines);

    let strict = std::env::var("ERASER_FIG12_STRICT")
        .map(|v| v == "1")
        .unwrap_or(false);
    if strict {
        for d in &degraded {
            eprintln!("STRICT: {d}");
        }
        if !degraded.is_empty() {
            std::process::exit(1);
        }
        if !any_prefix_skip {
            eprintln!(
                "STRICT: no design recorded a nonzero composed skipped-prefix — \
                 the two-dimensional path silently degraded"
            );
            std::process::exit(1);
        }
    }
}
