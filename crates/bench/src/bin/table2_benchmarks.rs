//! Regenerates **Table II**: benchmark information (#stimulus, #cells,
//! #faults) and the fault-coverage parity between ERASER and the Z01X
//! proxy (CfSim) — plus IFsim as the force-based reference.

use eraser_baselines::{run_cfsim, run_eraser, run_ifsim};
use eraser_bench::{env_scale, prepare, print_environment};
use eraser_designs::Benchmark;
use eraser_ir::analysis::design_stats;

fn main() {
    print_environment("Table II — benchmark information and coverage parity");
    println!(
        "{:<11} {:>9} {:>7} {:>7}   {:>10} {:>10} {:>10}",
        "benchmark", "#stimulus", "#cells", "#faults", "Eraser(%)", "CfSim(%)", "IFsim(%)"
    );
    let scale = env_scale();
    for bench in Benchmark::all() {
        let p = prepare(bench, scale);
        let st = design_stats(&p.design);
        let eraser = run_eraser(&p.design, &p.faults, &p.stimulus);
        let cfsim = run_cfsim(&p.design, &p.faults, &p.stimulus);
        let ifsim = run_ifsim(&p.design, &p.faults, &p.stimulus);
        assert!(
            eraser.coverage.same_detected_set(&cfsim.coverage)
                && eraser.coverage.same_detected_set(&ifsim.coverage),
            "{}: coverage parity violated",
            bench.name()
        );
        println!(
            "{:<11} {:>9} {:>7} {:>7}   {:>10.2} {:>10.2} {:>10.2}",
            bench.name(),
            p.stimulus.num_steps(),
            st.cells(),
            p.faults.len(),
            eraser.coverage.coverage_percent(),
            cfsim.coverage.coverage_percent(),
            ifsim.coverage.coverage_percent(),
        );
    }
    println!();
    println!("parity: identical detected fault sets across Eraser, CfSim and IFsim on every row");
    println!("(paper: Eraser coverage equals Z01X on all benchmarks — the same criterion)");
}
