//! Regenerates **Table II**: benchmark information (#stimulus, #cells,
//! #faults) and the fault-coverage parity across the whole engine line-up
//! (IFsim as the force-based reference, VFsim, the Z01X-proxy CfSim, and
//! ERASER), enumerated through the
//! [`FaultSimEngine`](eraser_core::FaultSimEngine) trait. Emits
//! `BENCH_table2_benchmarks.json` (one record per engine/benchmark).

use eraser_baselines::all_engines;
use eraser_bench::json::{write_records, BenchRecord};
use eraser_bench::{env_scale, prepare, print_environment, selected_benchmarks};
use eraser_core::CampaignRunner;
use eraser_ir::analysis::design_stats;

const BINARY: &str = "table2_benchmarks";

fn main() {
    print_environment("Table II — benchmark information and coverage parity");
    let engines = all_engines();
    print!(
        "{:<11} {:>9} {:>7} {:>7}  ",
        "benchmark", "#stimulus", "#cells", "#faults"
    );
    for e in &engines {
        print!(" {:>9}", format!("{}(%)", e.name()));
    }
    println!();
    let scale = env_scale();
    let mut records = Vec::new();
    for bench in selected_benchmarks() {
        let p = prepare(bench, scale);
        let st = design_stats(&p.design);
        let runner = CampaignRunner::new(&p.design, &p.faults, &p.stimulus);
        let results = runner.run_all(&engines);
        if let Err(mismatch) = CampaignRunner::check_parity(&results) {
            panic!("{}: {mismatch}", bench.name());
        }
        print!(
            "{:<11} {:>9} {:>7} {:>7}  ",
            bench.name(),
            p.stimulus.num_steps(),
            st.cells(),
            p.faults.len()
        );
        for r in &results {
            print!(" {:>9.2}", r.coverage.coverage_percent());
        }
        println!();
        records.extend(
            results
                .iter()
                .map(|r| BenchRecord::from_result(BINARY, &p, r)),
        );
    }
    println!();
    println!("parity: identical detected fault sets across all engines on every row");
    println!("(paper: Eraser coverage equals Z01X on all benchmarks — the same criterion)");
    write_records(BINARY, &records);
}
