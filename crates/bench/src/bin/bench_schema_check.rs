//! Validates every `BENCH_*.json` record file against the registered
//! schemas (see [`eraser_bench::schema`]), so CI fails on malformed
//! records instead of uploading them silently.
//!
//! Usage: `bench_schema_check [dir-or-file ...]` — defaults to scanning
//! the current directory. Exits nonzero if any file is missing a known
//! schema, carries a stray/missing/mistyped key, or is not valid JSON.
//! Scanning a directory with no `BENCH_*.json` files at all is also an
//! error (a silently-empty upload is as bad as a malformed one).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn collect_targets(args: &[String]) -> Vec<PathBuf> {
    let roots: Vec<PathBuf> = if args.is_empty() {
        vec![PathBuf::from(".")]
    } else {
        args.iter().map(PathBuf::from).collect()
    };
    let mut files = Vec::new();
    for root in roots {
        if root.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&root)
                .map(|rd| {
                    rd.filter_map(|e| e.ok())
                        .map(|e| e.path())
                        .filter(|p| is_record_file(p))
                        .collect()
                })
                .unwrap_or_default();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(root);
        }
    }
    files
}

fn is_record_file(p: &Path) -> bool {
    p.file_name()
        .and_then(|n| n.to_str())
        .map(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .unwrap_or(false)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files = collect_targets(&args);
    if files.is_empty() {
        eprintln!("bench_schema_check: no BENCH_*.json files found");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    for path in &files {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("FAIL {}: cannot read: {e}", path.display());
                failures += 1;
            }
            Ok(text) => match eraser_bench::schema::validate_records(&text) {
                Ok(n) => println!("ok   {} ({n} records)", path.display()),
                Err(e) => {
                    eprintln!("FAIL {}: {e}", path.display());
                    failures += 1;
                }
            },
        }
    }
    if failures > 0 {
        eprintln!(
            "bench_schema_check: {failures}/{} files failed",
            files.len()
        );
        return ExitCode::FAILURE;
    }
    println!("bench_schema_check: {} files valid", files.len());
    ExitCode::SUCCESS
}
