//! A frozen replica of the **pre-change** good simulator, kept as the
//! "before" cost model for the `fig7_hotpath` report.
//!
//! This is the evaluation core as it existed before the zero-allocation
//! rework: every signal read clones (`eval_expr_cloning`), every RTL node
//! evaluation collects its inputs into a fresh `Vec` and materializes a
//! fresh `LogicVec` result, every behavioral activation builds its overlay
//! and write lists from scratch, and every commit replaces the stored
//! value. It is semantically identical to [`eraser_sim::Simulator`] — the
//! report asserts bit-identical outputs cycle by cycle — but pays the
//! allocator on every step, which is precisely the redundancy the
//! zero-allocation core trims.
//!
//! Not used by any engine; compiled only into the benchmark harness.

use eraser_ir::{
    BehavioralId, BehavioralNode, BinaryOp, CaseKind, DecisionEval, Design, Expr, LValue, RtlNode,
    RtlNodeId, RtlOp, Sensitivity, SignalId, Stmt, UnaryOp, ValueSource,
};
use eraser_logic::{LogicBit, LogicVec};
use eraser_sim::{OverlayView, SlotWrite, Stimulus, ValueStore};

const DELTA_LIMIT: usize = 10_000;
const MAX_LOOP_ITERATIONS: u32 = 1 << 16;

// ---- frozen pre-change LogicVec kernels ----
//
// The zero-allocation rework also made several `LogicVec` kernels
// word-parallel (slice, assign_slice, merge_x) and allocation-free
// (comparisons no longer resize-clone). The replica freezes the original
// bit-loop / resize-cloning forms so the baseline measures the true
// pre-change cost model.

fn legacy_slice(v: &LogicVec, hi: u32, lo: u32) -> LogicVec {
    let out_w = hi - lo + 1;
    let mut out = LogicVec::zeros(out_w);
    for i in 0..out_w {
        out.set_bit(i, v.bit_or_x(lo + i));
    }
    out
}

fn legacy_assign_slice(target: &mut LogicVec, lo: u32, value: &LogicVec) {
    for i in 0..value.width() {
        let pos = lo + i;
        if pos < target.width() {
            target.set_bit(pos, value.bit(i));
        }
    }
}

fn legacy_concat_lsb_first(parts: &[&LogicVec]) -> LogicVec {
    let total: u32 = parts.iter().map(|p| p.width()).sum();
    let mut out = LogicVec::zeros(total);
    let mut lo = 0;
    for p in parts {
        legacy_assign_slice(&mut out, lo, p);
        lo += p.width();
    }
    out
}

fn legacy_replicate(v: &LogicVec, n: u32) -> LogicVec {
    let mut out = LogicVec::zeros(v.width() * n);
    for k in 0..n {
        legacy_assign_slice(&mut out, k * v.width(), v);
    }
    out
}

fn legacy_merge_x(l: &LogicVec, r: &LogicVec) -> LogicVec {
    let w = l.width().max(r.width());
    let l = l.resize(w);
    let r = r.resize(w);
    let mut out = LogicVec::zeros(w);
    for i in 0..w {
        let (a, b) = (l.bit(i), r.bit(i));
        out.set_bit(
            i,
            if a == b && a.is_defined() {
                a
            } else {
                LogicBit::X
            },
        );
    }
    out
}

fn legacy_case_eq(l: &LogicVec, r: &LogicVec) -> bool {
    let w = l.width().max(r.width());
    l.resize(w) == r.resize(w)
}

fn legacy_casez_match(v: &LogicVec, pattern: &LogicVec) -> bool {
    let w = v.width().max(pattern.width());
    let v = v.resize(w);
    let p = pattern.resize(w);
    for i in 0..w {
        let pb = p.bit(i);
        if pb == LogicBit::Z {
            continue;
        }
        if v.bit(i) != pb {
            return false;
        }
    }
    true
}

fn legacy_logic_eq(l: &LogicVec, r: &LogicVec) -> LogicBit {
    if l.has_unknown() || r.has_unknown() {
        return LogicBit::X;
    }
    let w = l.width().max(r.width());
    LogicBit::from(l.resize(w) == r.resize(w))
}

fn legacy_binary(op: BinaryOp, lv: &LogicVec, rv: &LogicVec) -> LogicVec {
    match op {
        BinaryOp::Eq => LogicVec::from_bit(legacy_logic_eq(lv, rv)),
        BinaryOp::Ne => LogicVec::from_bit(legacy_logic_eq(lv, rv).not()),
        BinaryOp::CaseEq => LogicVec::from_bit(LogicBit::from(legacy_case_eq(lv, rv))),
        BinaryOp::CaseNe => LogicVec::from_bit(LogicBit::from(!legacy_case_eq(lv, rv))),
        // The remaining operators were word-parallel before the rework;
        // the library's pure forms retain the same cost shape.
        _ => eraser_ir::eval_binary(op, lv, rv),
    }
}

/// The frozen pre-change expression evaluator: one clone per signal read,
/// one fresh `LogicVec` per AST node, bit-loop slice/concat/merge kernels.
fn legacy_eval_expr(expr: &Expr, src: &OverlayView<'_, ValueStore>) -> LogicVec {
    match expr {
        Expr::Const(v) => v.clone(),
        Expr::Signal(s) => src.value(*s).clone(),
        Expr::Unary(op, e) => {
            let v = legacy_eval_expr(e, src);
            match op {
                UnaryOp::Not => v.not(),
                UnaryOp::Neg => v.neg(),
                UnaryOp::LogicalNot => LogicVec::from_bit(v.truth().not()),
                UnaryOp::RedAnd => LogicVec::from_bit(v.red_and()),
                UnaryOp::RedOr => LogicVec::from_bit(v.red_or()),
                UnaryOp::RedXor => LogicVec::from_bit(v.red_xor()),
            }
        }
        Expr::Binary(op, l, r) => {
            let lv = legacy_eval_expr(l, src);
            let rv = legacy_eval_expr(r, src);
            legacy_binary(*op, &lv, &rv)
        }
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            let c = legacy_eval_expr(cond, src).truth();
            match c {
                LogicBit::One => {
                    let t = legacy_eval_expr(then_e, src);
                    let e = legacy_eval_expr(else_e, src);
                    t.resize(t.width().max(e.width()))
                }
                LogicBit::Zero => {
                    let t = legacy_eval_expr(then_e, src);
                    let e = legacy_eval_expr(else_e, src);
                    e.resize(t.width().max(e.width()))
                }
                _ => legacy_merge_x(
                    &legacy_eval_expr(then_e, src),
                    &legacy_eval_expr(else_e, src),
                ),
            }
        }
        Expr::Concat(parts) => {
            let vals: Vec<LogicVec> = parts.iter().map(|p| legacy_eval_expr(p, src)).collect();
            let refs: Vec<&LogicVec> = vals.iter().rev().collect();
            legacy_concat_lsb_first(&refs)
        }
        Expr::Replicate(n, e) => legacy_replicate(&legacy_eval_expr(e, src), *n),
        Expr::Slice { base, hi, lo } => legacy_slice(src.value(*base), *hi, *lo),
        Expr::Index { base, index } => {
            let idx = legacy_eval_expr(index, src);
            let b = src.value(*base).clone();
            match idx.to_u64() {
                Some(i) if i <= u32::MAX as u64 => LogicVec::from_bit(b.bit_or_x(i as u32)),
                _ => LogicVec::from_bit(LogicBit::X),
            }
        }
        Expr::IndexedPart { base, start, width } => {
            let st = legacy_eval_expr(start, src);
            let b = src.value(*base).clone();
            match st.to_u64() {
                Some(s) if s + *width as u64 <= u32::MAX as u64 => {
                    legacy_slice(&b, s as u32 + width - 1, s as u32)
                }
                _ => LogicVec::new_x(*width),
            }
        }
    }
}

/// Pre-change RTL operator evaluation: owned inputs, fresh result,
/// bit-loop concat/slice/replicate kernels.
fn legacy_eval_rtl_op(op: &RtlOp, inputs: &[LogicVec], out_width: u32) -> LogicVec {
    let v = match op {
        RtlOp::Buf => inputs[0].clone(),
        RtlOp::Const(c) => c.clone(),
        RtlOp::Unary(u) => {
            let a = &inputs[0];
            match u {
                UnaryOp::Not => a.not(),
                UnaryOp::Neg => a.neg(),
                UnaryOp::LogicalNot => LogicVec::from_bit(a.truth().not()),
                UnaryOp::RedAnd => LogicVec::from_bit(a.red_and()),
                UnaryOp::RedOr => LogicVec::from_bit(a.red_or()),
                UnaryOp::RedXor => LogicVec::from_bit(a.red_xor()),
            }
        }
        RtlOp::Binary(b) => legacy_binary(*b, &inputs[0], &inputs[1]),
        RtlOp::Mux => match inputs[0].truth() {
            LogicBit::One => inputs[1].clone(),
            LogicBit::Zero => inputs[2].clone(),
            _ => legacy_merge_x(&inputs[1], &inputs[2]),
        },
        RtlOp::Concat => {
            let refs: Vec<&LogicVec> = inputs.iter().rev().collect();
            legacy_concat_lsb_first(&refs)
        }
        RtlOp::Replicate(n) => legacy_replicate(&inputs[0], *n),
        RtlOp::Slice { hi, lo } => legacy_slice(&inputs[0], *hi, *lo),
        RtlOp::Index => match inputs[1].to_u64() {
            Some(i) if i <= u32::MAX as u64 => LogicVec::from_bit(inputs[0].bit_or_x(i as u32)),
            _ => LogicVec::from_bit(LogicBit::X),
        },
        RtlOp::IndexedPart { width } => match inputs[1].to_u64() {
            Some(s) if s + *width as u64 <= u32::MAX as u64 => {
                legacy_slice(&inputs[0], s as u32 + width - 1, s as u32)
            }
            _ => LogicVec::new_x(*width),
        },
    };
    if v.width() == out_width {
        v
    } else {
        v.resize(out_width)
    }
}

/// Pre-change decision evaluation through the frozen expression evaluator.
fn legacy_decide(eval: &DecisionEval, view: &OverlayView<'_, ValueStore>) -> u32 {
    match eval {
        DecisionEval::Truth(cond) => (legacy_eval_expr(cond, view).truth() == LogicBit::One) as u32,
        DecisionEval::Case {
            scrutinee,
            arm_labels,
            kind,
        } => {
            let scrut = legacy_eval_expr(scrutinee, view);
            for (i, labels) in arm_labels.iter().enumerate() {
                for label in labels {
                    let lv = legacy_eval_expr(label, view);
                    let hit = match kind {
                        CaseKind::Exact => legacy_case_eq(&scrut, &lv),
                        CaseKind::Z => legacy_casez_match(&scrut, &lv),
                    };
                    if hit {
                        return i as u32;
                    }
                }
            }
            arm_labels.len() as u32
        }
    }
}

/// Pre-change write application: resize-clone for full writes, clone plus
/// bit-loop patch for partial writes.
fn legacy_apply(w: &SlotWrite, current: &LogicVec) -> LogicVec {
    match w.range {
        None => w.value.resize(current.width()),
        Some((lo, _)) => {
            let mut out = current.clone();
            legacy_assign_slice(&mut out, lo, &w.value);
            out
        }
    }
}

/// Pre-change behavioral execution: fresh overlay and write lists per
/// activation, clone-per-read evaluation.
struct LegacyInterp<'a> {
    design: &'a Design,
    node: &'a BehavioralNode,
    base: &'a ValueStore,
    overlay: Vec<(SignalId, LogicVec)>,
    nba: Vec<SlotWrite>,
}

impl<'a> LegacyInterp<'a> {
    fn view(&self) -> OverlayView<'_, ValueStore> {
        OverlayView {
            overlay: &self.overlay,
            base: self.base,
        }
    }

    fn eval(&self, e: &Expr) -> LogicVec {
        legacy_eval_expr(e, &self.view())
    }

    fn exec_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.exec_stmt(s);
                }
            }
            Stmt::Nop => {}
            Stmt::Assign {
                lhs, rhs, blocking, ..
            } => {
                let value = self.eval(rhs);
                let Some(write) = self.resolve_write(lhs, value) else {
                    return;
                };
                if *blocking {
                    let current = self.view().value_cloned(write.target);
                    let next = legacy_apply(&write, &current);
                    let sig = write.target;
                    for (s, v) in self.overlay.iter_mut() {
                        if *s == sig {
                            *v = next;
                            return;
                        }
                    }
                    self.overlay.push((sig, next));
                } else {
                    self.nba.push(write);
                }
            }
            Stmt::If {
                then_s,
                else_s,
                decision,
                ..
            } => {
                let eval = &self.node.vdg.decisions[decision.index()].eval;
                if legacy_decide(eval, &self.view()) == 1 {
                    self.exec_stmt(then_s);
                } else if let Some(e) = else_s {
                    self.exec_stmt(e);
                }
            }
            Stmt::Case {
                arms,
                default,
                decision,
                ..
            } => {
                let eval = &self.node.vdg.decisions[decision.index()].eval;
                let outcome = legacy_decide(eval, &self.view());
                if (outcome as usize) < arms.len() {
                    self.exec_stmt(&arms[outcome as usize].body);
                } else if let Some(d) = default {
                    self.exec_stmt(d);
                }
            }
            Stmt::For {
                init,
                step,
                body,
                decision,
                ..
            } => {
                self.exec_stmt(init);
                let mut iterations = 0u32;
                loop {
                    let eval = &self.node.vdg.decisions[decision.index()].eval;
                    if legacy_decide(eval, &self.view()) != 1 {
                        break;
                    }
                    self.exec_stmt(body);
                    self.exec_stmt(step);
                    iterations += 1;
                    assert!(iterations < MAX_LOOP_ITERATIONS, "legacy for-loop bound");
                }
            }
        }
    }

    fn resolve_write(&self, lhs: &LValue, value: LogicVec) -> Option<SlotWrite> {
        match lhs {
            LValue::Full(sig) => Some(SlotWrite {
                target: *sig,
                range: None,
                value: value.resize(self.design.signal(*sig).width),
            }),
            LValue::PartSelect { base, hi, lo } => Some(SlotWrite {
                target: *base,
                range: Some((*lo, hi - lo + 1)),
                value: value.resize(hi - lo + 1),
            }),
            LValue::BitSelect { base, index } => {
                let idx = self.eval(index).to_u64()?;
                let width = self.design.signal(*base).width;
                if idx >= width as u64 {
                    return None;
                }
                Some(SlotWrite {
                    target: *base,
                    range: Some((idx as u32, 1)),
                    value: value.resize(1),
                })
            }
            LValue::IndexedPart { base, start, width } => {
                let s = self.eval(start).to_u64()?;
                if s >= self.design.signal(*base).width as u64 {
                    return None;
                }
                Some(SlotWrite {
                    target: *base,
                    range: Some((s as u32, *width)),
                    value: value.resize(*width),
                })
            }
        }
    }
}

trait ValueCloned {
    fn value_cloned(&self, sig: SignalId) -> LogicVec;
}

impl ValueCloned for OverlayView<'_, ValueStore> {
    fn value_cloned(&self, sig: SignalId) -> LogicVec {
        self.value(sig).clone()
    }
}

/// The pre-change event-driven good simulator: identical semantics to
/// [`eraser_sim::Simulator`], pre-change allocation profile.
pub struct LegacySimulator<'d> {
    design: &'d Design,
    values: ValueStore,
    edge_prev: Vec<LogicVec>,
    rtl_dirty: Vec<bool>,
    rtl_queue: Vec<RtlNodeId>,
    beh_dirty: Vec<bool>,
    beh_queue: Vec<BehavioralId>,
    watch_changed: Vec<SignalId>,
    watch_flag: Vec<bool>,
    nba: Vec<SlotWrite>,
}

impl<'d> LegacySimulator<'d> {
    /// Creates the simulator and performs the initial evaluation.
    pub fn new(design: &'d Design) -> Self {
        let values = ValueStore::new(design);
        let edge_prev = design
            .signals()
            .iter()
            .map(|s| LogicVec::new_x(s.width))
            .collect();
        let mut sim = LegacySimulator {
            design,
            values,
            edge_prev,
            rtl_dirty: vec![false; design.rtl_nodes().len()],
            rtl_queue: Vec::new(),
            beh_dirty: vec![false; design.behavioral_nodes().len()],
            beh_queue: Vec::new(),
            watch_changed: Vec::new(),
            watch_flag: vec![false; design.num_signals()],
            nba: Vec::new(),
        };
        for i in 0..design.rtl_nodes().len() {
            sim.mark_rtl(RtlNodeId::from_index(i));
        }
        for (i, b) in design.behavioral_nodes().iter().enumerate() {
            if !b.sensitivity.is_edge() {
                sim.mark_beh(BehavioralId::from_index(i));
            }
        }
        sim.step();
        sim
    }

    /// The current value of a signal.
    pub fn value(&self, sig: SignalId) -> &LogicVec {
        self.values.get(sig)
    }

    /// Drives a primary input, pre-change style: unconditional resize.
    pub fn set_input(&mut self, sig: SignalId, value: LogicVec) {
        let value = value.resize(self.design.signal(sig).width);
        self.commit_value(sig, value);
    }

    /// Applies every step of a stimulus, settling after each.
    pub fn run_stimulus(&mut self, stim: &Stimulus) {
        for step in &stim.steps {
            for (sig, val) in step {
                self.set_input(*sig, val.clone());
            }
            self.step();
        }
    }

    fn commit_value(&mut self, sig: SignalId, value: LogicVec) -> bool {
        if self.values.set(sig, value) {
            self.schedule_fanout(sig);
            true
        } else {
            false
        }
    }

    /// Runs delta cycles until the design is stable.
    pub fn step(&mut self) {
        for _ in 0..DELTA_LIMIT {
            self.settle_active();
            let activated = self.detect_edges();
            for b in &activated {
                self.run_behavioral(*b);
            }
            let committed = self.commit_nba();
            if !committed
                && activated.is_empty()
                && self.rtl_queue.is_empty()
                && self.beh_queue.is_empty()
            {
                return;
            }
        }
        panic!("design did not settle within {DELTA_LIMIT} delta cycles");
    }

    fn mark_rtl(&mut self, id: RtlNodeId) {
        if !self.rtl_dirty[id.index()] {
            self.rtl_dirty[id.index()] = true;
            self.rtl_queue.push(id);
        }
    }

    fn mark_beh(&mut self, id: BehavioralId) {
        if !self.beh_dirty[id.index()] {
            self.beh_dirty[id.index()] = true;
            self.beh_queue.push(id);
        }
    }

    fn schedule_fanout(&mut self, sig: SignalId) {
        for &n in self.design.rtl_fanout(sig) {
            self.mark_rtl(n);
        }
        for &b in self.design.level_fanout(sig) {
            self.mark_beh(b);
        }
        if !self.design.edge_fanout(sig).is_empty() && !self.watch_flag[sig.index()] {
            self.watch_flag[sig.index()] = true;
            self.watch_changed.push(sig);
        }
    }

    fn eval_rtl_node(&self, node: &RtlNode) -> LogicVec {
        // Pre-change: clone every input into a fresh vector.
        let inputs: Vec<LogicVec> = node
            .inputs
            .iter()
            .map(|&s| self.values.get(s).clone())
            .collect();
        legacy_eval_rtl_op(&node.op, &inputs, self.design.signal(node.output).width)
    }

    fn settle_active(&mut self) {
        loop {
            if let Some(id) = self.rtl_queue.pop() {
                self.rtl_dirty[id.index()] = false;
                let node = self.design.rtl_node(id);
                let out = self.eval_rtl_node(node);
                self.commit_value(node.output, out);
                continue;
            }
            if let Some(id) = self.beh_queue.pop() {
                self.beh_dirty[id.index()] = false;
                self.run_behavioral(id);
                continue;
            }
            break;
        }
    }

    fn run_behavioral(&mut self, id: BehavioralId) {
        let node = self.design.behavioral(id);
        let mut interp = LegacyInterp {
            design: self.design,
            node,
            base: &self.values,
            overlay: Vec::new(),
            nba: Vec::new(),
        };
        interp.exec_stmt(&node.body);
        let (overlay, nba) = (interp.overlay, interp.nba);
        for (sig, val) in overlay {
            self.commit_value(sig, val);
        }
        self.nba.extend(nba);
    }

    fn detect_edges(&mut self) -> Vec<BehavioralId> {
        let mut activated = Vec::new();
        let changed = std::mem::take(&mut self.watch_changed);
        for sig in changed {
            self.watch_flag[sig.index()] = false;
            let prev = self.edge_prev[sig.index()].clone();
            let cur = self.values.get(sig).clone();
            if prev == cur {
                continue;
            }
            for &b in self.design.edge_fanout(sig) {
                if activated.contains(&b) {
                    continue;
                }
                let node = self.design.behavioral(b);
                if let Sensitivity::Edges(edges) = &node.sensitivity {
                    let fired = edges.iter().any(|(kind, s)| {
                        *s == sig && kind.matches(prev.bit_or_x(0), cur.bit_or_x(0))
                    });
                    if fired {
                        activated.push(b);
                    }
                }
            }
            self.edge_prev[sig.index()] = cur;
        }
        activated
    }

    fn commit_nba(&mut self) -> bool {
        if self.nba.is_empty() {
            return false;
        }
        let writes = std::mem::take(&mut self.nba);
        let mut any = false;
        for w in writes {
            let next = legacy_apply(&w, self.values.get(w.target));
            if self.commit_value(w.target, next) {
                any = true;
            }
        }
        any
    }
}
