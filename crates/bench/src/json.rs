//! Machine-readable benchmark records.
//!
//! Every report binary emits, next to its human-readable table, one JSON
//! file `BENCH_<binary>.json` holding an array of records — one record per
//! engine/benchmark pair — so the performance trajectory can be tracked
//! across commits by tooling. The writer is dependency-free (hand-rolled
//! JSON; all keys and the schema tag are fixed strings, values are numbers
//! and escaped strings).
//!
//! Set `ERASER_BENCH_JSON_DIR` to redirect the output directory (default:
//! the current working directory). Set it to `-` to suppress file output.

use crate::Prepared;
use eraser_core::EngineResult;
use eraser_ir::analysis::design_stats;
use std::io::Write;
use std::path::PathBuf;

/// Schema tag stamped into every record. `v2` added the `threads` field
/// (fault-parallel worker count; `1` for serial campaigns).
pub const SCHEMA: &str = "eraser-bench-v2";

/// One engine/benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Report binary that produced the record (e.g. `fig6_performance`).
    pub binary: String,
    /// Benchmark display name (Table II row).
    pub benchmark: String,
    /// Engine display name (`IFsim`, `VFsim`, `CfSim`, `Eraser`, ...).
    pub engine: String,
    /// Cell-count proxy of the design (RTL nodes + VDG nodes).
    pub cells: usize,
    /// Faults in the campaign universe.
    pub faults: usize,
    /// Stimulus length in settle steps.
    pub stimulus_steps: usize,
    /// Faults detected.
    pub detected: usize,
    /// Fault coverage in percent.
    pub coverage_percent: f64,
    /// Campaign wall time in seconds.
    pub wall_seconds: f64,
    /// Fault-parallel worker threads used for the campaign (1 = serial).
    pub threads: usize,
}

impl BenchRecord {
    /// Builds a record from a prepared benchmark and an engine result. The
    /// `threads` field comes from [`EngineResult::threads`] — the worker
    /// count the campaign actually ran with, as reported by the engine.
    pub fn from_result(binary: &str, p: &Prepared, r: &EngineResult) -> Self {
        let st = design_stats(&p.design);
        BenchRecord {
            binary: binary.to_string(),
            benchmark: p.name.clone(),
            engine: r.name.clone(),
            cells: st.cells(),
            faults: p.faults.len(),
            stimulus_steps: p.stimulus.num_steps(),
            detected: r.coverage.detected(),
            coverage_percent: r.coverage.coverage_percent(),
            wall_seconds: r.wall.as_secs_f64(),
            threads: r.threads,
        }
    }

    /// Stamps the fault-parallel worker count the campaign ran with.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Serializes the record as a single JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"{}\",\"binary\":\"{}\",\"benchmark\":\"{}\",",
                "\"engine\":\"{}\",\"cells\":{},\"faults\":{},",
                "\"stimulus_steps\":{},\"detected\":{},",
                "\"coverage_percent\":{:.4},\"wall_seconds\":{:.6},",
                "\"threads\":{}}}"
            ),
            SCHEMA,
            escape(&self.binary),
            escape(&self.benchmark),
            escape(&self.engine),
            self.cells,
            self.faults,
            self.stimulus_steps,
            self.detected,
            self.coverage_percent,
            self.wall_seconds,
            self.threads,
        )
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes `records` to `BENCH_<binary>.json` as a JSON array and reports
/// the path on stdout. Honors `ERASER_BENCH_JSON_DIR` (`-` disables).
pub fn write_records(binary: &str, records: &[BenchRecord]) {
    let lines: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    write_json_objects(binary, &lines);
}

/// Writes pre-serialized JSON objects to `BENCH_<binary>.json` as an array
/// and reports the path on stdout — the single implementation of the
/// record-file convention (`ERASER_BENCH_JSON_DIR` redirection, `-`
/// suppression, formatting, error reporting) shared by every report
/// binary, including those with custom record schemas.
pub fn write_json_objects(binary: &str, objects: &[String]) {
    let dir = std::env::var("ERASER_BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    if dir == "-" {
        return;
    }
    let path = PathBuf::from(dir).join(format!("BENCH_{binary}.json"));
    let text = if objects.is_empty() {
        "[]\n".to_string()
    } else {
        let body: Vec<String> = objects.iter().map(|o| format!("  {o}")).collect();
        format!("[\n{}\n]\n", body.join(",\n"))
    };
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(text.as_bytes())) {
        Ok(()) => println!("wrote {} records to {}", objects.len(), path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_escaped() {
        let r = BenchRecord {
            binary: "fig6_performance".into(),
            benchmark: "ALU \"wide\"".into(),
            engine: "Eraser".into(),
            cells: 42,
            faults: 100,
            stimulus_steps: 600,
            detected: 97,
            coverage_percent: 97.0,
            wall_seconds: 1.25,
            threads: 4,
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"schema\":\"eraser-bench-v2\""));
        assert!(j.contains("\\\"wide\\\""));
        assert!(j.contains("\"wall_seconds\":1.250000"));
        assert!(j.contains("\"threads\":4"));
        // Balanced quotes: an even count of unescaped quotes.
        let unescaped = j.replace("\\\"", "");
        assert_eq!(unescaped.matches('"').count() % 2, 0);
    }
}
