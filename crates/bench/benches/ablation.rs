//! Micro-benchmarks backing Fig. 7: the three redundancy modes on
//! behavioral-heavy and RTL-node-heavy designs, enumerated as
//! [`Eraser::ablation`](eraser_core::Eraser::ablation) trait objects.
//!
//! Dependency-free `harness = false` target: run with
//! `cargo bench -p eraser-bench --bench ablation`; `ERASER_BENCH_ITERS`
//! controls the sample count.

use eraser_bench::{micro_bench, prepare};
use eraser_core::{CampaignRunner, Eraser};
use eraser_designs::Benchmark;

fn main() {
    println!("# fig7_ablation micro-benchmarks (scale 0.2)");
    for bench in [Benchmark::Sha256Hv, Benchmark::Apb, Benchmark::Sha256C2v] {
        let p = prepare(bench, 0.2);
        let runner = CampaignRunner::new(&p.design, &p.faults, &p.stimulus);
        for variant in &Eraser::ablation() {
            micro_bench(&format!("{}/{}", variant.name(), bench.name()), || {
                let r = runner.run(variant.as_ref());
                assert!(r.coverage.total() == p.faults.len());
            });
        }
    }
}
