//! Criterion micro-benchmarks backing Fig. 7: the three redundancy modes
//! on behavioral-heavy and RTL-node-heavy designs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eraser_bench::prepare;
use eraser_core::{run_campaign, CampaignConfig, RedundancyMode};
use eraser_designs::Benchmark;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_ablation");
    group.sample_size(10);
    for bench in [Benchmark::Sha256Hv, Benchmark::Apb, Benchmark::Sha256C2v] {
        let p = prepare(bench, 0.2);
        for (label, mode) in [
            ("Eraser--", RedundancyMode::None),
            ("Eraser-", RedundancyMode::Explicit),
            ("Eraser", RedundancyMode::Full),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, bench.name()),
                &(&p, mode),
                |b, (p, mode)| {
                    b.iter(|| {
                        run_campaign(
                            &p.design,
                            &p.faults,
                            &p.stimulus,
                            &CampaignConfig {
                                mode: *mode,
                                drop_detected: true,
                            },
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
