//! Criterion micro-benchmarks backing Fig. 6: statistically rigorous
//! per-design samples of each engine on shortened campaigns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eraser_baselines::{run_cfsim, run_eraser, run_ifsim, run_vfsim};
use eraser_bench::prepare;
use eraser_designs::Benchmark;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_engines");
    group.sample_size(10);
    for bench in [Benchmark::Alu64, Benchmark::Apb, Benchmark::PicoRv32] {
        let p = prepare(bench, 0.2);
        group.bench_with_input(BenchmarkId::new("IFsim", bench.name()), &p, |b, p| {
            b.iter(|| run_ifsim(&p.design, &p.faults, &p.stimulus))
        });
        group.bench_with_input(BenchmarkId::new("VFsim", bench.name()), &p, |b, p| {
            b.iter(|| run_vfsim(&p.design, &p.faults, &p.stimulus))
        });
        group.bench_with_input(BenchmarkId::new("CfSim", bench.name()), &p, |b, p| {
            b.iter(|| run_cfsim(&p.design, &p.faults, &p.stimulus))
        });
        group.bench_with_input(BenchmarkId::new("Eraser", bench.name()), &p, |b, p| {
            b.iter(|| run_eraser(&p.design, &p.faults, &p.stimulus))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
