//! Micro-benchmarks backing Fig. 6: repeated per-design samples of each
//! engine on shortened campaigns, enumerated through the
//! [`FaultSimEngine`](eraser_core::FaultSimEngine) trait.
//!
//! Dependency-free `harness = false` target: run with
//! `cargo bench -p eraser-bench --bench engines`; `ERASER_BENCH_ITERS`
//! controls the sample count.

use eraser_baselines::all_engines;
use eraser_bench::{micro_bench, prepare};
use eraser_core::CampaignRunner;
use eraser_designs::Benchmark;

fn main() {
    println!("# fig6_engines micro-benchmarks (scale 0.2)");
    for bench in [Benchmark::Alu64, Benchmark::Apb, Benchmark::PicoRv32] {
        let p = prepare(bench, 0.2);
        let runner = CampaignRunner::new(&p.design, &p.faults, &p.stimulus);
        for engine in &all_engines() {
            micro_bench(&format!("{}/{}", engine.name(), bench.name()), || {
                let r = runner.run(engine.as_ref());
                assert!(r.coverage.total() == p.faults.len());
            });
        }
    }
}
