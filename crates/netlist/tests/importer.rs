//! Importer integration battery: diagnostics carry enough context to act
//! on, buses reassemble from arbitrary bit orders, and a design imported
//! from Yosys JSON behaves identically to the same design compiled from
//! Verilog.

use eraser_frontend::compile;
use eraser_logic::LogicVec;
use eraser_netlist::import_str;
use eraser_sim::Simulator;

// ---- diagnostics ----

#[test]
fn json_parse_errors_name_the_position() {
    let e = import_str("{\n  \"modules\": {\n    \"m\": [}\n  }\n}", None).unwrap_err();
    assert_eq!(e.location.map(|(l, _)| l), Some(3), "{e}");
    assert!(e.message.contains("JSON syntax error"), "{e}");
    // The Display form leads with the position.
    assert!(e.to_string().contains("line 3"), "{e}");
}

#[test]
fn unsupported_cell_diagnostic_names_cell_and_net() {
    let text = r#"{
      "modules": {
        "m": {
          "ports": {
            "a": { "direction": "input", "bits": [2] },
            "y": { "direction": "output", "bits": [3] }
          },
          "cells": {
            "weird0": {
              "type": "$lut",
              "parameters": {},
              "port_directions": { "A": "input", "Y": "output" },
              "connections": { "A": [2], "Y": [3] }
            }
          },
          "netnames": {
            "result": { "hide_name": 0, "bits": [3] }
          }
        }
      }
    }"#;
    let e = import_str(text, None).unwrap_err();
    assert!(e.message.contains("$lut"), "{e}");
    assert!(e.message.contains("weird0"), "{e}");
    assert!(e.message.contains("result"), "{e}");
}

// ---- bus reassembly ----

/// Output port bits listed in an order unrelated to the driving cell's:
/// `y` is `a` bit-reversed, `z`'s low half comes from the high half of the
/// adder result. The importer must stitch these from slices, not assume
/// contiguous runs.
#[test]
fn buses_reassemble_from_scrambled_bit_indices() {
    let text = r#"{
      "modules": {
        "scram": {
          "attributes": { "top": 1 },
          "ports": {
            "a": { "direction": "input", "bits": [2, 3, 4, 5] },
            "b": { "direction": "input", "bits": [6, 7, 8, 9] },
            "y": { "direction": "output", "bits": [5, 4, 3, 2] },
            "z": { "direction": "output", "bits": [12, 13, 10, 11] }
          },
          "cells": {
            "add0": {
              "type": "$add",
              "parameters": { "A_SIGNED": 0, "B_SIGNED": 0 },
              "port_directions": { "A": "input", "B": "input", "Y": "output" },
              "connections": { "A": [2, 3, 4, 5], "B": [6, 7, 8, 9], "Y": [10, 11, 12, 13] }
            }
          },
          "netnames": {
            "a":   { "hide_name": 0, "bits": [2, 3, 4, 5] },
            "b":   { "hide_name": 0, "bits": [6, 7, 8, 9] },
            "sum": { "hide_name": 0, "bits": [10, 11, 12, 13] }
          }
        }
      }
    }"#;
    let design = import_str(text, None).unwrap();
    let a = design.find_signal("a").unwrap();
    let b = design.find_signal("b").unwrap();
    let y = design.find_signal("y").unwrap();
    let z = design.find_signal("z").unwrap();
    let mut sim = Simulator::new(&design);
    for (va, vb) in [(0b0001u64, 0u64), (0b1010, 0b0011), (0b1111, 0b0001)] {
        sim.set_input(a, &LogicVec::from_u64(4, va));
        sim.set_input(b, &LogicVec::from_u64(4, vb));
        sim.step();
        let rev = (0..4).fold(0u64, |acc, i| acc | ((va >> i & 1) << (3 - i)));
        assert_eq!(sim.value(y).to_u64(), Some(rev), "y for a={va:04b}");
        let sum = (va + vb) & 0xf;
        let swapped = (sum >> 2) | ((sum & 0b11) << 2);
        assert_eq!(sim.value(z).to_u64(), Some(swapped), "z for {va}+{vb}");
    }
}

// ---- importer vs frontend parity ----

/// The same accumulator in the frontend's Verilog subset and as Yosys-style
/// word-level cells. Both compiled designs must agree on every output,
/// every cycle, under an identical stimulus.
const PAIR_VERILOG: &str = r#"
module pair4(
  input wire clk,
  input wire rst,
  input wire [3:0] a,
  output reg [3:0] acc,
  output wire [3:0] mix
);
  assign mix = acc ^ a;
  always @(posedge clk) begin
    if (rst) acc <= 4'h0;
    else acc <= acc + a;
  end
endmodule
"#;

const PAIR_JSON: &str = r#"{
  "modules": {
    "pair4": {
      "attributes": { "top": 1 },
      "ports": {
        "clk": { "direction": "input", "bits": [2] },
        "rst": { "direction": "input", "bits": [3] },
        "a":   { "direction": "input", "bits": [4, 5, 6, 7] },
        "acc": { "direction": "output", "bits": [8, 9, 10, 11] },
        "mix": { "direction": "output", "bits": [12, 13, 14, 15] }
      },
      "cells": {
        "add0": {
          "type": "$add",
          "parameters": { "A_SIGNED": 0, "B_SIGNED": 0 },
          "port_directions": { "A": "input", "B": "input", "Y": "output" },
          "connections": { "A": [8, 9, 10, 11], "B": [4, 5, 6, 7], "Y": [16, 17, 18, 19] }
        },
        "mux0": {
          "type": "$mux",
          "parameters": {},
          "port_directions": { "A": "input", "B": "input", "S": "input", "Y": "output" },
          "connections": {
            "A": [16, 17, 18, 19], "B": ["0", "0", "0", "0"],
            "S": [3], "Y": [20, 21, 22, 23]
          }
        },
        "ff0": {
          "type": "$dff",
          "parameters": { "CLK_POLARITY": 1 },
          "port_directions": { "CLK": "input", "D": "input", "Q": "output" },
          "connections": { "CLK": [2], "D": [20, 21, 22, 23], "Q": [8, 9, 10, 11] }
        },
        "xor0": {
          "type": "$xor",
          "parameters": { "A_SIGNED": 0, "B_SIGNED": 0 },
          "port_directions": { "A": "input", "B": "input", "Y": "output" },
          "connections": { "A": [8, 9, 10, 11], "B": [4, 5, 6, 7], "Y": [12, 13, 14, 15] }
        }
      },
      "netnames": {
        "clk": { "hide_name": 0, "bits": [2] },
        "rst": { "hide_name": 0, "bits": [3] },
        "a":   { "hide_name": 0, "bits": [4, 5, 6, 7] },
        "acc": { "hide_name": 0, "bits": [8, 9, 10, 11] },
        "mix": { "hide_name": 0, "bits": [12, 13, 14, 15] },
        "sum": { "hide_name": 0, "bits": [16, 17, 18, 19] },
        "nxt": { "hide_name": 0, "bits": [20, 21, 22, 23] }
      }
    }
  }
}"#;

#[test]
fn imported_netlist_matches_frontend_compile() {
    let from_verilog = compile(PAIR_VERILOG, Some("pair4")).unwrap();
    let from_json = import_str(PAIR_JSON, None).unwrap();

    let mut sims = [&from_verilog, &from_json].map(Simulator::new);
    let ids = [&from_verilog, &from_json].map(|d| {
        [
            d.find_signal("clk").unwrap(),
            d.find_signal("rst").unwrap(),
            d.find_signal("a").unwrap(),
            d.find_signal("acc").unwrap(),
            d.find_signal("mix").unwrap(),
        ]
    });

    // Reset for 2 cycles, then feed a deterministic input pattern.
    let mut state = 0x2f94u64;
    for cycle in 0..60 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let va = if cycle < 2 { 0 } else { state >> 17 & 0xf };
        let rst = u64::from(cycle < 2);
        for (sim, [clk, rstid, a, ..]) in sims.iter_mut().zip(&ids) {
            sim.set_input(*clk, &LogicVec::zeros(1));
            sim.set_input(*rstid, &LogicVec::from_u64(1, rst));
            sim.set_input(*a, &LogicVec::from_u64(4, va));
            sim.step();
            sim.set_input(*clk, &LogicVec::ones(1));
            sim.step();
        }
        let read = |i: usize, sig: usize| sims[i].value(ids[i][sig]).to_u64();
        assert_eq!(read(0, 3), read(1, 3), "acc diverged at cycle {cycle}");
        assert_eq!(read(0, 4), read(1, 4), "mix diverged at cycle {cycle}");
        if cycle >= 2 {
            assert!(read(0, 3).is_some(), "acc still X at cycle {cycle}");
        }
    }
}
