//! Minimal order-preserving JSON parser and serializer.
//!
//! Zero-dependency by project rule. Unlike the flat record reader in
//! `eraser-bench`, this parser keeps object keys in **document order**
//! (Yosys port order is declaration order, which becomes the design's
//! input/output order) and reports syntax errors with a 1-based
//! line/column so a truncated or hand-edited netlist fails legibly.
//!
//! The matching serializer ([`to_string`], [`to_string_pretty`]) is what
//! the campaign service and the `CampaignSpec` API use to emit JSON:
//! [`parse`]`(`[`to_string`]`(v)) == v` for every value whose numbers are
//! finite, and integral numbers in the 53-bit-safe range print without a
//! fractional part, so round-tripped identifiers stay byte-stable.

use std::fmt;
use std::fmt::Write as _;

/// A parsed JSON value with order-preserving objects.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (Yosys emits only integers, but floats parse too).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, keys in document order (duplicates rejected at parse).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience constructor: a string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Convenience constructor: an unsigned integer value.
    pub fn num(n: u64) -> JsonValue {
        JsonValue::Num(n as f64)
    }
}

/// Serializes a value to compact JSON (no insignificant whitespace).
///
/// Object keys keep their in-memory order, mirroring the parser. Integral
/// numbers inside the 53-bit-safe range print without a fractional part;
/// non-finite numbers (which valid parses never produce) fall back to
/// `null`.
pub fn to_string(v: &JsonValue) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Serializes a value to indented JSON (two spaces per level) — the
/// human-facing variant for spec files and on-disk records.
pub fn to_string_pretty(v: &JsonValue) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &JsonValue, indent: Option<usize>, depth: usize) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Num(n) => write_number(out, *n),
        JsonValue::Str(s) => write_escaped(out, s),
        JsonValue::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline(out, indent, depth);
            out.push(']');
        }
        JsonValue::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, mv)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, mv, indent, depth + 1);
            }
            write_newline(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

/// Numbers in the integer-safe f64 range print as integers (Yosys bit
/// indices, campaign ids, counters); everything else uses Rust's shortest
/// round-trippable float formatting.
fn write_number(out: &mut String, n: f64) {
    const SAFE: f64 = 9_007_199_254_740_992.0; // 2^53
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < SAFE {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in bytes).
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a [`JsonError`] with line/column on any syntax problem.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = P {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the JSON document"));
    }
    Ok(v)
}

struct P<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl P<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        let (mut line, mut col) = (1u32, 1u32);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError {
            line,
            col,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') if self.bytes[self.pos..].starts_with(b"null") => {
                self.pos += 4;
                Ok(JsonValue::Null)
            }
            Some(&c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.pos += 1; // '{'
        let mut members: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected a string object key"));
            }
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening '"'
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    s.push_str(std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        self.pos += 1;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("malformed number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ordered_objects() {
        let v = parse(r#"{"z": 1, "a": [true, null, "s\n"], "m": {"k": -2.5}}"#).unwrap();
        let obj = v.as_obj().unwrap();
        // Keys stay in document order — this is what preserves Yosys port order.
        assert_eq!(obj[0].0, "z");
        assert_eq!(obj[1].0, "a");
        assert_eq!(obj[2].0, "m");
        assert_eq!(v.get("z").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("m").unwrap().get("k").unwrap().as_num(), Some(-2.5));
    }

    #[test]
    fn errors_carry_line_and_column() {
        let e = parse("{\n  \"a\": 1,\n  \"b\": }\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.col >= 8, "col was {}", e.col);
        let e = parse("[1, 2").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expected"));
    }

    #[test]
    fn serializer_round_trips() {
        let doc = r#"{"z": 1, "a": [true, null, "s\n\"\\x", -2.5, 0], "m": {"k": [], "e": {}}}"#;
        let v = parse(doc).unwrap();
        // Compact and pretty forms both parse back to the identical value.
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
        assert_eq!(parse(&to_string_pretty(&v)).unwrap(), v);
        // Integral numbers print without a fractional part.
        assert_eq!(to_string(&JsonValue::Num(42.0)), "42");
        assert_eq!(to_string(&JsonValue::Num(-3.0)), "-3");
        assert_eq!(to_string(&JsonValue::Num(2.5)), "2.5");
        // Key order is preserved on the wire.
        let s = to_string(&v);
        assert!(s.find("\"z\"").unwrap() < s.find("\"a\"").unwrap());
        // Control characters escape to \u form.
        let ctl = JsonValue::str("a\u{1}b");
        assert_eq!(to_string(&ctl), "\"a\\u0001b\"");
        assert_eq!(parse(&to_string(&ctl)).unwrap(), ctl);
    }

    #[test]
    fn pretty_form_is_indented() {
        let v = parse(r#"{"a": [1, 2]}"#).unwrap();
        assert_eq!(to_string_pretty(&v), "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
        assert_eq!(to_string(&v), r#"{"a":[1,2]}"#);
    }

    #[test]
    fn rejects_duplicates_and_garbage() {
        assert!(parse(r#"{"a":1,"a":2}"#)
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(parse("[] x").unwrap_err().message.contains("trailing"));
        assert!(parse("nope").is_err());
    }
}
