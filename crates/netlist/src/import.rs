//! Yosys-JSON → [`Design`] importer.
//!
//! Maps the common word-level cells (`$and`, `$add`, `$mux`, `$dff`, ...)
//! and the simple-gate library (`$_AND_`, `$_DFF_P_`, ...) onto the
//! existing `DesignBuilder` RTL nodes. Multi-bit buses are reassembled
//! from Yosys's bit-indexed connection lists: maximal runs of consecutive
//! bits become `Slice`/`Buf` nodes, mixed runs become `Concat`, constant
//! chunks become `Const` drivers, and repeated sign bits become
//! `Replicate` — so a netlist round-trips into the same node vocabulary
//! the Verilog frontend emits.
//!
//! Named nets (Yosys `netnames` with `hide_name == 0`) become fault
//! injection sites: every such net materializes as a named signal and all
//! readers are routed through it, which is what gives gate-level netlists
//! the per-gate-output fault universe a structural fault model expects.

use crate::json::{self, JsonValue};
use eraser_ir::{
    BinaryOp, Design, DesignBuilder, EdgeKind, Expr, PortDir, RtlOp, Sensitivity, SignalId,
    SignalKind, Stmt, UnaryOp,
};
use eraser_logic::{LogicBit, LogicVec};
use std::collections::HashMap;
use std::fmt;

/// An import failure: bad JSON, an unsupported construct, or a netlist
/// inconsistency. `location` is a 1-based (line, column) when the failure
/// is a JSON syntax error.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportError {
    /// 1-based (line, column) for syntax-level failures.
    pub location: Option<(u32, u32)>,
    /// Human-readable description naming the cell/net involved.
    pub message: String,
}

impl ImportError {
    fn new(message: impl Into<String>) -> Self {
        ImportError {
            location: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.location {
            Some((line, col)) => write!(f, "line {line}:{col}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ImportError {}

/// Imports a Yosys JSON document (the output of `yosys -p 'prep;
/// write_json out.json'`). `top` selects the module to import; when
/// `None`, the module carrying the `top` attribute (or the only module)
/// is used.
///
/// # Errors
///
/// Returns an [`ImportError`] for JSON syntax errors (with line/column),
/// unsupported cells (naming the cell and its output net), hierarchical
/// netlists, multiply-driven or undriven nets, and malformed documents.
pub fn import_str(text: &str, top: Option<&str>) -> Result<Design, ImportError> {
    let root = json::parse(text).map_err(|e| ImportError {
        location: Some((e.line, e.col)),
        message: format!("JSON syntax error: {}", e.message),
    })?;
    let modules = root
        .get("modules")
        .and_then(|m| m.as_obj())
        .ok_or_else(|| {
            ImportError::new(
                "document has no `modules` object — is this `yosys write_json` output?",
            )
        })?;
    if modules.is_empty() {
        return Err(ImportError::new("document contains no modules"));
    }
    let (name, module) = select_top(modules, top)?;
    Importer::new(name, module).run()
}

/// [`import_str`] over a file on disk.
///
/// # Errors
///
/// Adds the path to any read or import failure.
pub fn import_path(path: &std::path::Path, top: Option<&str>) -> Result<Design, ImportError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ImportError::new(format!("cannot read `{}`: {e}", path.display())))?;
    import_str(&text, top).map_err(|mut e| {
        e.message = format!("{}: {}", path.display(), e.message);
        e
    })
}

fn select_top<'a>(
    modules: &'a [(String, JsonValue)],
    top: Option<&str>,
) -> Result<(&'a str, &'a JsonValue), ImportError> {
    let truthy = |v: Option<&JsonValue>| match v {
        Some(JsonValue::Num(n)) => *n != 0.0,
        Some(JsonValue::Str(s)) => s.contains('1'),
        _ => false,
    };
    if let Some(want) = top {
        return modules
            .iter()
            .find(|(n, _)| n == want)
            .map(|(n, m)| (n.as_str(), m))
            .ok_or_else(|| {
                ImportError::new(format!(
                    "no module named `{want}`; document contains: {}",
                    module_list(modules)
                ))
            });
    }
    let flagged: Vec<&(String, JsonValue)> = modules
        .iter()
        .filter(|(_, m)| truthy(m.get("attributes").and_then(|a| a.get("top"))))
        .collect();
    match (flagged.len(), modules.len()) {
        (1, _) => Ok((flagged[0].0.as_str(), &flagged[0].1)),
        (_, 1) => Ok((modules[0].0.as_str(), &modules[0].1)),
        _ => Err(ImportError::new(format!(
            "cannot choose a top module (none marked with the `top` attribute); \
             specify one of: {}",
            module_list(modules)
        ))),
    }
}

fn module_list(modules: &[(String, JsonValue)]) -> String {
    modules
        .iter()
        .map(|(n, _)| format!("`{n}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Where one Yosys bit-id gets its value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BitSource {
    /// Bit `bit` of signal `sig`.
    Ref { sig: SignalId, bit: u32 },
    /// A constant bit (`"0"`, `"1"`, `"x"`, `"z"` in the bits list).
    Const(LogicBit),
}

/// A maximal homogeneous chunk of a reassembled bus (LSB-first).
#[derive(Debug)]
enum Run {
    /// Consecutive ascending bits `lo..=hi` of one signal.
    Seq { sig: SignalId, lo: u32, hi: u32 },
    /// One bit of a signal repeated `n` times (sign extension).
    Rep { sig: SignalId, bit: u32, n: u32 },
    /// A literal chunk.
    Lit(Vec<LogicBit>),
}

struct Importer<'a> {
    module_name: &'a str,
    module: &'a JsonValue,
    b: DesignBuilder,
    /// Yosys bit-id → current source (readers resolve through this; named
    /// net aliases remap entries so reads go through the faultable signal).
    bits: HashMap<u64, BitSource>,
    /// Yosys bit-id → name of the port/cell driving it (driver conflicts).
    driver_of: HashMap<u64, String>,
    /// Cell name → the signal its output drives.
    out_sigs: HashMap<&'a str, SignalId>,
    port_names: Vec<&'a str>,
    /// `(name, bits, hidden)` from `netnames`.
    netnames: Vec<(&'a str, &'a [JsonValue], bool)>,
    temp_counter: u32,
}

const EMPTY_OBJ: &[(String, JsonValue)] = &[];

fn obj_of(v: Option<&JsonValue>) -> &[(String, JsonValue)] {
    v.and_then(|v| v.as_obj()).unwrap_or(EMPTY_OBJ)
}

impl<'a> Importer<'a> {
    fn new(module_name: &'a str, module: &'a JsonValue) -> Self {
        Importer {
            module_name,
            module,
            b: DesignBuilder::new(module_name),
            bits: HashMap::new(),
            driver_of: HashMap::new(),
            out_sigs: HashMap::new(),
            port_names: Vec::new(),
            netnames: Vec::new(),
            temp_counter: 0,
        }
    }

    fn run(mut self) -> Result<Design, ImportError> {
        for (name, net) in obj_of(self.module.get("netnames")) {
            let bits = net
                .get("bits")
                .and_then(|b| b.as_arr())
                .ok_or_else(|| self.merr(format!("netname `{name}` has no `bits` list")))?;
            let hidden = matches!(net.get("hide_name"), Some(JsonValue::Num(n)) if *n != 0.0);
            self.netnames.push((name.as_str(), bits, hidden));
        }
        let deferred_outputs = self.declare_ports()?;
        self.declare_cell_outputs()?;
        self.alias_named_nets()?;
        self.emit_cells()?;
        for (name, bits) in deferred_outputs {
            let sources = self.resolve(bits, &format!("output port `{name}`"))?;
            let port = self.b.add_port(name, bits.len() as u32, PortDir::Output);
            self.drive_from_sources(&sources, port);
        }
        let module_name = self.module_name;
        self.b
            .finish()
            .map_err(|e| ImportError::new(format!("module `{module_name}` did not elaborate: {e}")))
    }

    fn merr(&self, msg: impl fmt::Display) -> ImportError {
        ImportError::new(format!("module `{}`: {msg}", self.module_name))
    }

    /// Best-effort name for the net a bit-id belongs to, for diagnostics.
    fn net_label(&self, id: u64) -> String {
        for (name, bits, hidden) in &self.netnames {
            if *hidden {
                continue;
            }
            if let Some(i) = bits.iter().position(|b| b.as_u64() == Some(id)) {
                return if bits.len() == 1 {
                    format!("`{name}`")
                } else {
                    format!("`{name}[{i}]`")
                };
            }
        }
        format!("`$net{id}`")
    }

    fn temp(&mut self, width: u32) -> SignalId {
        self.temp_counter += 1;
        self.b.add_temp(format!("$nl${}", self.temp_counter), width)
    }

    /// Phase A: input ports become primary-input signals and map their
    /// bits; output ports are deferred until everything else is driven.
    fn declare_ports(&mut self) -> Result<Vec<(&'a str, &'a [JsonValue])>, ImportError> {
        let mut deferred = Vec::new();
        for (name, port) in obj_of(self.module.get("ports")) {
            self.port_names.push(name.as_str());
            let dir = port.get("direction").and_then(|d| d.as_str()).unwrap_or("");
            let bits = port
                .get("bits")
                .and_then(|b| b.as_arr())
                .ok_or_else(|| self.merr(format!("port `{name}` has no `bits` list")))?;
            if bits.is_empty() {
                return Err(self.merr(format!("port `{name}` is zero bits wide")));
            }
            match dir {
                "input" => {
                    let sig = self.b.add_port(name, bits.len() as u32, PortDir::Input);
                    for (i, bit) in bits.iter().enumerate() {
                        let id = bit.as_u64().ok_or_else(|| {
                            self.merr(format!(
                                "input port `{name}` bit {i} is a constant, not a net"
                            ))
                        })?;
                        self.claim(id, format!("input port `{name}`"))?;
                        self.bits.insert(id, BitSource::Ref { sig, bit: i as u32 });
                    }
                }
                "output" => deferred.push((name.as_str(), bits)),
                other => {
                    return Err(self.merr(format!(
                        "port `{name}` has unsupported direction `{other}` \
                         (only input/output)"
                    )))
                }
            }
        }
        Ok(deferred)
    }

    fn claim(&mut self, id: u64, driver: String) -> Result<(), ImportError> {
        if let Some(prev) = self.driver_of.get(&id) {
            return Err(self.merr(format!(
                "net {} has multiple drivers: {prev} and {driver}",
                self.net_label(id)
            )));
        }
        self.driver_of.insert(id, driver);
        Ok(())
    }

    /// Phase B: every cell output gets its signal up front (named after an
    /// exactly-matching visible net when one exists, synthetic otherwise),
    /// so cell inputs can resolve in any order in phase D.
    fn declare_cell_outputs(&mut self) -> Result<(), ImportError> {
        // Cheap copy (the tuples are Copy refs into the document) so the
        // name search below doesn't hold a borrow of `self`.
        let netnames = self.netnames.clone();
        let mut used_names: Vec<&str> = Vec::new();
        for (cell_name, cell) in obj_of(self.module.get("cells")) {
            let ty = cell
                .get("type")
                .and_then(|t| t.as_str())
                .ok_or_else(|| self.merr(format!("cell `{cell_name}` has no type")))?;
            let out_port = match output_port_of(ty) {
                Some(p) => p,
                None => return Err(self.unsupported_cell(cell_name, ty, cell)),
            };
            let out_bits = self.conn(cell, cell_name, out_port)?;
            let width = out_bits.len() as u32;
            let kind = if is_dff(ty) {
                SignalKind::Reg
            } else {
                SignalKind::Wire
            };
            // A visible netname that is exactly this output (and is not a
            // port) names the signal — and makes it a fault site.
            let matching = netnames.iter().find(|&&(n, bits, hidden)| {
                !hidden
                    && bits == out_bits
                    && !self.port_names.contains(&n)
                    && !used_names.contains(&n)
            });
            let sig = match matching {
                Some(&(n, _, _)) => {
                    used_names.push(n);
                    self.b.add_signal(n, width, kind)
                }
                None => self.b.add_signal_full(
                    format!("{cell_name}${out_port}"),
                    width,
                    kind,
                    None,
                    true,
                ),
            };
            for (i, bit) in out_bits.iter().enumerate() {
                let id = bit.as_u64().ok_or_else(|| {
                    self.merr(format!(
                        "cell `{cell_name}` output `{out_port}` bit {i} is a constant"
                    ))
                })?;
                self.claim(id, format!("cell `{cell_name}`"))?;
                self.bits.insert(id, BitSource::Ref { sig, bit: i as u32 });
            }
            self.out_sigs.insert(cell_name.as_str(), sig);
        }
        Ok(())
    }

    fn unsupported_cell(&self, cell_name: &str, ty: &str, cell: &JsonValue) -> ImportError {
        // Find any output connection so the message can name the net.
        let mut net = String::from("<unknown net>");
        let dirs = obj_of(cell.get("port_directions"));
        for (port, d) in dirs {
            if d.as_str() == Some("output") {
                if let Some(bits) = cell.get("connections").and_then(|c| c.get(port)) {
                    if let Some(first) = bits.as_arr().and_then(|b| b.first()) {
                        if let Some(id) = first.as_u64() {
                            net = self.net_label(id);
                        }
                    }
                }
                break;
            }
        }
        if !ty.starts_with('$') {
            return self.merr(format!(
                "cell `{cell_name}` instantiates submodule `{ty}` (output net {net}); \
                 hierarchical netlists are not supported — flatten first with \
                 `yosys -p 'prep; flatten; write_json'`"
            ));
        }
        self.merr(format!(
            "cell `{cell_name}` has unsupported type `{ty}` (output net {net}); \
             supported cells: word-level $buf/$not/$neg/$and/$or/$xor/$xnor/$add/$sub/\
             $mul/$div/$mod/$shl/$shr/$sshr/$mux/$eq/$ne/$lt/$le/$gt/$ge/$reduce_*/\
             $logic_*/$dff/$dffe/$adff/$sdff and the simple-gate library"
        ))
    }

    /// Phase C: visible multi-cell nets become named alias wires, and the
    /// bit map is redirected through them so readers (and faults) see the
    /// named net.
    fn alias_named_nets(&mut self) -> Result<(), ImportError> {
        let netnames = self.netnames.clone();
        for &(name, bits, hidden) in &netnames {
            if hidden || self.port_names.contains(&name) || bits.is_empty() {
                continue;
            }
            if self.b.find_signal(name).is_some() {
                continue; // already the name of a cell output
            }
            // Skip nets with undriven bits: if a cell actually reads one,
            // phase D reports it against that cell.
            let Some(sources) = self.try_resolve(bits) else {
                continue;
            };
            if let [BitSource::Ref { sig, bit: 0 }, ..] = sources[..] {
                let whole = sources.len() as u32 == self.b.signal_width(sig)
                    && sources
                        .iter()
                        .enumerate()
                        .all(|(i, s)| *s == BitSource::Ref { sig, bit: i as u32 });
                if whole {
                    continue; // exactly an existing signal; nothing to add
                }
            }
            let mut drivers: Vec<SignalId> = Vec::new();
            for s in &sources {
                if let BitSource::Ref { sig, .. } = *s {
                    if !drivers.contains(&sig) {
                        drivers.push(sig);
                    }
                }
            }
            if drivers.len() <= 1 {
                // All bits come from one driver (or constants): a whole-bus
                // alias adds no dependence edges beyond that driver.
                let alias = self.b.add_signal(name, bits.len() as u32, SignalKind::Wire);
                self.drive_from_sources(&sources, alias);
                for (i, bit) in bits.iter().enumerate() {
                    if let Some(id) = bit.as_u64() {
                        self.bits.insert(
                            id,
                            BitSource::Ref {
                                sig: alias,
                                bit: i as u32,
                            },
                        );
                    }
                }
            } else {
                // A collector net (bits from several cells). Aliasing it as
                // one bus would make every per-bit reader depend on every
                // driver — a named ripple-carry bus would then read as a
                // combinational cycle. Alias bit by bit instead; each bit
                // stays individually named (and faultable).
                for (i, (src, bit)) in sources.iter().zip(bits).enumerate() {
                    let BitSource::Ref { sig, bit: sb } = *src else {
                        continue;
                    };
                    let alias = self
                        .b
                        .add_signal(format!("{name}[{i}]"), 1, SignalKind::Wire);
                    if self.b.signal_width(sig) == 1 && sb == 0 {
                        self.b.add_rtl_node(RtlOp::Buf, vec![sig], alias);
                    } else {
                        self.b
                            .add_rtl_node(RtlOp::Slice { hi: sb, lo: sb }, vec![sig], alias);
                    }
                    if let Some(id) = bit.as_u64() {
                        self.bits.insert(id, BitSource::Ref { sig: alias, bit: 0 });
                    }
                }
            }
        }
        Ok(())
    }

    fn try_resolve(&self, bits: &[JsonValue]) -> Option<Vec<BitSource>> {
        bits.iter()
            .map(|b| match b {
                JsonValue::Num(_) => self.bits.get(&b.as_u64()?).copied(),
                JsonValue::Str(s) => const_bit(s).map(BitSource::Const),
                _ => None,
            })
            .collect()
    }

    fn resolve(&self, bits: &[JsonValue], reader: &str) -> Result<Vec<BitSource>, ImportError> {
        bits.iter()
            .map(|b| match b {
                JsonValue::Num(_) => {
                    let id = b
                        .as_u64()
                        .ok_or_else(|| self.merr(format!("{reader} reads a non-integer net id")))?;
                    self.bits.get(&id).copied().ok_or_else(|| {
                        self.merr(format!(
                            "{reader} reads net {} which has no driver",
                            self.net_label(id)
                        ))
                    })
                }
                JsonValue::Str(s) => const_bit(s)
                    .map(BitSource::Const)
                    .ok_or_else(|| self.merr(format!("{reader} reads invalid constant bit `{s}`"))),
                _ => Err(self.merr(format!("{reader} has a malformed bits list"))),
            })
            .collect()
    }

    fn conn<'c>(
        &self,
        cell: &'c JsonValue,
        cell_name: &str,
        port: &str,
    ) -> Result<&'c [JsonValue], ImportError> {
        cell.get("connections")
            .and_then(|c| c.get(port))
            .and_then(|b| b.as_arr())
            .ok_or_else(|| {
                self.merr(format!(
                    "cell `{cell_name}` has no connection for port `{port}`"
                ))
            })
    }

    // ----- bus reassembly -------------------------------------------------

    fn group_runs(&self, sources: &[BitSource]) -> Vec<Run> {
        let mut runs: Vec<Run> = Vec::new();
        for &src in sources {
            enum Act {
                Push,
                ExtSeq,
                ExtLit,
                ExtRep,
                ToRep,
            }
            let act = match (runs.last(), src) {
                (Some(Run::Lit(_)), BitSource::Const(_)) => Act::ExtLit,
                (Some(&Run::Seq { sig, lo, hi }), BitSource::Ref { sig: s2, bit })
                    if sig == s2 && lo == hi && bit == hi =>
                {
                    Act::ToRep
                }
                (Some(&Run::Seq { sig, hi, .. }), BitSource::Ref { sig: s2, bit })
                    if sig == s2 && bit == hi + 1 =>
                {
                    Act::ExtSeq
                }
                (Some(&Run::Rep { sig, bit, .. }), BitSource::Ref { sig: s2, bit: b2 })
                    if sig == s2 && bit == b2 =>
                {
                    Act::ExtRep
                }
                _ => Act::Push,
            };
            match (act, src) {
                (Act::ExtLit, BitSource::Const(c)) => {
                    if let Some(Run::Lit(v)) = runs.last_mut() {
                        v.push(c);
                    }
                }
                (Act::ExtSeq, _) => {
                    if let Some(Run::Seq { hi, .. }) = runs.last_mut() {
                        *hi += 1;
                    }
                }
                (Act::ExtRep, _) => {
                    if let Some(Run::Rep { n, .. }) = runs.last_mut() {
                        *n += 1;
                    }
                }
                (Act::ToRep, BitSource::Ref { sig, bit }) => {
                    *runs.last_mut().expect("run exists") = Run::Rep { sig, bit, n: 2 };
                }
                (_, BitSource::Const(c)) => runs.push(Run::Lit(vec![c])),
                (_, BitSource::Ref { sig, bit }) => runs.push(Run::Seq {
                    sig,
                    lo: bit,
                    hi: bit,
                }),
            }
        }
        runs
    }

    /// A signal carrying `run`'s bits, creating slice/const/replicate
    /// temps as needed.
    fn run_signal(&mut self, run: &Run) -> SignalId {
        match *run {
            Run::Seq { sig, lo, hi } => {
                if lo == 0 && hi + 1 == self.b.signal_width(sig) {
                    sig
                } else {
                    let t = self.temp(hi - lo + 1);
                    self.b.add_rtl_node(RtlOp::Slice { hi, lo }, vec![sig], t);
                    t
                }
            }
            Run::Rep { sig, bit, n } => {
                let one = self.bit_of(sig, bit);
                let t = self.temp(n);
                self.b.add_rtl_node(RtlOp::Replicate(n), vec![one], t);
                t
            }
            Run::Lit(ref bits) => {
                let t = self.temp(bits.len() as u32);
                self.b
                    .add_rtl_node(RtlOp::Const(LogicVec::from_bits(bits)), vec![], t);
                t
            }
        }
    }

    fn bit_of(&mut self, sig: SignalId, bit: u32) -> SignalId {
        if self.b.signal_width(sig) == 1 && bit == 0 {
            sig
        } else {
            let t = self.temp(1);
            self.b
                .add_rtl_node(RtlOp::Slice { hi: bit, lo: bit }, vec![sig], t);
            t
        }
    }

    /// Emits nodes so `out` carries `sources` (LSB-first). A single run
    /// drives `out` directly; mixed runs concatenate (MSB-first inputs).
    fn drive_from_sources(&mut self, sources: &[BitSource], out: SignalId) {
        let runs = self.group_runs(sources);
        if runs.len() == 1 {
            match runs[0] {
                Run::Seq { sig, lo, hi } => {
                    if lo == 0 && hi + 1 == self.b.signal_width(sig) {
                        self.b.add_rtl_node(RtlOp::Buf, vec![sig], out);
                    } else {
                        self.b.add_rtl_node(RtlOp::Slice { hi, lo }, vec![sig], out);
                    }
                }
                Run::Rep { sig, bit, n } => {
                    let one = self.bit_of(sig, bit);
                    self.b.add_rtl_node(RtlOp::Replicate(n), vec![one], out);
                }
                Run::Lit(ref bits) => {
                    self.b
                        .add_rtl_node(RtlOp::Const(LogicVec::from_bits(bits)), vec![], out);
                }
            }
            return;
        }
        let mut parts: Vec<SignalId> = runs.iter().map(|r| self.run_signal(r)).collect();
        parts.reverse(); // Concat inputs are MSB-first; runs are LSB-first.
        self.b.add_rtl_node(RtlOp::Concat, parts, out);
    }

    /// A signal carrying `sources`, reusing an existing signal when the
    /// sources are exactly it.
    fn assemble(&mut self, sources: &[BitSource]) -> SignalId {
        if let [BitSource::Ref { sig, bit: 0 }] = sources[..] {
            if self.b.signal_width(sig) == 1 {
                return sig;
            }
        }
        let runs = self.group_runs(sources);
        if let [Run::Seq { sig, lo: 0, hi }] = runs[..] {
            if hi + 1 == self.b.signal_width(sig) {
                return sig;
            }
        }
        let t = self.temp(sources.len() as u32);
        self.drive_from_sources(sources, t);
        t
    }

    /// Truncates or extends `sources` to `width` bits; `signed` extends
    /// by repeating the MSB source, unsigned pads with zero.
    fn extend(&self, mut sources: Vec<BitSource>, width: u32, signed: bool) -> Vec<BitSource> {
        let width = width as usize;
        if sources.len() > width {
            sources.truncate(width);
        }
        let pad = match (signed, sources.last()) {
            (true, Some(&s)) => s,
            _ => BitSource::Const(LogicBit::Zero),
        };
        while sources.len() < width {
            sources.push(pad);
        }
        sources
    }

    /// Resolves cell port `port`, adapted to `width` bits.
    fn in_bus(
        &mut self,
        cell: &JsonValue,
        cell_name: &str,
        port: &str,
        width: u32,
        signed: bool,
    ) -> Result<SignalId, ImportError> {
        let bits = self.conn(cell, cell_name, port)?;
        let sources = self.resolve(bits, &format!("cell `{cell_name}` port `{port}`"))?;
        let sources = self.extend(sources, width, signed);
        Ok(self.assemble(&sources))
    }

    /// Resolves cell port `port` at its natural width.
    fn in_bus_natural(
        &mut self,
        cell: &JsonValue,
        cell_name: &str,
        port: &str,
    ) -> Result<SignalId, ImportError> {
        let bits = self.conn(cell, cell_name, port)?;
        let sources = self.resolve(bits, &format!("cell `{cell_name}` port `{port}`"))?;
        if sources.is_empty() {
            return Err(self.merr(format!("cell `{cell_name}` port `{port}` is zero bits")));
        }
        Ok(self.assemble(&sources))
    }

    /// Resolves a 1-bit control port (clock, enable, reset, mux select).
    fn in_bit(
        &mut self,
        cell: &JsonValue,
        cell_name: &str,
        port: &str,
    ) -> Result<SignalId, ImportError> {
        let bits = self.conn(cell, cell_name, port)?;
        let sources = self.resolve(bits, &format!("cell `{cell_name}` port `{port}`"))?;
        if sources.len() != 1 {
            return Err(self.merr(format!(
                "cell `{cell_name}` port `{port}` must be 1 bit, got {}",
                sources.len()
            )));
        }
        Ok(self.assemble(&sources))
    }

    // ----- parameters -----------------------------------------------------

    fn param_bool(&self, cell: &JsonValue, key: &str, default: bool) -> bool {
        match cell.get("parameters").and_then(|p| p.get(key)) {
            Some(JsonValue::Num(n)) => *n != 0.0,
            Some(JsonValue::Str(s)) => s.contains('1'),
            _ => default,
        }
    }

    /// A constant-valued parameter (e.g. `ARST_VALUE`) as a `width`-bit
    /// vector. Yosys encodes these as integers or MSB-first binary strings
    /// which may contain `x`/`z`.
    fn param_const(
        &self,
        cell: &JsonValue,
        cell_name: &str,
        key: &str,
        width: u32,
    ) -> Result<LogicVec, ImportError> {
        let v = cell
            .get("parameters")
            .and_then(|p| p.get(key))
            .ok_or_else(|| self.merr(format!("cell `{cell_name}` is missing parameter `{key}`")))?;
        let mut bits: Vec<LogicBit> = match v {
            JsonValue::Num(n) => {
                let n = *n as u64;
                (0..width)
                    .map(|i| {
                        if i < 64 && (n >> i) & 1 == 1 {
                            LogicBit::One
                        } else {
                            LogicBit::Zero
                        }
                    })
                    .collect()
            }
            JsonValue::Str(s) => s
                .chars()
                .rev()
                .map(|c| match c {
                    '0' => Ok(LogicBit::Zero),
                    '1' => Ok(LogicBit::One),
                    'x' | 'X' => Ok(LogicBit::X),
                    'z' | 'Z' => Ok(LogicBit::Z),
                    other => Err(self.merr(format!(
                        "cell `{cell_name}` parameter `{key}` has invalid bit `{other}`"
                    ))),
                })
                .collect::<Result<_, _>>()?,
            _ => {
                return Err(self.merr(format!(
                    "cell `{cell_name}` parameter `{key}` must be an int or bit string"
                )))
            }
        };
        bits.truncate(width as usize);
        while (bits.len() as u32) < width {
            bits.push(LogicBit::Zero);
        }
        Ok(LogicVec::from_bits(&bits))
    }

    // ----- cell emission --------------------------------------------------

    /// A 1-bit-result node into a possibly wider output (Yosys zero-pads
    /// comparison/reduction results to the Y width).
    fn emit_bool_node(&mut self, op: RtlOp, inputs: Vec<SignalId>, out: SignalId) {
        let wy = self.b.signal_width(out);
        if wy == 1 {
            self.b.add_rtl_node(op, inputs, out);
        } else {
            let t = self.temp(1);
            self.b.add_rtl_node(op, inputs, t);
            let z = self.temp(wy - 1);
            self.b
                .add_rtl_node(RtlOp::Const(LogicVec::zeros(wy - 1)), vec![], z);
            self.b.add_rtl_node(RtlOp::Concat, vec![z, t], out);
        }
    }

    /// The truthiness of a 1-bit control with the given active polarity.
    fn active(&self, sig: SignalId, active_high: bool) -> Expr {
        if active_high {
            Expr::sig(sig)
        } else {
            Expr::un(UnaryOp::LogicalNot, Expr::sig(sig))
        }
    }

    /// Phase D: one pass over the cells emitting RTL/behavioral nodes into
    /// the signals declared in phase B.
    fn emit_cells(&mut self) -> Result<(), ImportError> {
        for (cell_name, cell) in obj_of(self.module.get("cells")) {
            let ty = cell.get("type").and_then(|t| t.as_str()).unwrap_or("");
            let out = self.out_sigs[cell_name.as_str()];
            self.emit_cell(cell_name, ty, cell, out)?;
        }
        Ok(())
    }

    fn emit_cell(
        &mut self,
        name: &str,
        ty: &str,
        cell: &JsonValue,
        out: SignalId,
    ) -> Result<(), ImportError> {
        let wy = self.b.signal_width(out);
        let a_signed = self.param_bool(cell, "A_SIGNED", false);
        let b_signed = self.param_bool(cell, "B_SIGNED", false);
        match ty {
            "$buf" | "$pos" | "$_BUF_" => {
                let a = self.in_bus(cell, name, "A", wy, a_signed)?;
                self.b.add_rtl_node(RtlOp::Buf, vec![a], out);
            }
            "$not" | "$_NOT_" => {
                let a = self.in_bus(cell, name, "A", wy, a_signed)?;
                self.b
                    .add_rtl_node(RtlOp::Unary(UnaryOp::Not), vec![a], out);
            }
            "$neg" => {
                let a = self.in_bus(cell, name, "A", wy, a_signed)?;
                self.b
                    .add_rtl_node(RtlOp::Unary(UnaryOp::Neg), vec![a], out);
            }
            "$and" | "$or" | "$xor" | "$xnor" | "$add" | "$sub" | "$mul" | "$div" | "$mod"
            | "$_AND_" | "$_OR_" | "$_XOR_" | "$_XNOR_" => {
                if matches!(ty, "$div" | "$mod") && (a_signed || b_signed) {
                    return Err(self.merr(format!("cell `{name}`: signed `{ty}` is not supported")));
                }
                let op = match ty {
                    "$and" | "$_AND_" => BinaryOp::And,
                    "$or" | "$_OR_" => BinaryOp::Or,
                    "$xor" | "$_XOR_" => BinaryOp::Xor,
                    "$xnor" | "$_XNOR_" => BinaryOp::Xnor,
                    "$add" => BinaryOp::Add,
                    "$sub" => BinaryOp::Sub,
                    "$mul" => BinaryOp::Mul,
                    "$div" => BinaryOp::Div,
                    _ => BinaryOp::Rem,
                };
                let a = self.in_bus(cell, name, "A", wy, a_signed)?;
                let b2 = self.in_bus(cell, name, "B", wy, b_signed)?;
                self.b.add_rtl_node(RtlOp::Binary(op), vec![a, b2], out);
            }
            "$_NAND_" | "$_NOR_" => {
                let inner = if ty == "$_NAND_" {
                    BinaryOp::And
                } else {
                    BinaryOp::Or
                };
                let a = self.in_bus(cell, name, "A", wy, false)?;
                let b2 = self.in_bus(cell, name, "B", wy, false)?;
                let t = self.temp(wy);
                self.b.add_rtl_node(RtlOp::Binary(inner), vec![a, b2], t);
                self.b
                    .add_rtl_node(RtlOp::Unary(UnaryOp::Not), vec![t], out);
            }
            "$shl" | "$sshl" | "$shr" | "$sshr" => {
                if b_signed {
                    return Err(self.merr(format!(
                        "cell `{name}`: signed shift amounts are not supported"
                    )));
                }
                let op = match ty {
                    "$shl" | "$sshl" => BinaryOp::Shl,
                    "$sshr" if a_signed => BinaryOp::AShr,
                    _ => BinaryOp::Shr,
                };
                let a = self.in_bus(cell, name, "A", wy, a_signed)?;
                let amount = self.in_bus_natural(cell, name, "B")?;
                self.b.add_rtl_node(RtlOp::Binary(op), vec![a, amount], out);
            }
            "$mux" | "$_MUX_" => {
                let s = self.in_bit(cell, name, "S")?;
                let a = self.in_bus(cell, name, "A", wy, false)?;
                let b2 = self.in_bus(cell, name, "B", wy, false)?;
                // Yosys: Y = S ? B : A. RtlOp::Mux: [cond, then, else].
                self.b.add_rtl_node(RtlOp::Mux, vec![s, b2, a], out);
            }
            "$eq" | "$ne" | "$lt" | "$le" | "$gt" | "$ge" => {
                let op = match ty {
                    "$eq" => BinaryOp::Eq,
                    "$ne" => BinaryOp::Ne,
                    "$lt" => BinaryOp::Lt,
                    "$le" => BinaryOp::Le,
                    "$gt" => BinaryOp::Gt,
                    _ => BinaryOp::Ge,
                };
                if (a_signed || b_signed) && !matches!(ty, "$eq" | "$ne") {
                    return Err(self.merr(format!(
                        "cell `{name}`: signed ordered comparison `{ty}` is not supported"
                    )));
                }
                let wa = self.conn(cell, name, "A")?.len() as u32;
                let wb = self.conn(cell, name, "B")?.len() as u32;
                let w = wa.max(wb).max(1);
                let a = self.in_bus(cell, name, "A", w, a_signed)?;
                let b2 = self.in_bus(cell, name, "B", w, b_signed)?;
                self.emit_bool_node(RtlOp::Binary(op), vec![a, b2], out);
            }
            "$reduce_and" | "$reduce_or" | "$reduce_bool" | "$reduce_xor" => {
                let op = match ty {
                    "$reduce_and" => UnaryOp::RedAnd,
                    "$reduce_xor" => UnaryOp::RedXor,
                    _ => UnaryOp::RedOr,
                };
                let a = self.in_bus_natural(cell, name, "A")?;
                self.emit_bool_node(RtlOp::Unary(op), vec![a], out);
            }
            "$reduce_xnor" => {
                let a = self.in_bus_natural(cell, name, "A")?;
                let t = self.temp(1);
                self.b
                    .add_rtl_node(RtlOp::Unary(UnaryOp::RedXor), vec![a], t);
                self.emit_bool_node(RtlOp::Unary(UnaryOp::Not), vec![t], out);
            }
            "$logic_not" => {
                let a = self.in_bus_natural(cell, name, "A")?;
                self.emit_bool_node(RtlOp::Unary(UnaryOp::LogicalNot), vec![a], out);
            }
            "$logic_and" | "$logic_or" => {
                let op = if ty == "$logic_and" {
                    BinaryOp::LogicalAnd
                } else {
                    BinaryOp::LogicalOr
                };
                let a = self.in_bus_natural(cell, name, "A")?;
                let b2 = self.in_bus_natural(cell, name, "B")?;
                self.emit_bool_node(RtlOp::Binary(op), vec![a, b2], out);
            }
            "$dff" | "$dffe" | "$adff" | "$sdff" | "$_DFF_P_" | "$_DFF_N_" => {
                self.emit_dff(name, ty, cell, out)?;
            }
            _ => return Err(self.unsupported_cell(name, ty, cell)),
        }
        Ok(())
    }

    fn emit_dff(
        &mut self,
        name: &str,
        ty: &str,
        cell: &JsonValue,
        q: SignalId,
    ) -> Result<(), ImportError> {
        let wq = self.b.signal_width(q);
        // Simple-gate DFFs use port C with polarity in the type name.
        let (clk_port, clk_pol) = match ty {
            "$_DFF_P_" => ("C", true),
            "$_DFF_N_" => ("C", false),
            _ => ("CLK", self.param_bool(cell, "CLK_POLARITY", true)),
        };
        let clk = self.in_bit(cell, name, clk_port)?;
        let d_bits = self.conn(cell, name, "D")?;
        let d_sources = self.resolve(d_bits, &format!("cell `{name}` port `D`"))?;
        let d_sources = self.extend(d_sources, wq, false);
        let d = self.assemble(&d_sources);
        let clk_edge = if clk_pol {
            EdgeKind::Pos
        } else {
            EdgeKind::Neg
        };
        let load = Stmt::assign(q, Expr::sig(d), false);
        let (sensitivity, body) = match ty {
            "$dffe" => {
                let en = self.in_bit(cell, name, "EN")?;
                let en_pol = self.param_bool(cell, "EN_POLARITY", true);
                (
                    Sensitivity::Edges(vec![(clk_edge, clk)]),
                    Stmt::if_then(self.active(en, en_pol), load),
                )
            }
            "$adff" => {
                let arst = self.in_bit(cell, name, "ARST")?;
                let arst_pol = self.param_bool(cell, "ARST_POLARITY", true);
                let arst_val = self.param_const(cell, name, "ARST_VALUE", wq)?;
                let arst_edge = if arst_pol {
                    EdgeKind::Pos
                } else {
                    EdgeKind::Neg
                };
                (
                    Sensitivity::Edges(vec![(clk_edge, clk), (arst_edge, arst)]),
                    Stmt::if_else(
                        self.active(arst, arst_pol),
                        Stmt::assign(q, Expr::Const(arst_val), false),
                        load,
                    ),
                )
            }
            "$sdff" => {
                let srst = self.in_bit(cell, name, "SRST")?;
                let srst_pol = self.param_bool(cell, "SRST_POLARITY", true);
                let srst_val = self.param_const(cell, name, "SRST_VALUE", wq)?;
                (
                    Sensitivity::Edges(vec![(clk_edge, clk)]),
                    Stmt::if_else(
                        self.active(srst, srst_pol),
                        Stmt::assign(q, Expr::Const(srst_val), false),
                        load,
                    ),
                )
            }
            _ => (Sensitivity::Edges(vec![(clk_edge, clk)]), load),
        };
        self.b.add_behavioral(name, sensitivity, body);
        Ok(())
    }
}

/// The output port name of a supported cell type, `None` if unsupported.
fn output_port_of(ty: &str) -> Option<&'static str> {
    if is_dff(ty) {
        return Some("Q");
    }
    match ty {
        "$buf" | "$pos" | "$not" | "$neg" | "$and" | "$or" | "$xor" | "$xnor" | "$add" | "$sub"
        | "$mul" | "$div" | "$mod" | "$shl" | "$sshl" | "$shr" | "$sshr" | "$mux" | "$eq"
        | "$ne" | "$lt" | "$le" | "$gt" | "$ge" | "$reduce_and" | "$reduce_or" | "$reduce_bool"
        | "$reduce_xor" | "$reduce_xnor" | "$logic_not" | "$logic_and" | "$logic_or" | "$_BUF_"
        | "$_NOT_" | "$_AND_" | "$_NAND_" | "$_OR_" | "$_NOR_" | "$_XOR_" | "$_XNOR_"
        | "$_MUX_" => Some("Y"),
        _ => None,
    }
}

fn is_dff(ty: &str) -> bool {
    matches!(
        ty,
        "$dff" | "$dffe" | "$adff" | "$sdff" | "$_DFF_P_" | "$_DFF_N_"
    )
}

fn const_bit(s: &str) -> Option<LogicBit> {
    match s {
        "0" => Some(LogicBit::Zero),
        "1" => Some(LogicBit::One),
        "x" | "X" => Some(LogicBit::X),
        "z" | "Z" => Some(LogicBit::Z),
        _ => None,
    }
}
