//! # eraser-netlist
//!
//! Yosys-JSON netlist intake for the ERASER framework: any design Yosys
//! can elaborate (`yosys -p 'prep; write_json out.json'`) becomes a
//! fault-simulation target, without adding a dependency.
//!
//! Two layers:
//!
//! * [`json`] — a minimal order-preserving JSON parser with line/column
//!   errors;
//! * [`import_str`]/[`import_path`] — the cell mapper, turning Yosys
//!   word-level cells and the simple-gate library into the same
//!   `DesignBuilder` RTL nodes the Verilog frontend emits, reassembling
//!   multi-bit buses from bit-indexed connections and materializing every
//!   visible named net as a fault-injection site.

#![warn(missing_docs)]

pub mod json;

mod import;

pub use import::{import_path, import_str, ImportError};

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_ir::SignalKind;

    /// A 2-bit counter from word-level cells:
    /// `q <= rst ? 0 : q + 1` with an async-reset flop.
    const COUNTER2: &str = r#"{
      "modules": {
        "counter2": {
          "attributes": { "top": 1 },
          "ports": {
            "clk": { "direction": "input", "bits": [2] },
            "rst": { "direction": "input", "bits": [3] },
            "q":   { "direction": "output", "bits": [4, 5] }
          },
          "cells": {
            "add0": {
              "type": "$add",
              "parameters": { "A_SIGNED": 0, "B_SIGNED": 0 },
              "port_directions": { "A": "input", "B": "input", "Y": "output" },
              "connections": { "A": [4, 5], "B": ["1", "0"], "Y": [6, 7] }
            },
            "ff0": {
              "type": "$adff",
              "parameters": {
                "CLK_POLARITY": 1, "ARST_POLARITY": 1, "ARST_VALUE": "00"
              },
              "port_directions": {
                "CLK": "input", "ARST": "input", "D": "input", "Q": "output"
              },
              "connections": { "CLK": [2], "ARST": [3], "D": [6, 7], "Q": [4, 5] }
            }
          },
          "netnames": {
            "clk":  { "hide_name": 0, "bits": [2] },
            "rst":  { "hide_name": 0, "bits": [3] },
            "q":    { "hide_name": 0, "bits": [4, 5] },
            "next": { "hide_name": 0, "bits": [6, 7] }
          }
        }
      }
    }"#;

    #[test]
    fn imports_a_word_level_counter() {
        let d = import_str(COUNTER2, None).unwrap();
        assert_eq!(d.name(), "counter2");
        assert_eq!(d.inputs().len(), 2);
        assert_eq!(d.outputs().len(), 1);
        // The adder output carries the visible name `next` (a fault site).
        let next = d.find_signal("next").expect("named net `next`");
        assert!(!d.signal(next).synthetic);
        // The flop output is a reg and feeds the output port `q`.
        let q_port = d.find_signal("q").unwrap();
        assert_eq!(d.signal(q_port).width, 2);
        let regs = d
            .signals()
            .iter()
            .filter(|s| s.kind == SignalKind::Reg)
            .count();
        assert_eq!(regs, 1);
        assert_eq!(d.behavioral_nodes().len(), 1);
    }

    #[test]
    fn unsupported_cell_names_cell_and_net() {
        let text = COUNTER2.replace("$add", "$macc");
        let e = import_str(&text, None).unwrap_err();
        assert!(e.message.contains("$macc"), "{e}");
        assert!(e.message.contains("add0"), "{e}");
        assert!(e.message.contains("next"), "{e}");
    }

    #[test]
    fn hierarchical_cell_suggests_flatten() {
        let text = COUNTER2.replace("$add", "submod");
        let e = import_str(&text, None).unwrap_err();
        assert!(e.message.contains("submod"), "{e}");
        assert!(e.message.contains("flatten"), "{e}");
    }

    #[test]
    fn json_errors_carry_position() {
        let e = import_str("{\n  \"modules\": oops\n}", None).unwrap_err();
        assert_eq!(e.location.map(|(l, _)| l), Some(2));
    }

    #[test]
    fn multiple_drivers_rejected() {
        // Second flop claims the same Q bits.
        let text = COUNTER2.replace(
            r#""ff0": {"#,
            r#""ffdup": {
              "type": "$dff",
              "parameters": { "CLK_POLARITY": 1 },
              "port_directions": { "CLK": "input", "D": "input", "Q": "output" },
              "connections": { "CLK": [2], "D": [6, 7], "Q": [4, 5] }
            },
            "ff0": {"#,
        );
        let e = import_str(&text, None).unwrap_err();
        assert!(e.message.contains("multiple drivers"), "{e}");
    }
}
