//! Steady-state allocation guard.
//!
//! Runs the APB benchmark under a counting global allocator and asserts
//! that, after a warm-up phase that sizes every pooled buffer, the
//! simulation hot path — good-simulator stepping, the serial ERASER engine
//! (both driven step by step and through the full [`EraserEngine::run`]
//! campaign loop), and the per-worker engines of a 2-way fault-parallel
//! campaign (what each `ERASER_THREADS=2` worker executes) — performs
//! **zero** heap allocations, on **both** evaluation backends (tree walker
//! and compiled tapes). APB's signals all fit in 64 bits, so `LogicVec`
//! values stay inline and any allocation would come from a missing
//! buffer-reuse path — including a stimulus-value clone in `run()` or a
//! tape slot reused at the wrong storage shape.

use eraser_core::{EraserEngine, EvalBackend};
use eraser_designs::Benchmark;
use eraser_fault::{generate_faults, PartitionStrategy};
use eraser_logic::counting_alloc::CountingAlloc;
use eraser_sim::Simulator;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The allocation counter is process-global and even libtest's own
/// machinery (thread spawning, output capture) allocates concurrently
/// with running tests, so this binary opts out of the harness
/// (`harness = false` in `Cargo.toml`) and runs its checks strictly
/// sequentially from `main` — measured windows can never overlap with
/// any other allocation source.
fn main() {
    good_simulator_steady_state_is_allocation_free();
    println!("alloc_guard: good simulator ... ok");
    eraser_engine_steady_state_is_allocation_free();
    println!("alloc_guard: eraser engine ... ok");
    engine_run_path_is_clone_free();
    println!("alloc_guard: engine run() path ... ok");
    two_way_sharded_workers_are_allocation_free_in_steady_state();
    println!("alloc_guard: 2-way sharded workers ... ok");
    batched_engine_steady_state_is_allocation_free();
    println!("alloc_guard: batched engine ... ok");
    wide_design_steady_state_is_allocation_free();
    println!("alloc_guard: wide design (SHA-256) ... ok");
}

const WARMUP_CYCLES: usize = 100;
const MEASURED_CYCLES: usize = 100;

const BACKENDS: [EvalBackend; 2] = [EvalBackend::Tree, EvalBackend::Tape];

fn good_simulator_steady_state_is_allocation_free() {
    let design = Benchmark::Apb.build();
    let stim = Benchmark::Apb.stimulus_with_cycles(&design, WARMUP_CYCLES + MEASURED_CYCLES);
    for backend in BACKENDS {
        let mut sim = Simulator::with_backend(&design, backend);

        let apply = |sim: &mut Simulator, range: std::ops::Range<usize>| {
            for step in &stim.steps[range] {
                for (sig, val) in step {
                    sim.set_input(*sig, val);
                }
                sim.step();
            }
        };
        apply(&mut sim, 0..WARMUP_CYCLES);

        let before = CountingAlloc::allocations();
        apply(&mut sim, WARMUP_CYCLES..WARMUP_CYCLES + MEASURED_CYCLES);
        let after = CountingAlloc::allocations();
        assert_eq!(
            after - before,
            0,
            "good simulator ({backend} backend) allocated {} times in \
             {MEASURED_CYCLES} steady-state cycles",
            after - before
        );
    }
}

/// Drives `engine` through `range` of the stimulus with observation, the
/// way `EraserEngine::run` does.
fn drive(engine: &mut EraserEngine, stim: &eraser_sim::Stimulus, range: std::ops::Range<usize>) {
    for step in &stim.steps[range] {
        for (sig, val) in step {
            engine.set_input(*sig, val);
        }
        engine.step();
        engine.observe();
    }
}

fn eraser_engine_steady_state_is_allocation_free() {
    let design = Benchmark::Apb.build();
    let faults = generate_faults(&design, &Benchmark::Apb.fault_config());
    let stim = Benchmark::Apb.stimulus_with_cycles(&design, WARMUP_CYCLES + MEASURED_CYCLES);
    for backend in BACKENDS {
        let mut engine = EraserEngine::session(&design, &faults)
            .backend(backend)
            .start();

        drive(&mut engine, &stim, 0..WARMUP_CYCLES);

        let before = CountingAlloc::allocations();
        drive(
            &mut engine,
            &stim,
            WARMUP_CYCLES..WARMUP_CYCLES + MEASURED_CYCLES,
        );
        let after = CountingAlloc::allocations();
        assert_eq!(
            after - before,
            0,
            "ERASER engine ({backend} backend) allocated {} times in \
             {MEASURED_CYCLES} steady-state cycles",
            after - before
        );
    }
}

/// The full campaign loop — [`EraserEngine::run`] reading every stimulus
/// value by borrow — must be exactly as allocation-free as hand-driven
/// stepping: a clone per input drive would show up here immediately.
fn engine_run_path_is_clone_free() {
    let design = Benchmark::Apb.build();
    let faults = generate_faults(&design, &Benchmark::Apb.fault_config());
    let stim = Benchmark::Apb.stimulus_with_cycles(&design, WARMUP_CYCLES + MEASURED_CYCLES);
    for backend in BACKENDS {
        let mut engine = EraserEngine::session(&design, &faults)
            .backend(backend)
            .start();
        // Three hand-driven warm-up passes (`run` consumes the stimulus
        // from the engine's current step index, so re-running the same
        // engine over the same stimulus replays nothing): the first sizes
        // every pooled buffer, the later ones settle high-water marks that
        // shift as detected faults drop out and the replayed stimulus
        // meets new engine states. Hand-driving leaves the step index at
        // zero, so the measured `run` replays the full stimulus.
        for _ in 0..3 {
            drive(&mut engine, &stim, 0..WARMUP_CYCLES + MEASURED_CYCLES);
        }

        let before = CountingAlloc::allocations();
        engine.run(&stim);
        let after = CountingAlloc::allocations();
        assert_eq!(
            after - before,
            0,
            "EraserEngine::run ({backend} backend) allocated {} times over \
             a full steady-state stimulus pass",
            after - before
        );
    }
}

/// Bit-parallel fault batching adds lane planes, a slot list and the
/// width-classed scratch to the hot path; all of them must pool like every
/// other buffer. Checked on both backends with an explicit shared batch
/// program, the way `run_campaign --batch` wires engines.
fn batched_engine_steady_state_is_allocation_free() {
    let design = Benchmark::Apb.build();
    let faults = generate_faults(&design, &Benchmark::Apb.fault_config());
    let stim = Benchmark::Apb.stimulus_with_cycles(&design, WARMUP_CYCLES + MEASURED_CYCLES);
    let tapes = eraser_core::TapeProgram::compile(&design);
    let batch = eraser_core::BatchProgram::compile(&design);
    for backend in BACKENDS {
        let mut engine = EraserEngine::session(&design, &faults)
            .tapes(matches!(backend, EvalBackend::Tape).then_some(&tapes))
            .batch(Some(&batch))
            .start();

        drive(&mut engine, &stim, 0..WARMUP_CYCLES);

        let before = CountingAlloc::allocations();
        drive(
            &mut engine,
            &stim,
            WARMUP_CYCLES..WARMUP_CYCLES + MEASURED_CYCLES,
        );
        let after = CountingAlloc::allocations();
        assert_eq!(
            after - before,
            0,
            "batched ERASER engine ({backend} backend) allocated {} times in \
             {MEASURED_CYCLES} steady-state cycles",
            after - before
        );
    }
}

/// The >64-bit path: SHA-256 carries 512/256-bit signals whose `LogicVec`
/// values live in boxed word storage, so every scratch buffer that is
/// taken at the wrong width class forces a reshape — a reallocation. With
/// the width-classed `take_for` slab covering all engine call sites, the
/// good simulator and the ERASER engine must stay allocation-free in
/// steady state even when no buffer fits inline.
fn wide_design_steady_state_is_allocation_free() {
    // SHA-256 completes a block roughly every 216 cycles, and the
    // block-boundary paths (the 256-bit digest commit) are exactly the
    // ones that exercise boxed storage — warm up for more than two full
    // block periods so every width class has been pooled, then measure a
    // window that itself spans multiple block boundaries.
    const WIDE_WARMUP: usize = 450;
    const WIDE_MEASURED: usize = 450;
    let design = Benchmark::Sha256Hv.build();
    let faults = generate_faults(&design, &Benchmark::Sha256Hv.fault_config());
    let stim = Benchmark::Sha256Hv.stimulus_with_cycles(&design, WIDE_WARMUP + WIDE_MEASURED);
    for backend in BACKENDS {
        let mut sim = Simulator::with_backend(&design, backend);
        for step in &stim.steps[0..WIDE_WARMUP] {
            for (sig, val) in step {
                sim.set_input(*sig, val);
            }
            sim.step();
        }
        let before = CountingAlloc::allocations();
        for step in &stim.steps[WIDE_WARMUP..WIDE_WARMUP + WIDE_MEASURED] {
            for (sig, val) in step {
                sim.set_input(*sig, val);
            }
            sim.step();
        }
        let after = CountingAlloc::allocations();
        assert_eq!(
            after - before,
            0,
            "wide-design good simulator ({backend} backend) allocated {} times in \
             {WIDE_MEASURED} steady-state cycles",
            after - before
        );

        let mut engine = EraserEngine::session(&design, &faults)
            .backend(backend)
            .start();
        drive(&mut engine, &stim, 0..WIDE_WARMUP);

        let before = CountingAlloc::allocations();
        drive(&mut engine, &stim, WIDE_WARMUP..WIDE_WARMUP + WIDE_MEASURED);
        let after = CountingAlloc::allocations();
        assert_eq!(
            after - before,
            0,
            "wide-design ERASER engine ({backend} backend) allocated {} times in \
             {WIDE_MEASURED} steady-state cycles",
            after - before
        );
    }
}

fn two_way_sharded_workers_are_allocation_free_in_steady_state() {
    // The per-worker hot loop of an ERASER_THREADS=2 campaign: each worker
    // owns one site-affinity shard and steps its own engine. Thread spawn
    // and result merging are per-campaign setup, not steady state, so the
    // guard drives both shard engines directly. On the tape backend the
    // workers share one campaign-level program, exactly as `run_campaign`
    // wires them.
    let design = Benchmark::Apb.build();
    let faults = generate_faults(&design, &Benchmark::Apb.fault_config());
    let stim = Benchmark::Apb.stimulus_with_cycles(&design, WARMUP_CYCLES + MEASURED_CYCLES);
    let shards = faults.partition(2, PartitionStrategy::SiteAffinity);
    assert_eq!(shards.len(), 2);

    let tapes = eraser_core::TapeProgram::compile(&design);
    for backend in BACKENDS {
        let mut engines: Vec<EraserEngine> = shards
            .iter()
            .map(|s| match backend {
                EvalBackend::Tree => EraserEngine::session(&design, &s.list)
                    .backend(backend)
                    .start(),
                EvalBackend::Tape => EraserEngine::session(&design, &s.list)
                    .tapes(Some(&tapes))
                    .start(),
            })
            .collect();
        for engine in &mut engines {
            drive(engine, &stim, 0..WARMUP_CYCLES);
        }

        let before = CountingAlloc::allocations();
        for engine in &mut engines {
            drive(
                engine,
                &stim,
                WARMUP_CYCLES..WARMUP_CYCLES + MEASURED_CYCLES,
            );
        }
        let after = CountingAlloc::allocations();
        assert_eq!(
            after - before,
            0,
            "sharded workers ({backend} backend) allocated {} times in \
             {MEASURED_CYCLES} steady-state cycles",
            after - before
        );
    }
}
