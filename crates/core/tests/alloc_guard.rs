//! Steady-state allocation guard.
//!
//! Runs the APB benchmark under a counting global allocator and asserts
//! that, after a warm-up phase that sizes every pooled buffer, the
//! simulation hot path — good-simulator stepping, the serial ERASER engine,
//! and the per-worker engines of a 2-way fault-parallel campaign (what each
//! `ERASER_THREADS=2` worker executes) — performs **zero** heap
//! allocations. APB's signals all fit in 64 bits, so `LogicVec` values stay
//! inline and any allocation would come from a missing buffer-reuse path.

use eraser_core::{EraserEngine, RedundancyMode};
use eraser_designs::Benchmark;
use eraser_fault::{generate_faults, PartitionStrategy};
use eraser_logic::counting_alloc::CountingAlloc;
use eraser_sim::Simulator;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WARMUP_CYCLES: usize = 100;
const MEASURED_CYCLES: usize = 100;

#[test]
fn good_simulator_steady_state_is_allocation_free() {
    let design = Benchmark::Apb.build();
    let stim = Benchmark::Apb.stimulus_with_cycles(&design, WARMUP_CYCLES + MEASURED_CYCLES);
    let mut sim = Simulator::new(&design);

    let apply = |sim: &mut Simulator, range: std::ops::Range<usize>| {
        for step in &stim.steps[range] {
            for (sig, val) in step {
                sim.set_input(*sig, val.clone());
            }
            sim.step();
        }
    };
    apply(&mut sim, 0..WARMUP_CYCLES);

    let before = CountingAlloc::allocations();
    apply(&mut sim, WARMUP_CYCLES..WARMUP_CYCLES + MEASURED_CYCLES);
    let after = CountingAlloc::allocations();
    assert_eq!(
        after - before,
        0,
        "good simulator allocated {} times in {MEASURED_CYCLES} steady-state cycles",
        after - before
    );
}

/// Drives `engine` through `range` of the stimulus with observation, the
/// way `EraserEngine::run` does.
fn drive(engine: &mut EraserEngine, stim: &eraser_sim::Stimulus, range: std::ops::Range<usize>) {
    for step in &stim.steps[range] {
        for (sig, val) in step {
            engine.set_input(*sig, val.clone());
        }
        engine.step();
        engine.observe();
    }
}

#[test]
fn eraser_engine_steady_state_is_allocation_free() {
    let design = Benchmark::Apb.build();
    let faults = generate_faults(&design, &Benchmark::Apb.fault_config());
    let stim = Benchmark::Apb.stimulus_with_cycles(&design, WARMUP_CYCLES + MEASURED_CYCLES);
    let mut engine = EraserEngine::new(&design, &faults, RedundancyMode::Full, true);

    drive(&mut engine, &stim, 0..WARMUP_CYCLES);

    let before = CountingAlloc::allocations();
    drive(
        &mut engine,
        &stim,
        WARMUP_CYCLES..WARMUP_CYCLES + MEASURED_CYCLES,
    );
    let after = CountingAlloc::allocations();
    assert_eq!(
        after - before,
        0,
        "ERASER engine allocated {} times in {MEASURED_CYCLES} steady-state cycles",
        after - before
    );
}

#[test]
fn two_way_sharded_workers_are_allocation_free_in_steady_state() {
    // The per-worker hot loop of an ERASER_THREADS=2 campaign: each worker
    // owns one site-affinity shard and steps its own engine. Thread spawn
    // and result merging are per-campaign setup, not steady state, so the
    // guard drives both shard engines directly.
    let design = Benchmark::Apb.build();
    let faults = generate_faults(&design, &Benchmark::Apb.fault_config());
    let stim = Benchmark::Apb.stimulus_with_cycles(&design, WARMUP_CYCLES + MEASURED_CYCLES);
    let shards = faults.partition(2, PartitionStrategy::SiteAffinity);
    assert_eq!(shards.len(), 2);

    let mut engines: Vec<EraserEngine> = shards
        .iter()
        .map(|s| EraserEngine::new(&design, &s.list, RedundancyMode::Full, true))
        .collect();
    for engine in &mut engines {
        drive(engine, &stim, 0..WARMUP_CYCLES);
    }

    let before = CountingAlloc::allocations();
    for engine in &mut engines {
        drive(
            engine,
            &stim,
            WARMUP_CYCLES..WARMUP_CYCLES + MEASURED_CYCLES,
        );
    }
    let after = CountingAlloc::allocations();
    assert_eq!(
        after - before,
        0,
        "sharded workers allocated {} times in {MEASURED_CYCLES} steady-state cycles",
        after - before
    );
}
