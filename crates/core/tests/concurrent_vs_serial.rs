//! Value-level cross-validation of the concurrent engine.
//!
//! Much stronger than coverage parity: for every fault, every named signal
//! and every stimulus step, the fault's value reconstructed from the
//! concurrent engine's diff lists must equal the value of an independent
//! serial simulation with the stuck-at imposed as a force. This exercises
//! the full concurrent machinery — diff propagation through RTL nodes,
//! explicit/implicit behavioral skipping with write replay, divergent
//! activation (gated clocks), suppressed activations, partial writes and
//! loop-carried locals.

use eraser_core::{EraserEngine, RedundancyMode};
use eraser_fault::{generate_faults, FaultListConfig};
use eraser_frontend::compile;
use eraser_ir::Design;
use eraser_logic::LogicVec;
use eraser_sim::{Simulator, StimulusBuilder};

fn value_parity(design: &Design, stim: &eraser_sim::Stimulus, mode: RedundancyMode) {
    let faults = generate_faults(
        design,
        &FaultListConfig {
            exclude_names: vec!["clk".into(), "rst".into()],
            ..Default::default()
        },
    );
    // Concurrent engine over the whole batch (no dropping: values must
    // match to the end).
    let mut engine = EraserEngine::new(design, &faults, mode, false);
    // One forced serial simulator per fault.
    let mut serials: Vec<Simulator> = faults
        .iter()
        .map(|f| {
            let mut s = Simulator::new(design);
            s.add_force(f.signal, f.bit, f.stuck.bit());
            s.step();
            s
        })
        .collect();
    let named: Vec<_> = (0..design.num_signals())
        .map(eraser_ir::SignalId::from_index)
        .filter(|s| !design.signal(*s).synthetic)
        .collect();
    for (si, step) in stim.steps.iter().enumerate() {
        for (sig, v) in step {
            engine.set_input(*sig, v);
            for s in serials.iter_mut() {
                s.set_input(*sig, v);
            }
        }
        engine.step();
        for s in serials.iter_mut() {
            s.step();
        }
        for f in faults.iter() {
            for &sig in &named {
                let conc = engine.fault_value(sig, f.id);
                let ser = serials[f.id.index()].value(sig);
                assert_eq!(
                    &conc,
                    ser,
                    "step {si}, fault {} ({} bit {} {}), signal {}: concurrent {conc} vs serial {ser} (good {})",
                    f.id,
                    design.signal(f.signal).name,
                    f.bit,
                    f.stuck,
                    design.signal(sig).name,
                    engine.good_value(sig),
                );
            }
        }
    }
}

/// A deliberately nasty design: gated clock (divergent activations), an
/// async reset, partial writes through a loop, a casez decoder and
/// cross-feeding registers.
fn nasty_design() -> Design {
    compile(
        "module nasty(
            input wire clk,
            input wire rst,
            input wire en,
            input wire [3:0] a,
            input wire [1:0] mode,
            output reg [7:0] q,
            output reg [3:0] flags,
            output wire [7:0] mix
         );
            wire gclk;
            reg [7:0] shadow;
            integer i;
            assign gclk = clk & en;
            assign mix = q ^ shadow;
            always @(posedge gclk or negedge rst) begin
                if (!rst) begin
                    q <= 8'h00;
                    shadow <= 8'hff;
                end
                else begin
                    casez ({mode, a[0]})
                        3'b00?: q <= q + {4'h0, a};
                        3'b010: q <= {q[3:0], q[7:4]};
                        3'b0?1: q <= q ^ shadow;
                        default: begin
                            for (i = 0; i < 4; i = i + 1)
                                q[i] <= a[i] ^ q[i];
                            shadow <= {shadow[6:0], shadow[7]};
                        end
                    endcase
                end
            end
            always @(posedge clk) begin
                if (rst) begin
                    flags[1:0] <= mode;
                    if (a > 4'h7) flags[3:2] <= a[1:0];
                end
                else flags <= 4'h0;
            end
         endmodule",
        None,
    )
    .unwrap()
}

fn nasty_stim(design: &Design, cycles: u64, seed: u64) -> eraser_sim::Stimulus {
    let f = |n: &str| design.find_signal(n).unwrap();
    let (clk, rst, en, a, mode) = (f("clk"), f("rst"), f("en"), f("a"), f("mode"));
    let mut sb = StimulusBuilder::new();
    let mut state = seed | 1;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    // Async reset assertion (rst low clears), then release.
    sb.add_step(vec![(rst, LogicVec::from_u64(1, 0))]);
    sb.add_step(vec![(rst, LogicVec::from_u64(1, 1))]);
    for _ in 0..cycles {
        let r = rng();
        sb.add_cycle(
            clk,
            &[
                (en, LogicVec::from_u64(1, r & 1)),
                (a, LogicVec::from_u64(4, r >> 1 & 0xf)),
                (mode, LogicVec::from_u64(2, r >> 5 & 3)),
                // Occasional async reset pulse mid-stream.
                (rst, LogicVec::from_u64(1, if r % 23 == 0 { 0 } else { 1 })),
            ],
        );
    }
    sb.finish()
}

#[test]
fn values_match_serial_full_mode() {
    let d = nasty_design();
    let stim = nasty_stim(&d, 25, 0x1234);
    value_parity(&d, &stim, RedundancyMode::Full);
}

#[test]
fn values_match_serial_explicit_mode() {
    let d = nasty_design();
    let stim = nasty_stim(&d, 25, 0x77);
    value_parity(&d, &stim, RedundancyMode::Explicit);
}

#[test]
fn values_match_serial_no_elimination() {
    let d = nasty_design();
    let stim = nasty_stim(&d, 25, 0xbeef);
    value_parity(&d, &stim, RedundancyMode::None);
}

#[test]
fn values_match_serial_second_seed() {
    let d = nasty_design();
    let stim = nasty_stim(&d, 40, 0xdead_cafe);
    value_parity(&d, &stim, RedundancyMode::Full);
}
