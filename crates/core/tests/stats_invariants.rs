//! Accounting invariants of the redundancy statistics.
//!
//! Every faulty execution opportunity must be accounted for exactly once:
//!
//! ```text
//! opportunities = (fault_executions - fault_only_activations)
//!               + explicit_skipped + implicit_skipped
//!               + suppressed_activations
//! ```
//!
//! (`fault_only_activations` are *extra* executions beyond the good
//! activations, so they are excluded from the opportunity ledger.)

use eraser_core::{run_campaign, CampaignConfig, RedundancyMode};
use eraser_designs::Benchmark;
use eraser_fault::generate_faults;

fn check(bench: Benchmark, mode: RedundancyMode) {
    let design = bench.build();
    let mut cfg = bench.fault_config();
    cfg.max_faults = Some(120.min(cfg.max_faults.unwrap_or(usize::MAX)));
    let faults = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, 60);
    let res = run_campaign(
        &design,
        &faults,
        &stim,
        &CampaignConfig {
            mode,
            drop_detected: true,
            ..Default::default()
        },
    );
    let s = &res.stats;
    let ledger = (s.fault_executions - s.fault_only_activations)
        + s.explicit_skipped
        + s.implicit_skipped
        + s.suppressed_activations;
    assert_eq!(
        s.opportunities,
        ledger,
        "{} in {mode}: opportunities {} != executions {} - fault_only {} + explicit {} + implicit {} + suppressed {}",
        bench.name(),
        s.opportunities,
        s.fault_executions,
        s.fault_only_activations,
        s.explicit_skipped,
        s.implicit_skipped,
        s.suppressed_activations,
    );
    // Mode-specific structure.
    match mode {
        RedundancyMode::None => {
            assert_eq!(s.explicit_skipped, 0);
            assert_eq!(s.implicit_skipped, 0);
        }
        RedundancyMode::Explicit => assert_eq!(s.implicit_skipped, 0),
        RedundancyMode::Full => {}
    }
    assert!(s.good_activations > 0);
    assert!(s.deltas > 0);
}

#[test]
fn ledger_balances_across_modes_and_designs() {
    for bench in [
        Benchmark::Alu64,
        Benchmark::Apb,
        Benchmark::PicoRv32,
        Benchmark::ConvAcc,
        Benchmark::Sha256Hv,
    ] {
        for mode in [
            RedundancyMode::None,
            RedundancyMode::Explicit,
            RedundancyMode::Full,
        ] {
            check(bench, mode);
        }
    }
}

#[test]
fn full_mode_never_executes_more_than_explicit() {
    for bench in [Benchmark::Apb, Benchmark::RiscvMini] {
        let design = bench.build();
        let mut cfg = bench.fault_config();
        cfg.max_faults = Some(100);
        let faults = generate_faults(&design, &cfg);
        let stim = bench.stimulus_with_cycles(&design, 60);
        let mut execs = Vec::new();
        for mode in [
            RedundancyMode::None,
            RedundancyMode::Explicit,
            RedundancyMode::Full,
        ] {
            let res = run_campaign(
                &design,
                &faults,
                &stim,
                &CampaignConfig {
                    mode,
                    drop_detected: true,
                    ..Default::default()
                },
            );
            execs.push(res.stats.fault_executions);
        }
        assert!(
            execs[0] >= execs[1] && execs[1] >= execs[2],
            "{}: executions not monotone: {execs:?}",
            bench.name()
        );
    }
}
