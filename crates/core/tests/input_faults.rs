//! Regression suite for faults sited on primary-input signals against the
//! `set_input` early-return.
//!
//! `EraserEngine::set_input` (and the good simulator's) skips the commit
//! when the driven value equals the stored good value. That is only sound
//! because faults sited on inputs have their stuck-bit diff entries
//! materialized at engine construction and kept alive by every later
//! commit — if a skipped re-drive ever dropped them, a stuck-at on an
//! input port would silently go undetectable whenever the stimulus holds
//! the input steady. These tests pin that behavior down: the faulty input
//! bit only propagates *after* several cycles of identical re-drives, so
//! any entry lost to the early return would flip the verdict.

use eraser_core::{run_campaign, CampaignConfig, EraserEngine, EvalBackend, RedundancyMode};
use eraser_fault::{generate_faults, FaultListConfig, StuckAt};
use eraser_frontend::compile;
use eraser_ir::Design;
use eraser_logic::LogicVec;
use eraser_sim::StimulusBuilder;

/// Input `a` only reaches state once `en` rises — after the stimulus has
/// re-applied the identical value of `a` for several cycles.
fn gated_design() -> Design {
    compile(
        "module m(input wire clk, input wire en, input wire [3:0] a, output reg [3:0] q);
           always @(posedge clk) begin
             if (en) q <= a; else q <= 4'h0;
           end
         endmodule",
        None,
    )
    .unwrap()
}

/// Faults on the data input only.
fn input_faults(d: &Design) -> eraser_fault::FaultList {
    generate_faults(
        d,
        &FaultListConfig {
            include_inputs: true,
            exclude_names: vec!["clk".into(), "en".into(), "q".into()],
            max_faults: None,
        },
    )
}

/// `a` held at a constant all-ones value every single cycle; `en` rises
/// only late, so by the time the fault could propagate, every re-drive of
/// `a` has hit the early return.
fn steady_stimulus(d: &Design, hold_cycles: usize) -> eraser_sim::Stimulus {
    let clk = d.find_signal("clk").unwrap();
    let en = d.find_signal("en").unwrap();
    let a = d.find_signal("a").unwrap();
    let mut sb = StimulusBuilder::new();
    for cycle in 0..hold_cycles + 4 {
        sb.add_cycle(
            clk,
            &[
                (a, LogicVec::from_u64(4, 0xf)),
                (en, LogicVec::from_u64(1, (cycle >= hold_cycles) as u64)),
            ],
        );
    }
    sb.finish()
}

#[test]
fn input_stuck_at_detected_after_identical_redrives() {
    let d = gated_design();
    let faults = input_faults(&d);
    // 4 bits of `a`, two polarities.
    assert_eq!(faults.len(), 8);
    let stim = steady_stimulus(&d, 6);
    for backend in [EvalBackend::Tree, EvalBackend::Tape] {
        let res = run_campaign(
            &d,
            &faults,
            &stim,
            &CampaignConfig {
                backend,
                ..CampaignConfig::serial()
            },
        );
        // Every stuck-at-0 on an all-ones input is detectable (and only
        // those: stuck-at-1 on a driven-to-1 bit never differs).
        for f in faults.iter() {
            let expect = f.stuck == StuckAt::Zero;
            assert_eq!(
                res.coverage.is_detected(f.id),
                expect,
                "{backend}: stuck-at-{} on input bit {} misclassified",
                f.stuck,
                f.bit
            );
        }
    }
}

/// Driving the identical value again must not change any fault's view of
/// the input — the diff entries materialized at construction survive the
/// early return verbatim.
#[test]
fn identical_redrive_preserves_input_diff_entries() {
    let d = gated_design();
    let faults = input_faults(&d);
    let a = d.find_signal("a").unwrap();
    let mut engine = EraserEngine::new(&d, &faults, RedundancyMode::Full, false);
    let v = LogicVec::from_u64(4, 0xf);
    engine.set_input(a, &v);
    engine.step();
    let before: Vec<LogicVec> = faults.iter().map(|f| engine.fault_value(a, f.id)).collect();
    for _ in 0..3 {
        engine.set_input(a, &v);
        engine.step();
    }
    for (f, prev) in faults.iter().zip(&before) {
        assert_eq!(
            engine.fault_value(a, f.id),
            *prev,
            "fault {} lost its input diff entry",
            f.id
        );
        if f.stuck == StuckAt::Zero {
            assert_ne!(engine.fault_value(a, f.id), v, "force no longer applied");
        }
    }
}
