//! The ERASER concurrent RTL fault simulation engine.
//!
//! This crate is the paper's primary contribution: a *batched* (concurrent)
//! RTL fault simulator that eliminates redundant executions of behavioral
//! nodes — both **explicit** redundancy (the faulty inputs equal the good
//! inputs; classic concurrent fault simulation skips these by construction)
//! and **implicit** redundancy (the faulty inputs differ, yet neither any
//! branch decision nor any signal read on the actually-taken execution path
//! is affected, so the result is provably identical — Algorithm 1 of the
//! paper).
//!
//! # Architecture (paper Fig. 4)
//!
//! The engine keeps one good value per signal plus a per-signal **diff
//! list**: the visible "bad gate" values of each fault, stored only where
//! they differ from the good value ([`DiffList`]). Each simulation step:
//!
//! 1. **RTL node simulation** (steps ②③): dirty RTL nodes are evaluated for
//!    the good network and for exactly the faults with visible differences
//!    on their inputs or output (concurrent evaluation).
//! 2. **Deferred edge detection**: event expressions are evaluated only
//!    after the active region settles, for the good values and each
//!    diff-carrying fault's values together — the paper's *fake event* fix.
//! 3. **Behavioral node simulation** (steps ④⑤⑥): the good execution runs
//!    with a [redundancy monitor](RedundancyMode) attached; candidate
//!    faults (those with visible input differences) are checked against the
//!    unfolding execution path and skipped when redundant; survivors
//!    execute individually against their fault view.
//! 4. **NBA commit** and iteration to stability (step ⑦), then the next
//!    stimulus step, with detection at the primary-output observation
//!    points.
//!
//! # Fault-parallel execution
//!
//! The [`parallel`](ParallelConfig) subsystem adds the structural axis on
//! top of the concurrent engine: the fault universe is
//! [partitioned](eraser_fault::FaultList::partition) into disjoint shards,
//! a scoped-thread worker pool drains the shard queue dynamically
//! ([`run_sharded`]), and shard results recombine losslessly — merged
//! coverage is bit-identical to the serial run at any thread count.
//! [`CampaignConfig::parallel`] drives [`run_campaign`] directly (honoring
//! `ERASER_THREADS` / `ERASER_PARTITION` by default), and the
//! [`Parallel`] adapter turns *any* [`FaultSimEngine`] — ERASER or the
//! serial baselines — into a fault-parallel engine behind the same trait.
//!
//! # Static fault collapsing
//!
//! [`CollapseConfig`] (env `ERASER_COLLAPSE`, CLI `--collapse`) prunes the
//! *structural* axis before a single cycle runs: equivalence classes over
//! alias/inverter chains fold to one simulated representative each, and
//! provably undetectable sites (constant-dormant bits, signals with no
//! influence path to any output) are dropped outright
//! ([`eraser_fault::CollapsedFaultList`]). Every driver collapses through
//! [`run_collapsed`] *before* partitioning, so the knob composes with
//! sharding, checkpointing, batching and both backends, and the lifted
//! coverage is bit-identical to the uncollapsed run.
//! [`RedundancyStats::collapse_classes`],
//! [`RedundancyStats::collapsed_faults`] and
//! [`RedundancyStats::collapse_dropped`] account for the pruned universe.
//!
//! # Temporal redundancy trimming — and two-dimensional parallelism
//!
//! [`CheckpointConfig`] (env `ERASER_CKPT`, CLI `--checkpoint-interval`)
//! enables checkpointed good-state replay: the good machine runs once
//! with an activation probe, snapshots its settled state every N steps,
//! and each fault starts from the latest checkpoint preceding its
//! [activation window](eraser_fault::ActivationWindows) — or is skipped
//! entirely when it provably cannot diverge within the stimulus. The
//! serial baselines restart one simulator per fault; [`run_campaign`]
//! composes the same trim with fault-parallel sharding via the `twodim`
//! scheduler: faults group into [`eraser_fault::WindowShard`]s by latest
//! eligible checkpoint, each shard's *concurrent engine* resumes from
//! the shared snapshot ([`EraserEngine::with_programs_from`]), and one
//! work queue balances across both dimensions. Combined with fault
//! dropping ([`CampaignConfig::drop_detected`]) this trims the
//! *temporal* axis of execution redundancy;
//! [`RedundancyStats::skipped_prefix_steps`],
//! [`RedundancyStats::skipped_faults`] and
//! [`RedundancyStats::dropped_faults`] quantify it.
//!
//! # Ablation modes
//!
//! [`RedundancyMode`] selects the paper's ablation variants: `None`
//! (Eraser‑‑, every live fault executes every activated behavioral node),
//! `Explicit` (Eraser‑), and `Full` (Eraser). All three produce identical
//! fault coverage; only the amount of skipped work differs, which
//! [`RedundancyStats`] quantifies (Table III, Fig. 1b, Fig. 7).
//!
//! # Example
//!
//! ```
//! use eraser_core::{run_campaign, CampaignConfig, RedundancyMode};
//! use eraser_fault::{generate_faults, FaultListConfig};
//! use eraser_frontend::compile;
//! use eraser_logic::LogicVec;
//! use eraser_sim::StimulusBuilder;
//!
//! let design = compile(
//!     "module dut(input wire clk, input wire [7:0] a, output reg [7:0] q);
//!        always @(posedge clk) q <= a + 8'h01;
//!      endmodule",
//!     None,
//! )?;
//! let faults = generate_faults(&design, &FaultListConfig::default());
//! let clk = design.find_signal("clk").unwrap();
//! let a = design.find_signal("a").unwrap();
//! let mut sb = StimulusBuilder::new();
//! for i in 0..32 {
//!     sb.add_cycle(clk, &[(a, LogicVec::from_u64(8, i * 37 % 256))]);
//! }
//! let result = run_campaign(
//!     &design,
//!     &faults,
//!     &sb.finish(),
//!     &CampaignConfig { mode: RedundancyMode::Full, ..Default::default() },
//! );
//! assert!(result.coverage.coverage_percent() > 90.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod api;
mod batch;
mod campaign;
mod checkpoint;
mod collapse;
mod diff;
mod engine;
mod monitor;
mod parallel;
mod progress;
mod spec;
mod stats;
mod twodim;

pub use api::{CampaignRunner, EngineResult, Eraser, FaultSimEngine, ParityMismatch};
pub use batch::BatchConfig;
pub use campaign::{
    run_campaign, run_campaign_with, CampaignConfig, CampaignContext, CampaignResult,
};
pub use checkpoint::CheckpointConfig;
pub use collapse::{collapse_plan, run_collapsed, stamp_collapse_stats, CollapseConfig};
pub use diff::{union_ids, union_ids_into, DiffList};
pub use engine::{EngineSession, EraserEngine, FaultView};
pub use monitor::RedundancyMonitor;
pub use parallel::{merge_shard_results, run_queue, run_sharded, Parallel, ParallelConfig};
pub use progress::{CampaignProgress, ProgressSnapshot};
pub use spec::{CampaignSpec, DesignRef, SpecError};
pub use stats::RedundancyStats;
pub use twodim::{record_good_run, GoodRunArtifacts};

// The evaluation-backend knob and the shareable compiled programs, re-
// exported so campaign drivers configure backends without naming
// `eraser-ir` directly.
pub use eraser_ir::{BatchProgram, EvalBackend, TapeProgram};

/// Which redundancy-elimination layers are active — the paper's ablation
/// axis (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RedundancyMode {
    /// Eraser--: no redundancy elimination; every live fault's behavioral
    /// code executes at every activation.
    None,
    /// Eraser-: explicit redundancy elimination only; a fault executes a
    /// behavioral node only if it has a visible difference on one of the
    /// node's inputs (or its activation diverges).
    Explicit,
    /// Eraser: explicit plus implicit redundancy elimination (Algorithm 1).
    #[default]
    Full,
}

impl std::fmt::Display for RedundancyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RedundancyMode::None => write!(f, "Eraser--"),
            RedundancyMode::Explicit => write!(f, "Eraser-"),
            RedundancyMode::Full => write!(f, "Eraser"),
        }
    }
}

impl RedundancyMode {
    /// The machine-readable name used by [`CampaignSpec`] JSON and the
    /// CLI's `--mode` flag (`full` / `explicit` / `none`) — [`Display`]
    /// keeps the paper's ablation names (`Eraser` / `Eraser-` /
    /// `Eraser--`).
    ///
    /// [`Display`]: std::fmt::Display
    pub fn spec_name(self) -> &'static str {
        match self {
            RedundancyMode::None => "none",
            RedundancyMode::Explicit => "explicit",
            RedundancyMode::Full => "full",
        }
    }
}

impl std::str::FromStr for RedundancyMode {
    type Err = String;

    /// Parses the machine-readable mode names (`full`, `explicit`,
    /// `none`), case-insensitive.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "full" => Ok(RedundancyMode::Full),
            "explicit" => Ok(RedundancyMode::Explicit),
            "none" => Ok(RedundancyMode::None),
            other => Err(format!(
                "unknown redundancy mode `{other}` (expected full, explicit or none)"
            )),
        }
    }
}
