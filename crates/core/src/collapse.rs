//! The static fault-collapsing knob.
//!
//! Collapsing builds a [`CollapsedFaultList`] over the design's static
//! structure *before any engine runs*: equivalence classes over
//! alias/inverter chains fold to one representative each, and provably
//! undetectable sites (constant-dormant, no influence path to an output)
//! are dropped outright. The campaign then simulates only the
//! representatives and [lifts](CollapsedFaultList::lift_coverage) their
//! records back over the full universe — bit-identical coverage for a
//! fraction of the scheduled faults, which the differential tests enforce.
//!
//! Collapsing composes with every other knob by construction: the drivers
//! collapse *first* and hand the representative list to the uncollapsed
//! machinery, so sharding partitions representatives and checkpointing,
//! batching and both eval backends see an ordinary fault list.

use crate::api::EngineResult;
use crate::campaign::CampaignConfig;
use crate::stats::RedundancyStats;
use eraser_fault::{CollapsedFaultList, FaultList};
use eraser_ir::Design;
use std::time::Instant;

/// Whether campaigns statically collapse the fault universe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollapseConfig {
    /// True to collapse before simulating.
    pub enabled: bool,
}

impl CollapseConfig {
    /// Collapsing off — every fault is scheduled individually.
    pub fn disabled() -> Self {
        CollapseConfig { enabled: false }
    }

    /// Collapsing on.
    pub fn enabled() -> Self {
        CollapseConfig { enabled: true }
    }

    /// Reads `ERASER_COLLAPSE`: unset, empty or `0` is off, `1` is on.
    /// Anything else is a configuration error and panics, mirroring the
    /// `ERASER_EVAL` convention.
    pub fn from_env() -> Self {
        match std::env::var("ERASER_COLLAPSE") {
            Err(_) => Self::disabled(),
            Ok(v) => Self::parse_env(&v),
        }
    }

    /// The `ERASER_COLLAPSE` parsing rule, separated for testability.
    fn parse_env(value: &str) -> Self {
        match value.trim() {
            "" | "0" => Self::disabled(),
            "1" => Self::enabled(),
            other => panic!("invalid ERASER_COLLAPSE value {other:?} (expected 0 or 1)"),
        }
    }
}

/// Builds the collapse plan for a campaign, or `None` when the config
/// leaves collapsing off (the universe is then used as-is).
pub fn collapse_plan(
    design: &Design,
    faults: &FaultList,
    config: &CollapseConfig,
) -> Option<CollapsedFaultList> {
    config
        .enabled
        .then(|| CollapsedFaultList::build(design, faults))
}

/// Adds a collapse plan's universe accounting to a stats block (losslessly
/// mergeable: shard merges sum the counters like every other field).
pub fn stamp_collapse_stats(stats: &mut RedundancyStats, plan: &CollapsedFaultList) {
    stats.collapse_classes += plan.num_classes() as u64;
    stats.collapsed_faults += plan.collapsed_faults() as u64;
    stats.collapse_dropped += plan.dropped().len() as u64;
}

/// Runs `run` under `config`'s collapse setting: with collapsing off this
/// is a transparent pass-through; with it on, `run` receives the
/// representative list and a config with collapsing disabled (so nested
/// drivers never collapse twice), and the result's coverage is lifted back
/// over the full universe with the collapse counters stamped.
///
/// This is the one wrapper every engine driver shares — the concurrent
/// campaign, the parallel adapter and the serial force-based baselines all
/// collapse through it, which is what makes the knob engine-uniform.
pub fn run_collapsed(
    design: &Design,
    faults: &FaultList,
    config: &CampaignConfig,
    run: impl FnOnce(&FaultList, &CampaignConfig) -> EngineResult,
) -> EngineResult {
    let Some(plan) = collapse_plan(design, faults, &config.collapse) else {
        return run(faults, config);
    };
    let t0 = Instant::now();
    let inner = CampaignConfig {
        collapse: CollapseConfig::disabled(),
        ..config.clone()
    };
    let mut result = run(plan.representatives(), &inner);
    result.coverage = plan.lift_coverage(&result.coverage);
    // Engines that carry no stats (the non-checkpointed serial baselines)
    // keep `stats: None` — materializing a zeroed block here would make
    // them look like counter-carrying engines to parity checks. Collapse
    // accounting is stamped wherever a stats block already exists.
    if let Some(stats) = result.stats.as_mut() {
        stamp_collapse_stats(stats, &plan);
    }
    // Honest wall: include the collapse analysis itself.
    result.wall = t0.elapsed();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rules() {
        assert!(!CollapseConfig::parse_env("").enabled);
        assert!(!CollapseConfig::parse_env("0").enabled);
        assert!(!CollapseConfig::parse_env(" 0 ").enabled);
        assert!(CollapseConfig::parse_env("1").enabled);
        assert!(CollapseConfig::parse_env(" 1 ").enabled);
    }

    #[test]
    #[should_panic(expected = "invalid ERASER_COLLAPSE")]
    fn unrecognized_value_panics() {
        CollapseConfig::parse_env("yes");
    }

    #[test]
    fn default_is_disabled() {
        assert_eq!(CollapseConfig::default(), CollapseConfig::disabled());
    }
}
