//! Per-signal fault difference lists — the "bad gates" of concurrent fault
//! simulation.

use eraser_fault::FaultId;
use eraser_logic::LogicVec;

/// The visible faulty values of one signal, sorted by fault id.
///
/// An entry `(f, v)` means fault `f`'s network currently holds `v` on this
/// signal, which differs from the good value ("visible bad gate" in the
/// paper's terminology). Faults without an entry hold the good value
/// ("invisible").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffList {
    entries: Vec<(FaultId, LogicVec)>,
}

impl DiffList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// The visible value of `fault`, if any.
    #[inline]
    pub fn get(&self, fault: FaultId) -> Option<&LogicVec> {
        self.entries
            .binary_search_by_key(&fault, |(f, _)| *f)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// True if `fault` has a visible entry.
    #[inline]
    pub fn contains(&self, fault: FaultId) -> bool {
        self.entries
            .binary_search_by_key(&fault, |(f, _)| *f)
            .is_ok()
    }

    /// Inserts or updates the entry for `fault`.
    pub fn set(&mut self, fault: FaultId, value: LogicVec) {
        match self.entries.binary_search_by_key(&fault, |(f, _)| *f) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (fault, value)),
        }
    }

    /// Removes the entry for `fault`, returning its previous value.
    pub fn remove(&mut self, fault: FaultId) -> Option<LogicVec> {
        match self.entries.binary_search_by_key(&fault, |(f, _)| *f) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Keeps only entries satisfying the predicate.
    pub fn retain(&mut self, mut pred: impl FnMut(FaultId, &LogicVec) -> bool) {
        self.entries.retain(|(f, v)| pred(*f, v));
    }

    /// Entries in fault-id order.
    pub fn entries(&self) -> &[(FaultId, LogicVec)] {
        &self.entries
    }

    /// Fault ids in order.
    pub fn ids(&self) -> impl Iterator<Item = FaultId> + '_ {
        self.entries.iter().map(|(f, _)| *f)
    }

    /// Number of visible entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no fault is visible on this signal.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Merges the fault ids of several diff lists into one sorted, deduplicated
/// vector, keeping only live faults.
pub fn union_ids<'a>(lists: impl Iterator<Item = &'a DiffList>, alive: &[bool]) -> Vec<FaultId> {
    let mut ids: Vec<FaultId> = Vec::new();
    for l in lists {
        ids.extend(l.ids().filter(|f| alive[f.index()]));
    }
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> LogicVec {
        LogicVec::from_u64(8, x)
    }

    #[test]
    fn set_get_remove_keep_order() {
        let mut d = DiffList::new();
        d.set(FaultId(5), v(5));
        d.set(FaultId(1), v(1));
        d.set(FaultId(3), v(3));
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(FaultId(3)), Some(&v(3)));
        assert_eq!(d.get(FaultId(2)), None);
        let ids: Vec<u32> = d.ids().map(|f| f.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        d.set(FaultId(3), v(30));
        assert_eq!(d.get(FaultId(3)), Some(&v(30)));
        assert_eq!(d.remove(FaultId(3)), Some(v(30)));
        assert!(!d.contains(FaultId(3)));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn union_filters_dead_faults() {
        let mut a = DiffList::new();
        a.set(FaultId(0), v(0));
        a.set(FaultId(2), v(2));
        let mut b = DiffList::new();
        b.set(FaultId(2), v(9));
        b.set(FaultId(3), v(3));
        let alive = vec![true, true, true, false];
        let u = union_ids([&a, &b].into_iter(), &alive);
        assert_eq!(u, vec![FaultId(0), FaultId(2)]);
    }

    #[test]
    fn retain_prunes() {
        let mut d = DiffList::new();
        for i in 0..6 {
            d.set(FaultId(i), v(i as u64));
        }
        d.retain(|f, _| f.0 % 2 == 0);
        let ids: Vec<u32> = d.ids().map(|f| f.0).collect();
        assert_eq!(ids, vec![0, 2, 4]);
    }
}
