//! Per-signal fault difference lists — the "bad gates" of concurrent fault
//! simulation.

use eraser_fault::FaultId;
use eraser_logic::LogicVec;

/// The visible faulty values of one signal, sorted by fault id.
///
/// An entry `(f, v)` means fault `f`'s network currently holds `v` on this
/// signal, which differs from the good value ("visible bad gate" in the
/// paper's terminology). Faults without an entry hold the good value
/// ("invisible").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffList {
    entries: Vec<(FaultId, LogicVec)>,
}

impl DiffList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty list with room for `capacity` entries — pre-sized
    /// from the number of faults sited on the signal so the common steady
    /// state never grows the backing vector.
    pub fn with_capacity(capacity: usize) -> Self {
        DiffList {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// The visible value of `fault`, if any.
    #[inline]
    pub fn get(&self, fault: FaultId) -> Option<&LogicVec> {
        self.entries
            .binary_search_by_key(&fault, |(f, _)| *f)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// True if `fault` has a visible entry.
    #[inline]
    pub fn contains(&self, fault: FaultId) -> bool {
        self.entries
            .binary_search_by_key(&fault, |(f, _)| *f)
            .is_ok()
    }

    /// Inserts or updates the entry for `fault`.
    pub fn set(&mut self, fault: FaultId, value: LogicVec) {
        match self.entries.binary_search_by_key(&fault, |(f, _)| *f) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (fault, value)),
        }
    }

    /// Inserts or updates the entry for `fault` through `write`, with a
    /// single binary search. On overwrite the existing [`LogicVec`] buffer
    /// is handed to `write` for in-place reuse instead of being freed and
    /// replaced; on a miss `write` fills a default vector that is then
    /// inserted.
    pub fn upsert_with(&mut self, fault: FaultId, write: impl FnOnce(&mut LogicVec)) {
        match self.entries.binary_search_by_key(&fault, |(f, _)| *f) {
            Ok(i) => write(&mut self.entries[i].1),
            Err(i) => {
                let mut v = LogicVec::default();
                write(&mut v);
                self.entries.insert(i, (fault, v));
            }
        }
    }

    /// [`upsert_with`](Self::upsert_with), but a miss inserts a pooled
    /// buffer obtained from `seed` instead of an empty default. Wide
    /// (boxed-storage) signals use this to keep the hot path
    /// allocation-free: the seed comes from a width-classed scratch pool,
    /// so `write`'s resize reuses an existing box. `seed` is not called on
    /// an overwrite.
    pub fn upsert_seeded(
        &mut self,
        fault: FaultId,
        seed: impl FnOnce() -> LogicVec,
        write: impl FnOnce(&mut LogicVec),
    ) {
        match self.entries.binary_search_by_key(&fault, |(f, _)| *f) {
            Ok(i) => write(&mut self.entries[i].1),
            Err(i) => {
                let mut v = seed();
                write(&mut v);
                self.entries.insert(i, (fault, v));
            }
        }
    }

    /// Makes `self` an entry-wise copy of `other`, reusing both the backing
    /// vector's capacity and the existing entries' value buffers (the
    /// allocation-free `clone_from`).
    pub fn assign_from(&mut self, other: &DiffList) {
        let common = self.entries.len().min(other.entries.len());
        for (dst, src) in self.entries.iter_mut().zip(&other.entries) {
            dst.0 = src.0;
            dst.1.assign_from(&src.1);
        }
        self.entries.truncate(other.entries.len());
        self.entries
            .extend(other.entries[common..].iter().map(|(f, v)| (*f, v.clone())));
    }

    /// The visible value of `fault`, or `good` when the fault holds the
    /// good value (no entry).
    #[inline]
    pub fn view<'a>(&'a self, fault: FaultId, good: &'a LogicVec) -> &'a LogicVec {
        self.get(fault).unwrap_or(good)
    }

    /// Removes the entry for `fault`, returning its previous value.
    pub fn remove(&mut self, fault: FaultId) -> Option<LogicVec> {
        match self.entries.binary_search_by_key(&fault, |(f, _)| *f) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Keeps only entries satisfying the predicate.
    pub fn retain(&mut self, mut pred: impl FnMut(FaultId, &LogicVec) -> bool) {
        self.entries.retain(|(f, v)| pred(*f, v));
    }

    /// [`retain`](Self::retain), but hands every pruned entry's value
    /// buffer to `recycle` instead of dropping it — the allocation-free
    /// form for hot loops, where pruned boxed storage goes back into a
    /// scratch pool. Entry order is preserved.
    pub fn retain_recycle(
        &mut self,
        mut pred: impl FnMut(FaultId, &LogicVec) -> bool,
        mut recycle: impl FnMut(LogicVec),
    ) {
        let mut kept = 0;
        for i in 0..self.entries.len() {
            if pred(self.entries[i].0, &self.entries[i].1) {
                self.entries.swap(i, kept);
                kept += 1;
            }
        }
        for (_, v) in self.entries.drain(kept..) {
            recycle(v);
        }
    }

    /// Entries in fault-id order.
    pub fn entries(&self) -> &[(FaultId, LogicVec)] {
        &self.entries
    }

    /// Fault ids in order.
    pub fn ids(&self) -> impl Iterator<Item = FaultId> + '_ {
        self.entries.iter().map(|(f, _)| *f)
    }

    /// Number of visible entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no fault is visible on this signal.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Merges the fault ids of several diff lists into one sorted, deduplicated
/// vector, keeping only live faults.
pub fn union_ids<'a>(lists: impl Iterator<Item = &'a DiffList>, alive: &[bool]) -> Vec<FaultId> {
    let mut ids = Vec::new();
    union_ids_into(lists, alive, &mut ids);
    ids
}

/// [`union_ids`] into a caller-owned buffer (cleared first, capacity kept)
/// — the allocation-free form for hot loops.
pub fn union_ids_into<'a>(
    lists: impl Iterator<Item = &'a DiffList>,
    alive: &[bool],
    out: &mut Vec<FaultId>,
) {
    out.clear();
    for l in lists {
        out.extend(l.ids().filter(|f| alive[f.index()]));
    }
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> LogicVec {
        LogicVec::from_u64(8, x)
    }

    #[test]
    fn set_get_remove_keep_order() {
        let mut d = DiffList::new();
        d.set(FaultId(5), v(5));
        d.set(FaultId(1), v(1));
        d.set(FaultId(3), v(3));
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(FaultId(3)), Some(&v(3)));
        assert_eq!(d.get(FaultId(2)), None);
        let ids: Vec<u32> = d.ids().map(|f| f.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        d.set(FaultId(3), v(30));
        assert_eq!(d.get(FaultId(3)), Some(&v(30)));
        assert_eq!(d.remove(FaultId(3)), Some(v(30)));
        assert!(!d.contains(FaultId(3)));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn union_filters_dead_faults() {
        let mut a = DiffList::new();
        a.set(FaultId(0), v(0));
        a.set(FaultId(2), v(2));
        let mut b = DiffList::new();
        b.set(FaultId(2), v(9));
        b.set(FaultId(3), v(3));
        let alive = vec![true, true, true, false];
        let u = union_ids([&a, &b].into_iter(), &alive);
        assert_eq!(u, vec![FaultId(0), FaultId(2)]);
    }

    #[test]
    fn retain_prunes() {
        let mut d = DiffList::new();
        for i in 0..6 {
            d.set(FaultId(i), v(i as u64));
        }
        d.retain(|f, _| f.0 % 2 == 0);
        let ids: Vec<u32> = d.ids().map(|f| f.0).collect();
        assert_eq!(ids, vec![0, 2, 4]);
    }
}
