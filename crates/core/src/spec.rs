//! `CampaignSpec`: the one serializable campaign description.
//!
//! Nine PRs of knobs accreted three parallel configuration surfaces —
//! `ERASER_*` environment variables with per-type `from_env` readers, CLI
//! flags, and [`CampaignConfig`] fields — each resolving its defaults
//! independently. A [`CampaignSpec`] replaces that with a single
//! serializable struct naming the design, the stimulus, and every
//! execution knob, consumed uniformly by [`run_campaign`], the `eraser`
//! CLI, and the campaign service's `POST /campaigns` endpoint.
//!
//! # Precedence
//!
//! Every execution knob resolves through exactly one rule, lowest to
//! highest:
//!
//! 1. **built-in default** (serial, tree walker, checkpointing / batching
//!    / collapsing off),
//! 2. **environment** — the historical `ERASER_THREADS` /
//!    `ERASER_PARTITION` / `ERASER_EVAL` / `ERASER_CKPT` / `ERASER_BATCH`
//!    / `ERASER_COLLAPSE` variables,
//! 3. **CLI flags** — the CLI writes each given flag into the spec's
//!    corresponding field *if the spec file left it unset*,
//! 4. **explicit spec fields** — a field present in a spec file (or set
//!    through the builder) always wins.
//!
//! Mechanically, steps 3–4 are the same thing: a knob field is an
//! `Option`, `None` means "fall through to the environment" and
//! [`resolve`](CampaignSpec::resolve) implements exactly that fall-through
//! once, in one place. The CLI merges flags only into `None` fields, which
//! yields the env → CLI → spec order above.
//!
//! # JSON
//!
//! Specs round-trip through the `eraser-netlist` JSON layer
//! ([`to_json`](CampaignSpec::to_json) /
//! [`from_json`](CampaignSpec::from_json)); unknown keys and ill-typed
//! values are errors naming the key, so a typo in a spec file fails
//! loudly instead of silently falling back to a default. The design
//! reference is a one-key object:
//!
//! ```json
//! {
//!   "design": { "benchmark": "APB" },
//!   "seed": 1,
//!   "steps": 400,
//!   "mode": "full",
//!   "drop_detected": true,
//!   "threads": 4,
//!   "eval": "tape",
//!   "checkpoint_interval": 8
//! }
//! ```

use crate::batch::BatchConfig;
use crate::campaign::CampaignConfig;
use crate::checkpoint::CheckpointConfig;
use crate::RedundancyMode;
use eraser_fault::PartitionStrategy;
use eraser_ir::EvalBackend;
use eraser_netlist::json::{self, JsonValue};

#[cfg(doc)]
use crate::run_campaign;

/// Which design a campaign targets. Carries only names and paths — the
/// service and CLI layers resolve a `DesignRef` into a compiled design
/// (via `eraser-designs`), keeping this crate free of frontend
/// dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignRef {
    /// A built-in benchmark by name (e.g. `"APB"`).
    Benchmark(String),
    /// A checked-in gate-level netlist fixture by name (e.g.
    /// `"mac16_gate"`).
    Fixture(String),
    /// A design file on disk: Verilog subset (`.v`) or Yosys JSON
    /// (`.json`).
    Path(String),
}

impl DesignRef {
    /// A stable identity string, usable as a cache key component.
    pub fn key(&self) -> String {
        match self {
            DesignRef::Benchmark(n) => format!("benchmark:{n}"),
            DesignRef::Fixture(n) => format!("fixture:{n}"),
            DesignRef::Path(p) => format!("path:{p}"),
        }
    }
}

impl std::fmt::Display for DesignRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.key())
    }
}

/// A malformed campaign spec (bad JSON, unknown key, ill-typed value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What went wrong, naming the offending key where applicable.
    pub message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid campaign spec: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// One serializable campaign description: design, stimulus, and every
/// execution knob. See the [module docs](self) for the precedence rule
/// and the JSON schema.
///
/// Knob fields are `Option`s: `None` falls through to the corresponding
/// `ERASER_*` environment variable (and its built-in default) when
/// [`resolve`](Self::resolve)d; `Some` always wins.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// The design under test.
    pub design: DesignRef,
    /// Top module override for file designs.
    pub top: Option<String>,
    /// Clock signal override for file designs.
    pub clock: Option<String>,
    /// Reset signal override for file designs.
    pub reset: Option<String>,
    /// Stimulus seed for the clocked-random generator (fixtures and file
    /// designs; benchmarks carry their own stimulus).
    pub seed: u64,
    /// Stimulus length in settle steps; `None` uses the design source's
    /// default.
    pub steps: Option<usize>,
    /// Redundancy-elimination mode (the ablation axis).
    pub mode: RedundancyMode,
    /// Stop simulating a fault once detected.
    pub drop_detected: bool,
    /// Cap the generated fault universe.
    pub max_faults: Option<usize>,
    /// Worker threads (`0` = one per hardware thread). `None`: env.
    pub threads: Option<usize>,
    /// Fault-sharding strategy. `None`: env.
    pub partition: Option<PartitionStrategy>,
    /// Expression-evaluation backend. `None`: env.
    pub backend: Option<EvalBackend>,
    /// Good-state checkpoint interval (`0` disables). `None`: env.
    pub checkpoint_interval: Option<usize>,
    /// Bit-parallel fault batching. `None`: env.
    pub batch: Option<bool>,
    /// Static fault collapsing. `None`: env.
    pub collapse: Option<bool>,
}

impl CampaignSpec {
    /// A spec over `design` with every other field at its unset default:
    /// seed 1, source-default stimulus length, full redundancy
    /// elimination, fault dropping on, and every knob falling through to
    /// the environment.
    pub fn new(design: DesignRef) -> Self {
        CampaignSpec {
            design,
            top: None,
            clock: None,
            reset: None,
            seed: 1,
            steps: None,
            mode: RedundancyMode::Full,
            drop_detected: true,
            max_faults: None,
            threads: None,
            partition: None,
            backend: None,
            checkpoint_interval: None,
            batch: None,
            collapse: None,
        }
    }

    /// A spec over the built-in benchmark `name`.
    pub fn benchmark(name: impl Into<String>) -> Self {
        Self::new(DesignRef::Benchmark(name.into()))
    }

    /// A spec over the checked-in netlist fixture `name`.
    pub fn fixture(name: impl Into<String>) -> Self {
        Self::new(DesignRef::Fixture(name.into()))
    }

    /// A spec over a design file on disk.
    pub fn path(path: impl Into<String>) -> Self {
        Self::new(DesignRef::Path(path.into()))
    }

    /// Sets the top module override.
    pub fn top(mut self, top: impl Into<String>) -> Self {
        self.top = Some(top.into());
        self
    }

    /// Sets the clock signal override.
    pub fn clock(mut self, clock: impl Into<String>) -> Self {
        self.clock = Some(clock.into());
        self
    }

    /// Sets the reset signal override.
    pub fn reset(mut self, reset: impl Into<String>) -> Self {
        self.reset = Some(reset.into());
        self
    }

    /// Sets the stimulus seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the stimulus length in settle steps.
    pub fn steps(mut self, steps: usize) -> Self {
        self.steps = Some(steps);
        self
    }

    /// Sets the redundancy-elimination mode.
    pub fn mode(mut self, mode: RedundancyMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets whether detected faults stop simulating.
    pub fn drop_detected(mut self, drop: bool) -> Self {
        self.drop_detected = drop;
        self
    }

    /// Caps the generated fault universe.
    pub fn max_faults(mut self, max: usize) -> Self {
        self.max_faults = Some(max);
        self
    }

    /// Pins the worker thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Pins the fault-sharding strategy.
    pub fn partition(mut self, strategy: PartitionStrategy) -> Self {
        self.partition = Some(strategy);
        self
    }

    /// Pins the expression-evaluation backend.
    pub fn backend(mut self, backend: EvalBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Pins the checkpoint interval (`0` disables checkpointing).
    pub fn checkpoint_interval(mut self, interval: usize) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// Pins bit-parallel fault batching on or off.
    pub fn batch(mut self, enabled: bool) -> Self {
        self.batch = Some(enabled);
        self
    }

    /// Pins static fault collapsing on or off.
    pub fn collapse(mut self, enabled: bool) -> Self {
        self.collapse = Some(enabled);
        self
    }

    /// Resolves the execution knobs into a [`CampaignConfig`] — the one
    /// implementation of the spec > env > default precedence rule (see
    /// the [module docs](self)). Every `Some` field wins outright; every
    /// `None` field reads its historical `ERASER_*` variable exactly as
    /// pre-spec code did ([`CampaignConfig::default`] is the env reader).
    pub fn resolve(&self) -> CampaignConfig {
        self.resolve_with(CampaignConfig::default())
    }

    /// [`resolve`](Self::resolve) against an explicit fallback config
    /// instead of the environment: every `None` knob field takes
    /// `fallback`'s value. `fallback.mode` and `fallback.drop_detected`
    /// are ignored — the spec always carries both. Pure (no environment
    /// reads), which is what makes the precedence rule unit-testable.
    pub fn resolve_with(&self, fallback: CampaignConfig) -> CampaignConfig {
        let mut parallel = fallback.parallel;
        if let Some(t) = self.threads {
            parallel.threads = t;
        }
        if let Some(s) = self.partition {
            parallel.strategy = s;
        }
        CampaignConfig {
            mode: self.mode,
            drop_detected: self.drop_detected,
            parallel,
            backend: self.backend.unwrap_or(fallback.backend),
            checkpoint: self
                .checkpoint_interval
                .map(CheckpointConfig::every)
                .unwrap_or(fallback.checkpoint),
            batch: match self.batch {
                Some(true) => BatchConfig::enabled(),
                Some(false) => BatchConfig::disabled(),
                None => fallback.batch,
            },
            collapse: match self.collapse {
                Some(true) => crate::CollapseConfig::enabled(),
                Some(false) => crate::CollapseConfig::disabled(),
                None => fallback.collapse,
            },
        }
    }

    /// The spec as a JSON value (only set fields are emitted).
    pub fn to_json_value(&self) -> JsonValue {
        let mut obj: Vec<(String, JsonValue)> = Vec::new();
        let (dk, dv) = match &self.design {
            DesignRef::Benchmark(n) => ("benchmark", n),
            DesignRef::Fixture(n) => ("fixture", n),
            DesignRef::Path(p) => ("path", p),
        };
        obj.push((
            "design".into(),
            JsonValue::Obj(vec![(dk.into(), JsonValue::str(dv.clone()))]),
        ));
        let put_str = |obj: &mut Vec<(String, JsonValue)>, k: &str, v: &Option<String>| {
            if let Some(v) = v {
                obj.push((k.into(), JsonValue::str(v.clone())));
            }
        };
        put_str(&mut obj, "top", &self.top);
        put_str(&mut obj, "clock", &self.clock);
        put_str(&mut obj, "reset", &self.reset);
        obj.push(("seed".into(), JsonValue::num(self.seed)));
        if let Some(steps) = self.steps {
            obj.push(("steps".into(), JsonValue::num(steps as u64)));
        }
        obj.push(("mode".into(), JsonValue::str(self.mode.spec_name())));
        obj.push(("drop_detected".into(), JsonValue::Bool(self.drop_detected)));
        if let Some(m) = self.max_faults {
            obj.push(("max_faults".into(), JsonValue::num(m as u64)));
        }
        if let Some(t) = self.threads {
            obj.push(("threads".into(), JsonValue::num(t as u64)));
        }
        if let Some(p) = self.partition {
            obj.push(("partition".into(), JsonValue::str(p.to_string())));
        }
        if let Some(b) = self.backend {
            obj.push(("eval".into(), JsonValue::str(b.to_string())));
        }
        if let Some(i) = self.checkpoint_interval {
            obj.push(("checkpoint_interval".into(), JsonValue::num(i as u64)));
        }
        if let Some(b) = self.batch {
            obj.push(("batch".into(), JsonValue::Bool(b)));
        }
        if let Some(c) = self.collapse {
            obj.push(("collapse".into(), JsonValue::Bool(c)));
        }
        JsonValue::Obj(obj)
    }

    /// The spec as compact JSON.
    pub fn to_json(&self) -> String {
        json::to_string(&self.to_json_value())
    }

    /// Parses a spec from a JSON value. Unknown keys and ill-typed values
    /// are errors naming the key.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, SpecError> {
        let obj = v
            .as_obj()
            .ok_or_else(|| SpecError::new("expected a JSON object"))?;
        let design = obj
            .iter()
            .find(|(k, _)| k == "design")
            .map(|(_, v)| parse_design(v))
            .transpose()?
            .ok_or_else(|| SpecError::new("missing required key `design`"))?;
        let mut spec = CampaignSpec::new(design);
        for (key, value) in obj {
            match key.as_str() {
                "design" => {}
                "top" => spec.top = Some(want_str(key, value)?),
                "clock" => spec.clock = Some(want_str(key, value)?),
                "reset" => spec.reset = Some(want_str(key, value)?),
                "seed" => spec.seed = want_u64(key, value)?,
                "steps" => spec.steps = Some(want_usize(key, value)?),
                "mode" => {
                    spec.mode = want_str(key, value)?
                        .parse()
                        .map_err(|e: String| SpecError::new(format!("key `mode`: {e}")))?
                }
                "drop_detected" => spec.drop_detected = want_bool(key, value)?,
                "max_faults" => spec.max_faults = Some(want_usize(key, value)?),
                "threads" => spec.threads = Some(want_usize(key, value)?),
                "partition" => {
                    spec.partition = Some(
                        want_str(key, value)?
                            .parse()
                            .map_err(|e: String| SpecError::new(format!("key `partition`: {e}")))?,
                    )
                }
                "eval" => {
                    spec.backend = Some(
                        want_str(key, value)?
                            .parse()
                            .map_err(|e: String| SpecError::new(format!("key `eval`: {e}")))?,
                    )
                }
                "checkpoint_interval" => spec.checkpoint_interval = Some(want_usize(key, value)?),
                "batch" => spec.batch = Some(want_bool(key, value)?),
                "collapse" => spec.collapse = Some(want_bool(key, value)?),
                other => return Err(SpecError::new(format!("unknown key `{other}`"))),
            }
        }
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let v = json::parse(text).map_err(|e| SpecError::new(e.to_string()))?;
        Self::from_json_value(&v)
    }
}

fn parse_design(v: &JsonValue) -> Result<DesignRef, SpecError> {
    let obj = v
        .as_obj()
        .ok_or_else(|| SpecError::new("key `design`: expected a one-key object"))?;
    match obj {
        [(k, v)] => {
            let name = want_str(k, v)?;
            match k.as_str() {
                "benchmark" => Ok(DesignRef::Benchmark(name)),
                "fixture" => Ok(DesignRef::Fixture(name)),
                "path" => Ok(DesignRef::Path(name)),
                other => Err(SpecError::new(format!(
                    "key `design`: unknown kind `{other}` (expected benchmark, fixture or path)"
                ))),
            }
        }
        _ => Err(SpecError::new(
            "key `design`: expected exactly one of benchmark, fixture or path",
        )),
    }
}

fn want_str(key: &str, v: &JsonValue) -> Result<String, SpecError> {
    v.as_str()
        .map(str::to_owned)
        .ok_or_else(|| SpecError::new(format!("key `{key}`: expected a string")))
}

fn want_bool(key: &str, v: &JsonValue) -> Result<bool, SpecError> {
    v.as_bool()
        .ok_or_else(|| SpecError::new(format!("key `{key}`: expected true or false")))
}

fn want_u64(key: &str, v: &JsonValue) -> Result<u64, SpecError> {
    v.as_u64()
        .ok_or_else(|| SpecError::new(format!("key `{key}`: expected a non-negative integer")))
}

fn want_usize(key: &str, v: &JsonValue) -> Result<usize, SpecError> {
    Ok(want_u64(key, v)? as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::{CollapseConfig, ParallelConfig};

    /// A fallback standing in for a populated environment — what
    /// `CampaignConfig::default()` would read with `ERASER_THREADS=7`,
    /// `ERASER_PARTITION=round-robin`, `ERASER_EVAL=tape`,
    /// `ERASER_CKPT=16` and `ERASER_BATCH=1` set. Constructed directly so
    /// tests never mutate process-global env vars (cargo runs tests
    /// concurrently in one process).
    fn env_like_fallback() -> CampaignConfig {
        CampaignConfig {
            mode: RedundancyMode::Full,
            drop_detected: true,
            parallel: ParallelConfig {
                threads: 7,
                strategy: PartitionStrategy::RoundRobin,
            },
            backend: EvalBackend::Tape,
            checkpoint: CheckpointConfig::every(16),
            batch: BatchConfig::enabled(),
            collapse: CollapseConfig::disabled(),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let spec = CampaignSpec::fixture("mac16_gate")
            .seed(0x3a6)
            .steps(400)
            .mode(RedundancyMode::Explicit)
            .drop_detected(false)
            .max_faults(100)
            .threads(4)
            .partition(PartitionStrategy::WindowAffinity)
            .backend(EvalBackend::Tape)
            .checkpoint_interval(8)
            .batch(true)
            .collapse(false);
        let text = spec.to_json();
        assert_eq!(CampaignSpec::from_json(&text).unwrap(), spec);

        let minimal = CampaignSpec::benchmark("APB");
        assert_eq!(
            CampaignSpec::from_json(&minimal.to_json()).unwrap(),
            minimal
        );
    }

    #[test]
    fn rejects_unknown_and_ill_typed_keys() {
        let e =
            CampaignSpec::from_json(r#"{"design": {"benchmark": "APB"}, "sede": 1}"#).unwrap_err();
        assert!(e.message.contains("sede"), "{e}");
        let e = CampaignSpec::from_json(r#"{"design": {"benchmark": "APB"}, "seed": "x"}"#)
            .unwrap_err();
        assert!(e.message.contains("seed"), "{e}");
        let e = CampaignSpec::from_json(r#"{"seed": 1}"#).unwrap_err();
        assert!(e.message.contains("design"), "{e}");
        let e = CampaignSpec::from_json(r#"{"design": {"bench": "APB"}}"#).unwrap_err();
        assert!(e.message.contains("bench"), "{e}");
        let e = CampaignSpec::from_json("{nope").unwrap_err();
        assert!(
            e.message.contains("invalid") || !e.message.is_empty(),
            "{e}"
        );
    }

    #[test]
    fn explicit_fields_override_environment() {
        let spec = CampaignSpec::benchmark("APB")
            .threads(2)
            .backend(EvalBackend::Tree)
            .checkpoint_interval(0)
            .batch(false)
            .collapse(true);
        let cfg = spec.resolve_with(env_like_fallback());
        assert_eq!(cfg.parallel.threads, 2);
        assert_eq!(cfg.backend, EvalBackend::Tree);
        assert!(!cfg.checkpoint.is_enabled());
        assert!(!cfg.batch.enabled);
        assert!(cfg.collapse.enabled);
        // The partition field was left unset — it alone falls through.
        assert_eq!(cfg.parallel.strategy, PartitionStrategy::RoundRobin);
    }

    #[test]
    fn unset_fields_fall_through_to_environment() {
        let cfg = CampaignSpec::benchmark("APB").resolve_with(env_like_fallback());
        assert_eq!(cfg.parallel.threads, 7);
        assert_eq!(cfg.parallel.strategy, PartitionStrategy::RoundRobin);
        assert_eq!(cfg.checkpoint.interval, 16);
        assert_eq!(cfg.backend, EvalBackend::Tape);
        assert!(cfg.batch.enabled);
        assert!(!cfg.collapse.enabled);
        // The spec's own non-optional fields still come from the spec.
        assert_eq!(cfg.mode, RedundancyMode::Full);
        assert!(cfg.drop_detected);
    }

    #[test]
    fn design_keys_are_distinct() {
        assert_ne!(
            CampaignSpec::benchmark("x").design.key(),
            CampaignSpec::fixture("x").design.key()
        );
        assert_eq!(DesignRef::Path("a.v".into()).key(), "path:a.v");
    }
}
