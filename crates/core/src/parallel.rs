//! Fault-parallel campaign execution.
//!
//! ERASER's concurrent engine trims redundancy *within* one fault batch;
//! this module adds the orthogonal structural axis: the fault universe is
//! [partitioned](eraser_fault::FaultList::partition) into disjoint shards,
//! shards are executed on a pool of scoped OS threads pulling work
//! dynamically from a shared queue, and shard results are merged losslessly
//! ([`CoverageReport::merge`], [`RedundancyStats::merge`]). Because the
//! engine's per-fault semantics are independent of batch composition, the
//! merged coverage is bit-identical to a serial run — parallelism changes
//! wall time only, never results.
//!
//! Three entry points, all zero-dependency (`std::thread::scope`):
//!
//! * [`ParallelConfig`] — thread count + [`PartitionStrategy`], read from
//!   `ERASER_THREADS` / `ERASER_PARTITION` by default, carried inside
//!   [`CampaignConfig`](crate::CampaignConfig) so every existing driver
//!   ([`run_campaign`](crate::run_campaign),
//!   [`CampaignRunner`](crate::CampaignRunner)) parallelizes without new
//!   plumbing,
//! * [`run_sharded`] — the generic shard scheduler, usable with any
//!   per-shard closure,
//! * [`Parallel`] — an adapter wrapping *any* [`FaultSimEngine`] into a
//!   fault-parallel engine that is itself a [`FaultSimEngine`], so the
//!   ERASER engine and all serial baselines parallelize through one code
//!   path.

use crate::api::{EngineResult, FaultSimEngine};
use crate::campaign::CampaignConfig;
use crate::collapse::run_collapsed;
use crate::stats::RedundancyStats;
use eraser_fault::{CoverageReport, FaultList, FaultShard, PartitionStrategy};
use eraser_ir::Design;
use eraser_sim::Stimulus;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many shards each worker thread gets on average. Oversubscription
/// lets fast workers steal queued shards from slow ones (dynamic load
/// balancing) without any per-fault synchronization.
const SHARDS_PER_THREAD: usize = 4;

/// Fault-parallel execution configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads. `1` runs serially in the calling thread; `0` means
    /// auto (one worker per available hardware thread).
    pub threads: usize,
    /// How the fault universe is split into shards.
    pub strategy: PartitionStrategy,
}

impl ParallelConfig {
    /// Strictly serial execution (ignores the environment).
    pub fn serial() -> Self {
        ParallelConfig {
            threads: 1,
            strategy: PartitionStrategy::default(),
        }
    }

    /// `threads` workers with the default (site-affinity) strategy.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            strategy: PartitionStrategy::default(),
        }
    }

    /// Reads `ERASER_THREADS` (worker count, `0` = auto, default `1`) and
    /// `ERASER_PARTITION` (strategy name, default `site-affinity`) from the
    /// environment. Unparsable values fall back to the defaults.
    pub fn from_env() -> Self {
        let threads = std::env::var("ERASER_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);
        let strategy = std::env::var("ERASER_PARTITION")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_default();
        ParallelConfig { threads, strategy }
    }

    /// The concrete worker count: `threads`, with `0` resolved to the
    /// available hardware parallelism.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// True if campaigns under this config fan out over worker threads.
    pub fn is_parallel(&self) -> bool {
        self.effective_threads() > 1
    }

    /// Number of shards to split a universe of `num_faults` into:
    /// oversubscribed relative to the worker count for dynamic balancing,
    /// but never more shards than faults (and at least one).
    pub fn shard_count(&self, num_faults: usize) -> usize {
        (self.effective_threads() * SHARDS_PER_THREAD)
            .min(num_faults)
            .max(1)
    }
}

/// The default configuration honors the environment (`ERASER_THREADS`,
/// `ERASER_PARTITION`), so `CampaignConfig::default()`-driven campaigns —
/// tests, examples, report binaries — parallelize via the environment
/// without code changes.
impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::from_env()
    }
}

impl std::fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} thread{} / {}",
            self.effective_threads(),
            if self.effective_threads() == 1 {
                ""
            } else {
                "s"
            },
            self.strategy
        )
    }
}

/// Runs `work` over every item on `threads` scoped worker threads pulling
/// item indices dynamically from a shared queue, and returns the results
/// in item order.
///
/// The queue is a single atomic cursor over the item slice: idle workers
/// claim the next unclaimed item, so a worker stuck on a heavy item never
/// blocks the rest of the queue (work stealing without per-item locks).
/// With one thread (or one item) everything runs inline in the caller —
/// the serial execution is the *same code path* over the same items,
/// which is what makes thread count a pure wall-clock axis for every
/// driver built on this queue. Items are generic: plain
/// [`FaultShard`]s ([`run_sharded`]) and the window-aware
/// [`WindowShard`](eraser_fault::WindowShard)s of the composed
/// checkpointed campaign both schedule through here, so the queue trades
/// off across both parallelism dimensions — whole window groups first,
/// their intra-group chunks when a group dominates.
pub fn run_queue<T, R, F>(items: &[T], threads: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = work(item);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker completed every claimed item")
        })
        .collect()
}

/// [`run_queue`] over plain fault shards — the historical entry point of
/// the fault-parallel dimension.
pub fn run_sharded<R, F>(shards: &[FaultShard], threads: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(&FaultShard) -> R + Sync,
{
    run_queue(shards, threads, work)
}

/// Merges per-shard engine results into one global coverage report plus
/// summed stats (when any shard carries them), via the single reduction
/// rule [`FaultShard::merge_coverage_into`] — O(shard size) per shard. The
/// caller stamps the name and wall time.
pub fn merge_shard_results(
    shards: &[FaultShard],
    results: &[EngineResult],
    total_faults: usize,
) -> (CoverageReport, Option<RedundancyStats>) {
    let mut coverage = CoverageReport::new(total_faults);
    let mut stats: Option<RedundancyStats> = None;
    for (shard, result) in shards.iter().zip(results) {
        shard.merge_coverage_into(&result.coverage, &mut coverage);
        if let Some(s) = &result.stats {
            stats.get_or_insert_with(RedundancyStats::default).merge(s);
        }
    }
    (coverage, stats)
}

/// Wraps any [`FaultSimEngine`] into a fault-parallel engine.
///
/// `Parallel<E>` is itself a [`FaultSimEngine`]: it partitions the fault
/// universe per its [`ParallelConfig`], runs the inner engine on each shard
/// across the worker pool (with the inner campaign forced serial so
/// parallelism never nests), and merges the shard results. Works uniformly
/// for the ERASER engine in every ablation mode and for the serial
/// baselines.
///
/// # Example
///
/// ```
/// use eraser_core::{CampaignConfig, Eraser, FaultSimEngine, Parallel, ParallelConfig};
/// use eraser_fault::{generate_faults, FaultListConfig};
/// use eraser_frontend::compile;
/// use eraser_logic::LogicVec;
/// use eraser_sim::StimulusBuilder;
///
/// let design = compile(
///     "module dut(input wire clk, input wire [7:0] a, output reg [7:0] q);
///        always @(posedge clk) q <= q ^ a;
///      endmodule",
///     None,
/// )?;
/// let faults = generate_faults(&design, &FaultListConfig::default());
/// let clk = design.find_signal("clk").unwrap();
/// let a = design.find_signal("a").unwrap();
/// let mut sb = StimulusBuilder::new();
/// for i in 0..24 {
///     sb.add_cycle(clk, &[(a, LogicVec::from_u64(8, i * 31 % 256))]);
/// }
/// let stim = sb.finish();
///
/// let serial = Eraser::full().run(&design, &faults, &stim, &CampaignConfig::serial());
/// let parallel = Parallel::new(Eraser::full(), ParallelConfig::with_threads(4))
///     .run(&design, &faults, &stim, &CampaignConfig::serial());
/// // Bit-identical coverage — detections, steps and outputs.
/// assert_eq!(serial.coverage, parallel.coverage);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Parallel<E> {
    /// The engine run on each shard.
    pub inner: E,
    /// Worker count and partition strategy.
    pub config: ParallelConfig,
}

impl<E> Parallel<E> {
    /// Wraps `inner` with the given parallel configuration.
    pub fn new(inner: E, config: ParallelConfig) -> Self {
        Parallel { inner, config }
    }
}

impl<E: FaultSimEngine + Sync> FaultSimEngine for Parallel<E> {
    fn name(&self) -> String {
        format!("{} p{}", self.inner.name(), self.config.effective_threads())
    }

    fn run(
        &self,
        design: &Design,
        faults: &FaultList,
        stimulus: &Stimulus,
        config: &CampaignConfig,
    ) -> EngineResult {
        // Static collapsing runs before partitioning, so the shards below
        // are cut from the representative list (and the inner campaigns,
        // already forced serial, never collapse again).
        run_collapsed(design, faults, config, |faults, config| {
            self.run_shards(design, faults, stimulus, config)
        })
    }
}

impl<E: FaultSimEngine + Sync> Parallel<E> {
    /// The uncollapsed fan-out: partition, run every shard on the worker
    /// pool, merge.
    fn run_shards(
        &self,
        design: &Design,
        faults: &FaultList,
        stimulus: &Stimulus,
        config: &CampaignConfig,
    ) -> EngineResult {
        let t0 = Instant::now();
        let threads = self.config.effective_threads();
        // Shard campaigns run serially inside their worker thread; the
        // adapter owns all parallelism.
        let inner_config = CampaignConfig {
            parallel: ParallelConfig::serial(),
            ..config.clone()
        };
        if threads <= 1 {
            let mut result = self.inner.run(design, faults, stimulus, &inner_config);
            result.name = self.name();
            result.wall = t0.elapsed();
            result.threads = 1;
            return result;
        }
        let mut shards =
            faults.partition(self.config.shard_count(faults.len()), self.config.strategy);
        // Don't pay a full stimulus replay for shards that hold no faults
        // (possible under site-affinity when faults cluster on few
        // signals); merging tolerates their absence.
        shards.retain(|s| !s.is_empty());
        let results = run_sharded(&shards, threads, |shard| {
            self.inner.run(design, &shard.list, stimulus, &inner_config)
        });
        let (coverage, stats) = merge_shard_results(&shards, &results, faults.len());
        let mut merged = EngineResult::new(self.name(), coverage)
            .with_wall(t0.elapsed())
            .with_threads(threads);
        merged.stats = stats;
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CampaignRunner, Eraser};
    use eraser_fault::{generate_faults, FaultListConfig};
    use eraser_frontend::compile;
    use eraser_logic::LogicVec;
    use eraser_sim::StimulusBuilder;

    fn fixture() -> (Design, FaultList, Stimulus) {
        let design = compile(
            "module m(input wire clk, input wire rst, input wire [3:0] a,
                      output reg [7:0] q, output wire [7:0] w);
               reg [7:0] s;
               assign w = s ^ {a, a};
               always @(posedge clk) begin
                 if (rst) begin s <= 8'h00; q <= 8'h00; end
                 else begin
                   s <= s + {4'h0, a};
                   if (a[0]) q <= q ^ s;
                   else q <= {q[6:0], q[7]};
                 end
               end
             endmodule",
            None,
        )
        .unwrap();
        let faults = generate_faults(&design, &FaultListConfig::default());
        let clk = design.find_signal("clk").unwrap();
        let rst = design.find_signal("rst").unwrap();
        let a = design.find_signal("a").unwrap();
        let mut sb = StimulusBuilder::new();
        sb.add_cycle(clk, &[(rst, LogicVec::from_u64(1, 1))]);
        let mut x = 11u64;
        for _ in 0..30 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            sb.add_cycle(
                clk,
                &[
                    (rst, LogicVec::from_u64(1, 0)),
                    (a, LogicVec::from_u64(4, x >> 40)),
                ],
            );
        }
        let stim = sb.finish();
        (design, faults, stim)
    }

    #[test]
    fn run_sharded_preserves_shard_order() {
        let (_, faults, _) = fixture();
        let shards = faults.partition(9, PartitionStrategy::RoundRobin);
        let sizes = run_sharded(&shards, 4, |s| s.len());
        let expected: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, expected);
        assert_eq!(sizes.iter().sum::<usize>(), faults.len());
    }

    #[test]
    fn parallel_engine_matches_serial_bit_for_bit() {
        let (design, faults, stim) = fixture();
        let config = CampaignConfig::serial();
        let serial = Eraser::full().run(&design, &faults, &stim, &config);
        for strategy in PartitionStrategy::all() {
            for threads in [1, 2, 4, 7] {
                let par = Parallel::new(Eraser::full(), ParallelConfig { threads, strategy });
                let result = par.run(&design, &faults, &stim, &config);
                assert_eq!(
                    serial.coverage, result.coverage,
                    "{strategy} x{threads}: merged coverage diverged"
                );
                assert!(result.stats.is_some());
            }
        }
        assert!(serial.coverage.detected() > 0);
    }

    #[test]
    fn parallel_engines_pass_runner_parity() {
        let (design, faults, stim) = fixture();
        let runner =
            CampaignRunner::new(&design, &faults, &stim).with_config(CampaignConfig::serial());
        let engines: Vec<Box<dyn FaultSimEngine>> = vec![
            Box::new(Eraser::full()),
            Box::new(Parallel::new(
                Eraser::full(),
                ParallelConfig::with_threads(3),
            )),
            Box::new(Parallel::new(
                Eraser::none(),
                ParallelConfig {
                    threads: 5,
                    strategy: PartitionStrategy::Contiguous,
                },
            )),
        ];
        let results = runner.run_all(&engines);
        CampaignRunner::check_parity(&results).expect("parallel results keep parity");
        assert_eq!(results[1].name, "Eraser p3");
    }

    #[test]
    fn empty_universe_runs_and_merges() {
        let (design, _, stim) = fixture();
        let faults = FaultList::default();
        let par = Parallel::new(Eraser::full(), ParallelConfig::with_threads(4));
        let result = par.run(&design, &faults, &stim, &CampaignConfig::serial());
        assert_eq!(result.coverage.total(), 0);
        assert_eq!(result.coverage.coverage_percent(), 100.0);
    }

    #[test]
    fn config_accessors() {
        let cfg = ParallelConfig::with_threads(3);
        assert!(cfg.is_parallel());
        assert_eq!(cfg.effective_threads(), 3);
        assert_eq!(cfg.shard_count(5), 5);
        assert_eq!(cfg.shard_count(1000), 12);
        assert_eq!(cfg.shard_count(0), 1);
        assert!(!ParallelConfig::serial().is_parallel());
        assert!(ParallelConfig::with_threads(0).effective_threads() >= 1);
        assert_eq!(
            ParallelConfig::serial().to_string(),
            "1 thread / site-affinity"
        );
    }
}
