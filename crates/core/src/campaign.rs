//! One-call fault-simulation campaign driver.

use crate::batch::BatchConfig;
use crate::checkpoint::CheckpointConfig;
use crate::collapse::{collapse_plan, stamp_collapse_stats, CollapseConfig};
use crate::engine::EraserEngine;
use crate::parallel::{run_sharded, ParallelConfig};
use crate::progress::CampaignProgress;
use crate::stats::RedundancyStats;
use crate::twodim::GoodRunArtifacts;
use crate::RedundancyMode;
use eraser_fault::{CoverageReport, FaultList};
use eraser_ir::{BatchProgram, Design, EvalBackend, TapeProgram};
use eraser_sim::Stimulus;
use std::time::Instant;

/// Campaign options.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Redundancy-elimination mode (the ablation axis).
    pub mode: RedundancyMode,
    /// Stop simulating a fault once detected (fault dropping), as
    /// commercial tools do. Coverage is unaffected; runtime improves.
    pub drop_detected: bool,
    /// Fault-parallel execution: worker threads and partition strategy.
    /// The default honors `ERASER_THREADS` / `ERASER_PARTITION`; coverage
    /// is bit-identical at any thread count.
    pub parallel: ParallelConfig,
    /// Expression-evaluation backend: the tree walker (reference oracle)
    /// or compiled instruction tapes. The default honors `ERASER_EVAL`;
    /// coverage and redundancy counters are bit-identical on both. For the
    /// tape backend the design is lowered once per campaign and the
    /// program is shared across every fault-parallel shard worker.
    pub backend: EvalBackend,
    /// Checkpointed good-state replay: the good-state snapshot interval.
    /// When enabled the campaign takes the two-dimensional path (see
    /// [`CheckpointConfig`] and the `twodim` module docs): one
    /// instrumented good run, window-aware shards, and engines that
    /// resume from the latest eligible checkpoint — composing with
    /// fault-parallel threads instead of excluding them. The default
    /// honors `ERASER_CKPT` (disabled when unset). Coverage records are
    /// bit-identical at any interval and thread count; the redundancy
    /// counters are bit-identical across *thread counts* at a fixed
    /// interval (they legitimately shrink versus a non-checkpointed run —
    /// that is the point).
    pub checkpoint: CheckpointConfig,
    /// Bit-parallel fault batching: evaluate up to 64 fault candidates of a
    /// batchable RTL node in one word-parallel pass (PPSFP applied to the
    /// RTL plane). The default honors `ERASER_BATCH` (disabled when
    /// unset). Coverage and all semantic counters are bit-identical with
    /// batching on or off; the batch program is compiled once per campaign
    /// and shared across every fault-parallel shard worker.
    pub batch: BatchConfig,
    /// Static fault collapsing: fold equivalent faults into one
    /// representative and drop provably undetectable sites before any
    /// engine runs, then lift the representative records back over the
    /// full universe. The default honors `ERASER_COLLAPSE` (disabled when
    /// unset). Coverage records are bit-identical with collapsing on or
    /// off; collapsing happens *before* partitioning, so fault-parallel
    /// campaigns shard the representative list.
    pub collapse: CollapseConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            mode: RedundancyMode::Full,
            drop_detected: true,
            parallel: ParallelConfig::default(),
            backend: EvalBackend::from_env(),
            checkpoint: CheckpointConfig::from_env(),
            batch: BatchConfig::from_env(),
            collapse: CollapseConfig::from_env(),
        }
    }
}

impl CampaignConfig {
    /// The default campaign pinned to strictly serial execution, ignoring
    /// the environment — the reference configuration for determinism
    /// checks and scaling baselines.
    pub fn serial() -> Self {
        CampaignConfig {
            parallel: ParallelConfig::serial(),
            ..Default::default()
        }
    }

    /// The campaign pinned to an explicit evaluation backend.
    pub fn with_backend(backend: EvalBackend) -> Self {
        CampaignConfig {
            backend,
            ..Default::default()
        }
    }
}

/// The outcome of a campaign: coverage plus instrumentation.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Detection records and the coverage metric.
    pub coverage: CoverageReport,
    /// Redundancy and timing counters. `time_total` is the total compute
    /// time including engine construction: for a serial campaign that is
    /// the campaign wall time; for a fault-parallel campaign it is the sum
    /// of the shard walls (aggregate CPU time), so
    /// [`RedundancyStats::behavioral_time_percent`] stays a meaningful
    /// compute-share at any thread count. Wall time of a parallel campaign
    /// is what the caller measures around [`run_campaign`] (as
    /// [`CampaignRunner`](crate::CampaignRunner) does).
    pub stats: RedundancyStats,
}

/// Externally shared execution resources for a campaign — everything
/// [`run_campaign_with`] would otherwise build itself:
///
/// * compiled programs (`tapes` / `batch`), shared so a long-running
///   service lowers each design once across any number of campaigns;
/// * cached good-run artifacts (`good_run`), so a repeat submission on
///   the same (design, fault universe, stimulus, checkpoint interval)
///   skips the instrumented good run entirely;
/// * a [`CampaignProgress`] block (`progress`), ticked per completed work
///   group for live status reporting.
///
/// All fields default to `None` — [`run_campaign`] passes an empty
/// context and behaves exactly as before. Shared resources are
/// observability/amortization only: a campaign run with a populated
/// context produces bit-identical coverage and semantic counters to one
/// run with an empty context, because both paths build identical plans
/// and engines from identical data.
#[derive(Default)]
pub struct CampaignContext<'a> {
    /// A pre-compiled tape program for this design (used only when
    /// `config.backend` is the tape backend).
    pub tapes: Option<&'a TapeProgram>,
    /// A pre-compiled bit-parallel batch program (used only when
    /// `config.batch` is enabled).
    pub batch: Option<&'a BatchProgram>,
    /// Cached good-run artifacts for this exact (design, fault universe,
    /// stimulus, checkpoint interval). Must not be supplied for a
    /// different fault universe — the activation windows are per-fault.
    /// Ignored (and never consulted) when collapsing is enabled, since
    /// the representative universe differs from the recorded one.
    pub good_run: Option<&'a GoodRunArtifacts>,
    /// Progress counters ticked as work groups complete.
    pub progress: Option<&'a CampaignProgress>,
}

/// Runs a complete fault-simulation campaign: builds the engine, replays
/// the stimulus with observation after every settle step, and returns
/// coverage plus statistics.
///
/// With `config.parallel` requesting more than one thread, the fault
/// universe is partitioned into shards executed by a scoped worker pool
/// (one independent engine per shard) and the shard results are merged;
/// coverage — detections, first-detection steps and outputs — is
/// bit-identical to the serial run at any thread count. Merged stats sum
/// per-shard counters and per-shard walls (see [`RedundancyStats::merge`]
/// and [`CampaignResult::stats`]).
///
/// With `config.checkpoint` enabled the campaign runs the composed
/// two-dimensional schedule (any thread count): one instrumented good run
/// records periodic snapshots, faults shard by activation window, each
/// shard engine resumes from the latest checkpoint eligible for all its
/// faults, and never-active faults are dropped without simulation.
/// Coverage stays bit-identical to the non-checkpointed run; counters are
/// bit-identical across thread counts at a fixed interval, with
/// `skipped_prefix_steps` / `skipped_faults` quantifying the trimmed
/// work.
///
/// Equivalent to [`run_campaign_with`] with an empty [`CampaignContext`];
/// services amortizing compiled programs and good runs across campaigns
/// use the latter.
pub fn run_campaign(
    design: &Design,
    faults: &FaultList,
    stimulus: &Stimulus,
    config: &CampaignConfig,
) -> CampaignResult {
    run_campaign_with(
        design,
        faults,
        stimulus,
        config,
        &CampaignContext::default(),
    )
}

/// [`run_campaign`] with externally shared resources — see
/// [`CampaignContext`]. Anything the context does not supply is built
/// in-line exactly as [`run_campaign`] builds it, so results are
/// bit-identical regardless of what the context carries.
pub fn run_campaign_with(
    design: &Design,
    faults: &FaultList,
    stimulus: &Stimulus,
    config: &CampaignConfig,
    ctx: &CampaignContext<'_>,
) -> CampaignResult {
    let t0 = Instant::now();
    // Static collapsing runs first: simulate one representative per
    // equivalence class (everything below — sharding included — sees only
    // the representative list), then lift the records back over the full
    // universe. Recursing with the knob off keeps the composition proof
    // trivial: the inner campaign *is* an ordinary uncollapsed campaign.
    // Cached good-run artifacts are dropped for the recursion: they were
    // recorded over the *full* universe, and activation windows are
    // per-fault.
    if let Some(plan) = collapse_plan(design, faults, &config.collapse) {
        let inner = CampaignConfig {
            collapse: CollapseConfig::disabled(),
            ..config.clone()
        };
        let inner_ctx = CampaignContext {
            tapes: ctx.tapes,
            batch: ctx.batch,
            good_run: None,
            progress: ctx.progress,
        };
        let mut result =
            run_campaign_with(design, plan.representatives(), stimulus, &inner, &inner_ctx);
        result.coverage = plan.lift_coverage(&result.coverage);
        stamp_collapse_stats(&mut result.stats, &plan);
        return result;
    }
    // Tape backend: lower the design once, share the immutable program
    // with every worker (and the serial path below) — or reuse the
    // caller's pre-compiled copy. Likewise the batch program when
    // bit-parallel fault batching is on.
    let owned_tapes = if ctx.tapes.is_none() {
        TapeProgram::for_backend(design, config.backend)
    } else {
        None
    };
    let tapes = match config.backend {
        EvalBackend::Tape => ctx.tapes.or(owned_tapes.as_ref()),
        EvalBackend::Tree => None,
    };
    let owned_batch =
        (config.batch.enabled && ctx.batch.is_none()).then(|| BatchProgram::compile(design));
    let batch = if config.batch.enabled {
        ctx.batch.or(owned_batch.as_ref())
    } else {
        None
    };
    // Checkpointing on: the two-dimensional path. One instrumented good
    // run records snapshots, the fault universe shards by activation
    // window, and every shard engine resumes from the latest eligible
    // checkpoint — at any thread count, one thread included, so the
    // composed counters are bit-identical across thread counts.
    if config.checkpoint.is_enabled() && !stimulus.steps.is_empty() && !faults.is_empty() {
        let mut result = crate::twodim::run_windowed(
            design,
            faults,
            stimulus,
            config,
            &CampaignContext {
                tapes,
                batch,
                good_run: ctx.good_run,
                progress: ctx.progress,
            },
        );
        if !config.parallel.is_parallel() {
            // Serial convention: time_total is the campaign wall.
            result.stats.time_total = t0.elapsed();
        }
        return result;
    }
    let threads = config.parallel.effective_threads();
    if threads > 1 && faults.len() > 1 {
        let mut shards = faults.partition(
            config.parallel.shard_count(faults.len()),
            config.parallel.strategy,
        );
        // Site-affinity may leave shards empty when the faults cluster on
        // fewer signals than there are shards; simulating those would
        // replay the whole stimulus for zero faults.
        shards.retain(|s| !s.is_empty());
        if let Some(p) = ctx.progress {
            p.begin(shards.len(), faults.len());
        }
        let shard_results = run_sharded(&shards, threads, |shard| {
            let shard_t0 = Instant::now();
            let mut engine = build_engine(design, &shard.list, config, tapes, batch);
            engine.run(stimulus);
            let mut stats = engine.stats().clone();
            stats.time_total = shard_t0.elapsed();
            if let Some(p) = ctx.progress {
                p.group_done(shard.len());
            }
            (engine.coverage().clone(), stats)
        });
        let mut coverage = CoverageReport::new(faults.len());
        let mut stats = RedundancyStats::default();
        for (shard, (shard_cov, shard_stats)) in shards.iter().zip(&shard_results) {
            shard.merge_coverage_into(shard_cov, &mut coverage);
            stats.merge(shard_stats);
        }
        return CampaignResult { coverage, stats };
    }
    if let Some(p) = ctx.progress {
        p.begin(1, faults.len());
    }
    let mut engine = build_engine(design, faults, config, tapes, batch);
    engine.run(stimulus);
    let mut stats = engine.stats().clone();
    stats.time_total = t0.elapsed();
    if let Some(p) = ctx.progress {
        p.group_done(faults.len());
    }
    CampaignResult {
        coverage: engine.coverage().clone(),
        stats,
    }
}

/// Builds one campaign engine on the configured backend, attaching the
/// shared tape and batch programs when present.
fn build_engine<'d>(
    design: &'d Design,
    faults: &'d FaultList,
    config: &CampaignConfig,
    tapes: Option<&'d TapeProgram>,
    batch: Option<&'d BatchProgram>,
) -> EraserEngine<'d> {
    EraserEngine::session(design, faults)
        .mode(config.mode)
        .drop_detected(config.drop_detected)
        .tapes(tapes)
        .batch(batch)
        .start()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_fault::{generate_faults, FaultListConfig};
    use eraser_frontend::compile;
    use eraser_logic::LogicVec;
    use eraser_sim::StimulusBuilder;

    fn counter_design() -> Design {
        compile(
            "module m(input wire clk, input wire rst, output reg [3:0] q);
               always @(posedge clk) begin
                 if (rst) q <= 4'h0;
                 else q <= q + 4'h1;
               end
             endmodule",
            None,
        )
        .unwrap()
    }

    fn counter_stim(d: &Design, cycles: u64) -> eraser_sim::Stimulus {
        let clk = d.find_signal("clk").unwrap();
        let rst = d.find_signal("rst").unwrap();
        let mut sb = StimulusBuilder::new();
        sb.add_cycle(clk, &[(rst, LogicVec::from_u64(1, 1))]);
        for _ in 0..cycles {
            sb.add_cycle(clk, &[(rst, LogicVec::from_u64(1, 0))]);
        }
        sb.finish()
    }

    #[test]
    fn counter_faults_are_detected() {
        let d = counter_design();
        let faults = generate_faults(&d, &FaultListConfig::default());
        assert_eq!(faults.len(), 8); // q: 4 bits x 2 polarities
        let stim = counter_stim(&d, 20);
        let res = run_campaign(&d, &faults, &stim, &CampaignConfig::default());
        // Every stuck-at on a free-running counter's bits is observable.
        assert_eq!(
            res.coverage.detected(),
            8,
            "undetected: {:?}",
            res.coverage.undetected()
        );
    }

    #[test]
    fn all_modes_agree_on_coverage() {
        let d = compile(
            "module m(input wire clk, input wire rst, input wire [3:0] a,
                      output reg [3:0] q, output wire [3:0] w);
               reg [3:0] s;
               assign w = s ^ a;
               always @(posedge clk) begin
                 if (rst) begin s <= 4'h0; q <= 4'h0; end
                 else begin
                   if (a[0]) s <= s + 4'h1;
                   else s <= s ^ {2'b00, a[3:2]};
                   case (a[1:0])
                     2'd0: q <= s;
                     2'd1: q <= a;
                     default: q <= q + 4'h1;
                   endcase
                 end
               end
             endmodule",
            None,
        )
        .unwrap();
        let faults = generate_faults(&d, &FaultListConfig::default());
        let clk = d.find_signal("clk").unwrap();
        let rst = d.find_signal("rst").unwrap();
        let a = d.find_signal("a").unwrap();
        let mut sb = StimulusBuilder::new();
        sb.add_cycle(clk, &[(rst, LogicVec::from_u64(1, 1))]);
        let mut x = 7u64;
        for _ in 0..40 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            sb.add_cycle(
                clk,
                &[
                    (rst, LogicVec::from_u64(1, 0)),
                    (a, LogicVec::from_u64(4, x >> 33)),
                ],
            );
        }
        let stim = sb.finish();
        let mut reports = Vec::new();
        for mode in [
            RedundancyMode::None,
            RedundancyMode::Explicit,
            RedundancyMode::Full,
        ] {
            let res = run_campaign(
                &d,
                &faults,
                &stim,
                &CampaignConfig {
                    mode,
                    drop_detected: true,
                    ..Default::default()
                },
            );
            reports.push((mode, res));
        }
        let (_, base) = &reports[0];
        for (mode, res) in &reports[1..] {
            assert!(
                base.coverage.same_detected_set(&res.coverage),
                "{mode} disagrees: base {} vs {}",
                base.coverage,
                res.coverage
            );
        }
        // Full mode must have skipped work the others executed.
        let full = &reports[2].1;
        assert!(full.stats.explicit_skipped > 0);
        assert!(full.stats.fault_executions < reports[0].1.stats.fault_executions);
    }

    #[test]
    fn implicit_redundancy_is_detected_and_skipped() {
        // Paper Fig. 3(b)-style: the fault flips a branch input (b) without
        // changing the decision's outcome, and its other differences are on
        // signals not read along the taken path.
        let d = compile(
            "module m(input wire clk, input wire rst, input wire [3:0] c, input wire [3:0] g,
                      input wire [3:0] k, input wire [1:0] s, input wire [3:0] b,
                      output reg [3:0] r, output reg [3:0] a);
               wire [3:0] bmask;
               assign bmask = b & 4'h3;
               always @(posedge clk) begin
                 if (rst) begin r <= 4'h0; a <= 4'h0; end
                 else if (s == 2'd0) begin
                   r <= c + g;
                   a <= k;
                 end
                 else if (s == 2'd1) r <= 4'h0;
                 else begin
                   a <= 4'h0;
                   if (bmask == 4'h0) r <= r + 4'h1;
                   else r <= a ^ r;
                 end
               end
             endmodule",
            None,
        )
        .unwrap();
        // Faults on bmask: visible diffs into the behavioral node, but when
        // s == 0 the taken path reads only c, g, k -> implicit redundancy.
        let faults = generate_faults(
            &d,
            &FaultListConfig {
                include_inputs: false,
                ..Default::default()
            },
        );
        let clk = d.find_signal("clk").unwrap();
        let rst = d.find_signal("rst").unwrap();
        let s = d.find_signal("s").unwrap();
        let mut sb = StimulusBuilder::new();
        sb.add_cycle(clk, &[(rst, LogicVec::from_u64(1, 1))]);
        for _ in 0..10 {
            sb.add_cycle(
                clk,
                &[
                    (rst, LogicVec::from_u64(1, 0)),
                    (s, LogicVec::from_u64(2, 0)),
                ],
            );
        }
        let stim = sb.finish();
        let full = run_campaign(
            &d,
            &faults,
            &stim,
            &CampaignConfig {
                mode: RedundancyMode::Full,
                drop_detected: false,
                ..Default::default()
            },
        );
        let expl = run_campaign(
            &d,
            &faults,
            &stim,
            &CampaignConfig {
                mode: RedundancyMode::Explicit,
                drop_detected: false,
                ..Default::default()
            },
        );
        assert!(
            full.stats.implicit_skipped > 0,
            "expected implicit redundancy to be found: {:?}",
            full.stats
        );
        assert!(full.stats.fault_executions < expl.stats.fault_executions);
        assert!(full.coverage.same_detected_set(&expl.coverage));
    }

    #[test]
    fn collapsed_campaign_matches_uncollapsed_bit_for_bit() {
        // Alias chain + dead wire: collapsing folds b/c faults and drops
        // dead's, yet every per-fault record must match the plain run.
        let d = compile(
            "module m(input wire clk, input wire [3:0] a, output reg [3:0] q);
               wire [3:0] b;
               wire [3:0] c;
               wire [3:0] dead;
               assign b = a ^ 4'h6;
               assign c = b;
               assign dead = a & 4'h1;
               always @(posedge clk) q <= q + c;
             endmodule",
            None,
        )
        .unwrap();
        let faults = generate_faults(&d, &FaultListConfig::default());
        let clk = d.find_signal("clk").unwrap();
        let a = d.find_signal("a").unwrap();
        let mut sb = StimulusBuilder::new();
        for i in 0..24u64 {
            sb.add_cycle(clk, &[(a, LogicVec::from_u64(4, i * 7 % 16))]);
        }
        let stim = sb.finish();
        let run = |collapse| {
            run_campaign(
                &d,
                &faults,
                &stim,
                &CampaignConfig {
                    collapse,
                    ..CampaignConfig::serial()
                },
            )
        };
        let plain = run(CollapseConfig::disabled());
        let collapsed = run(CollapseConfig::enabled());
        assert_eq!(plain.coverage, collapsed.coverage, "records diverged");
        assert_eq!(plain.stats.collapse_classes, 0);
        let s = &collapsed.stats;
        assert!(s.collapsed_faults > 0, "alias chain never folded: {s:?}");
        assert!(s.collapse_dropped >= 8, "dead wire kept: {s:?}");
        assert_eq!(
            s.collapse_classes + s.collapsed_faults + s.collapse_dropped,
            faults.len() as u64
        );
        // Fewer faults scheduled means strictly less fault work.
        assert!(s.fault_executions <= plain.stats.fault_executions);
    }

    #[test]
    fn collapsed_parallel_campaign_shards_representatives() {
        let d = counter_design();
        let faults = generate_faults(&d, &FaultListConfig::default());
        let stim = counter_stim(&d, 20);
        let serial = run_campaign(&d, &faults, &stim, &CampaignConfig::serial());
        let collapsed_parallel = run_campaign(
            &d,
            &faults,
            &stim,
            &CampaignConfig {
                collapse: CollapseConfig::enabled(),
                parallel: ParallelConfig {
                    threads: 4,
                    ..ParallelConfig::serial()
                },
                ..CampaignConfig::serial()
            },
        );
        assert_eq!(serial.coverage, collapsed_parallel.coverage);
        assert!(collapsed_parallel.stats.collapse_classes > 0);
    }

    #[test]
    fn dropping_does_not_change_coverage() {
        let d = counter_design();
        let faults = generate_faults(&d, &FaultListConfig::default());
        let stim = counter_stim(&d, 25);
        let keep = run_campaign(
            &d,
            &faults,
            &stim,
            &CampaignConfig {
                mode: RedundancyMode::Full,
                drop_detected: false,
                ..Default::default()
            },
        );
        let drop = run_campaign(&d, &faults, &stim, &CampaignConfig::default());
        assert!(keep.coverage.same_detected_set(&drop.coverage));
    }

    #[test]
    fn good_values_match_reference_simulator() {
        // The engine's good network must track the plain simulator exactly.
        let d = compile(
            "module m(input wire clk, input wire [3:0] a, output reg [7:0] acc,
                      output wire [7:0] dbl);
               assign dbl = acc + acc;
               always @(posedge clk) acc <= acc ^ {a, a};
             endmodule",
            None,
        )
        .unwrap();
        let faults = generate_faults(&d, &FaultListConfig::default());
        let clk = d.find_signal("clk").unwrap();
        let a = d.find_signal("a").unwrap();
        let acc = d.find_signal("acc").unwrap();
        let dbl = d.find_signal("dbl").unwrap();
        let mut sb = StimulusBuilder::new();
        for i in 0..16u64 {
            sb.add_cycle(clk, &[(a, LogicVec::from_u64(4, i * 5 % 16))]);
        }
        let stim = sb.finish();
        let mut engine = EraserEngine::new(&d, &faults, RedundancyMode::Full, true);
        let mut sim = eraser_sim::Simulator::new(&d);
        for step in &stim.steps {
            for (sig, v) in step {
                engine.set_input(*sig, v);
                sim.set_input(*sig, v);
            }
            engine.step();
            sim.step();
            assert_eq!(engine.good_value(acc), sim.value(acc));
            assert_eq!(engine.good_value(dbl), sim.value(dbl));
        }
    }
}
