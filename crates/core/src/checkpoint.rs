//! Checkpointed good-state replay configuration.
//!
//! The temporal-redundancy knob of the framework: with a nonzero interval,
//! campaign drivers run the good machine once with an activation probe
//! attached, capture a [`SimSnapshot`](eraser_sim::SimSnapshot) of the
//! good state every `interval` settle steps, derive per-fault
//! [`ActivationWindows`](eraser_fault::ActivationWindows), and then start
//! simulation from the latest eligible checkpoint preceding each fault's
//! window — skipping the fault-free prefix that from-zero re-simulation
//! would otherwise replay, and skipping outright the faults whose window
//! lies beyond the stimulus. The serial IFsim/VFsim baselines restart one
//! simulator per fault; the concurrent campaign driver
//! ([`run_campaign`](crate::run_campaign)) groups faults into
//! [`WindowShard`](eraser_fault::WindowShard)s by their latest eligible
//! checkpoint and resumes one concurrent engine per group from the shared
//! snapshot — the two-dimensional path that composes with
//! [`ParallelConfig`](crate::ParallelConfig) sharding. Coverage records
//! (first-detection steps and outputs included) are bit-identical to the
//! non-checkpointed run by construction, and because the window plan is
//! worker-count-independent, *all* redundancy counters are bit-identical
//! across thread counts at a fixed interval. (Counters do differ from a
//! checkpoint-off run — each window group evaluates its own good suffix —
//! which is the trade `skipped_prefix_steps` quantifies.)
//!
//! Configured via `ERASER_CKPT` (settle steps between checkpoints, `0` or
//! unset = disabled), the CLI's `--checkpoint-interval`, or
//! [`CampaignConfig::checkpoint`](crate::CampaignConfig).

/// Checkpointing configuration: the good-state snapshot interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Settle steps between good-state checkpoints; `0` disables
    /// checkpointing (every fault replays from step 0, the historical
    /// behavior).
    pub interval: usize,
}

impl CheckpointConfig {
    /// Checkpointing disabled.
    pub fn disabled() -> Self {
        CheckpointConfig { interval: 0 }
    }

    /// A checkpoint every `interval` settle steps (`0` disables).
    pub fn every(interval: usize) -> Self {
        CheckpointConfig { interval }
    }

    /// Reads `ERASER_CKPT` (default: disabled). Unparsable values fall
    /// back to disabled.
    pub fn from_env() -> Self {
        Self::parse_env(std::env::var("ERASER_CKPT").ok().as_deref())
    }

    /// The `ERASER_CKPT` parsing rule, separated for testability.
    fn parse_env(value: Option<&str>) -> Self {
        CheckpointConfig {
            interval: value.and_then(|s| s.trim().parse().ok()).unwrap_or(0),
        }
    }

    /// True if campaigns under this config take checkpoints.
    pub fn is_enabled(&self) -> bool {
        self.interval > 0
    }

    /// True if a checkpoint is captured before applying stimulus step
    /// `step` (step 0 — the construction-settled state — is always a
    /// boundary when enabled).
    pub fn is_boundary(&self, step: usize) -> bool {
        self.interval > 0 && step.is_multiple_of(self.interval)
    }
}

/// The default honors the environment (`ERASER_CKPT`), mirroring the
/// `ERASER_THREADS` / `ERASER_EVAL` convention, so existing drivers gain
/// the knob without code changes.
impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig::from_env()
    }
}

impl std::fmt::Display for CheckpointConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_enabled() {
            write!(f, "every {} steps", self.interval)
        } else {
            write!(f, "off")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rules() {
        assert_eq!(CheckpointConfig::parse_env(None).interval, 0);
        assert_eq!(CheckpointConfig::parse_env(Some("8")).interval, 8);
        assert_eq!(CheckpointConfig::parse_env(Some(" 16 ")).interval, 16);
        assert_eq!(CheckpointConfig::parse_env(Some("0")).interval, 0);
        assert_eq!(CheckpointConfig::parse_env(Some("nope")).interval, 0);
    }

    #[test]
    fn boundaries() {
        let off = CheckpointConfig::disabled();
        assert!(!off.is_enabled());
        assert!(!off.is_boundary(0));
        let on = CheckpointConfig::every(8);
        assert!(on.is_enabled());
        assert!(on.is_boundary(0));
        assert!(on.is_boundary(16));
        assert!(!on.is_boundary(4));
        assert_eq!(on.to_string(), "every 8 steps");
        assert_eq!(off.to_string(), "off");
    }
}
