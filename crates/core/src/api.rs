//! The engine-agnostic campaign API.
//!
//! Every fault simulator in the workspace — the ERASER concurrent engine in
//! all three ablation modes, and the IFsim / VFsim / CfSim baselines in
//! `eraser-baselines` — is driven through one polymorphic surface:
//!
//! * [`FaultSimEngine`] — the engine trait: a name and a
//!   `run(design, faults, stimulus, config)` entry point,
//! * [`EngineResult`] — the shared result schema (coverage, optional
//!   redundancy instrumentation, wall time),
//! * [`CampaignRunner`] — a campaign harness that binds one
//!   `(design, faults, stimulus, config)` tuple, captures timing uniformly
//!   for every engine, and checks cross-engine coverage parity (the
//!   Table II criterion).
//!
//! All engines share the same detection predicate
//! ([`eraser_fault::detectable_mismatch`]), observation points (primary
//! outputs after every stimulus step) and fault-dropping semantics, which
//! is what makes their [`EngineResult`]s directly comparable. New backends
//! (sharded, parallel, compiled) plug in by implementing the trait; no
//! caller changes.

use crate::campaign::{run_campaign, CampaignConfig};
use crate::stats::RedundancyStats;
use crate::RedundancyMode;
use eraser_fault::{CoverageReport, FaultList};
use eraser_ir::Design;
use eraser_sim::Stimulus;
use std::fmt;
use std::time::{Duration, Instant};

/// The shared result schema of one engine campaign — a row of the paper's
/// Fig. 6 / Table II.
#[derive(Debug, Clone)]
pub struct EngineResult {
    /// Engine name (`Eraser`, `Eraser-`, `Eraser--`, `IFsim`, `VFsim`,
    /// `CfSim`).
    pub name: String,
    /// Detection records and the coverage metric.
    pub coverage: CoverageReport,
    /// Redundancy instrumentation, for engines built on the concurrent
    /// ERASER core; `None` for the serial baselines.
    pub stats: Option<RedundancyStats>,
    /// Wall-clock time of the whole campaign.
    pub wall: Duration,
    /// Worker threads the campaign actually ran with (1 = serial). Set by
    /// engines that honor [`CampaignConfig::parallel`] and by the
    /// [`Parallel`](crate::Parallel) adapter; serial engines leave 1.
    pub threads: usize,
}

impl EngineResult {
    /// Creates a result with zero wall time (the campaign driver or
    /// [`CampaignRunner`] fills timing in).
    pub fn new(name: impl Into<String>, coverage: CoverageReport) -> Self {
        EngineResult {
            name: name.into(),
            coverage,
            stats: None,
            wall: Duration::ZERO,
            threads: 1,
        }
    }

    /// Attaches redundancy instrumentation.
    pub fn with_stats(mut self, stats: RedundancyStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Attaches a wall time.
    pub fn with_wall(mut self, wall: Duration) -> Self {
        self.wall = wall;
        self
    }

    /// Records the worker-thread count the campaign ran with.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

impl fmt::Display for EngineResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} in {:.3}s",
            self.name,
            self.coverage,
            self.wall.as_secs_f64()
        )
    }
}

/// An RTL fault-simulation engine.
///
/// Implementations must share the framework-wide campaign semantics:
/// replay `stimulus` step by step, compare every primary output against the
/// fault-free run after each settle step with
/// [`eraser_fault::detectable_mismatch`], and record the first detection of
/// each fault. Engines may ignore configuration fields that do not apply to
/// them (e.g. the serial baselines always drop detected faults — coverage
/// is insensitive to dropping by construction).
pub trait FaultSimEngine {
    /// Display name, stable across runs (used as the key in reports).
    fn name(&self) -> String;

    /// Runs one complete campaign.
    fn run(
        &self,
        design: &Design,
        faults: &FaultList,
        stimulus: &Stimulus,
        config: &CampaignConfig,
    ) -> EngineResult;
}

/// The ERASER concurrent engine as a [`FaultSimEngine`].
///
/// The `mode` field selects the paper's ablation variant and *overrides*
/// the mode in the per-run [`CampaignConfig`] (so a heterogeneous engine
/// list can run under one shared config); all other configuration fields
/// are honored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Eraser {
    /// Which redundancy-elimination layers are active.
    pub mode: RedundancyMode,
}

impl Eraser {
    /// Full ERASER: explicit + implicit redundancy elimination.
    pub fn full() -> Self {
        Eraser {
            mode: RedundancyMode::Full,
        }
    }

    /// Eraser-: explicit elimination only.
    pub fn explicit() -> Self {
        Eraser {
            mode: RedundancyMode::Explicit,
        }
    }

    /// Eraser--: no redundancy elimination.
    pub fn none() -> Self {
        Eraser {
            mode: RedundancyMode::None,
        }
    }

    /// One engine per ablation mode, in Fig. 7 order
    /// (`Eraser--`, `Eraser-`, `Eraser`).
    pub fn ablation() -> Vec<Box<dyn FaultSimEngine>> {
        vec![
            Box::new(Eraser::none()),
            Box::new(Eraser::explicit()),
            Box::new(Eraser::full()),
        ]
    }
}

impl FaultSimEngine for Eraser {
    fn name(&self) -> String {
        self.mode.to_string()
    }

    fn run(
        &self,
        design: &Design,
        faults: &FaultList,
        stimulus: &Stimulus,
        config: &CampaignConfig,
    ) -> EngineResult {
        let t0 = Instant::now();
        let res = run_campaign(
            design,
            faults,
            stimulus,
            &CampaignConfig {
                mode: self.mode,
                ..config.clone()
            },
        );
        // Mirror run_campaign's decision: universes of ≤ 1 fault run
        // serially regardless of the configured thread count.
        let threads = if faults.len() > 1 {
            config.parallel.effective_threads()
        } else {
            1
        };
        EngineResult::new(self.name(), res.coverage)
            .with_stats(res.stats)
            .with_wall(t0.elapsed())
            .with_threads(threads)
    }
}

/// A cross-engine coverage disagreement found by
/// [`CampaignRunner::check_parity`].
#[derive(Debug, Clone)]
pub struct ParityMismatch {
    /// Name and coverage of the baseline engine (first result).
    pub baseline: (String, String),
    /// Name and coverage of the disagreeing engine.
    pub other: (String, String),
}

impl fmt::Display for ParityMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coverage parity violated: {} reports {} but {} reports {}",
            self.baseline.0, self.baseline.1, self.other.0, self.other.1
        )
    }
}

impl std::error::Error for ParityMismatch {}

/// A campaign harness binding one `(design, faults, stimulus, config)`
/// tuple so any number of engines can be run against identical inputs with
/// uniform timing capture.
///
/// # Example
///
/// ```
/// use eraser_core::{CampaignRunner, Eraser, FaultSimEngine};
/// use eraser_fault::{generate_faults, FaultListConfig};
/// use eraser_frontend::compile;
/// use eraser_logic::LogicVec;
/// use eraser_sim::StimulusBuilder;
///
/// let design = compile(
///     "module dut(input wire clk, input wire rst, input wire [7:0] a,
///                 output reg [7:0] q);
///        always @(posedge clk) begin
///          if (rst) q <= 8'h00; else q <= q ^ a;
///        end
///      endmodule",
///     None,
/// )?;
/// let faults = generate_faults(&design, &FaultListConfig::default());
/// let clk = design.find_signal("clk").unwrap();
/// let rst = design.find_signal("rst").unwrap();
/// let a = design.find_signal("a").unwrap();
/// let mut sb = StimulusBuilder::new();
/// sb.add_cycle(clk, &[(rst, LogicVec::from_u64(1, 1))]);
/// for i in 0..24 {
///     sb.add_cycle(clk, &[
///         (rst, LogicVec::from_u64(1, 0)),
///         (a, LogicVec::from_u64(8, i * 29 % 256)),
///     ]);
/// }
/// let stim = sb.finish();
///
/// let runner = CampaignRunner::new(&design, &faults, &stim);
/// let results = runner.run_all(&Eraser::ablation());
/// CampaignRunner::check_parity(&results)?;
/// assert!(results.iter().all(|r| r.coverage.detected() > 0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CampaignRunner<'a> {
    design: &'a Design,
    faults: &'a FaultList,
    stimulus: &'a Stimulus,
    config: CampaignConfig,
}

impl<'a> CampaignRunner<'a> {
    /// Creates a runner with the default [`CampaignConfig`].
    pub fn new(design: &'a Design, faults: &'a FaultList, stimulus: &'a Stimulus) -> Self {
        CampaignRunner {
            design,
            faults,
            stimulus,
            config: CampaignConfig::default(),
        }
    }

    /// Replaces the campaign configuration.
    pub fn with_config(mut self, config: CampaignConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the fault-parallel execution settings, keeping the rest of
    /// the configuration. Engines honoring [`CampaignConfig::parallel`]
    /// (the concurrent ERASER family) fan campaigns out over worker
    /// threads; merged coverage stays bit-identical, so
    /// [`check_parity`](Self::check_parity) keeps working unchanged on the
    /// merged results.
    pub fn with_parallel(mut self, parallel: crate::ParallelConfig) -> Self {
        self.config.parallel = parallel;
        self
    }

    /// The shared campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs one engine, overriding its self-reported wall time with a
    /// uniform external measurement (so engines are timed identically).
    pub fn run(&self, engine: &dyn FaultSimEngine) -> EngineResult {
        let t0 = Instant::now();
        let mut result = engine.run(self.design, self.faults, self.stimulus, &self.config);
        result.wall = t0.elapsed();
        result
    }

    /// Runs every engine in order against the identical inputs.
    pub fn run_all(&self, engines: &[Box<dyn FaultSimEngine>]) -> Vec<EngineResult> {
        engines.iter().map(|e| self.run(e.as_ref())).collect()
    }

    /// Checks that every result detects exactly the same fault set as the
    /// first (the Table II parity criterion). Detection steps may differ;
    /// the detected *set* may not.
    ///
    /// # Errors
    ///
    /// Returns the first [`ParityMismatch`] found, naming both engines.
    pub fn check_parity(results: &[EngineResult]) -> Result<(), ParityMismatch> {
        let Some(base) = results.first() else {
            return Ok(());
        };
        for r in &results[1..] {
            if !base.coverage.same_detected_set(&r.coverage) {
                return Err(ParityMismatch {
                    baseline: (base.name.clone(), base.coverage.to_string()),
                    other: (r.name.clone(), r.coverage.to_string()),
                });
            }
        }
        Ok(())
    }
}
