//! Two-dimensional parallelism: the composed checkpointed + fault-parallel
//! campaign path.
//!
//! Fault-parallel sharding (PR fig8) and checkpointed activation-window
//! starts (fig9) used to be either/or: the concurrent engines were
//! documented checkpoint-transparent, so turning on threads silently
//! forfeited every skipped prefix step. This module schedules both
//! dimensions as one resource-allocation problem, RIROS-style:
//!
//! 1. **One good run** ([`record_good_run`]). The fault-free design
//!    replays the stimulus once on the plain simulator with a
//!    [`SiteProbe`] attached, capturing a [`SimSnapshot`] at every
//!    checkpoint boundary (noting whether the state is fully defined).
//!    The resulting [`GoodRunArtifacts`] — snapshots plus per-fault
//!    [`ActivationWindows`] — are plain data, shared read-only across all
//!    shard workers, and **reusable across campaigns**: the campaign
//!    service caches them per (design, stimulus) pair so a repeat
//!    submission skips the good run entirely.
//! 2. **Window-aware sharding.** [`ActivationWindows`] gives each fault
//!    its earliest possible divergence; [`WindowPlan`] groups faults by
//!    their latest eligible checkpoint into
//!    [`WindowShard`](eraser_fault::WindowShard)s (never-active faults
//!    are dropped outright), using worker-count-independent chunk sizes.
//! 3. **Shared-checkpoint engine starts.** Each shard runs one concurrent
//!    [`EraserEngine`] that *resumes* from its checkpoint's snapshot
//!    ([`EngineSession::resume_from`](crate::EngineSession::resume_from))
//!    and replays only the stimulus suffix. Eligibility guarantees every
//!    member fault's network state at the checkpoint equals its from-zero
//!    state, so coverage records — detection steps and outputs included —
//!    are bit-identical to a from-zero campaign.
//! 4. **One queue over both dimensions.** The shards feed the same atomic
//!    work queue ([`run_queue`]) as plain fault-parallel campaigns: idle
//!    workers steal whole window groups, and a heavy group, pre-split
//!    into chunks, spreads across workers.
//!
//! Because the plan is independent of the worker count, a serial run and
//! an N-thread run execute the *identical* engines on identical fault
//! groups: all [`RedundancyStats`] counters, not just coverage, are
//! bit-identical at every thread count for a fixed checkpoint interval.
//! (Counters legitimately differ from a non-checkpointed run — each
//! group engine evaluates its own good suffix rather than one full good
//! pass — which is the measured trade the `skipped_prefix_steps` counter
//! quantifies.) Composes with the tape backend, bit-parallel batching
//! and static collapsing, all of which are orthogonal to where an engine
//! starts. The plan is also independent of *who recorded the good run*:
//! resolving a cached [`GoodRunArtifacts`] produces bit-identical
//! coverage and counters to recording it in-line, because the shards and
//! engines are built from the same data either way.

use crate::campaign::{CampaignConfig, CampaignContext, CampaignResult};
use crate::engine::EraserEngine;
use crate::parallel::run_queue;
use crate::stats::RedundancyStats;
use eraser_fault::{ActivationWindows, CoverageReport, FaultList, WindowPlan};
use eraser_ir::{Design, EvalBackend, TapeProgram};
use eraser_sim::{ReplaySim, SimSnapshot, Simulator, SiteProbe, Stimulus};
use std::time::{Duration, Instant};

/// Everything the two-dimensional scheduler needs from the instrumented
/// good run: the boundary snapshots and the derived per-fault activation
/// windows. Plain immutable data — shareable read-only across shard
/// workers, and cacheable across campaigns on the same (design, fault
/// universe, stimulus, checkpoint interval): see [`record_good_run`].
#[derive(Debug, Clone)]
pub struct GoodRunArtifacts {
    /// `(step, fully_defined, snapshot)` per checkpoint boundary, captured
    /// before applying the boundary step.
    pub(crate) checkpoints: Vec<(usize, bool, SimSnapshot)>,
    /// Per-fault earliest-divergence windows derived from the probe.
    pub(crate) windows: ActivationWindows,
    /// Wall time of the instrumented good run.
    pub(crate) good_wall: Duration,
    /// Stimulus length the artifacts were recorded for.
    steps: usize,
}

impl GoodRunArtifacts {
    /// The stimulus length (in settle steps) the good run replayed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// How many boundary snapshots were captured.
    pub fn num_checkpoints(&self) -> usize {
        self.checkpoints.len()
    }
}

/// Runs the instrumented good pass of the two-dimensional schedule: one
/// fault-free replay with a [`SiteProbe`] attached, a [`SimSnapshot`]
/// captured at every `config.checkpoint` boundary, and the per-fault
/// [`ActivationWindows`] derived from the probe.
///
/// The artifacts depend only on the design, the fault universe, the
/// stimulus, and the checkpoint interval — not on threads, backend
/// choice, batching, or redundancy mode — so callers holding those fixed
/// (the campaign service's good-run cache) can record once and hand the
/// same artifacts to any number of subsequent campaigns, each of which
/// then executes zero good-run steps itself.
pub fn record_good_run(
    design: &Design,
    faults: &FaultList,
    stimulus: &Stimulus,
    config: &CampaignConfig,
    tapes: Option<&TapeProgram>,
) -> GoodRunArtifacts {
    let t0 = Instant::now();
    // Probe + boundary snapshots, captured *before* applying each boundary
    // step (step 0 = the construction-settled state, always eligible).
    let mut sim = match tapes {
        Some(tp) => Simulator::with_tapes(design, tp),
        None => Simulator::with_backend(design, EvalBackend::Tree),
    };
    sim.attach_probe(SiteProbe::new(design, faults.iter().map(|f| f.signal)));
    let mut checkpoints: Vec<(usize, bool, SimSnapshot)> = Vec::new();
    for (si, step) in stimulus.steps.iter().enumerate() {
        if config.checkpoint.is_boundary(si) {
            let mut snap = SimSnapshot::new();
            sim.capture_into(&mut snap);
            checkpoints.push((si, sim.fully_defined(), snap));
        }
        sim.begin_probe_step(si);
        sim.replay_step(step);
    }
    let probe = sim.take_probe().expect("probe attached above");
    let windows = ActivationWindows::derive(design, faults, &probe, stimulus.steps.len());
    GoodRunArtifacts {
        checkpoints,
        windows,
        good_wall: t0.elapsed(),
        steps: stimulus.steps.len(),
    }
}

/// Runs the composed two-dimensional campaign. Called by
/// [`run_campaign_with`](crate::run_campaign_with) whenever checkpointing
/// is enabled (any thread count — one thread simply drains the same queue
/// inline); the caller guarantees a non-empty stimulus and fault list
/// and has already applied static collapsing and compiled the shared
/// programs (`ctx` carries the resolved program refs). With
/// `ctx.good_run` present (a cached [`GoodRunArtifacts`]) the good run is
/// skipped entirely; otherwise it is recorded in-line.
pub(crate) fn run_windowed(
    design: &Design,
    faults: &FaultList,
    stimulus: &Stimulus,
    config: &CampaignConfig,
    ctx: &CampaignContext<'_>,
) -> CampaignResult {
    let CampaignContext {
        tapes,
        batch,
        good_run,
        progress,
    } = *ctx;
    let recorded;
    let good = match good_run {
        Some(g) => {
            debug_assert_eq!(
                g.steps,
                stimulus.steps.len(),
                "good-run artifacts recorded for a different stimulus"
            );
            g
        }
        None => {
            recorded = record_good_run(design, faults, stimulus, config, tapes);
            &recorded
        }
    };
    let boundaries: Vec<(usize, bool)> = good.checkpoints.iter().map(|&(s, d, _)| (s, d)).collect();
    let plan = WindowPlan::build(faults, &good.windows, &boundaries);
    if let Some(p) = progress {
        let scheduled = plan.shards.iter().map(|ws| ws.shard.len()).sum();
        p.begin(plan.shards.len(), scheduled);
    }

    // Drain the plan: one checkpoint-resumed engine per window shard,
    // snapshots shared read-only. Serial (threads == 1) runs the same
    // shard sequence inline — same engines, same counters.
    let threads = config.parallel.effective_threads();
    let results = run_queue(&plan.shards, threads, |ws| {
        let shard_t0 = Instant::now();
        let (start, _, snap) = &good.checkpoints[ws.checkpoint];
        let mut engine = EraserEngine::session(design, &ws.shard.list)
            .mode(config.mode)
            .drop_detected(config.drop_detected)
            .tapes(tapes)
            .batch(batch)
            .resume_from(snap, *start)
            .start();
        engine.run(stimulus);
        let mut stats = engine.stats().clone();
        stats.skipped_prefix_steps += ws.skipped_prefix_steps();
        stats.time_total = shard_t0.elapsed();
        if let Some(p) = progress {
            p.group_done(ws.shard.len());
        }
        (engine.coverage().clone(), stats)
    });

    let mut coverage = CoverageReport::new(faults.len());
    let mut stats = RedundancyStats {
        skipped_faults: plan.skipped.len() as u64,
        // The shared good run is real compute; charging it here keeps
        // time_total the aggregate compute time at any thread count. (On a
        // cache hit the charged wall is the original recording's — the
        // semantic counters are what must stay bit-identical.)
        time_total: good.good_wall,
        ..RedundancyStats::default()
    };
    for (ws, (shard_cov, shard_stats)) in plan.shards.iter().zip(&results) {
        ws.shard.merge_coverage_into(shard_cov, &mut coverage);
        stats.merge(shard_stats);
    }
    CampaignResult { coverage, stats }
}
