//! Two-dimensional parallelism: the composed checkpointed + fault-parallel
//! campaign path.
//!
//! Fault-parallel sharding (PR fig8) and checkpointed activation-window
//! starts (fig9) used to be either/or: the concurrent engines were
//! documented checkpoint-transparent, so turning on threads silently
//! forfeited every skipped prefix step. This module schedules both
//! dimensions as one resource-allocation problem, RIROS-style:
//!
//! 1. **One good run.** The fault-free design replays the stimulus once on
//!    the plain simulator with a [`SiteProbe`] attached, capturing a
//!    [`SimSnapshot`] at every checkpoint boundary (noting whether the
//!    state is fully defined). Snapshots are plain data, shared read-only
//!    across all shard workers.
//! 2. **Window-aware sharding.** [`ActivationWindows`] gives each fault
//!    its earliest possible divergence; [`WindowPlan`] groups faults by
//!    their latest eligible checkpoint into
//!    [`WindowShard`](eraser_fault::WindowShard)s (never-active faults
//!    are dropped outright), using worker-count-independent chunk sizes.
//! 3. **Shared-checkpoint engine starts.** Each shard runs one concurrent
//!    [`EraserEngine`] that *resumes* from its checkpoint's snapshot
//!    ([`EraserEngine::with_programs_from`]) and replays only the
//!    stimulus suffix. Eligibility guarantees every member fault's
//!    network state at the checkpoint equals its from-zero state, so
//!    coverage records — detection steps and outputs included — are
//!    bit-identical to a from-zero campaign.
//! 4. **One queue over both dimensions.** The shards feed the same atomic
//!    work queue ([`run_queue`]) as plain fault-parallel campaigns: idle
//!    workers steal whole window groups, and a heavy group, pre-split
//!    into chunks, spreads across workers.
//!
//! Because the plan is independent of the worker count, a serial run and
//! an N-thread run execute the *identical* engines on identical fault
//! groups: all [`RedundancyStats`] counters, not just coverage, are
//! bit-identical at every thread count for a fixed checkpoint interval.
//! (Counters legitimately differ from a non-checkpointed run — each
//! group engine evaluates its own good suffix rather than one full good
//! pass — which is the measured trade the `skipped_prefix_steps` counter
//! quantifies.) Composes with the tape backend, bit-parallel batching
//! and static collapsing, all of which are orthogonal to where an engine
//! starts.

use crate::campaign::{CampaignConfig, CampaignResult};
use crate::engine::EraserEngine;
use crate::parallel::run_queue;
use crate::stats::RedundancyStats;
use eraser_fault::{ActivationWindows, CoverageReport, FaultList, WindowPlan};
use eraser_ir::{BatchProgram, Design, EvalBackend, TapeProgram};
use eraser_sim::{ReplaySim, SimSnapshot, Simulator, SiteProbe, Stimulus};
use std::time::Instant;

/// Runs the composed two-dimensional campaign. Called by
/// [`run_campaign`](crate::run_campaign) whenever checkpointing is
/// enabled (any thread count — one thread simply drains the same queue
/// inline); the caller guarantees a non-empty stimulus and fault list
/// and has already applied static collapsing and compiled the shared
/// programs.
pub(crate) fn run_windowed(
    design: &Design,
    faults: &FaultList,
    stimulus: &Stimulus,
    config: &CampaignConfig,
    tapes: Option<&TapeProgram>,
    batch: Option<&BatchProgram>,
) -> CampaignResult {
    let t0 = Instant::now();
    // Instrumented good run: probe + boundary snapshots, captured *before*
    // applying each boundary step (step 0 = the construction-settled
    // state, always eligible).
    let mut sim = match tapes {
        Some(tp) => Simulator::with_tapes(design, tp),
        None => Simulator::with_backend(design, EvalBackend::Tree),
    };
    sim.attach_probe(SiteProbe::new(design, faults.iter().map(|f| f.signal)));
    let mut checkpoints: Vec<(usize, bool, SimSnapshot)> = Vec::new();
    for (si, step) in stimulus.steps.iter().enumerate() {
        if config.checkpoint.is_boundary(si) {
            let mut snap = SimSnapshot::new();
            sim.capture_into(&mut snap);
            checkpoints.push((si, sim.fully_defined(), snap));
        }
        sim.begin_probe_step(si);
        sim.replay_step(step);
    }
    let probe = sim.take_probe().expect("probe attached above");
    let windows = ActivationWindows::derive(design, faults, &probe, stimulus.steps.len());
    let boundaries: Vec<(usize, bool)> = checkpoints.iter().map(|&(s, d, _)| (s, d)).collect();
    let plan = WindowPlan::build(faults, &windows, &boundaries);
    let good_wall = t0.elapsed();

    // Drain the plan: one checkpoint-resumed engine per window shard,
    // snapshots shared read-only. Serial (threads == 1) runs the same
    // shard sequence inline — same engines, same counters.
    let threads = config.parallel.effective_threads();
    let results = run_queue(&plan.shards, threads, |ws| {
        let shard_t0 = Instant::now();
        let (start, _, snap) = &checkpoints[ws.checkpoint];
        let mut engine = EraserEngine::with_programs_from(
            design,
            &ws.shard.list,
            config.mode,
            config.drop_detected,
            tapes,
            batch,
            snap,
            *start,
        );
        engine.resume(stimulus);
        let mut stats = engine.stats().clone();
        stats.skipped_prefix_steps += ws.skipped_prefix_steps();
        stats.time_total = shard_t0.elapsed();
        (engine.coverage().clone(), stats)
    });

    let mut coverage = CoverageReport::new(faults.len());
    let mut stats = RedundancyStats {
        skipped_faults: plan.skipped.len() as u64,
        // The shared good run is real compute; charging it here keeps
        // time_total the aggregate compute time at any thread count.
        time_total: good_wall,
        ..RedundancyStats::default()
    };
    for (ws, (shard_cov, shard_stats)) in plan.shards.iter().zip(&results) {
        ws.shard.merge_coverage_into(shard_cov, &mut coverage);
        stats.merge(shard_stats);
    }
    CampaignResult { coverage, stats }
}
