//! Algorithm 1: run-time implicit-redundancy detection.

use crate::diff::DiffList;
use crate::engine::FaultView;
use eraser_fault::FaultId;
use eraser_ir::{DecisionId, EvalScratch, SegmentId, SignalId, Vdg};
use eraser_logic::LogicVec;
use eraser_sim::{ExecMonitor, OverlayView, ValueStore};

/// The implicit-redundancy detector of the ERASER paper (Algorithm 1),
/// implemented as an execution monitor riding along the *good* execution.
///
/// The monitor starts with the candidate faults (those with a visible
/// difference on some node input — the explicitly non-redundant ones) all
/// presumed redundant, and walks the visibility dependency graph at the
/// good execution's pace:
///
/// * at each **path decision node** (lines 5–11): for every still-presumed
///   candidate whose values could affect the decision (a visible diff on a
///   decision read), the decision's `Evaluate` function is re-run under the
///   fault's values; a differing outcome means the execution paths diverge
///   — not redundant;
/// * at each **path dependency node** (lines 12–18): any candidate with a
///   visible diff on a signal the executed segment reads would compute a
///   different result — not redundant.
///
/// Candidates still presumed redundant when the good execution finishes are
/// exactly the implicitly redundant faults: their execution is skipped and
/// the good results are replayed onto their state.
///
/// Decisions are evaluated with the good execution's blocking-write overlay
/// for locals and the fault's committed view for everything else. This is
/// sound: a fault that is still a redundancy candidate has, by induction,
/// followed the same path with the same data so far, so its locals equal
/// the good execution's locals.
pub struct RedundancyMonitor<'e> {
    diffs: &'e [DiffList],
    good: &'e ValueStore,
    vdg: &'e Vdg,
    /// Candidates still presumed redundant.
    live: Vec<FaultId>,
    /// Candidates proven non-redundant (must execute).
    killed: Vec<FaultId>,
    /// Scratch arena for re-evaluating decisions under fault values.
    scratch: &'e mut EvalScratch,
}

impl<'e> RedundancyMonitor<'e> {
    /// Creates a monitor over `candidates` for one behavioral activation.
    ///
    /// `killed` is an empty (typically pooled) buffer that collects the
    /// proven-non-redundant faults; `scratch` supplies decision
    /// re-evaluation temporaries. Both come from the engine's workspace so
    /// steady-state monitoring never allocates.
    pub fn new(
        diffs: &'e [DiffList],
        good: &'e ValueStore,
        vdg: &'e Vdg,
        candidates: Vec<FaultId>,
        killed: Vec<FaultId>,
        scratch: &'e mut EvalScratch,
    ) -> Self {
        debug_assert!(killed.is_empty());
        RedundancyMonitor {
            diffs,
            good,
            vdg,
            live: candidates,
            killed,
            scratch,
        }
    }

    /// Consumes the monitor: `(implicitly_redundant, must_execute)`.
    pub fn into_verdicts(self) -> (Vec<FaultId>, Vec<FaultId>) {
        (self.live, self.killed)
    }
}

impl ExecMonitor for RedundancyMonitor<'_> {
    fn on_decision(&mut self, id: DecisionId, outcome: u32, overlay: &[(SignalId, LogicVec)]) {
        if self.live.is_empty() {
            return;
        }
        let info = &self.vdg.decisions[id.index()];
        let diffs = self.diffs;
        let good = self.good;
        let scratch = &mut *self.scratch;
        let mut killed = std::mem::take(&mut self.killed);
        self.live.retain(|&f| {
            // Only faults whose values feed the Evaluate function can flip
            // it; everything else provably evaluates identically.
            let touched = info.reads.iter().any(|s| diffs[s.index()].contains(f));
            if !touched {
                return true;
            }
            let fault_committed = FaultView::new(diffs, good, f);
            let view = OverlayView {
                overlay,
                base: &fault_committed,
            };
            if info.eval.evaluate_with(&view, scratch) != outcome {
                killed.push(f);
                false
            } else {
                true
            }
        });
        self.killed = killed;
    }

    fn on_segment(&mut self, id: SegmentId, _overlay: &[(SignalId, LogicVec)]) {
        if self.live.is_empty() {
            return;
        }
        let info = &self.vdg.segments[id.index()];
        let diffs = self.diffs;
        let mut killed = std::mem::take(&mut self.killed);
        self.live.retain(|&f| {
            if info.reads.iter().any(|s| diffs[s.index()].contains(f)) {
                killed.push(f);
                false
            } else {
                true
            }
        });
        self.killed = killed;
    }
}
