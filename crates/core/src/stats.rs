//! Instrumentation counters for the paper's redundancy measurements.

use std::time::Duration;

/// Counters quantifying behavioral-node redundancy elimination — the raw
/// material of the paper's Fig. 1(b), Fig. 7 and Table III.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RedundancyStats {
    /// Good behavioral activations executed.
    pub good_activations: u64,
    /// Faulty behavioral execution *opportunities*: at every good
    /// activation, every live fault would execute absent any redundancy
    /// elimination (Table III "#Total BN Execution").
    pub opportunities: u64,
    /// Opportunities skipped because the fault had no visible difference on
    /// any node input (explicit redundancy).
    pub explicit_skipped: u64,
    /// Candidate executions skipped by the execution-path check
    /// (Algorithm 1; implicit redundancy).
    pub implicit_skipped: u64,
    /// Faulty behavioral executions actually performed.
    pub fault_executions: u64,
    /// Standalone faulty activations (a fault's view produced an edge the
    /// good network did not).
    pub fault_only_activations: u64,
    /// Faulty activations suppressed (the good network fired, the fault's
    /// view did not).
    pub suppressed_activations: u64,
    /// Good RTL node evaluations.
    pub rtl_good_evals: u64,
    /// Per-fault RTL node evaluations.
    pub rtl_fault_evals: u64,
    /// Delta cycles executed.
    pub deltas: u64,
    /// Good-prefix settle steps *not* replayed thanks to checkpointed
    /// fault starts, summed over all faults (checkpointed serial
    /// campaigns; 0 elsewhere). The temporal-redundancy analogue of the
    /// skip counters above.
    pub skipped_prefix_steps: u64,
    /// Faults never simulated because activation-window analysis proved
    /// they cannot diverge within the stimulus (undetected by
    /// construction).
    pub skipped_faults: u64,
    /// Faults removed from the live set at their first detection (fault
    /// dropping).
    pub dropped_faults: u64,
    /// Bit-parallel RTL batch evaluations performed (groups of lanes
    /// evaluated in one word-parallel pass; 0 without `--batch`).
    pub batch_groups: u64,
    /// Fault lanes filled across all batch evaluations. Divided by
    /// `batch_groups * 64` this is the mean lane occupancy.
    pub batch_lanes: u64,
    /// Candidate RTL fault evaluations that fell back to the scalar path
    /// while batching was enabled (unbatchable node, wide signal, or a
    /// group too small to be worth transposing).
    pub batch_scalar_fallbacks: u64,
    /// Faults folded away by static collapsing — class members represented
    /// by another fault's simulation (0 without `--collapse`). Together
    /// with `collapse_classes` and `collapse_dropped` this partitions the
    /// original universe: `classes + collapsed + dropped = total`.
    pub collapsed_faults: u64,
    /// Kept equivalence classes — the faults actually simulated under
    /// static collapsing.
    pub collapse_classes: u64,
    /// Faults statically proven undetectable (constant-dormant or no
    /// influence path to any output) and never simulated.
    pub collapse_dropped: u64,
    /// Wall time inside behavioral-node processing (good + fault execution
    /// + redundancy checks + commits).
    pub time_behavioral: Duration,
    /// Total engine wall time (set by the campaign driver).
    pub time_total: Duration,
}

impl RedundancyStats {
    /// Accumulates another run's counters into this one — the reduction
    /// step of a fault-parallel campaign, where each shard produces its own
    /// stats.
    ///
    /// All counters and durations sum. Note that per-shard good-network
    /// work (`good_activations`, `rtl_good_evals`, `deltas`) is repeated in
    /// every shard, so merged totals count that repetition — they measure
    /// aggregate work performed, not serial-equivalent work. Summed
    /// `time_*` fields are aggregate compute (CPU) time, **not** wall
    /// time: drivers stamp each shard's `time_total` with that shard's
    /// wall before merging, keeping
    /// [`behavioral_time_percent`](Self::behavioral_time_percent) a valid
    /// compute-share (≤ 100%) at any thread count. Campaign wall time
    /// lives in [`EngineResult::wall`](crate::EngineResult) or the
    /// caller's own timer.
    pub fn merge(&mut self, other: &RedundancyStats) {
        self.good_activations += other.good_activations;
        self.opportunities += other.opportunities;
        self.explicit_skipped += other.explicit_skipped;
        self.implicit_skipped += other.implicit_skipped;
        self.fault_executions += other.fault_executions;
        self.fault_only_activations += other.fault_only_activations;
        self.suppressed_activations += other.suppressed_activations;
        self.rtl_good_evals += other.rtl_good_evals;
        self.rtl_fault_evals += other.rtl_fault_evals;
        self.deltas += other.deltas;
        self.skipped_prefix_steps += other.skipped_prefix_steps;
        self.skipped_faults += other.skipped_faults;
        self.dropped_faults += other.dropped_faults;
        self.batch_groups += other.batch_groups;
        self.batch_lanes += other.batch_lanes;
        self.batch_scalar_fallbacks += other.batch_scalar_fallbacks;
        self.collapsed_faults += other.collapsed_faults;
        self.collapse_classes += other.collapse_classes;
        self.collapse_dropped += other.collapse_dropped;
        self.time_behavioral += other.time_behavioral;
        self.time_total += other.time_total;
    }

    /// Opportunities eliminated by any mechanism (Table III
    /// "#Elimination").
    pub fn eliminated(&self) -> u64 {
        self.explicit_skipped + self.implicit_skipped
    }

    /// Share of eliminations that are explicit, in percent of total
    /// opportunities (Table III "Explicit (%)").
    pub fn explicit_percent(&self) -> f64 {
        percent(self.explicit_skipped, self.opportunities)
    }

    /// Share of eliminations that are implicit, in percent of total
    /// opportunities (Table III "Implicit (%)").
    pub fn implicit_percent(&self) -> f64 {
        percent(self.implicit_skipped, self.opportunities)
    }

    /// Share of total time spent in behavioral-node processing, in percent
    /// (Table III "Time for BN (%)").
    pub fn behavioral_time_percent(&self) -> f64 {
        if self.time_total.is_zero() {
            0.0
        } else {
            100.0 * self.time_behavioral.as_secs_f64() / self.time_total.as_secs_f64()
        }
    }
}

fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages() {
        let s = RedundancyStats {
            opportunities: 200,
            explicit_skipped: 100,
            implicit_skipped: 60,
            fault_executions: 40,
            ..Default::default()
        };
        assert_eq!(s.eliminated(), 160);
        assert!((s.explicit_percent() - 50.0).abs() < 1e-9);
        assert!((s.implicit_percent() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_all_counters() {
        let mut a = RedundancyStats {
            good_activations: 3,
            opportunities: 100,
            explicit_skipped: 40,
            implicit_skipped: 10,
            fault_executions: 50,
            fault_only_activations: 2,
            suppressed_activations: 1,
            rtl_good_evals: 7,
            rtl_fault_evals: 11,
            deltas: 9,
            skipped_prefix_steps: 13,
            skipped_faults: 2,
            dropped_faults: 4,
            batch_groups: 6,
            batch_lanes: 300,
            batch_scalar_fallbacks: 5,
            collapsed_faults: 21,
            collapse_classes: 17,
            collapse_dropped: 3,
            time_behavioral: Duration::from_millis(5),
            time_total: Duration::from_millis(20),
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.opportunities, 200);
        assert_eq!(a.fault_executions, 100);
        assert_eq!(a.eliminated(), 100);
        assert_eq!(a.time_behavioral, Duration::from_millis(10));
        assert_eq!(a.deltas, 18);
        assert_eq!(a.skipped_prefix_steps, 26);
        assert_eq!(a.skipped_faults, 4);
        assert_eq!(a.dropped_faults, 8);
        assert_eq!(a.batch_groups, 12);
        assert_eq!(a.batch_lanes, 600);
        assert_eq!(a.batch_scalar_fallbacks, 10);
        assert_eq!(a.collapsed_faults, 42);
        assert_eq!(a.collapse_classes, 34);
        assert_eq!(a.collapse_dropped, 6);
        // Merging an empty (all-dropped or empty-shard) stats block is the
        // identity.
        let before = a.clone();
        a.merge(&RedundancyStats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn empty_is_zero() {
        let s = RedundancyStats::default();
        assert_eq!(s.explicit_percent(), 0.0);
        assert_eq!(s.behavioral_time_percent(), 0.0);
    }
}
