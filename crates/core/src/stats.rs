//! Instrumentation counters for the paper's redundancy measurements.

use std::time::Duration;

/// Counters quantifying behavioral-node redundancy elimination — the raw
/// material of the paper's Fig. 1(b), Fig. 7 and Table III.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RedundancyStats {
    /// Good behavioral activations executed.
    pub good_activations: u64,
    /// Faulty behavioral execution *opportunities*: at every good
    /// activation, every live fault would execute absent any redundancy
    /// elimination (Table III "#Total BN Execution").
    pub opportunities: u64,
    /// Opportunities skipped because the fault had no visible difference on
    /// any node input (explicit redundancy).
    pub explicit_skipped: u64,
    /// Candidate executions skipped by the execution-path check
    /// (Algorithm 1; implicit redundancy).
    pub implicit_skipped: u64,
    /// Faulty behavioral executions actually performed.
    pub fault_executions: u64,
    /// Standalone faulty activations (a fault's view produced an edge the
    /// good network did not).
    pub fault_only_activations: u64,
    /// Faulty activations suppressed (the good network fired, the fault's
    /// view did not).
    pub suppressed_activations: u64,
    /// Good RTL node evaluations.
    pub rtl_good_evals: u64,
    /// Per-fault RTL node evaluations.
    pub rtl_fault_evals: u64,
    /// Delta cycles executed.
    pub deltas: u64,
    /// Wall time inside behavioral-node processing (good + fault execution
    /// + redundancy checks + commits).
    pub time_behavioral: Duration,
    /// Total engine wall time (set by the campaign driver).
    pub time_total: Duration,
}

impl RedundancyStats {
    /// Opportunities eliminated by any mechanism (Table III
    /// "#Elimination").
    pub fn eliminated(&self) -> u64 {
        self.explicit_skipped + self.implicit_skipped
    }

    /// Share of eliminations that are explicit, in percent of total
    /// opportunities (Table III "Explicit (%)").
    pub fn explicit_percent(&self) -> f64 {
        percent(self.explicit_skipped, self.opportunities)
    }

    /// Share of eliminations that are implicit, in percent of total
    /// opportunities (Table III "Implicit (%)").
    pub fn implicit_percent(&self) -> f64 {
        percent(self.implicit_skipped, self.opportunities)
    }

    /// Share of total time spent in behavioral-node processing, in percent
    /// (Table III "Time for BN (%)").
    pub fn behavioral_time_percent(&self) -> f64 {
        if self.time_total.is_zero() {
            0.0
        } else {
            100.0 * self.time_behavioral.as_secs_f64() / self.time_total.as_secs_f64()
        }
    }
}

fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages() {
        let s = RedundancyStats {
            opportunities: 200,
            explicit_skipped: 100,
            implicit_skipped: 60,
            fault_executions: 40,
            ..Default::default()
        };
        assert_eq!(s.eliminated(), 160);
        assert!((s.explicit_percent() - 50.0).abs() < 1e-9);
        assert!((s.implicit_percent() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_is_zero() {
        let s = RedundancyStats::default();
        assert_eq!(s.explicit_percent(), 0.0);
        assert_eq!(s.behavioral_time_percent(), 0.0);
    }
}
