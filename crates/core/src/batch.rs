//! The bit-parallel fault-batching knob.
//!
//! Batching packs up to [`eraser_logic::LANES`] faults of one engine into
//! the lanes of word-wide value planes ([`eraser_logic::LanePlanes`]) and
//! evaluates batchable RTL nodes for all of them in one bit-sliced pass
//! (PPSFP applied to the RTL plane — see [`eraser_ir::batch`]). It is a
//! pure evaluation-strategy change: coverage and every semantic
//! [`RedundancyStats`](crate::RedundancyStats) counter stay bit-identical
//! to the scalar path, which the differential tests enforce.

/// Whether engines evaluate RTL fault candidates in 64-wide batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchConfig {
    /// True to enable the bit-parallel RTL batch path.
    pub enabled: bool,
}

impl BatchConfig {
    /// Batching off — the scalar concurrent evaluation path.
    pub fn disabled() -> Self {
        BatchConfig { enabled: false }
    }

    /// Batching on.
    pub fn enabled() -> Self {
        BatchConfig { enabled: true }
    }

    /// Reads `ERASER_BATCH`: unset, empty or `0` is off, `1` is on.
    /// Anything else is a configuration error and panics, mirroring the
    /// `ERASER_EVAL` convention.
    pub fn from_env() -> Self {
        match std::env::var("ERASER_BATCH") {
            Err(_) => Self::disabled(),
            Ok(v) => Self::parse_env(&v),
        }
    }

    /// The `ERASER_BATCH` parsing rule, separated for testability.
    fn parse_env(value: &str) -> Self {
        match value.trim() {
            "" | "0" => Self::disabled(),
            "1" => Self::enabled(),
            other => panic!("invalid ERASER_BATCH value {other:?} (expected 0 or 1)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rules() {
        assert!(!BatchConfig::parse_env("").enabled);
        assert!(!BatchConfig::parse_env("0").enabled);
        assert!(!BatchConfig::parse_env(" 0 ").enabled);
        assert!(BatchConfig::parse_env("1").enabled);
        assert!(BatchConfig::parse_env(" 1 ").enabled);
    }

    #[test]
    #[should_panic(expected = "invalid ERASER_BATCH")]
    fn unrecognized_value_panics() {
        BatchConfig::parse_env("yes");
    }

    #[test]
    fn default_is_disabled() {
        assert_eq!(BatchConfig::default(), BatchConfig::disabled());
    }
}
