//! The concurrent fault simulation engine.

use crate::diff::{union_ids, DiffList};
use crate::monitor::RedundancyMonitor;
use crate::stats::RedundancyStats;
use crate::RedundancyMode;
use eraser_fault::{detectable_mismatch, CoverageReport, Detection, FaultId, FaultList};
use eraser_ir::{BehavioralId, Design, RtlNodeId, Sensitivity, SignalId, ValueSource};
use eraser_logic::LogicVec;
use eraser_sim::{
    eval_rtl_op, execute_monitored, ExecOutcome, NoopMonitor, SlotWrite, Stimulus, ValueStore,
};
use std::time::Instant;

/// Bound on delta cycles per step (oscillation guard).
const DELTA_LIMIT: usize = 10_000;

/// A fault's view of the committed design state: the diff entry where
/// visible, the good value otherwise.
pub struct FaultView<'e> {
    diffs: &'e [DiffList],
    good: &'e ValueStore,
    fault: FaultId,
}

impl<'e> FaultView<'e> {
    /// Creates the view of `fault`.
    pub fn new(diffs: &'e [DiffList], good: &'e ValueStore, fault: FaultId) -> Self {
        FaultView { diffs, good, fault }
    }
}

impl ValueSource for FaultView<'_> {
    fn value(&self, sig: SignalId) -> LogicVec {
        match self.diffs[sig.index()].get(self.fault) {
            Some(v) => v.clone(),
            None => self.good.get(sig).clone(),
        }
    }
}

/// One behavioral activation's classification of faults.
#[derive(Debug, Clone, Default)]
struct Activation {
    /// The good network fired.
    good: bool,
    /// Faults whose view fired although the good network did not.
    fault_only: Vec<FaultId>,
    /// Faults whose view did not fire although the good network did.
    suppressed: Vec<FaultId>,
}

/// Queued non-blocking effects of one behavioral activation.
struct PendingNba {
    good_writes: Vec<SlotWrite>,
    /// Writes of faults that executed individually.
    fault_writes: Vec<(FaultId, Vec<SlotWrite>)>,
    /// Faults whose activation was suppressed: their targets are pinned to
    /// the pre-commit values.
    suppressed: Vec<FaultId>,
}

/// The ERASER concurrent fault simulation engine.
///
/// Holds the good network state plus per-signal [`DiffList`]s for the whole
/// fault batch, and advances them together through the stimulus. See the
/// [crate docs](crate) for the step structure and
/// [`run_campaign`](crate::run_campaign) for the one-call driver.
pub struct EraserEngine<'d> {
    design: &'d Design,
    faults: &'d FaultList,
    mode: RedundancyMode,
    drop_detected: bool,

    good: ValueStore,
    diffs: Vec<DiffList>,
    site_faults: Vec<Vec<FaultId>>,
    alive: Vec<bool>,
    alive_count: u64,

    rtl_dirty: Vec<bool>,
    rtl_queue: Vec<RtlNodeId>,
    beh_dirty: Vec<bool>,
    beh_queue: Vec<BehavioralId>,
    watch_changed: Vec<SignalId>,
    watch_flag: Vec<bool>,

    edge_prev_good: Vec<LogicVec>,
    edge_prev_diffs: Vec<DiffList>,

    pending_nba: Vec<PendingNba>,

    coverage: CoverageReport,
    stats: RedundancyStats,
    step_index: usize,
    need_sweep: bool,
}

impl<'d> EraserEngine<'d> {
    /// Creates an engine over `design` with the fault batch `faults`, in
    /// redundancy mode `mode`, and performs the initial evaluation.
    pub fn new(
        design: &'d Design,
        faults: &'d FaultList,
        mode: RedundancyMode,
        drop_detected: bool,
    ) -> Self {
        let n_sig = design.num_signals();
        let mut site_faults: Vec<Vec<FaultId>> = vec![Vec::new(); n_sig];
        for f in faults.iter() {
            site_faults[f.signal.index()].push(f.id);
        }
        let good = ValueStore::new(design);
        let edge_prev_good = design
            .signals()
            .iter()
            .map(|s| LogicVec::new_x(s.width))
            .collect();
        let mut engine = EraserEngine {
            design,
            faults,
            mode,
            drop_detected,
            good,
            diffs: vec![DiffList::new(); n_sig],
            site_faults,
            alive: vec![true; faults.len()],
            alive_count: faults.len() as u64,
            rtl_dirty: vec![false; design.rtl_nodes().len()],
            rtl_queue: Vec::new(),
            beh_dirty: vec![false; design.behavioral_nodes().len()],
            beh_queue: Vec::new(),
            watch_changed: Vec::new(),
            watch_flag: vec![false; n_sig],
            edge_prev_good,
            edge_prev_diffs: vec![DiffList::new(); n_sig],
            pending_nba: Vec::new(),
            coverage: CoverageReport::new(faults.len()),
            stats: RedundancyStats::default(),
            step_index: 0,
            need_sweep: false,
        };
        // Initial state: materialize the stuck-at forces against the all-X
        // power-on values, then evaluate everything once.
        for sig in 0..n_sig {
            let id = SignalId::from_index(sig);
            if !engine.site_faults[sig].is_empty() {
                let v = engine.good.get(id).clone();
                engine.commit_signal(id, v, &[], true);
            }
        }
        for i in 0..design.rtl_nodes().len() {
            engine.mark_rtl(RtlNodeId::from_index(i));
        }
        for (i, b) in design.behavioral_nodes().iter().enumerate() {
            if !b.sensitivity.is_edge() {
                engine.mark_beh(BehavioralId::from_index(i));
            }
        }
        engine.step();
        engine
    }

    /// The coverage accumulated so far.
    pub fn coverage(&self) -> &CoverageReport {
        &self.coverage
    }

    /// The redundancy instrumentation counters.
    pub fn stats(&self) -> &RedundancyStats {
        &self.stats
    }

    /// The good value of a signal.
    pub fn good_value(&self, sig: SignalId) -> &LogicVec {
        self.good.get(sig)
    }

    /// The value of `sig` as seen by `fault`.
    pub fn fault_value(&self, sig: SignalId, fault: FaultId) -> LogicVec {
        FaultView::new(&self.diffs, &self.good, fault).value(sig)
    }

    /// Number of faults still being simulated.
    pub fn live_faults(&self) -> u64 {
        self.alive_count
    }

    /// Drives a primary input.
    pub fn set_input(&mut self, sig: SignalId, value: LogicVec) {
        let value = value.resize(self.design.signal(sig).width);
        self.commit_signal(sig, value, &[], true);
    }

    /// Runs the full stimulus with observation (and optional fault
    /// dropping) after every settle step.
    pub fn run(&mut self, stim: &Stimulus) {
        for step in &stim.steps {
            for (sig, val) in step {
                self.set_input(*sig, val.clone());
            }
            self.step();
            self.observe();
            self.step_index += 1;
        }
    }

    /// Settles the design (good network and all fault differences) to
    /// stability.
    ///
    /// # Panics
    ///
    /// Panics if the design does not settle within an internal delta bound.
    pub fn step(&mut self) {
        for _ in 0..DELTA_LIMIT {
            self.stats.deltas += 1;
            self.settle_active();
            let activations = self.detect_edges();
            for (id, act) in &activations {
                self.process_activation(*id, act);
            }
            let committed = self.commit_nba();
            if !committed
                && activations.is_empty()
                && self.rtl_queue.is_empty()
                && self.beh_queue.is_empty()
            {
                return;
            }
        }
        panic!("design did not settle within {DELTA_LIMIT} delta cycles");
    }

    /// Checks all observation points (primary outputs) for detectable
    /// good/fault mismatches; records detections and drops detected faults
    /// when configured.
    pub fn observe(&mut self) {
        let mut newly_dead = false;
        for &o in self.design.outputs() {
            let good = self.good.get(o).clone();
            let hits: Vec<FaultId> = self.diffs[o.index()]
                .entries()
                .iter()
                .filter(|(f, v)| self.alive[f.index()] && detectable_mismatch(&good, v))
                .map(|(f, _)| *f)
                .collect();
            for f in hits {
                if self.coverage.record(
                    f,
                    Detection {
                        step: self.step_index,
                        output: o,
                    },
                ) && self.drop_detected
                {
                    self.alive[f.index()] = false;
                    self.alive_count -= 1;
                    newly_dead = true;
                }
            }
        }
        if newly_dead {
            self.need_sweep = true;
        }
        if self.need_sweep {
            self.sweep_dead();
            self.need_sweep = false;
        }
    }

    /// Removes diff entries of dropped faults everywhere.
    fn sweep_dead(&mut self) {
        let alive = &self.alive;
        for dl in &mut self.diffs {
            dl.retain(|f, _| alive[f.index()]);
        }
        for dl in &mut self.edge_prev_diffs {
            dl.retain(|f, _| alive[f.index()]);
        }
    }

    // ---- scheduling ----

    fn mark_rtl(&mut self, id: RtlNodeId) {
        if !self.rtl_dirty[id.index()] {
            self.rtl_dirty[id.index()] = true;
            self.rtl_queue.push(id);
        }
    }

    fn mark_beh(&mut self, id: BehavioralId) {
        if !self.beh_dirty[id.index()] {
            self.beh_dirty[id.index()] = true;
            self.beh_queue.push(id);
        }
    }

    fn schedule_fanout(&mut self, sig: SignalId) {
        for &n in self.design.rtl_fanout(sig) {
            self.mark_rtl(n);
        }
        for &b in self.design.level_fanout(sig) {
            self.mark_beh(b);
        }
        if !self.design.edge_fanout(sig).is_empty() && !self.watch_flag[sig.index()] {
            self.watch_flag[sig.index()] = true;
            self.watch_changed.push(sig);
        }
    }

    // ---- committed-state updates ----

    /// Commits a new good value and a batch of fault updates to one signal,
    /// maintaining the diff-list invariants:
    ///
    /// * entries exist exactly where a live fault's value differs from the
    ///   good value,
    /// * faults sited on this signal always observe their stuck bit forced
    ///   (the force is re-applied on every write),
    /// * fanout is scheduled if the good value or any fault's *view*
    ///   changed.
    ///
    /// `good_write_applies_to_all` states that the write producing
    /// `new_good` also occurs in every fault network not explicitly listed
    /// in `fault_news` (true for input drives, RTL node outputs and
    /// behavioral targets the *good* execution wrote). Only then may the
    /// stuck-at force be re-materialized for sited faults missing from the
    /// batch; when a behavioral target was written solely by some other
    /// fault's network, untouched faults keep their private values.
    fn commit_signal(
        &mut self,
        sig: SignalId,
        new_good: LogicVec,
        fault_news: &[(FaultId, LogicVec)],
        good_write_applies_to_all: bool,
    ) {
        let si = sig.index();
        let old_good = self.good.get(sig).clone();
        let good_changed = old_good != new_good;
        let mut view_changed = false;
        let mut processed: Vec<FaultId> = Vec::with_capacity(fault_news.len());

        for (f, v) in fault_news {
            if !self.alive[f.index()] {
                continue;
            }
            processed.push(*f);
            let fault = self.faults.fault(*f);
            let forced = if fault.signal == sig {
                fault.apply(v)
            } else {
                v.clone()
            };
            let old_view = self.diffs[si]
                .get(*f)
                .cloned()
                .unwrap_or_else(|| old_good.clone());
            if forced != old_view {
                view_changed = true;
            }
            if forced != new_good {
                self.diffs[si].set(*f, forced);
            } else {
                self.diffs[si].remove(*f);
            }
        }

        // Faults sited here but not in the update batch: re-apply the force
        // against the new good value (their networks received the same
        // write).
        for fi in 0..(if good_write_applies_to_all {
            self.site_faults[si].len()
        } else {
            0
        }) {
            let f = self.site_faults[si][fi];
            if !self.alive[f.index()] || processed.contains(&f) {
                continue;
            }
            processed.push(f);
            let fault = self.faults.fault(f);
            let forced = fault.apply(&new_good);
            let old_view = self.diffs[si]
                .get(f)
                .cloned()
                .unwrap_or_else(|| old_good.clone());
            if forced != old_view {
                view_changed = true;
            }
            if forced != new_good {
                self.diffs[si].set(f, forced);
            } else {
                self.diffs[si].remove(f);
            }
        }

        // Untouched entries keep their absolute value; those now equal to
        // the good value became invisible, dead entries are purged.
        processed.sort_unstable();
        let alive = &self.alive;
        self.diffs[si].retain(|f, v| {
            if processed.binary_search(&f).is_ok() {
                return true;
            }
            alive[f.index()] && *v != new_good
        });

        self.good.set(sig, new_good);
        if good_changed || view_changed {
            self.schedule_fanout(sig);
        }
    }

    // ---- RTL nodes (concurrent) ----

    fn settle_active(&mut self) {
        loop {
            if let Some(id) = self.rtl_queue.pop() {
                self.rtl_dirty[id.index()] = false;
                self.eval_rtl_concurrent(id);
                continue;
            }
            if let Some(id) = self.beh_queue.pop() {
                self.beh_dirty[id.index()] = false;
                self.process_activation(
                    id,
                    &Activation {
                        good: true,
                        ..Default::default()
                    },
                );
                continue;
            }
            break;
        }
    }

    /// Concurrent evaluation of one RTL node: the good network once, plus
    /// exactly the faults with a visible difference on an input, an
    /// existing (possibly stale) difference on the output, or a fault site
    /// on the output.
    fn eval_rtl_concurrent(&mut self, id: RtlNodeId) {
        let node = self.design.rtl_node(id);
        let out_width = self.design.signal(node.output).width;
        let good_inputs: Vec<LogicVec> = node
            .inputs
            .iter()
            .map(|&s| self.good.get(s).clone())
            .collect();
        let good_out = eval_rtl_op(&node.op, &good_inputs, out_width);
        self.stats.rtl_good_evals += 1;

        let mut candidates = union_ids(
            node.inputs
                .iter()
                .map(|s| &self.diffs[s.index()])
                .chain(std::iter::once(&self.diffs[node.output.index()])),
            &self.alive,
        );
        // Sited faults are re-forced by commit_signal; they only need
        // explicit evaluation when an input difference feeds them, which
        // the union above already covers. Remove duplicates only.
        candidates.dedup();

        let mut fault_news: Vec<(FaultId, LogicVec)> = Vec::with_capacity(candidates.len());
        let mut fin = Vec::with_capacity(node.inputs.len());
        for f in candidates {
            fin.clear();
            let mut any_diff = false;
            for (k, &s) in node.inputs.iter().enumerate() {
                match self.diffs[s.index()].get(f) {
                    Some(v) => {
                        any_diff = true;
                        fin.push(v.clone());
                    }
                    None => fin.push(good_inputs[k].clone()),
                }
            }
            let out = if any_diff {
                self.stats.rtl_fault_evals += 1;
                eval_rtl_op(&node.op, &fin, out_width)
            } else {
                // No visible input difference: the fault's output equals the
                // good output (explicit redundancy at the RTL node level).
                good_out.clone()
            };
            fault_news.push((f, out));
        }
        self.commit_signal(node.output, good_out, &fault_news, true);
    }

    // ---- edge detection (concurrent, fake-event-safe) ----

    /// Evaluates event expressions once per delta, after the active region
    /// has settled, for the good values and every diff-carrying fault
    /// together — the generalization of deferred edge detection that
    /// prevents the paper's *fake events*.
    fn detect_edges(&mut self) -> Vec<(BehavioralId, Activation)> {
        let changed = std::mem::take(&mut self.watch_changed);
        if changed.is_empty() {
            return Vec::new();
        }
        let mut nodes: Vec<BehavioralId> = Vec::new();
        for &sig in &changed {
            self.watch_flag[sig.index()] = false;
            for &b in self.design.edge_fanout(sig) {
                if !nodes.contains(&b) {
                    nodes.push(b);
                }
            }
        }
        let changed_set: Vec<bool> = {
            let mut v = vec![false; self.design.num_signals()];
            for &s in &changed {
                v[s.index()] = true;
            }
            v
        };

        let mut result = Vec::new();
        for b in nodes {
            let node = self.design.behavioral(b);
            let Sensitivity::Edges(edges) = &node.sensitivity else {
                continue;
            };
            // Terms on signals that changed this delta.
            let terms: Vec<(eraser_ir::EdgeKind, SignalId)> = edges
                .iter()
                .filter(|(_, s)| changed_set[s.index()])
                .copied()
                .collect();
            if terms.is_empty() {
                continue;
            }
            let mut good_fired = false;
            for &(kind, s) in &terms {
                let prev = self.edge_prev_good[s.index()].bit_or_x(0);
                let cur = self.good.get(s).bit_or_x(0);
                if kind.matches(prev, cur) {
                    good_fired = true;
                }
            }
            // Faults with differences (past or present) on any term signal
            // may diverge from the good activation.
            let cands = union_ids(
                terms
                    .iter()
                    .flat_map(|(_, s)| [&self.edge_prev_diffs[s.index()], &self.diffs[s.index()]]),
                &self.alive,
            );
            let mut act = Activation {
                good: good_fired,
                ..Default::default()
            };
            for f in cands {
                let mut fault_fired = false;
                for &(kind, s) in edges.iter() {
                    // Unchanged signals contribute no transition for the
                    // fault either (its view there is stable this delta).
                    if !changed_set[s.index()] {
                        continue;
                    }
                    let prev = self.edge_prev_diffs[s.index()]
                        .get(f)
                        .map(|v| v.bit_or_x(0))
                        .unwrap_or_else(|| self.edge_prev_good[s.index()].bit_or_x(0));
                    let cur = self.diffs[s.index()]
                        .get(f)
                        .map(|v| v.bit_or_x(0))
                        .unwrap_or_else(|| self.good.get(s).bit_or_x(0));
                    if kind.matches(prev, cur) {
                        fault_fired = true;
                    }
                }
                match (good_fired, fault_fired) {
                    (true, false) => act.suppressed.push(f),
                    (false, true) => act.fault_only.push(f),
                    _ => {}
                }
            }
            if act.good || !act.fault_only.is_empty() {
                result.push((b, act));
            }
        }
        // Latch the settled values for the next detection point.
        for &sig in &changed {
            self.edge_prev_good[sig.index()] = self.good.get(sig).clone();
            self.edge_prev_diffs[sig.index()] = self.diffs[sig.index()].clone();
        }
        result
    }

    // ---- behavioral nodes (concurrent + redundancy elimination) ----

    /// Processes one behavioral activation: good execution (with the
    /// redundancy monitor in `Full` mode), candidate selection, faulty
    /// executions for the non-redundant faults, blocking commit, and NBA
    /// queuing.
    fn process_activation(&mut self, id: BehavioralId, act: &Activation) {
        let t0 = Instant::now();
        let design = self.design;
        let node = design.behavioral(id);

        let mut good_out = ExecOutcome::default();
        let mut exec_list: Vec<FaultId> = Vec::new();

        if act.good {
            self.stats.good_activations += 1;
            self.stats.opportunities += self.alive_count;
            self.stats.suppressed_activations += act.suppressed.len() as u64;

            // Candidate selection (explicit redundancy elimination).
            match self.mode {
                RedundancyMode::None => {
                    exec_list = (0..self.faults.len() as u32)
                        .map(FaultId)
                        .filter(|f| self.alive[f.index()] && !act.suppressed.contains(f))
                        .collect();
                    good_out = execute_monitored(design, node, &self.good, &mut NoopMonitor);
                }
                RedundancyMode::Explicit => {
                    let candidates = self.input_candidates(node, &act.suppressed);
                    self.stats.explicit_skipped +=
                        self.alive_count - act.suppressed.len() as u64 - candidates.len() as u64;
                    exec_list = candidates;
                    good_out = execute_monitored(design, node, &self.good, &mut NoopMonitor);
                }
                RedundancyMode::Full => {
                    let candidates = self.input_candidates(node, &act.suppressed);
                    self.stats.explicit_skipped +=
                        self.alive_count - act.suppressed.len() as u64 - candidates.len() as u64;
                    let mut mon =
                        RedundancyMonitor::new(&self.diffs, &self.good, &node.vdg, candidates);
                    good_out = execute_monitored(design, node, &self.good, &mut mon);
                    let (redundant, must_exec) = mon.into_verdicts();
                    self.stats.implicit_skipped += redundant.len() as u64;
                    exec_list = must_exec;
                }
            }
        }

        // Individual faulty executions: non-redundant candidates plus
        // divergent fault-only activations.
        let mut fault_outs: Vec<(FaultId, ExecOutcome)> =
            Vec::with_capacity(exec_list.len() + act.fault_only.len());
        for f in exec_list {
            let view = FaultView::new(&self.diffs, &self.good, f);
            let out = execute_monitored(design, node, &view, &mut NoopMonitor);
            fault_outs.push((f, out));
        }
        self.stats.fault_executions += fault_outs.len() as u64;
        for &f in &act.fault_only {
            if !self.alive[f.index()] {
                continue;
            }
            let view = FaultView::new(&self.diffs, &self.good, f);
            let out = execute_monitored(design, node, &view, &mut NoopMonitor);
            fault_outs.push((f, out));
            self.stats.fault_only_activations += 1;
            self.stats.fault_executions += 1;
        }

        self.commit_blocking(act, &good_out, &fault_outs);

        // Queue non-blocking effects.
        let has_nba = !good_out.nba.is_empty()
            || fault_outs.iter().any(|(_, o)| !o.nba.is_empty())
            || (!act.suppressed.is_empty() && !good_out.nba.is_empty());
        if has_nba {
            self.pending_nba.push(PendingNba {
                good_writes: good_out.nba,
                fault_writes: fault_outs.into_iter().map(|(f, o)| (f, o.nba)).collect(),
                suppressed: act.suppressed.clone(),
            });
        }
        self.stats.time_behavioral += t0.elapsed();
    }

    /// Faults with a visible difference on any signal the node reads — the
    /// candidates that survive explicit redundancy elimination.
    fn input_candidates(
        &self,
        node: &eraser_ir::BehavioralNode,
        suppressed: &[FaultId],
    ) -> Vec<FaultId> {
        let mut c = union_ids(
            node.reads.iter().map(|s| &self.diffs[s.index()]),
            &self.alive,
        );
        c.retain(|f| !suppressed.contains(f));
        c
    }

    /// Commits blocking effects of one activation: the good finals, each
    /// executed fault's finals, pinned values for suppressed faults, and
    /// replayed good writes for faults that were skipped as redundant but
    /// carry differences on written targets.
    fn commit_blocking(
        &mut self,
        act: &Activation,
        good_out: &ExecOutcome,
        fault_outs: &[(FaultId, ExecOutcome)],
    ) {
        // Union of blocking-written targets.
        let mut targets: Vec<SignalId> = good_out.blocking.iter().map(|(s, _)| *s).collect();
        for (_, o) in fault_outs {
            targets.extend(o.blocking.iter().map(|(s, _)| *s));
        }
        targets.sort_unstable();
        targets.dedup();
        if targets.is_empty() {
            return;
        }

        for &t in &targets {
            let good_final = good_out
                .blocking
                .iter()
                .find(|(s, _)| *s == t)
                .map(|(_, v)| v.clone());
            let good_wrote = good_final.is_some();
            let new_good = good_final.unwrap_or_else(|| self.good.get(t).clone());
            let old_view = |engine: &Self, f: FaultId| -> LogicVec {
                engine.diffs[t.index()]
                    .get(f)
                    .cloned()
                    .unwrap_or_else(|| engine.good.get(t).clone())
            };

            let mut fault_news: Vec<(FaultId, LogicVec)> = Vec::new();
            let mut covered: Vec<FaultId> = Vec::new();
            for (f, o) in fault_outs {
                covered.push(*f);
                match o.blocking.iter().find(|(s, _)| *s == t) {
                    Some((_, v)) => fault_news.push((*f, v.clone())),
                    // Executed but did not write this target: its value is
                    // pinned at its own pre-commit view.
                    None => fault_news.push((*f, old_view(self, *f))),
                }
            }
            if act.good && good_wrote {
                for &f in &act.suppressed {
                    if self.alive[f.index()] {
                        covered.push(f);
                        fault_news.push((f, old_view(self, f)));
                    }
                }
                // Faults skipped as redundant with an existing difference
                // on the target: replay the good writes onto their state.
                covered.sort_unstable();
                let replays: Vec<FaultId> = self.diffs[t.index()]
                    .ids()
                    .filter(|f| self.alive[f.index()] && covered.binary_search(f).is_err())
                    .collect();
                for f in replays {
                    let mut v = old_view(self, f);
                    for w in &good_out.blocking_writes {
                        if w.target == t {
                            v = w.apply(&v);
                        }
                    }
                    fault_news.push((f, v));
                }
            }
            self.commit_signal(t, new_good, &fault_news, good_wrote);
        }
    }

    /// Commits the NBA region: for every pending activation block and every
    /// written target, computes the new good value and every affected
    /// fault's new value (own writes for executed faults, pinned values for
    /// suppressed ones, replayed good writes for skipped faults with
    /// differences).
    fn commit_nba(&mut self) -> bool {
        if self.pending_nba.is_empty() {
            return false;
        }
        let pending = std::mem::take(&mut self.pending_nba);
        let mut any = false;
        for block in pending {
            let mut targets: Vec<SignalId> = block.good_writes.iter().map(|w| w.target).collect();
            for (_, ws) in &block.fault_writes {
                targets.extend(ws.iter().map(|w| w.target));
            }
            targets.sort_unstable();
            targets.dedup();

            for &t in &targets {
                let old_good = self.good.get(t).clone();
                let mut new_good = old_good.clone();
                let mut good_wrote = false;
                for w in &block.good_writes {
                    if w.target == t {
                        new_good = w.apply(&new_good);
                        good_wrote = true;
                    }
                }
                let old_view = |engine: &Self, f: FaultId| -> LogicVec {
                    engine.diffs[t.index()]
                        .get(f)
                        .cloned()
                        .unwrap_or_else(|| old_good.clone())
                };

                let mut fault_news: Vec<(FaultId, LogicVec)> = Vec::new();
                let mut covered: Vec<FaultId> = Vec::new();
                for (f, ws) in &block.fault_writes {
                    if !self.alive[f.index()] {
                        continue;
                    }
                    covered.push(*f);
                    let mut v = old_view(self, *f);
                    let mut wrote = false;
                    for w in ws {
                        if w.target == t {
                            v = w.apply(&v);
                            wrote = true;
                        }
                    }
                    if wrote || good_wrote {
                        fault_news.push((*f, v));
                    }
                }
                if good_wrote {
                    for &f in &block.suppressed {
                        if self.alive[f.index()] {
                            covered.push(f);
                            fault_news.push((f, old_view(self, f)));
                        }
                    }
                    covered.sort_unstable();
                    let replays: Vec<FaultId> = self.diffs[t.index()]
                        .ids()
                        .filter(|f| self.alive[f.index()] && covered.binary_search(f).is_err())
                        .collect();
                    for f in replays {
                        let mut v = old_view(self, f);
                        for w in &block.good_writes {
                            if w.target == t {
                                v = w.apply(&v);
                            }
                        }
                        fault_news.push((f, v));
                    }
                }

                let before_good_changed = old_good != new_good;
                let before_entries = self.diffs[t.index()].len();
                self.commit_signal(t, new_good, &fault_news, good_wrote);
                if before_good_changed || self.diffs[t.index()].len() != before_entries {
                    any = true;
                }
            }
        }
        // Any scheduling already happened inside commit_signal; report
        // whether another delta is needed.
        any || !self.rtl_queue.is_empty()
            || !self.beh_queue.is_empty()
            || !self.watch_changed.is_empty()
    }
}
