//! The concurrent fault simulation engine.
//!
//! # Zero-allocation steady state
//!
//! The engine owns a [`Workspace`] of pooled buffers — fault-id lists,
//! fault-update batches, behavioral execution outcomes, activation records,
//! `LogicVec` temporaries — and every hot method works out of it. After a
//! few warm-up cycles the pools reach their steady sizes and a settle step
//! performs **zero heap allocations** on designs whose signals fit in 64
//! bits (the `LogicVec` inline representation): signal reads borrow through
//! [`ValueSource`], diff entries are updated in place via
//! [`DiffList::upsert_with`], and expression evaluation runs through the
//! scratch-arena `eval_expr_into` path.

use crate::batch::BatchConfig;
use crate::diff::{union_ids_into, DiffList};
use crate::monitor::RedundancyMonitor;
use crate::stats::RedundancyStats;
use crate::RedundancyMode;
use eraser_fault::{detectable_mismatch, BatchPlan, CoverageReport, Detection, FaultId, FaultList};
use eraser_ir::{
    run_batch, run_tape, tapes_for_backend, BatchProgram, BatchRef, BehavioralId, Design, EdgeKind,
    EvalBackend, EvalScratch, RtlNode, RtlNodeId, Sensitivity, SignalId, TapeProgram, TapeRef,
    TapeScratch, ValueSource,
};
use eraser_logic::{LanePlanes, LogicVec};
use eraser_sim::{
    eval_rtl_op_with, execute_into, execute_tape_into, ExecCtx, ExecMonitor, ExecOutcome,
    NoopMonitor, SimSnapshot, SlotWrite, Stimulus, ValueStore,
};
use std::time::Instant;

/// Bound on delta cycles per step (oscillation guard).
const DELTA_LIMIT: usize = 10_000;

/// Smallest batch chunk worth transposing into lane planes; below this the
/// per-chunk fixed cost (lane-word fills plus the 64×64 bit-matrix
/// transposes of the input and output planes, ~400 word operations each)
/// exceeds the scalar evaluations it replaces, so the engine falls back to
/// the scalar path (counted in
/// [`RedundancyStats::batch_scalar_fallbacks`]). Word-level scalar
/// evaluation already packs a node's full width into one word, so batching
/// only wins where per-fault overheads (tape dispatch, diff-list searches)
/// amortize across well-filled lanes — measured break-even sits near a
/// quarter-full word.
const MIN_BATCH_LANES: usize = 16;

/// A fault's view of the committed design state: the diff entry where
/// visible, the good value otherwise. All lookups borrow — building or
/// reading a view never clones a value.
pub struct FaultView<'e> {
    diffs: &'e [DiffList],
    good: &'e ValueStore,
    fault: FaultId,
}

impl<'e> FaultView<'e> {
    /// Creates the view of `fault`.
    pub fn new(diffs: &'e [DiffList], good: &'e ValueStore, fault: FaultId) -> Self {
        FaultView { diffs, good, fault }
    }
}

impl ValueSource for FaultView<'_> {
    fn value(&self, sig: SignalId) -> &LogicVec {
        self.diffs[sig.index()].view(self.fault, self.good.get(sig))
    }
}

/// One behavioral activation's classification of faults.
#[derive(Debug, Clone, Default)]
struct Activation {
    /// The good network fired.
    good: bool,
    /// Faults whose view fired although the good network did not.
    fault_only: Vec<FaultId>,
    /// Faults whose view did not fire although the good network did.
    suppressed: Vec<FaultId>,
}

/// Queued non-blocking effects of one behavioral activation.
///
/// Fault writes are stored flat (grouped per fault via `executed` ranges)
/// so the whole block is three reusable vectors instead of a vector of
/// vectors.
#[derive(Debug, Default)]
struct PendingNba {
    good_writes: Vec<SlotWrite>,
    /// Non-blocking writes of individually executed faults, flat, grouped
    /// consecutively per fault.
    fault_writes: Vec<SlotWrite>,
    /// `(fault, start, end)` ranges into `fault_writes`; every individually
    /// executed fault appears here, possibly with an empty range.
    executed: Vec<(FaultId, u32, u32)>,
    /// Faults whose activation was suppressed: their targets are pinned to
    /// the pre-commit values.
    suppressed: Vec<FaultId>,
}

impl PendingNba {
    fn clear(&mut self) {
        self.good_writes.clear();
        self.fault_writes.clear();
        self.executed.clear();
        self.suppressed.clear();
    }
}

/// Reusable buffers for the engine's hot path. Every vector and `LogicVec`
/// here is taken, used, cleared and returned — capacities persist across
/// steps, so the steady state never touches the allocator.
#[derive(Default)]
struct Workspace {
    /// `LogicVec` temporaries and RTL-expression scratch.
    bufs: EvalScratch,
    /// Tape-execution slot arena (tape backend's RTL evaluation).
    tape: TapeScratch,
    /// Behavioral-interpreter scratch.
    exec_ctx: ExecCtx,
    /// Redundancy-monitor decision re-evaluation scratch.
    mon_scratch: EvalScratch,
    id_pool: Vec<Vec<FaultId>>,
    news_pool: Vec<Vec<(FaultId, LogicVec)>>,
    sig_pool: Vec<Vec<SignalId>>,
    out_pool: Vec<ExecOutcome>,
    act_pool: Vec<Activation>,
    /// Activations of the current delta.
    act_list: Vec<(BehavioralId, Activation)>,
    /// Per-fault outcomes of the current activation.
    fault_outs: Vec<(FaultId, ExecOutcome)>,
    /// Swap buffer for draining `watch_changed` without losing capacity.
    changed: Vec<SignalId>,
    /// Dense changed-this-delta flags (reset after each detection).
    changed_flag: Vec<bool>,
    /// Edge-node worklist of the current delta.
    nodes: Vec<BehavioralId>,
    /// Sensitivity terms on changed signals.
    terms: Vec<(EdgeKind, SignalId)>,
    /// Per-input lane planes of the bit-parallel RTL batch path.
    planes: Vec<LanePlanes>,
    /// Output lane plane of the batch path.
    out_plane: LanePlanes,
    /// `(batch, lane, fault)` slots of the current node's candidates.
    slots: Vec<(u32, u8, FaultId)>,
}

impl Workspace {
    fn take_ids(&mut self) -> Vec<FaultId> {
        self.id_pool.pop().unwrap_or_default()
    }

    fn put_ids(&mut self, mut v: Vec<FaultId>) {
        v.clear();
        self.id_pool.push(v);
    }

    fn take_news(&mut self) -> Vec<(FaultId, LogicVec)> {
        self.news_pool.pop().unwrap_or_default()
    }

    /// Returns a fault-update batch, recycling its value buffers.
    fn put_news(&mut self, mut v: Vec<(FaultId, LogicVec)>) {
        for (_, buf) in v.drain(..) {
            self.bufs.put(buf);
        }
        self.news_pool.push(v);
    }

    fn take_sigs(&mut self) -> Vec<SignalId> {
        self.sig_pool.pop().unwrap_or_default()
    }

    fn put_sigs(&mut self, mut v: Vec<SignalId>) {
        v.clear();
        self.sig_pool.push(v);
    }

    fn take_out(&mut self) -> ExecOutcome {
        self.out_pool.pop().unwrap_or_default()
    }

    fn put_out(&mut self, mut o: ExecOutcome) {
        o.clear();
        self.out_pool.push(o);
    }

    fn take_act(&mut self) -> Activation {
        self.act_pool.pop().unwrap_or_default()
    }

    fn put_act(&mut self, mut a: Activation) {
        a.good = false;
        a.fault_only.clear();
        a.suppressed.clear();
        self.act_pool.push(a);
    }
}

/// The ERASER concurrent fault simulation engine.
///
/// Holds the good network state plus per-signal [`DiffList`]s for the whole
/// fault batch, and advances them together through the stimulus. See the
/// [crate docs](crate) for the step structure and
/// [`run_campaign`](crate::run_campaign) for the one-call driver.
pub struct EraserEngine<'d> {
    design: &'d Design,
    faults: &'d FaultList,
    mode: RedundancyMode,
    drop_detected: bool,
    /// Compiled evaluation tapes when running on the tape backend —
    /// compiled once per campaign and shared by reference across
    /// fault-parallel shard workers, or owned when constructed standalone.
    tapes: Option<TapeRef<'d>>,
    /// Bit-parallel batch program when fault batching is enabled — like
    /// `tapes`, compiled once per campaign and shared across shard workers,
    /// or owned when constructed standalone.
    batch: Option<BatchRef<'d>>,
    /// Static `(batch, lane)` fault assignment; present iff `batch` is.
    plan: Option<BatchPlan>,

    good: ValueStore,
    diffs: Vec<DiffList>,
    site_faults: Vec<Vec<FaultId>>,
    alive: Vec<bool>,
    alive_count: u64,

    rtl_dirty: Vec<bool>,
    rtl_queue: Vec<RtlNodeId>,
    beh_dirty: Vec<bool>,
    beh_queue: Vec<BehavioralId>,
    watch_changed: Vec<SignalId>,
    watch_flag: Vec<bool>,

    edge_prev_good: Vec<LogicVec>,
    edge_prev_diffs: Vec<DiffList>,

    pending_nba: Vec<PendingNba>,
    nba_pool: Vec<PendingNba>,

    ws: Workspace,

    coverage: CoverageReport,
    stats: RedundancyStats,
    step_index: usize,
    need_sweep: bool,
}

/// How an [`EngineSession`] chooses the evaluation tapes.
enum TapeChoice<'d> {
    /// Follow `ERASER_EVAL` (the historical `new` behavior).
    Env,
    /// Pin a backend, compiling a private tape program for
    /// [`EvalBackend::Tape`].
    Backend(EvalBackend),
    /// Execute a shared pre-compiled program (`None` pins the tree walker).
    Shared(Option<&'d TapeProgram>),
}

/// How an [`EngineSession`] chooses the bit-parallel batch program.
enum BatchChoice<'d> {
    /// Follow `ERASER_BATCH` (compile a private program when set).
    Env,
    /// Use a shared pre-compiled program (`None` disables batching).
    Shared(Option<&'d BatchProgram>),
}

/// The unified engine constructor: one fluent surface replacing the
/// historical `new` / `with_backend` / `with_tapes` / `with_programs` /
/// `with_programs_from` zoo.
///
/// Obtained from [`EraserEngine::session`]; every axis has a default
/// matching [`EraserEngine::new`] (mode [`RedundancyMode::Full`], fault
/// dropping on, backend per `ERASER_EVAL`, batching per `ERASER_BATCH`,
/// power-on start) and a chainable setter. [`start`](Self::start) builds
/// the engine and performs the initial evaluation.
///
/// ```ignore
/// // A campaign shard worker: shared programs, checkpoint resume.
/// let mut engine = EraserEngine::session(design, &shard.list)
///     .mode(config.mode)
///     .drop_detected(config.drop_detected)
///     .tapes(tapes)
///     .batch(batch)
///     .resume_from(snapshot, start_step)
///     .start();
/// engine.run(stimulus); // replays only steps[start_step..]
/// ```
pub struct EngineSession<'d, 's> {
    design: &'d Design,
    faults: &'d FaultList,
    mode: RedundancyMode,
    drop_detected: bool,
    tapes: TapeChoice<'d>,
    batch: BatchChoice<'d>,
    resume: Option<(&'s SimSnapshot, usize)>,
}

impl<'d, 's> EngineSession<'d, 's> {
    /// The redundancy-elimination mode (default [`RedundancyMode::Full`]).
    pub fn mode(mut self, mode: RedundancyMode) -> Self {
        self.mode = mode;
        self
    }

    /// Whether detected faults stop simulating (default `true`).
    pub fn drop_detected(mut self, drop_detected: bool) -> Self {
        self.drop_detected = drop_detected;
        self
    }

    /// Pins the evaluation backend, compiling a private tape program for
    /// [`EvalBackend::Tape`]. Default: follow `ERASER_EVAL`.
    pub fn backend(mut self, backend: EvalBackend) -> Self {
        self.tapes = TapeChoice::Backend(backend);
        self
    }

    /// Pins the evaluation tapes to a shared pre-compiled program (`None`
    /// pins the tree walker) — what the campaign drivers hand every shard
    /// worker so the design is lowered once per campaign.
    pub fn tapes(mut self, tapes: Option<&'d TapeProgram>) -> Self {
        self.tapes = TapeChoice::Shared(tapes);
        self
    }

    /// Pins bit-parallel fault batching to a shared pre-compiled program
    /// (`None` disables batching). Default: follow `ERASER_BATCH`.
    pub fn batch(mut self, batch: Option<&'d BatchProgram>) -> Self {
        self.batch = BatchChoice::Shared(batch);
        self
    }

    /// Starts the engine **from a good-state checkpoint** instead of
    /// power-on: the good network restores `snapshot` (the settled
    /// fault-free state before stimulus step `start_step`), the stuck-at
    /// forces are materialized against the restored values, and the engine
    /// settles once — exactly the force-at-checkpoint injection of the
    /// checkpointed serial protocol, batched.
    /// [`run`](EraserEngine::run) then replays only `steps[start_step..]`.
    ///
    /// Sound when every fault in the batch is restart-eligible at this
    /// checkpoint ([`eraser_fault::ActivationWindows::eligible_start`]):
    /// each fault's network at the checkpoint then equals its from-zero
    /// state, so detections (steps and outputs included) are bit-identical
    /// to a from-zero run. The window planner
    /// ([`eraser_fault::WindowPlan`]) cuts shards with exactly this
    /// property.
    pub fn resume_from(mut self, snapshot: &'s SimSnapshot, start_step: usize) -> Self {
        self.resume = Some((snapshot, start_step));
        self
    }

    /// Builds the engine and performs the initial evaluation.
    pub fn start(self) -> EraserEngine<'d> {
        let tapes = match self.tapes {
            TapeChoice::Env => tapes_for_backend(self.design, EvalBackend::from_env()),
            TapeChoice::Backend(b) => tapes_for_backend(self.design, b),
            TapeChoice::Shared(t) => t.map(TapeRef::Shared),
        };
        let batch = match self.batch {
            BatchChoice::Env => EraserEngine::batch_from_env(self.design),
            BatchChoice::Shared(b) => b.map(BatchRef::Shared),
        };
        EraserEngine::build(
            self.design,
            self.faults,
            self.mode,
            self.drop_detected,
            tapes,
            batch,
            self.resume,
        )
    }
}

impl<'d> EraserEngine<'d> {
    /// Opens the unified engine constructor: an [`EngineSession`] over
    /// `design` and the fault batch `faults`, with every axis defaulting
    /// to [`EraserEngine::new`] behavior. Chain setters, then
    /// [`start`](EngineSession::start).
    pub fn session<'s>(design: &'d Design, faults: &'d FaultList) -> EngineSession<'d, 's> {
        EngineSession {
            design,
            faults,
            mode: RedundancyMode::Full,
            drop_detected: true,
            tapes: TapeChoice::Env,
            batch: BatchChoice::Env,
            resume: None,
        }
    }

    /// Creates an engine over `design` with the fault batch `faults`, in
    /// redundancy mode `mode`, and performs the initial evaluation. The
    /// evaluation backend follows `ERASER_EVAL` (tree walker by default)
    /// and bit-parallel fault batching follows `ERASER_BATCH` (off by
    /// default); use [`EraserEngine::session`] to pin them explicitly.
    pub fn new(
        design: &'d Design,
        faults: &'d FaultList,
        mode: RedundancyMode,
        drop_detected: bool,
    ) -> Self {
        Self::build(
            design,
            faults,
            mode,
            drop_detected,
            tapes_for_backend(design, EvalBackend::from_env()),
            Self::batch_from_env(design),
            None,
        )
    }

    /// Creates an engine pinned to `backend` (compiling a private tape
    /// program for [`EvalBackend::Tape`]). Batching follows `ERASER_BATCH`.
    #[deprecated(note = "use `EraserEngine::session(..).backend(..).start()`")]
    pub fn with_backend(
        design: &'d Design,
        faults: &'d FaultList,
        mode: RedundancyMode,
        drop_detected: bool,
        backend: EvalBackend,
    ) -> Self {
        Self::build(
            design,
            faults,
            mode,
            drop_detected,
            tapes_for_backend(design, backend),
            Self::batch_from_env(design),
            None,
        )
    }

    /// Creates an engine on the tape backend executing a shared,
    /// pre-compiled program. Batching follows `ERASER_BATCH`.
    #[deprecated(note = "use `EraserEngine::session(..).tapes(Some(..)).start()`")]
    pub fn with_tapes(
        design: &'d Design,
        faults: &'d FaultList,
        mode: RedundancyMode,
        drop_detected: bool,
        tapes: &'d TapeProgram,
    ) -> Self {
        Self::build(
            design,
            faults,
            mode,
            drop_detected,
            Some(TapeRef::Shared(tapes)),
            Self::batch_from_env(design),
            None,
        )
    }

    /// Creates an engine with explicit shared programs for both axes: the
    /// evaluation tapes (`None` pins the tree walker) and the bit-parallel
    /// batch program (`None` disables batching).
    #[deprecated(note = "use `EraserEngine::session(..).tapes(..).batch(..).start()`")]
    pub fn with_programs(
        design: &'d Design,
        faults: &'d FaultList,
        mode: RedundancyMode,
        drop_detected: bool,
        tapes: Option<&'d TapeProgram>,
        batch: Option<&'d BatchProgram>,
    ) -> Self {
        Self::build(
            design,
            faults,
            mode,
            drop_detected,
            tapes.map(TapeRef::Shared),
            batch.map(BatchRef::Shared),
            None,
        )
    }

    /// Creates an engine that resumes from a good-state checkpoint; see
    /// [`EngineSession::resume_from`] for the soundness contract.
    #[deprecated(note = "use `EraserEngine::session(..).resume_from(..).start()`")]
    #[allow(clippy::too_many_arguments)]
    pub fn with_programs_from(
        design: &'d Design,
        faults: &'d FaultList,
        mode: RedundancyMode,
        drop_detected: bool,
        tapes: Option<&'d TapeProgram>,
        batch: Option<&'d BatchProgram>,
        snapshot: &SimSnapshot,
        start_step: usize,
    ) -> Self {
        Self::build(
            design,
            faults,
            mode,
            drop_detected,
            tapes.map(TapeRef::Shared),
            batch.map(BatchRef::Shared),
            Some((snapshot, start_step)),
        )
    }

    /// The `ERASER_BATCH`-driven owned batch program of the standalone
    /// constructors.
    fn batch_from_env(design: &'d Design) -> Option<BatchRef<'d>> {
        BatchConfig::from_env()
            .enabled
            .then(|| BatchRef::Owned(BatchProgram::compile(design)))
    }

    fn build(
        design: &'d Design,
        faults: &'d FaultList,
        mode: RedundancyMode,
        drop_detected: bool,
        tapes: Option<TapeRef<'d>>,
        batch: Option<BatchRef<'d>>,
        resume_from: Option<(&SimSnapshot, usize)>,
    ) -> Self {
        let n_sig = design.num_signals();
        let mut site_faults: Vec<Vec<FaultId>> = vec![Vec::new(); n_sig];
        for f in faults.iter() {
            site_faults[f.signal.index()].push(f.id);
        }
        let good = ValueStore::new(design);
        let edge_prev_good = design
            .signals()
            .iter()
            .map(|s| LogicVec::new_x(s.width))
            .collect();
        // Pre-size each signal's diff list from its site-affinity fault
        // count — the guaranteed-resident entries.
        let diffs = site_faults
            .iter()
            .map(|v| DiffList::with_capacity(v.len()))
            .collect();
        let plan = batch.as_ref().map(|_| BatchPlan::build(faults));
        let mut engine = EraserEngine {
            design,
            faults,
            mode,
            drop_detected,
            tapes,
            batch,
            plan,
            good,
            diffs,
            site_faults,
            alive: vec![true; faults.len()],
            alive_count: faults.len() as u64,
            rtl_dirty: vec![false; design.rtl_nodes().len()],
            rtl_queue: Vec::new(),
            beh_dirty: vec![false; design.behavioral_nodes().len()],
            beh_queue: Vec::new(),
            watch_changed: Vec::new(),
            watch_flag: vec![false; n_sig],
            edge_prev_good,
            edge_prev_diffs: vec![DiffList::new(); n_sig],
            pending_nba: Vec::new(),
            nba_pool: Vec::new(),
            ws: Workspace::default(),
            coverage: CoverageReport::new(faults.len()),
            stats: RedundancyStats::default(),
            step_index: 0,
            need_sweep: false,
        };
        // Checkpoint resume: load the settled good values before any force
        // materializes. `edge_prev_good` initializes from the *values*, not
        // the snapshot's own edge memory — at any settle point the engine
        // invariant is `edge_prev_good[sig] == good[sig]` for every watched
        // signal (`detect_edges` latches it on every change), so the
        // restored values are exactly the edge state a from-zero run would
        // carry here, independent of the capturing simulator's internals.
        if let Some((snap, start)) = resume_from {
            engine.good.restore_from_slice(&snap.values);
            for (prev, v) in engine.edge_prev_good.iter_mut().zip(&snap.values) {
                prev.assign_from(v);
            }
            engine.step_index = start;
        }
        // Initial state: materialize the stuck-at forces against the
        // power-on values (all-X, or the restored checkpoint), then
        // evaluate everything once.
        let mut ws = std::mem::take(&mut engine.ws);
        for sig in 0..n_sig {
            let id = SignalId::from_index(sig);
            if !engine.site_faults[sig].is_empty() {
                let mut v = ws.bufs.take_for(design.signal(id).width);
                v.assign_from(engine.good.get(id));
                engine.commit_signal(&mut ws, id, &v, &[], true);
                ws.bufs.put(v);
            }
        }
        engine.ws = ws;
        for i in 0..design.rtl_nodes().len() {
            engine.mark_rtl(RtlNodeId::from_index(i));
        }
        for (i, b) in design.behavioral_nodes().iter().enumerate() {
            if !b.sensitivity.is_edge() {
                engine.mark_beh(BehavioralId::from_index(i));
            }
        }
        engine.step();
        engine
    }

    /// The coverage accumulated so far.
    pub fn coverage(&self) -> &CoverageReport {
        &self.coverage
    }

    /// The redundancy instrumentation counters.
    pub fn stats(&self) -> &RedundancyStats {
        &self.stats
    }

    /// The good value of a signal.
    pub fn good_value(&self, sig: SignalId) -> &LogicVec {
        self.good.get(sig)
    }

    /// The value of `sig` as seen by `fault`.
    pub fn fault_value(&self, sig: SignalId, fault: FaultId) -> LogicVec {
        FaultView::new(&self.diffs, &self.good, fault)
            .value(sig)
            .clone()
    }

    /// Number of faults still being simulated.
    pub fn live_faults(&self) -> u64 {
        self.alive_count
    }

    /// Drives a primary input, by borrow — no clone, no resize for
    /// width-matching values. An unchanged value is skipped outright:
    /// committing an identical good value re-derives exactly the same
    /// forced entries and diff state (faults sited on the input keep their
    /// materialized stuck-bit diff entries from construction), so there is
    /// nothing to schedule.
    pub fn set_input(&mut self, sig: SignalId, value: &LogicVec) {
        let width = self.design.signal(sig).width;
        let mut ws = std::mem::take(&mut self.ws);
        if value.width() == width {
            if self.good.get(sig) != value {
                self.commit_signal(&mut ws, sig, value, &[], true);
            }
        } else {
            let mut resized = ws.bufs.take_for(width);
            resized.copy_resized(value, width);
            if self.good.get(sig) != &resized {
                self.commit_signal(&mut ws, sig, &resized, &[], true);
            }
            ws.bufs.put(resized);
        }
        self.ws = ws;
    }

    /// Runs the stimulus from the engine's **current step index** with
    /// observation (and optional fault dropping) after every settle step.
    /// A freshly built engine stands at step 0 and replays everything; a
    /// checkpoint-resumed engine ([`EngineSession::resume_from`]) already
    /// stands at its start step and replays only the suffix — one run
    /// semantics for both, so campaign drivers need no per-origin branch.
    /// Stimulus values are read by borrow — the whole campaign loop is
    /// clone-free.
    pub fn run(&mut self, stim: &Stimulus) {
        let at = self.step_index.min(stim.steps.len());
        self.run_steps(&stim.steps[at..]);
    }

    /// Historical alias of [`run`](Self::run), which now resumes from the
    /// current step index itself.
    #[deprecated(note = "`run` now resumes from the current step; call `run`")]
    pub fn resume(&mut self, stim: &Stimulus) {
        self.run(stim);
    }

    fn run_steps(&mut self, steps: &[Vec<(SignalId, LogicVec)>]) {
        for step in steps {
            for (sig, val) in step {
                self.set_input(*sig, val);
            }
            self.step();
            self.observe();
            self.step_index += 1;
        }
    }

    /// Settles the design (good network and all fault differences) to
    /// stability.
    ///
    /// # Panics
    ///
    /// Panics if the design does not settle within an internal delta bound.
    pub fn step(&mut self) {
        let mut ws = std::mem::take(&mut self.ws);
        self.step_inner(&mut ws);
        self.ws = ws;
    }

    fn step_inner(&mut self, ws: &mut Workspace) {
        for _ in 0..DELTA_LIMIT {
            self.stats.deltas += 1;
            self.settle_active(ws);
            let n_acts = self.detect_edges(ws);
            let mut list = std::mem::take(&mut ws.act_list);
            for (id, act) in &list {
                self.process_activation(ws, *id, act);
            }
            for (_, act) in list.drain(..) {
                ws.put_act(act);
            }
            ws.act_list = list;
            let committed = self.commit_nba(ws);
            if !committed && n_acts == 0 && self.rtl_queue.is_empty() && self.beh_queue.is_empty() {
                return;
            }
        }
        panic!("design did not settle within {DELTA_LIMIT} delta cycles");
    }

    /// Checks all observation points (primary outputs) for detectable
    /// good/fault mismatches; records detections and drops detected faults
    /// when configured.
    pub fn observe(&mut self) {
        let design = self.design;
        let mut ws = std::mem::take(&mut self.ws);
        let mut hits = ws.take_ids();
        let mut newly_dead = false;
        for &o in design.outputs() {
            hits.clear();
            {
                let good = self.good.get(o);
                let alive = &self.alive;
                hits.extend(
                    self.diffs[o.index()]
                        .entries()
                        .iter()
                        .filter(|(f, v)| alive[f.index()] && detectable_mismatch(good, v))
                        .map(|(f, _)| *f),
                );
            }
            for &f in &hits {
                if self.coverage.record(
                    f,
                    Detection {
                        step: self.step_index,
                        output: o,
                    },
                ) && self.drop_detected
                {
                    self.alive[f.index()] = false;
                    self.alive_count -= 1;
                    self.stats.dropped_faults += 1;
                    newly_dead = true;
                }
            }
        }
        ws.put_ids(hits);
        self.ws = ws;
        if newly_dead {
            self.need_sweep = true;
        }
        if self.need_sweep {
            self.sweep_dead();
            self.need_sweep = false;
        }
    }

    /// Removes diff entries of dropped faults everywhere, recycling their
    /// value buffers so wide (boxed) storage survives fault drops.
    fn sweep_dead(&mut self) {
        let alive = &self.alive;
        let bufs = &mut self.ws.bufs;
        for dl in &mut self.diffs {
            dl.retain_recycle(|f, _| alive[f.index()], |v| bufs.put(v));
        }
        for dl in &mut self.edge_prev_diffs {
            dl.retain_recycle(|f, _| alive[f.index()], |v| bufs.put(v));
        }
    }

    // ---- scheduling ----

    fn mark_rtl(&mut self, id: RtlNodeId) {
        if !self.rtl_dirty[id.index()] {
            self.rtl_dirty[id.index()] = true;
            self.rtl_queue.push(id);
        }
    }

    fn mark_beh(&mut self, id: BehavioralId) {
        if !self.beh_dirty[id.index()] {
            self.beh_dirty[id.index()] = true;
            self.beh_queue.push(id);
        }
    }

    fn schedule_fanout(&mut self, sig: SignalId) {
        for &n in self.design.rtl_fanout(sig) {
            self.mark_rtl(n);
        }
        for &b in self.design.level_fanout(sig) {
            self.mark_beh(b);
        }
        if !self.design.edge_fanout(sig).is_empty() && !self.watch_flag[sig.index()] {
            self.watch_flag[sig.index()] = true;
            self.watch_changed.push(sig);
        }
    }

    // ---- committed-state updates ----

    /// Commits a new good value and a batch of fault updates to one signal,
    /// maintaining the diff-list invariants:
    ///
    /// * entries exist exactly where a live fault's value differs from the
    ///   good value,
    /// * faults sited on this signal always observe their stuck bit forced
    ///   (the force is re-applied on every write),
    /// * fanout is scheduled if the good value or any fault's *view*
    ///   changed.
    ///
    /// `good_write_applies_to_all` states that the write producing
    /// `new_good` also occurs in every fault network not explicitly listed
    /// in `fault_news` (true for input drives, RTL node outputs and
    /// behavioral targets the *good* execution wrote). Only then may the
    /// stuck-at force be re-materialized for sited faults missing from the
    /// batch; when a behavioral target was written solely by some other
    /// fault's network, untouched faults keep their private values.
    fn commit_signal(
        &mut self,
        ws: &mut Workspace,
        sig: SignalId,
        new_good: &LogicVec,
        fault_news: &[(FaultId, LogicVec)],
        good_write_applies_to_all: bool,
    ) {
        let si = sig.index();
        let good_changed = self.good.get(sig) != new_good;
        let mut view_changed = false;
        let mut processed = ws.take_ids();
        let width = self.design.signal(sig).width;
        let mut forced = ws.bufs.take_for(width);

        for (f, v) in fault_news {
            if !self.alive[f.index()] {
                continue;
            }
            processed.push(*f);
            let fault = self.faults.fault(*f);
            forced.assign_from(v);
            if fault.signal == sig {
                fault.apply_assign(&mut forced);
            }
            // The good store is updated last, so this is still the old view.
            if forced != *self.diffs[si].view(*f, self.good.get(sig)) {
                view_changed = true;
            }
            if forced != *new_good {
                let fv = &forced;
                self.diffs[si].upsert_seeded(
                    *f,
                    || ws.bufs.take_for(width),
                    |slot| slot.assign_from(fv),
                );
            } else if let Some(buf) = self.diffs[si].remove(*f) {
                ws.bufs.put(buf);
            }
        }

        // Faults sited here but not in the update batch: re-apply the force
        // against the new good value (their networks received the same
        // write).
        if good_write_applies_to_all {
            for fi in 0..self.site_faults[si].len() {
                let f = self.site_faults[si][fi];
                if !self.alive[f.index()] || processed.contains(&f) {
                    continue;
                }
                processed.push(f);
                let fault = self.faults.fault(f);
                forced.assign_from(new_good);
                fault.apply_assign(&mut forced);
                if forced != *self.diffs[si].view(f, self.good.get(sig)) {
                    view_changed = true;
                }
                if forced != *new_good {
                    let fv = &forced;
                    self.diffs[si].upsert_seeded(
                        f,
                        || ws.bufs.take_for(width),
                        |slot| slot.assign_from(fv),
                    );
                } else if let Some(buf) = self.diffs[si].remove(f) {
                    ws.bufs.put(buf);
                }
            }
        }

        // Untouched entries keep their absolute value; those now equal to
        // the good value became invisible, dead entries are purged.
        processed.sort_unstable();
        {
            let alive = &self.alive;
            let processed = &processed;
            self.diffs[si].retain_recycle(
                |f, v| {
                    if processed.binary_search(&f).is_ok() {
                        return true;
                    }
                    alive[f.index()] && v != new_good
                },
                |v| ws.bufs.put(v),
            );
        }

        self.good.commit(sig, new_good);
        if good_changed || view_changed {
            self.schedule_fanout(sig);
        }
        ws.bufs.put(forced);
        ws.put_ids(processed);
    }

    // ---- RTL nodes (concurrent) ----

    fn settle_active(&mut self, ws: &mut Workspace) {
        loop {
            if let Some(id) = self.rtl_queue.pop() {
                self.rtl_dirty[id.index()] = false;
                self.eval_rtl_concurrent(ws, id);
                continue;
            }
            if let Some(id) = self.beh_queue.pop() {
                self.beh_dirty[id.index()] = false;
                let mut act = ws.take_act();
                act.good = true;
                self.process_activation(ws, id, &act);
                ws.put_act(act);
                continue;
            }
            break;
        }
    }

    /// Concurrent evaluation of one RTL node: the good network once, plus
    /// exactly the faults with a visible difference on an input, an
    /// existing (possibly stale) difference on the output, or a fault site
    /// on the output.
    fn eval_rtl_concurrent(&mut self, ws: &mut Workspace, id: RtlNodeId) {
        let design = self.design;
        let node = design.rtl_node(id);
        let out_width = design.signal(node.output).width;
        let tapes = self.tapes.as_ref().map(|t| t.program());

        let mut good_out = ws.bufs.take_for(out_width);
        match tapes {
            Some(tp) => run_tape(tp.rtl(id.index()), &self.good, &mut ws.tape, &mut good_out),
            None => {
                let good = &self.good;
                eval_rtl_op_with(
                    &node.op,
                    &|k| good.get(node.inputs[k]),
                    node.inputs.len(),
                    out_width,
                    &mut ws.bufs,
                    &mut good_out,
                );
            }
        }
        self.stats.rtl_good_evals += 1;

        let mut candidates = ws.take_ids();
        union_ids_into(
            node.inputs
                .iter()
                .map(|s| &self.diffs[s.index()])
                .chain(std::iter::once(&self.diffs[node.output.index()])),
            &self.alive,
            &mut candidates,
        );
        // Sited faults are re-forced by commit_signal; they only need
        // explicit evaluation when an input difference feeds them, which
        // the union above already covers.

        let mut fault_news = ws.take_news();
        let batching = self.batch.is_some();
        let batch_tape = self
            .batch
            .as_ref()
            .and_then(|b| b.program().rtl(id.index()));

        if let (Some(bt), Some(plan)) = (batch_tape, self.plan.as_ref()) {
            // Bit-parallel path. Candidates with a visible input difference
            // are ordered by their static `BatchPlan` slot — site-major, so
            // faults sharing sites (and therefore diff entries) land next
            // to each other — then packed *densely* into 64-lane chunks: a
            // lane is the fault's position in its chunk, so every chunk but
            // the last is full regardless of how candidates spread across
            // static batches, and the per-chunk transpose cost is paid
            // ceil(n/64) times per node evaluation instead of once per
            // static batch touched. Candidates with no visible input
            // difference copy the good output exactly as in the scalar
            // path (explicit redundancy).
            let mut slots = std::mem::take(&mut ws.slots);
            slots.clear();
            for &f in &candidates {
                let any_diff = node
                    .inputs
                    .iter()
                    .any(|s| self.diffs[s.index()].contains(f));
                if any_diff {
                    let (b, l) = plan.slot(f);
                    slots.push((b, l, f));
                } else {
                    let mut out_v = ws.bufs.take_for(out_width);
                    out_v.assign_from(&good_out);
                    fault_news.push((f, out_v));
                }
            }
            slots.sort_unstable();

            for chunk in slots.chunks(eraser_logic::LANES as usize) {
                if chunk.len() < MIN_BATCH_LANES {
                    for &(_, _, f) in chunk {
                        self.stats.rtl_fault_evals += 1;
                        self.stats.batch_scalar_fallbacks += 1;
                        let mut out_v = ws.bufs.take_for(out_width);
                        Self::eval_rtl_fault_scalar(
                            tapes,
                            &self.diffs,
                            &self.good,
                            node,
                            id,
                            out_width,
                            f,
                            ws,
                            &mut out_v,
                        );
                        fault_news.push((f, out_v));
                    }
                } else {
                    // Input planes: the good value broadcast to every lane,
                    // overridden lane-wise by the visible diff entries —
                    // exactly what each lane's FaultView would read. Lane
                    // values are assembled as per-lane words and transposed
                    // into the plane wholesale (word-level, O(64·log 64))
                    // rather than one bit-level `set_lane` per fault;
                    // diff-free inputs skip the transpose entirely.
                    while ws.planes.len() < node.inputs.len() {
                        ws.planes.push(LanePlanes::new());
                    }
                    let mut la = [0u64; 64];
                    let mut lb = [0u64; 64];
                    for (k, &s) in node.inputs.iter().enumerate() {
                        let plane = &mut ws.planes[k];
                        let gv = self.good.get(s);
                        let dl = &self.diffs[s.index()];
                        if dl.is_empty() {
                            plane.broadcast(gv);
                            continue;
                        }
                        let (ga, gb) = gv.word_planes();
                        la.fill(ga);
                        lb.fill(gb);
                        let mut any_diff_here = false;
                        for (lane, &(_, _, f)) in chunk.iter().enumerate() {
                            if let Some(v) = dl.get(f) {
                                (la[lane], lb[lane]) = v.word_planes();
                                any_diff_here = true;
                            }
                        }
                        if any_diff_here {
                            plane.load_lanes(gv.width(), &mut la, &mut lb);
                        } else {
                            plane.broadcast(gv);
                        }
                    }
                    run_batch(bt, &ws.planes[..node.inputs.len()], &mut ws.out_plane);
                    self.stats.rtl_fault_evals += chunk.len() as u64;
                    self.stats.batch_groups += 1;
                    self.stats.batch_lanes += chunk.len() as u64;
                    // One word-level gather of all lanes, then O(1)
                    // word-assigns per fault.
                    ws.out_plane.store_lanes(&mut la, &mut lb);
                    for (lane, &(_, _, f)) in chunk.iter().enumerate() {
                        let mut out_v = ws.bufs.take_for(out_width);
                        out_v.assign_word(out_width, la[lane], lb[lane]);
                        fault_news.push((f, out_v));
                    }
                }
            }
            ws.slots = slots;
        } else {
            for &f in &candidates {
                let any_diff = node
                    .inputs
                    .iter()
                    .any(|s| self.diffs[s.index()].contains(f));
                let mut out_v = ws.bufs.take_for(out_width);
                if any_diff {
                    self.stats.rtl_fault_evals += 1;
                    if batching {
                        // Batching is on but this node is unbatchable
                        // (behavioral-style op, wide signal, shift, …).
                        self.stats.batch_scalar_fallbacks += 1;
                    }
                    Self::eval_rtl_fault_scalar(
                        tapes,
                        &self.diffs,
                        &self.good,
                        node,
                        id,
                        out_width,
                        f,
                        ws,
                        &mut out_v,
                    );
                } else {
                    // No visible input difference: the fault's output equals
                    // the good output (explicit redundancy at the RTL node
                    // level).
                    out_v.assign_from(&good_out);
                }
                fault_news.push((f, out_v));
            }
        }
        self.commit_signal(ws, node.output, &good_out, &fault_news, true);
        ws.put_news(fault_news);
        ws.put_ids(candidates);
        ws.bufs.put(good_out);
    }

    /// One fault's scalar RTL evaluation against its view — the per-lane
    /// kernel shared by the scalar path and the batch path's fallbacks.
    /// Free of `&mut self` so the batch path can call it while holding the
    /// batch program.
    #[allow(clippy::too_many_arguments)]
    fn eval_rtl_fault_scalar(
        tapes: Option<&TapeProgram>,
        diffs: &[DiffList],
        good: &ValueStore,
        node: &RtlNode,
        id: RtlNodeId,
        out_width: u32,
        f: FaultId,
        ws: &mut Workspace,
        out_v: &mut LogicVec,
    ) {
        match tapes {
            Some(tp) => {
                let view = FaultView::new(diffs, good, f);
                run_tape(tp.rtl(id.index()), &view, &mut ws.tape, out_v);
            }
            None => {
                eval_rtl_op_with(
                    &node.op,
                    &|k| {
                        let s = node.inputs[k];
                        diffs[s.index()].view(f, good.get(s))
                    },
                    node.inputs.len(),
                    out_width,
                    &mut ws.bufs,
                    out_v,
                );
            }
        }
    }

    // ---- edge detection (concurrent, fake-event-safe) ----

    /// Evaluates event expressions once per delta, after the active region
    /// has settled, for the good values and every diff-carrying fault
    /// together — the generalization of deferred edge detection that
    /// prevents the paper's *fake events*. Fills `ws.act_list` and returns
    /// its length.
    fn detect_edges(&mut self, ws: &mut Workspace) -> usize {
        std::mem::swap(&mut self.watch_changed, &mut ws.changed);
        if ws.changed.is_empty() {
            return 0;
        }
        let design = self.design;
        let n_sig = design.num_signals();
        if ws.changed_flag.len() < n_sig {
            ws.changed_flag.resize(n_sig, false);
        }
        ws.nodes.clear();
        for i in 0..ws.changed.len() {
            let sig = ws.changed[i];
            self.watch_flag[sig.index()] = false;
            ws.changed_flag[sig.index()] = true;
            for &b in design.edge_fanout(sig) {
                if !ws.nodes.contains(&b) {
                    ws.nodes.push(b);
                }
            }
        }

        for ni in 0..ws.nodes.len() {
            let b = ws.nodes[ni];
            let node = design.behavioral(b);
            let Sensitivity::Edges(edges) = &node.sensitivity else {
                continue;
            };
            // Terms on signals that changed this delta.
            ws.terms.clear();
            ws.terms.extend(
                edges
                    .iter()
                    .filter(|(_, s)| ws.changed_flag[s.index()])
                    .copied(),
            );
            if ws.terms.is_empty() {
                continue;
            }
            let mut good_fired = false;
            for ti in 0..ws.terms.len() {
                let (kind, s) = ws.terms[ti];
                let prev = self.edge_prev_good[s.index()].bit_or_x(0);
                let cur = self.good.get(s).bit_or_x(0);
                if kind.matches(prev, cur) {
                    good_fired = true;
                }
            }
            // Faults with differences (past or present) on any term signal
            // may diverge from the good activation.
            let mut cands = ws.take_ids();
            union_ids_into(
                ws.terms
                    .iter()
                    .flat_map(|(_, s)| [&self.edge_prev_diffs[s.index()], &self.diffs[s.index()]]),
                &self.alive,
                &mut cands,
            );
            let mut act = ws.take_act();
            act.good = good_fired;
            for &f in &cands {
                let mut fault_fired = false;
                for &(kind, s) in edges.iter() {
                    // Unchanged signals contribute no transition for the
                    // fault either (its view there is stable this delta).
                    if !ws.changed_flag[s.index()] {
                        continue;
                    }
                    let prev = self.edge_prev_diffs[s.index()]
                        .get(f)
                        .map(|v| v.bit_or_x(0))
                        .unwrap_or_else(|| self.edge_prev_good[s.index()].bit_or_x(0));
                    let cur = self.diffs[s.index()]
                        .get(f)
                        .map(|v| v.bit_or_x(0))
                        .unwrap_or_else(|| self.good.get(s).bit_or_x(0));
                    if kind.matches(prev, cur) {
                        fault_fired = true;
                    }
                }
                match (good_fired, fault_fired) {
                    (true, false) => act.suppressed.push(f),
                    (false, true) => act.fault_only.push(f),
                    _ => {}
                }
            }
            ws.put_ids(cands);
            if act.good || !act.fault_only.is_empty() {
                ws.act_list.push((b, act));
            } else {
                ws.put_act(act);
            }
        }
        // Latch the settled values for the next detection point and reset
        // the changed flags.
        for i in 0..ws.changed.len() {
            let sig = ws.changed[i];
            ws.changed_flag[sig.index()] = false;
            self.edge_prev_good[sig.index()].assign_from(self.good.get(sig));
            self.edge_prev_diffs[sig.index()].assign_from(&self.diffs[sig.index()]);
        }
        ws.changed.clear();
        ws.act_list.len()
    }

    // ---- behavioral nodes (concurrent + redundancy elimination) ----

    /// Processes one behavioral activation: good execution (with the
    /// redundancy monitor in `Full` mode), candidate selection, faulty
    /// executions for the non-redundant faults, blocking commit, and NBA
    /// queuing.
    fn process_activation(&mut self, ws: &mut Workspace, id: BehavioralId, act: &Activation) {
        let t0 = Instant::now();
        let design = self.design;
        let node = design.behavioral(id);
        let beh_tapes = self
            .tapes
            .as_ref()
            .map(|t| t.program().behavioral(id.index()));

        let mut good_out = ws.take_out();
        let mut exec_list = ws.take_ids();

        if act.good {
            self.stats.good_activations += 1;
            self.stats.opportunities += self.alive_count;
            self.stats.suppressed_activations += act.suppressed.len() as u64;

            // Candidate selection (explicit redundancy elimination).
            match self.mode {
                RedundancyMode::None => {
                    exec_list.extend(
                        (0..self.faults.len() as u32)
                            .map(FaultId)
                            .filter(|f| self.alive[f.index()] && !act.suppressed.contains(f)),
                    );
                    exec_node(
                        design,
                        node,
                        beh_tapes,
                        &self.good,
                        &mut NoopMonitor,
                        &mut ws.exec_ctx,
                        &mut good_out,
                    );
                }
                RedundancyMode::Explicit => {
                    self.input_candidates(node, &act.suppressed, &mut exec_list);
                    self.stats.explicit_skipped +=
                        self.alive_count - act.suppressed.len() as u64 - exec_list.len() as u64;
                    exec_node(
                        design,
                        node,
                        beh_tapes,
                        &self.good,
                        &mut NoopMonitor,
                        &mut ws.exec_ctx,
                        &mut good_out,
                    );
                }
                RedundancyMode::Full => {
                    let mut cands = ws.take_ids();
                    self.input_candidates(node, &act.suppressed, &mut cands);
                    self.stats.explicit_skipped +=
                        self.alive_count - act.suppressed.len() as u64 - cands.len() as u64;
                    let killed = std::mem::take(&mut exec_list);
                    let mut mon = RedundancyMonitor::new(
                        &self.diffs,
                        &self.good,
                        &node.vdg,
                        cands,
                        killed,
                        &mut ws.mon_scratch,
                    );
                    exec_node(
                        design,
                        node,
                        beh_tapes,
                        &self.good,
                        &mut mon,
                        &mut ws.exec_ctx,
                        &mut good_out,
                    );
                    let (redundant, must_exec) = mon.into_verdicts();
                    self.stats.implicit_skipped += redundant.len() as u64;
                    exec_list = must_exec;
                    ws.put_ids(redundant);
                }
            }
        }

        // Individual faulty executions: non-redundant candidates plus
        // divergent fault-only activations.
        let mut fault_outs = std::mem::take(&mut ws.fault_outs);
        for &f in &exec_list {
            let mut out = ws.take_out();
            {
                let view = FaultView::new(&self.diffs, &self.good, f);
                exec_node(
                    design,
                    node,
                    beh_tapes,
                    &view,
                    &mut NoopMonitor,
                    &mut ws.exec_ctx,
                    &mut out,
                );
            }
            fault_outs.push((f, out));
        }
        self.stats.fault_executions += fault_outs.len() as u64;
        for fi in 0..act.fault_only.len() {
            let f = act.fault_only[fi];
            if !self.alive[f.index()] {
                continue;
            }
            let mut out = ws.take_out();
            {
                let view = FaultView::new(&self.diffs, &self.good, f);
                exec_node(
                    design,
                    node,
                    beh_tapes,
                    &view,
                    &mut NoopMonitor,
                    &mut ws.exec_ctx,
                    &mut out,
                );
            }
            fault_outs.push((f, out));
            self.stats.fault_only_activations += 1;
            self.stats.fault_executions += 1;
        }

        self.commit_blocking(ws, act, &good_out, &fault_outs);

        // Queue non-blocking effects.
        let has_nba = !good_out.nba.is_empty() || fault_outs.iter().any(|(_, o)| !o.nba.is_empty());
        if has_nba {
            let mut block = self.nba_pool.pop().unwrap_or_default();
            block.good_writes.append(&mut good_out.nba);
            for (f, o) in fault_outs.iter_mut() {
                let start = block.fault_writes.len() as u32;
                block.fault_writes.append(&mut o.nba);
                block
                    .executed
                    .push((*f, start, block.fault_writes.len() as u32));
            }
            block.suppressed.extend(act.suppressed.iter().copied());
            self.pending_nba.push(block);
        }

        for (_, o) in fault_outs.drain(..) {
            ws.put_out(o);
        }
        ws.fault_outs = fault_outs;
        ws.put_out(good_out);
        ws.put_ids(exec_list);
        self.stats.time_behavioral += t0.elapsed();
    }

    /// Faults with a visible difference on any signal the node reads — the
    /// candidates that survive explicit redundancy elimination. Fills
    /// `out` (cleared first).
    fn input_candidates(
        &self,
        node: &eraser_ir::BehavioralNode,
        suppressed: &[FaultId],
        out: &mut Vec<FaultId>,
    ) {
        union_ids_into(
            node.reads.iter().map(|s| &self.diffs[s.index()]),
            &self.alive,
            out,
        );
        out.retain(|f| !suppressed.contains(f));
    }

    /// Commits blocking effects of one activation: the good finals, each
    /// executed fault's finals, pinned values for suppressed faults, and
    /// replayed good writes for faults that were skipped as redundant but
    /// carry differences on written targets.
    fn commit_blocking(
        &mut self,
        ws: &mut Workspace,
        act: &Activation,
        good_out: &ExecOutcome,
        fault_outs: &[(FaultId, ExecOutcome)],
    ) {
        // Union of blocking-written targets.
        let mut targets = ws.take_sigs();
        targets.extend(good_out.blocking.iter().map(|(s, _)| *s));
        for (_, o) in fault_outs {
            targets.extend(o.blocking.iter().map(|(s, _)| *s));
        }
        targets.sort_unstable();
        targets.dedup();
        if targets.is_empty() {
            ws.put_sigs(targets);
            return;
        }

        for &t in &targets {
            // Buffers come from the width class of the target being
            // committed, so multi-target blocks mixing narrow and >64-bit
            // regs never reshape pooled storage.
            let t_width = self.design.signal(t).width;
            let mut new_good = ws.bufs.take_for(t_width);
            let good_final = good_out.blocking.iter().find(|(s, _)| *s == t);
            let good_wrote = good_final.is_some();
            match good_final {
                Some((_, v)) => new_good.assign_from(v),
                None => new_good.assign_from(self.good.get(t)),
            }

            let mut fault_news = ws.take_news();
            let mut covered = ws.take_ids();
            for (f, o) in fault_outs {
                covered.push(*f);
                let mut val = ws.bufs.take_for(t_width);
                match o.blocking.iter().find(|(s, _)| *s == t) {
                    Some((_, v)) => val.assign_from(v),
                    // Executed but did not write this target: its value is
                    // pinned at its own pre-commit view.
                    None => val.assign_from(self.diffs[t.index()].view(*f, self.good.get(t))),
                }
                fault_news.push((*f, val));
            }
            if act.good && good_wrote {
                for &f in &act.suppressed {
                    if self.alive[f.index()] {
                        covered.push(f);
                        let mut val = ws.bufs.take_for(t_width);
                        val.assign_from(self.diffs[t.index()].view(f, self.good.get(t)));
                        fault_news.push((f, val));
                    }
                }
                // Faults skipped as redundant with an existing difference
                // on the target: replay the good writes onto their state.
                covered.sort_unstable();
                let mut replays = ws.take_ids();
                {
                    let alive = &self.alive;
                    let covered = &covered;
                    replays.extend(
                        self.diffs[t.index()]
                            .ids()
                            .filter(|f| alive[f.index()] && covered.binary_search(f).is_err()),
                    );
                }
                for &f in &replays {
                    let mut val = ws.bufs.take_for(t_width);
                    val.assign_from(self.diffs[t.index()].view(f, self.good.get(t)));
                    for w in &good_out.blocking_writes {
                        if w.target == t {
                            w.apply_assign(&mut val);
                        }
                    }
                    fault_news.push((f, val));
                }
                ws.put_ids(replays);
            }
            self.commit_signal(ws, t, &new_good, &fault_news, good_wrote);
            ws.bufs.put(new_good);
            ws.put_news(fault_news);
            ws.put_ids(covered);
        }
        ws.put_sigs(targets);
    }

    /// Commits the NBA region: for every pending activation block and every
    /// written target, computes the new good value and every affected
    /// fault's new value (own writes for executed faults, pinned values for
    /// suppressed ones, replayed good writes for skipped faults with
    /// differences).
    fn commit_nba(&mut self, ws: &mut Workspace) -> bool {
        if self.pending_nba.is_empty() {
            return false;
        }
        let mut pending = std::mem::take(&mut self.pending_nba);
        let mut any = false;
        for block in &pending {
            let mut targets = ws.take_sigs();
            targets.extend(block.good_writes.iter().map(|w| w.target));
            targets.extend(block.fault_writes.iter().map(|w| w.target));
            targets.sort_unstable();
            targets.dedup();

            for &t in &targets {
                // Width-classed like commit_blocking: pooled buffers stay
                // within the committed target's storage class.
                let t_width = self.design.signal(t).width;
                let mut old_good = ws.bufs.take_for(t_width);
                let mut new_good = ws.bufs.take_for(t_width);
                old_good.assign_from(self.good.get(t));
                new_good.assign_from(&old_good);
                let mut good_wrote = false;
                for w in &block.good_writes {
                    if w.target == t {
                        w.apply_assign(&mut new_good);
                        good_wrote = true;
                    }
                }

                let mut fault_news = ws.take_news();
                let mut covered = ws.take_ids();
                for &(f, start, end) in &block.executed {
                    if !self.alive[f.index()] {
                        continue;
                    }
                    covered.push(f);
                    let mut val = ws.bufs.take_for(t_width);
                    val.assign_from(self.diffs[t.index()].view(f, &old_good));
                    let mut wrote = false;
                    for w in &block.fault_writes[start as usize..end as usize] {
                        if w.target == t {
                            w.apply_assign(&mut val);
                            wrote = true;
                        }
                    }
                    if wrote || good_wrote {
                        fault_news.push((f, val));
                    } else {
                        ws.bufs.put(val);
                    }
                }
                if good_wrote {
                    for &f in &block.suppressed {
                        if self.alive[f.index()] {
                            covered.push(f);
                            let mut val = ws.bufs.take_for(t_width);
                            val.assign_from(self.diffs[t.index()].view(f, &old_good));
                            fault_news.push((f, val));
                        }
                    }
                    covered.sort_unstable();
                    let mut replays = ws.take_ids();
                    {
                        let alive = &self.alive;
                        let covered = &covered;
                        replays.extend(
                            self.diffs[t.index()]
                                .ids()
                                .filter(|f| alive[f.index()] && covered.binary_search(f).is_err()),
                        );
                    }
                    for &f in &replays {
                        let mut val = ws.bufs.take_for(t_width);
                        val.assign_from(self.diffs[t.index()].view(f, &old_good));
                        for w in &block.good_writes {
                            if w.target == t {
                                w.apply_assign(&mut val);
                            }
                        }
                        fault_news.push((f, val));
                    }
                    ws.put_ids(replays);
                }

                let before_good_changed = old_good != new_good;
                let before_entries = self.diffs[t.index()].len();
                self.commit_signal(ws, t, &new_good, &fault_news, good_wrote);
                if before_good_changed || self.diffs[t.index()].len() != before_entries {
                    any = true;
                }
                ws.put_news(fault_news);
                ws.put_ids(covered);
                ws.bufs.put(old_good);
                ws.bufs.put(new_good);
            }
            ws.put_sigs(targets);
        }
        // Recycle the blocks; any scheduling already happened inside
        // commit_signal — report whether another delta is needed. The
        // write values go back to the execution scratch the interpreter
        // draws assignment buffers from, so wide (>64-bit) NBA targets
        // keep reusing their boxed storage across activations.
        for mut block in pending.drain(..) {
            for w in block.good_writes.drain(..) {
                ws.exec_ctx.scratch.put(w.value);
            }
            for w in block.fault_writes.drain(..) {
                ws.exec_ctx.scratch.put(w.value);
            }
            block.clear();
            self.nba_pool.push(block);
        }
        self.pending_nba = pending;
        any || !self.rtl_queue.is_empty()
            || !self.beh_queue.is_empty()
            || !self.watch_changed.is_empty()
    }
}

/// Executes one behavioral activation on the configured backend: the
/// node's compiled tapes when present, the tree walker otherwise.
#[allow(clippy::too_many_arguments)]
fn exec_node<S: ValueSource + ?Sized, M: ExecMonitor + ?Sized>(
    design: &Design,
    node: &eraser_ir::BehavioralNode,
    tapes: Option<&eraser_ir::BehavioralTapes>,
    base: &S,
    monitor: &mut M,
    ctx: &mut ExecCtx,
    out: &mut ExecOutcome,
) {
    match tapes {
        Some(bt) => execute_tape_into(design, node, bt, base, monitor, ctx, out),
        None => execute_into(design, node, base, monitor, ctx, out),
    }
}
