//! Campaign progress instrumentation.
//!
//! A [`CampaignProgress`] is a small block of atomic counters a campaign
//! driver ticks as it schedules work: how many window groups (or fault
//! shards) the plan contains, how many have completed, and the same pair
//! for individual faults. Observers — the campaign service's
//! `GET /campaigns/:id` endpoint — read a consistent-enough
//! [`ProgressSnapshot`] at any time without locks, from any thread, while
//! the campaign runs. Ticking is wait-free relaxed atomics; the counters
//! are observability only and never influence scheduling, so coverage
//! stays bit-identical with or without a progress block attached.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared campaign progress counters (see the module docs).
#[derive(Debug, Default)]
pub struct CampaignProgress {
    groups_total: AtomicU64,
    groups_done: AtomicU64,
    faults_total: AtomicU64,
    faults_done: AtomicU64,
}

impl CampaignProgress {
    /// A zeroed progress block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announces the campaign's plan: `groups` schedulable work groups
    /// (window shards or fault shards) covering `faults` scheduled faults.
    /// Called once per campaign, after planning and before any engine runs.
    pub fn begin(&self, groups: usize, faults: usize) {
        self.groups_total.store(groups as u64, Ordering::Relaxed);
        self.groups_done.store(0, Ordering::Relaxed);
        self.faults_total.store(faults as u64, Ordering::Relaxed);
        self.faults_done.store(0, Ordering::Relaxed);
    }

    /// Records one completed work group carrying `faults` faults.
    pub fn group_done(&self, faults: usize) {
        self.groups_done.fetch_add(1, Ordering::Relaxed);
        self.faults_done.fetch_add(faults as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            groups_total: self.groups_total.load(Ordering::Relaxed),
            groups_done: self.groups_done.load(Ordering::Relaxed),
            faults_total: self.faults_total.load(Ordering::Relaxed),
            faults_done: self.faults_done.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of a [`CampaignProgress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgressSnapshot {
    /// Work groups the plan contains (0 until planning completes).
    pub groups_total: u64,
    /// Work groups that have finished.
    pub groups_done: u64,
    /// Faults scheduled across all groups.
    pub faults_total: u64,
    /// Faults whose groups have finished.
    pub faults_done: u64,
}

impl ProgressSnapshot {
    /// Completed share of the planned groups, in percent (100 when the
    /// plan is empty — nothing left to do).
    pub fn percent(&self) -> f64 {
        if self.groups_total == 0 {
            100.0
        } else {
            100.0 * self.groups_done as f64 / self.groups_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_accumulate() {
        let p = CampaignProgress::new();
        assert_eq!(p.snapshot(), ProgressSnapshot::default());
        assert_eq!(p.snapshot().percent(), 100.0);
        p.begin(4, 100);
        assert_eq!(p.snapshot().groups_total, 4);
        assert_eq!(p.snapshot().percent(), 0.0);
        p.group_done(25);
        p.group_done(30);
        let s = p.snapshot();
        assert_eq!(s.groups_done, 2);
        assert_eq!(s.faults_done, 55);
        assert_eq!(s.percent(), 50.0);
    }
}
