//! Recursive-descent parser for the Verilog subset.

use crate::ast::*;
use crate::error::CompileError;
use crate::lexer::{SpannedTok, Tok};
use eraser_ir::{BinaryOp, EdgeKind, UnaryOp};

/// Parses a token stream into a [`SourceUnit`].
///
/// # Errors
///
/// Returns a [`CompileError`] pointing at the offending line for any syntax
/// outside the supported subset.
pub fn parse(tokens: Vec<SpannedTok>) -> Result<SourceUnit, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut modules = Vec::new();
    while !p.at_eof() {
        modules.push(p.module()?);
    }
    Ok(SourceUnit { modules })
}

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn col(&self) -> u32 {
        self.tokens[self.pos].col
    }

    /// A diagnostic pointing at the current token's exact line and column.
    fn error_here(&self, message: impl Into<String>) -> CompileError {
        CompileError::at_col(self.line(), self.col(), message)
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), CompileError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), CompileError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Ident(s) if !is_reserved(&s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error_here(format!("expected identifier, found {other}"))),
        }
    }

    // ---- modules ----

    fn module(&mut self) -> Result<ModuleDecl, CompileError> {
        let line = self.line();
        self.expect_kw("module")?;
        let name = self.ident()?;
        let mut header_params = Vec::new();
        if self.eat(&Tok::Hash) {
            self.expect(&Tok::LParen)?;
            loop {
                self.expect_kw("parameter")?;
                let pname = self.ident()?;
                self.expect(&Tok::Assign)?;
                let value = self.expr()?;
                header_params.push((pname, value));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        self.expect(&Tok::LParen)?;
        let mut ports = Vec::new();
        if !self.eat(&Tok::RParen) {
            // Direction, kind and range carry over across commas until a new
            // declaration starts, as in IEEE 1364 ANSI port lists.
            let mut dir = None;
            let mut kind = AstNetKind::Wire;
            let mut carry_range: Option<(AstExpr, AstExpr)> = None;
            loop {
                let (pline, pcol) = (self.line(), self.col());
                let mut new_decl = false;
                if self.eat_kw("input") {
                    dir = Some(AstPortDir::Input);
                    kind = AstNetKind::Wire;
                    new_decl = true;
                } else if self.eat_kw("output") {
                    dir = Some(AstPortDir::Output);
                    kind = AstNetKind::Wire;
                    new_decl = true;
                }
                if self.eat_kw("wire") {
                    kind = AstNetKind::Wire;
                    new_decl = true;
                } else if self.eat_kw("reg") {
                    kind = AstNetKind::Reg;
                    new_decl = true;
                }
                let range = self.opt_range()?;
                if range.is_some() {
                    carry_range = range;
                } else if new_decl {
                    carry_range = None;
                }
                let pname = self.ident()?;
                let dir = dir.ok_or_else(|| {
                    CompileError::at_col(
                        pline,
                        pcol,
                        "port is missing a direction (`input`/`output`)",
                    )
                })?;
                ports.push(PortDecl {
                    dir,
                    kind,
                    range: carry_range.clone(),
                    name: pname,
                    line: pline,
                });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        self.expect(&Tok::Semi)?;

        let mut items = Vec::new();
        while !self.eat_kw("endmodule") {
            if self.at_eof() {
                return Err(self.error_here("missing `endmodule`"));
            }
            items.push(self.item()?);
        }
        Ok(ModuleDecl {
            name,
            header_params,
            ports,
            items,
            line,
        })
    }

    fn opt_range(&mut self) -> Result<Option<(AstExpr, AstExpr)>, CompileError> {
        if self.eat(&Tok::LBracket) {
            let msb = self.expr()?;
            self.expect(&Tok::Colon)?;
            let lsb = self.expr()?;
            self.expect(&Tok::RBracket)?;
            Ok(Some((msb, lsb)))
        } else {
            Ok(None)
        }
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        let line = self.line();
        if self.is_kw("wire") || self.is_kw("reg") {
            let kind = if self.eat_kw("wire") {
                AstNetKind::Wire
            } else {
                self.expect_kw("reg")?;
                AstNetKind::Reg
            };
            let range = self.opt_range()?;
            let mut names = vec![self.ident()?];
            // `wire [w:0] name = expr;` — declaration with initializer
            // (continuous assignment), single-name form only.
            if self.peek() == &Tok::Assign {
                self.bump();
                let init = self.expr()?;
                self.expect(&Tok::Semi)?;
                return Ok(Item::Net {
                    kind,
                    range,
                    names,
                    init: Some(init),
                    line,
                });
            }
            while self.eat(&Tok::Comma) {
                names.push(self.ident()?);
            }
            self.expect(&Tok::Semi)?;
            return Ok(Item::Net {
                kind,
                range,
                names,
                init: None,
                line,
            });
        }
        if self.eat_kw("integer") {
            let mut names = vec![self.ident()?];
            while self.eat(&Tok::Comma) {
                names.push(self.ident()?);
            }
            self.expect(&Tok::Semi)?;
            return Ok(Item::Integer { names, line });
        }
        if self.is_kw("parameter") || self.is_kw("localparam") {
            let local = self.eat_kw("localparam");
            if !local {
                self.expect_kw("parameter")?;
            }
            // Only single-name parameter items reach here (lists are rare);
            // support comma lists anyway by expanding later.
            let name = self.ident()?;
            self.expect(&Tok::Assign)?;
            let value = self.expr()?;
            self.expect(&Tok::Semi)?;
            return Ok(Item::Param {
                local,
                name,
                value,
                line,
            });
        }
        if self.eat_kw("assign") {
            let lhs = self.ident()?;
            self.expect(&Tok::Assign)?;
            let rhs = self.expr()?;
            self.expect(&Tok::Semi)?;
            return Ok(Item::Assign { lhs, rhs, line });
        }
        if self.eat_kw("always") {
            self.expect(&Tok::At)?;
            self.expect(&Tok::LParen)?;
            let sens = self.sensitivity()?;
            self.expect(&Tok::RParen)?;
            let body = self.stmt()?;
            return Ok(Item::Always { sens, body, line });
        }
        if self.is_kw("initial") {
            return Err(self
                .error_here("`initial` blocks are not supported; drive reset from the testbench"));
        }
        // Otherwise: instantiation `Mod #(..)? inst ( .p(e), ... );`
        let module = self.ident()?;
        let mut params = Vec::new();
        if self.eat(&Tok::Hash) {
            self.expect(&Tok::LParen)?;
            loop {
                self.expect(&Tok::Dot)?;
                let pname = self.ident()?;
                self.expect(&Tok::LParen)?;
                let value = self.expr()?;
                self.expect(&Tok::RParen)?;
                params.push((pname, value));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut conns = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                self.expect(&Tok::Dot)?;
                let pname = self.ident()?;
                self.expect(&Tok::LParen)?;
                let value = if self.peek() == &Tok::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::RParen)?;
                conns.push((pname, value));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        self.expect(&Tok::Semi)?;
        Ok(Item::Instance {
            module,
            name,
            params,
            conns,
            line,
        })
    }

    fn sensitivity(&mut self) -> Result<AstSens, CompileError> {
        if self.eat(&Tok::Star) {
            return Ok(AstSens::Star);
        }
        if self.is_kw("posedge") || self.is_kw("negedge") {
            let mut edges = Vec::new();
            loop {
                let kind = if self.eat_kw("posedge") {
                    EdgeKind::Pos
                } else {
                    self.expect_kw("negedge")?;
                    EdgeKind::Neg
                };
                edges.push((kind, self.ident()?));
                if !(self.eat_kw("or") || self.eat(&Tok::Comma)) {
                    break;
                }
            }
            return Ok(AstSens::Edges(edges));
        }
        let mut sigs = vec![self.ident()?];
        while self.eat_kw("or") || self.eat(&Tok::Comma) {
            sigs.push(self.ident()?);
        }
        Ok(AstSens::Level(sigs))
    }

    // ---- statements ----

    fn stmt(&mut self) -> Result<AstStmt, CompileError> {
        if self.eat_kw("begin") {
            let mut stmts = Vec::new();
            while !self.eat_kw("end") {
                if self.at_eof() {
                    return Err(self.error_here("missing `end`"));
                }
                stmts.push(self.stmt()?);
            }
            return Ok(AstStmt::Block(stmts));
        }
        if self.eat_kw("if") {
            self.expect(&Tok::LParen)?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen)?;
            let then_s = Box::new(self.stmt()?);
            let else_s = if self.eat_kw("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(AstStmt::If {
                cond,
                then_s,
                else_s,
            });
        }
        if self.is_kw("case") || self.is_kw("casez") {
            let wildcard = self.eat_kw("casez");
            if !wildcard {
                self.expect_kw("case")?;
            }
            self.expect(&Tok::LParen)?;
            let scrutinee = self.expr()?;
            self.expect(&Tok::RParen)?;
            let mut arms = Vec::new();
            let mut default = None;
            while !self.eat_kw("endcase") {
                if self.at_eof() {
                    return Err(self.error_here("missing `endcase`"));
                }
                if self.eat_kw("default") {
                    self.eat(&Tok::Colon);
                    default = Some(Box::new(self.stmt()?));
                    continue;
                }
                let mut labels = vec![self.expr()?];
                while self.eat(&Tok::Comma) {
                    labels.push(self.expr()?);
                }
                self.expect(&Tok::Colon)?;
                let body = self.stmt()?;
                arms.push((labels, body));
            }
            return Ok(AstStmt::Case {
                scrutinee,
                arms,
                default,
                wildcard,
            });
        }
        if self.eat_kw("for") {
            self.expect(&Tok::LParen)?;
            let init = Box::new(self.assignment(true)?);
            self.expect(&Tok::Semi)?;
            let cond = self.expr()?;
            self.expect(&Tok::Semi)?;
            let step = Box::new(self.assignment(false)?);
            self.expect(&Tok::RParen)?;
            let body = Box::new(self.stmt()?);
            return Ok(AstStmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        if self.eat(&Tok::Semi) {
            return Ok(AstStmt::Nop);
        }
        let st = self.assignment(true)?;
        self.expect(&Tok::Semi)?;
        Ok(st)
    }

    /// Parses `lvalue = expr` or `lvalue <= expr` (no trailing semicolon).
    fn assignment(&mut self, _allow_nonblocking: bool) -> Result<AstStmt, CompileError> {
        let line = self.line();
        let base = self.ident()?;
        let lhs = if self.eat(&Tok::LBracket) {
            let first = self.expr()?;
            if self.eat(&Tok::Colon) {
                let lo = self.expr()?;
                self.expect(&Tok::RBracket)?;
                AstLValue::Part {
                    base,
                    hi: first,
                    lo,
                }
            } else if self.eat(&Tok::PlusColon) {
                let width = self.expr()?;
                self.expect(&Tok::RBracket)?;
                AstLValue::IndexedPart {
                    base,
                    start: first,
                    width,
                }
            } else {
                self.expect(&Tok::RBracket)?;
                AstLValue::Bit { base, index: first }
            }
        } else {
            AstLValue::Ident(base)
        };
        let blocking = if self.eat(&Tok::Assign) {
            true
        } else if self.eat(&Tok::LtEq) {
            false
        } else {
            return Err(self.error_here(format!("expected `=` or `<=`, found {}", self.peek())));
        };
        let rhs = self.expr()?;
        Ok(AstStmt::Assign {
            lhs,
            rhs,
            blocking,
            line,
        })
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<AstExpr, CompileError> {
        let cond = self.binary_expr(0)?;
        if self.eat(&Tok::Question) {
            let then_e = self.expr()?;
            self.expect(&Tok::Colon)?;
            let else_e = self.expr()?;
            Ok(AstExpr::Ternary(
                Box::new(cond),
                Box::new(then_e),
                Box::new(else_e),
            ))
        } else {
            Ok(cond)
        }
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<AstExpr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::PipePipe => (BinaryOp::LogicalOr, 1),
                Tok::AmpAmp => (BinaryOp::LogicalAnd, 2),
                Tok::Pipe => (BinaryOp::Or, 3),
                Tok::Caret => (BinaryOp::Xor, 4),
                Tok::TildeCaret => (BinaryOp::Xnor, 4),
                Tok::Amp => (BinaryOp::And, 5),
                Tok::EqEq => (BinaryOp::Eq, 6),
                Tok::BangEq => (BinaryOp::Ne, 6),
                Tok::EqEqEq => (BinaryOp::CaseEq, 6),
                Tok::BangEqEq => (BinaryOp::CaseNe, 6),
                Tok::Lt => (BinaryOp::Lt, 7),
                Tok::LtEq => (BinaryOp::Le, 7),
                Tok::Gt => (BinaryOp::Gt, 7),
                Tok::GtEq => (BinaryOp::Ge, 7),
                Tok::Shl => (BinaryOp::Shl, 8),
                Tok::Shr => (BinaryOp::Shr, 8),
                Tok::AShr => (BinaryOp::AShr, 8),
                Tok::Plus => (BinaryOp::Add, 9),
                Tok::Minus => (BinaryOp::Sub, 9),
                Tok::Star => (BinaryOp::Mul, 10),
                Tok::Slash => (BinaryOp::Div, 10),
                Tok::Percent => (BinaryOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = AstExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<AstExpr, CompileError> {
        let op = match self.peek() {
            Tok::Bang => Some(UnaryOp::LogicalNot),
            Tok::Tilde => Some(UnaryOp::Not),
            Tok::Minus => Some(UnaryOp::Neg),
            Tok::Amp => Some(UnaryOp::RedAnd),
            Tok::Pipe => Some(UnaryOp::RedOr),
            Tok::Caret => Some(UnaryOp::RedXor),
            Tok::Plus => {
                self.bump();
                return self.unary_expr();
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary_expr()?;
            return Ok(AstExpr::Unary(op, Box::new(e)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Number(raw) => {
                self.bump();
                Ok(AstExpr::Literal(raw, line))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBrace => {
                self.bump();
                let first = self.expr()?;
                if self.peek() == &Tok::LBrace {
                    // Replication {n{v}}.
                    self.bump();
                    let inner = self.expr()?;
                    self.expect(&Tok::RBrace)?;
                    self.expect(&Tok::RBrace)?;
                    return Ok(AstExpr::Replicate(Box::new(first), Box::new(inner)));
                }
                let mut parts = vec![first];
                while self.eat(&Tok::Comma) {
                    parts.push(self.expr()?);
                }
                self.expect(&Tok::RBrace)?;
                Ok(AstExpr::Concat(parts))
            }
            Tok::Ident(_) => {
                let base = self.ident()?;
                if self.eat(&Tok::LBracket) {
                    let first = self.expr()?;
                    if self.eat(&Tok::Colon) {
                        let lo = self.expr()?;
                        self.expect(&Tok::RBracket)?;
                        Ok(AstExpr::Part {
                            base,
                            hi: Box::new(first),
                            lo: Box::new(lo),
                            line,
                        })
                    } else if self.eat(&Tok::PlusColon) {
                        let width = self.expr()?;
                        self.expect(&Tok::RBracket)?;
                        Ok(AstExpr::IndexedPart {
                            base,
                            start: Box::new(first),
                            width: Box::new(width),
                            line,
                        })
                    } else {
                        self.expect(&Tok::RBracket)?;
                        Ok(AstExpr::Bit {
                            base,
                            index: Box::new(first),
                            line,
                        })
                    }
                } else {
                    Ok(AstExpr::Ident(base, line))
                }
            }
            other => Err(self.error_here(format!("expected expression, found {other}"))),
        }
    }
}

/// Keywords that cannot be identifiers.
fn is_reserved(s: &str) -> bool {
    matches!(
        s,
        "module"
            | "endmodule"
            | "input"
            | "output"
            | "wire"
            | "reg"
            | "integer"
            | "assign"
            | "always"
            | "begin"
            | "end"
            | "if"
            | "else"
            | "case"
            | "casez"
            | "endcase"
            | "default"
            | "posedge"
            | "negedge"
            | "or"
            | "for"
            | "parameter"
            | "localparam"
            | "initial"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> SourceUnit {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn minimal_module() {
        let u = parse_src("module m(); endmodule");
        assert_eq!(u.modules.len(), 1);
        assert_eq!(u.modules[0].name, "m");
        assert!(u.modules[0].ports.is_empty());
    }

    #[test]
    fn ansi_ports_with_carryover() {
        let u =
            parse_src("module m(input wire clk, input [7:0] a, b, output reg [3:0] q); endmodule");
        let ports = &u.modules[0].ports;
        assert_eq!(ports.len(), 4);
        assert_eq!(ports[0].name, "clk");
        assert_eq!(ports[1].name, "a");
        assert_eq!(ports[2].name, "b");
        assert_eq!(ports[2].dir, AstPortDir::Input);
        assert!(ports[2].range.is_some(), "range carries over across commas");
        assert_eq!(ports[3].kind, AstNetKind::Reg);
        assert_eq!(ports[3].dir, AstPortDir::Output);
    }

    #[test]
    fn declarations_and_assigns() {
        let u = parse_src(
            "module m(input wire a);
               wire [7:0] x, y;
               reg r;
               integer i;
               localparam W = 8;
               parameter D = 4;
               assign x = a ? y : 8'h00;
             endmodule",
        );
        assert_eq!(u.modules[0].items.len(), 6);
    }

    #[test]
    fn always_edge_and_star() {
        let u = parse_src(
            "module m(input wire clk, input wire rst_n);
               reg q;
               always @(posedge clk or negedge rst_n) q <= 1'b0;
               always @(*) q <= 1'b1;
             endmodule",
        );
        let items = &u.modules[0].items;
        match &items[1] {
            Item::Always {
                sens: AstSens::Edges(e),
                ..
            } => {
                assert_eq!(e.len(), 2);
                assert_eq!(e[0].0, EdgeKind::Pos);
                assert_eq!(e[1].0, EdgeKind::Neg);
            }
            other => panic!("expected edge always, got {other:?}"),
        }
        assert!(matches!(
            &items[2],
            Item::Always {
                sens: AstSens::Star,
                ..
            }
        ));
    }

    #[test]
    fn statements() {
        let u = parse_src(
            "module m(input wire c);
               reg [7:0] q; integer i;
               always @(*) begin
                 if (c) q = 8'd1; else q = 8'd2;
                 case (q)
                   8'd1, 8'd2: q = 8'd3;
                   default: q = 8'd0;
                 endcase
                 casez (q)
                   8'b1???????: q = 0;
                 endcase
                 for (i = 0; i < 4; i = i + 1) q[i] = c;
                 q[3:0] = 4'h5;
                 q[i +: 2] = 2'b01;
               end
             endmodule",
        );
        match &u.modules[0].items[2] {
            Item::Always {
                body: AstStmt::Block(stmts),
                ..
            } => {
                assert_eq!(stmts.len(), 6);
                assert!(matches!(stmts[0], AstStmt::If { .. }));
                assert!(matches!(
                    stmts[1],
                    AstStmt::Case {
                        wildcard: false,
                        ..
                    }
                ));
                assert!(matches!(stmts[2], AstStmt::Case { wildcard: true, .. }));
                assert!(matches!(stmts[3], AstStmt::For { .. }));
                assert!(matches!(
                    stmts[4],
                    AstStmt::Assign {
                        lhs: AstLValue::Part { .. },
                        ..
                    }
                ));
                assert!(matches!(
                    stmts[5],
                    AstStmt::Assign {
                        lhs: AstLValue::IndexedPart { .. },
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let u = parse_src("module m(input a); wire x; assign x = 1 + 2 * 3 == 7 && 1; endmodule");
        match &u.modules[0].items[1] {
            Item::Assign { rhs, .. } => {
                // ((1 + (2*3)) == 7) && 1
                match rhs {
                    AstExpr::Binary(BinaryOp::LogicalAnd, l, _) => match l.as_ref() {
                        AstExpr::Binary(BinaryOp::Eq, ll, _) => {
                            assert!(matches!(ll.as_ref(), AstExpr::Binary(BinaryOp::Add, ..)));
                        }
                        other => panic!("expected Eq, got {other:?}"),
                    },
                    other => panic!("expected LogicalAnd at root, got {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ternary_binds_loosest_and_right_assoc() {
        let u = parse_src("module m(input a); wire x; assign x = a ? 1 : a ? 2 : 3; endmodule");
        match &u.modules[0].items[1] {
            Item::Assign {
                rhs: AstExpr::Ternary(_, _, e),
                ..
            } => {
                assert!(matches!(e.as_ref(), AstExpr::Ternary(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concat_and_replicate() {
        let u =
            parse_src("module m(input a); wire [7:0] x; assign x = {a, {3{a}}, 4'h0}; endmodule");
        match &u.modules[0].items[1] {
            Item::Assign {
                rhs: AstExpr::Concat(parts),
                ..
            } => {
                assert_eq!(parts.len(), 3);
                assert!(matches!(parts[1], AstExpr::Replicate(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn instance_with_params() {
        let u = parse_src(
            "module m(input a);
               wire y;
               sub #(.W(8), .D(2)) u0 (.in(a), .out(y), .nc());
             endmodule",
        );
        match &u.modules[0].items[1] {
            Item::Instance {
                module,
                name,
                params,
                conns,
                ..
            } => {
                assert_eq!(module, "sub");
                assert_eq!(name, "u0");
                assert_eq!(params.len(), 2);
                assert_eq!(conns.len(), 3);
                assert!(conns[2].1.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_reductions() {
        let u = parse_src("module m(input [3:0] a); wire x; assign x = &a | ^a; endmodule");
        match &u.modules[0].items[1] {
            Item::Assign {
                rhs: AstExpr::Binary(BinaryOp::Or, l, r),
                ..
            } => {
                assert!(matches!(l.as_ref(), AstExpr::Unary(UnaryOp::RedAnd, _)));
                assert!(matches!(r.as_ref(), AstExpr::Unary(UnaryOp::RedXor, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let err = parse(lex("module m(input a)\nwire x;").unwrap()).unwrap_err();
        assert!(err.line >= 1);
        assert!(parse(lex("module m(); initial begin end endmodule").unwrap()).is_err());
        assert!(parse(lex("module m(input begin); endmodule").unwrap()).is_err());
    }
}
