//! Tokenizer for the Verilog subset.

use crate::error::CompileError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser via
    /// [`Tok::is_kw`]-style comparisons on the string).
    Ident(String),
    /// A numeric literal in raw source form (`42`, `8'hff`, `'b1010`).
    Number(String),
    // Punctuation.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Colon,
    Dot,
    Hash,
    At,
    Question,
    // Operators.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    Tilde,
    Amp,
    Pipe,
    Caret,
    TildeCaret,
    AmpAmp,
    PipePipe,
    EqEq,
    BangEq,
    EqEqEq,
    BangEqEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Shl,
    Shr,
    AShr,
    Assign,
    PlusColon,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Number(s) => write!(f, "`{s}`"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its 1-based source line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column of the token's first character.
    pub col: u32,
}

/// Tokenizes `source`.
///
/// # Errors
///
/// Returns a [`CompileError`] on unterminated block comments or unexpected
/// characters.
pub fn lex(source: &str) -> Result<Vec<SpannedTok>, CompileError> {
    let mut toks = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    // Byte offset where the current line starts; column = i - line_start + 1.
    let mut line_start = 0usize;
    let n = bytes.len();

    while i < n {
        let c = bytes[i] as char;
        let col = (i - line_start + 1) as u32;

        macro_rules! push {
            ($t:expr) => {
                toks.push(SpannedTok { tok: $t, line, col })
            };
        }

        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let (start_line, start_col) = (line, col);
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(CompileError::at_col(
                            start_line,
                            start_col,
                            "unterminated block comment",
                        ));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        line_start = i + 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < n
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'$')
                {
                    i += 1;
                }
                push!(Tok::Ident(source[start..i].to_string()));
            }
            c if c.is_ascii_digit() || c == '\'' => {
                // A number: optional decimal size, optional 'b/'o/'h/'d body.
                let start = i;
                while i < n && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
                if i < n && bytes[i] == b'\'' {
                    i += 1; // consume '
                    if i < n && (bytes[i] as char).is_ascii_alphabetic() {
                        i += 1; // base letter
                        while i < n
                            && ((bytes[i] as char).is_ascii_alphanumeric()
                                || bytes[i] == b'_'
                                || bytes[i] == b'?')
                        {
                            i += 1;
                        }
                    } else {
                        return Err(CompileError::at_col(line, col, "missing base after `'`"));
                    }
                }
                push!(Tok::Number(source[start..i].to_string()));
            }
            '(' => {
                push!(Tok::LParen);
                i += 1;
            }
            ')' => {
                push!(Tok::RParen);
                i += 1;
            }
            '[' => {
                push!(Tok::LBracket);
                i += 1;
            }
            ']' => {
                push!(Tok::RBracket);
                i += 1;
            }
            '{' => {
                push!(Tok::LBrace);
                i += 1;
            }
            '}' => {
                push!(Tok::RBrace);
                i += 1;
            }
            ';' => {
                push!(Tok::Semi);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma);
                i += 1;
            }
            ':' => {
                push!(Tok::Colon);
                i += 1;
            }
            '.' => {
                push!(Tok::Dot);
                i += 1;
            }
            '#' => {
                push!(Tok::Hash);
                i += 1;
            }
            '@' => {
                push!(Tok::At);
                i += 1;
            }
            '?' => {
                push!(Tok::Question);
                i += 1;
            }
            '+' => {
                if i + 1 < n && bytes[i + 1] == b':' {
                    push!(Tok::PlusColon);
                    i += 2;
                } else {
                    push!(Tok::Plus);
                    i += 1;
                }
            }
            '-' => {
                push!(Tok::Minus);
                i += 1;
            }
            '*' => {
                push!(Tok::Star);
                i += 1;
            }
            '/' => {
                push!(Tok::Slash);
                i += 1;
            }
            '%' => {
                push!(Tok::Percent);
                i += 1;
            }
            '~' => {
                if i + 1 < n && bytes[i + 1] == b'^' {
                    push!(Tok::TildeCaret);
                    i += 2;
                } else {
                    push!(Tok::Tilde);
                    i += 1;
                }
            }
            '^' => {
                if i + 1 < n && bytes[i + 1] == b'~' {
                    push!(Tok::TildeCaret);
                    i += 2;
                } else {
                    push!(Tok::Caret);
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < n && bytes[i + 1] == b'&' {
                    push!(Tok::AmpAmp);
                    i += 2;
                } else {
                    push!(Tok::Amp);
                    i += 1;
                }
            }
            '|' => {
                if i + 1 < n && bytes[i + 1] == b'|' {
                    push!(Tok::PipePipe);
                    i += 2;
                } else {
                    push!(Tok::Pipe);
                    i += 1;
                }
            }
            '!' => {
                if i + 2 < n && bytes[i + 1] == b'=' && bytes[i + 2] == b'=' {
                    push!(Tok::BangEqEq);
                    i += 3;
                } else if i + 1 < n && bytes[i + 1] == b'=' {
                    push!(Tok::BangEq);
                    i += 2;
                } else {
                    push!(Tok::Bang);
                    i += 1;
                }
            }
            '=' => {
                if i + 2 < n && bytes[i + 1] == b'=' && bytes[i + 2] == b'=' {
                    push!(Tok::EqEqEq);
                    i += 3;
                } else if i + 1 < n && bytes[i + 1] == b'=' {
                    push!(Tok::EqEq);
                    i += 2;
                } else {
                    push!(Tok::Assign);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == b'<' {
                    push!(Tok::Shl);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == b'=' {
                    push!(Tok::LtEq);
                    i += 2;
                } else {
                    push!(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 2 < n && bytes[i + 1] == b'>' && bytes[i + 2] == b'>' {
                    push!(Tok::AShr);
                    i += 3;
                } else if i + 1 < n && bytes[i + 1] == b'>' {
                    push!(Tok::Shr);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == b'=' {
                    push!(Tok::GtEq);
                    i += 2;
                } else {
                    push!(Tok::Gt);
                    i += 1;
                }
            }
            other => {
                return Err(CompileError::at_col(
                    line,
                    col,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        line,
        col: (n - line_start + 1) as u32,
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_keywords() {
        assert_eq!(
            kinds("module foo_1 $x"),
            vec![
                Tok::Ident("module".into()),
                Tok::Ident("foo_1".into()),
                Tok::Ident("$x".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 8'hFF 'b10x 12'd9 4'b1?_?0"),
            vec![
                Tok::Number("42".into()),
                Tok::Number("8'hFF".into()),
                Tok::Number("'b10x".into()),
                Tok::Number("12'd9".into()),
                Tok::Number("4'b1?_?0".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("== != === !== <= >= << >> >>> && || ~^ ^~ +:"),
            vec![
                Tok::EqEq,
                Tok::BangEq,
                Tok::EqEqEq,
                Tok::BangEqEq,
                Tok::LtEq,
                Tok::GtEq,
                Tok::Shl,
                Tok::Shr,
                Tok::AShr,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::TildeCaret,
                Tok::TildeCaret,
                Tok::PlusColon,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("a // comment\nb /* multi\nline */ c").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn errors() {
        assert!(lex("/* unterminated").is_err());
        assert!(lex("`define").is_err());
        assert!(lex("3' ").is_err());
    }
}
