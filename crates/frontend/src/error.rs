//! Compiler diagnostics.

use std::fmt;

/// An error produced while compiling Verilog source.
///
/// Carries the 1-based source line where the problem was detected (0 when no
/// location applies, e.g. a whole-design rule violation) and, when known,
/// the 1-based column within that line (0 when only the line is known).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line, or 0 for design-level errors.
    pub line: u32,
    /// 1-based source column, or 0 when only the line is known.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Creates an error at a source line (column unknown).
    pub fn at(line: u32, message: impl Into<String>) -> Self {
        CompileError {
            line,
            col: 0,
            message: message.into(),
        }
    }

    /// Creates an error at an exact line and column.
    pub fn at_col(line: u32, col: u32, message: impl Into<String>) -> Self {
        CompileError {
            line,
            col,
            message: message.into(),
        }
    }

    /// Creates a design-level error without a source location.
    pub fn design(message: impl Into<String>) -> Self {
        CompileError {
            line: 0,
            col: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 && self.col > 0 {
            write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
        } else if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for CompileError {}

impl From<eraser_ir::BuildError> for CompileError {
    fn from(e: eraser_ir::BuildError) -> Self {
        CompileError::design(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_location() {
        assert_eq!(CompileError::at(3, "bad").to_string(), "line 3: bad");
        assert_eq!(
            CompileError::at_col(3, 7, "bad").to_string(),
            "line 3, col 7: bad"
        );
        assert_eq!(CompileError::design("cycle").to_string(), "cycle");
    }
}
