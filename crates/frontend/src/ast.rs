//! Source-level abstract syntax tree (pre-elaboration).

use eraser_ir::{BinaryOp, EdgeKind, UnaryOp};

/// A parsed source file: a list of module declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceUnit {
    /// Modules in source order.
    pub modules: Vec<ModuleDecl>,
}

/// Direction of an ANSI port declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstPortDir {
    /// `input`.
    Input,
    /// `output`.
    Output,
}

/// Net vs variable in declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstNetKind {
    /// `wire`.
    Wire,
    /// `reg`.
    Reg,
}

/// One ANSI port declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct PortDecl {
    /// Direction.
    pub dir: AstPortDir,
    /// `wire` (default) or `reg`.
    pub kind: AstNetKind,
    /// Optional `[msb:lsb]` range (constant expressions).
    pub range: Option<(AstExpr, AstExpr)>,
    /// Port name.
    pub name: String,
    /// Source line.
    pub line: u32,
}

/// A module declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleDecl {
    /// Module name.
    pub name: String,
    /// Parameters declared in the `#(parameter ...)` header.
    pub header_params: Vec<(String, AstExpr)>,
    /// ANSI ports.
    pub ports: Vec<PortDecl>,
    /// Body items in source order.
    pub items: Vec<Item>,
    /// Source line.
    pub line: u32,
}

/// A module body item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `wire`/`reg` declarations (one item per declaration list).
    Net {
        /// `wire` or `reg`.
        kind: AstNetKind,
        /// Optional `[msb:lsb]` range.
        range: Option<(AstExpr, AstExpr)>,
        /// Declared names.
        names: Vec<String>,
        /// Initializer (`wire x = expr;`), single-name declarations only.
        init: Option<AstExpr>,
        /// Source line.
        line: u32,
    },
    /// `integer` declarations (32-bit variables, excluded from fault
    /// injection).
    Integer {
        /// Declared names.
        names: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// `parameter`/`localparam` declaration.
    Param {
        /// True for `localparam` (not overridable).
        local: bool,
        /// Parameter name.
        name: String,
        /// Default value (constant expression).
        value: AstExpr,
        /// Source line.
        line: u32,
    },
    /// Continuous assignment.
    Assign {
        /// Target (full signal name; the subset restricts continuous-assign
        /// targets to whole signals).
        lhs: String,
        /// Value expression.
        rhs: AstExpr,
        /// Source line.
        line: u32,
    },
    /// An `always` block.
    Always {
        /// Sensitivity list.
        sens: AstSens,
        /// Body.
        body: AstStmt,
        /// Source line.
        line: u32,
    },
    /// A module instantiation.
    Instance {
        /// Instantiated module name.
        module: String,
        /// Instance name.
        name: String,
        /// `#(.P(expr))` parameter overrides.
        params: Vec<(String, AstExpr)>,
        /// `.port(expr)` connections.
        conns: Vec<(String, Option<AstExpr>)>,
        /// Source line.
        line: u32,
    },
}

/// Sensitivity list of an `always` block.
#[derive(Debug, Clone, PartialEq)]
pub enum AstSens {
    /// `@(*)`.
    Star,
    /// `@(posedge a or negedge b)`.
    Edges(Vec<(EdgeKind, String)>),
    /// `@(a or b)`.
    Level(Vec<String>),
}

/// A behavioral statement (source form).
#[derive(Debug, Clone, PartialEq)]
pub enum AstStmt {
    /// `begin ... end`.
    Block(Vec<AstStmt>),
    /// Blocking (`=`) or non-blocking (`<=`) assignment.
    Assign {
        /// Target.
        lhs: AstLValue,
        /// Value.
        rhs: AstExpr,
        /// True for `=`.
        blocking: bool,
        /// Source line.
        line: u32,
    },
    /// `if`/`else`.
    If {
        /// Condition.
        cond: AstExpr,
        /// Then branch.
        then_s: Box<AstStmt>,
        /// Optional else branch.
        else_s: Option<Box<AstStmt>>,
    },
    /// `case`/`casez`.
    Case {
        /// Scrutinee.
        scrutinee: AstExpr,
        /// `(labels, body)` arms.
        arms: Vec<(Vec<AstExpr>, AstStmt)>,
        /// Optional `default` body.
        default: Option<Box<AstStmt>>,
        /// True for `casez`.
        wildcard: bool,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Init assignment.
        init: Box<AstStmt>,
        /// Condition.
        cond: AstExpr,
        /// Step assignment.
        step: Box<AstStmt>,
        /// Body.
        body: Box<AstStmt>,
    },
    /// Empty statement (`;`).
    Nop,
}

/// An assignment target (source form).
#[derive(Debug, Clone, PartialEq)]
pub enum AstLValue {
    /// Whole signal.
    Ident(String),
    /// `sig[index]` (dynamic bit select).
    Bit {
        /// Signal name.
        base: String,
        /// Index expression.
        index: AstExpr,
    },
    /// `sig[hi:lo]` (constant part select).
    Part {
        /// Signal name.
        base: String,
        /// High bound (constant expression).
        hi: AstExpr,
        /// Low bound (constant expression).
        lo: AstExpr,
    },
    /// `sig[start +: width]` (indexed part select).
    IndexedPart {
        /// Signal name.
        base: String,
        /// Start expression.
        start: AstExpr,
        /// Width (constant expression).
        width: AstExpr,
    },
}

/// An expression (source form).
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Numeric literal (raw text, parsed by `eraser-logic`).
    Literal(String, u32),
    /// Identifier (signal or parameter).
    Ident(String, u32),
    /// Unary operation.
    Unary(UnaryOp, Box<AstExpr>),
    /// Binary operation.
    Binary(BinaryOp, Box<AstExpr>, Box<AstExpr>),
    /// Ternary conditional.
    Ternary(Box<AstExpr>, Box<AstExpr>, Box<AstExpr>),
    /// Concatenation (MSB-first).
    Concat(Vec<AstExpr>),
    /// Replication `{count{value}}`.
    Replicate(Box<AstExpr>, Box<AstExpr>),
    /// `sig[index]` — bit select (dynamic or constant).
    Bit {
        /// Signal name.
        base: String,
        /// Index.
        index: Box<AstExpr>,
        /// Source line.
        line: u32,
    },
    /// `sig[hi:lo]` — constant part select.
    Part {
        /// Signal name.
        base: String,
        /// High bound.
        hi: Box<AstExpr>,
        /// Low bound.
        lo: Box<AstExpr>,
        /// Source line.
        line: u32,
    },
    /// `sig[start +: width]` — indexed part select.
    IndexedPart {
        /// Signal name.
        base: String,
        /// Start.
        start: Box<AstExpr>,
        /// Width (constant).
        width: Box<AstExpr>,
        /// Source line.
        line: u32,
    },
}

impl AstExpr {
    /// The source line of this expression (best effort).
    pub fn line(&self) -> u32 {
        match self {
            AstExpr::Literal(_, l) | AstExpr::Ident(_, l) => *l,
            AstExpr::Unary(_, e) => e.line(),
            AstExpr::Binary(_, l, _) => l.line(),
            AstExpr::Ternary(c, _, _) => c.line(),
            AstExpr::Concat(parts) => parts.first().map_or(0, |p| p.line()),
            AstExpr::Replicate(n, _) => n.line(),
            AstExpr::Bit { line, .. }
            | AstExpr::Part { line, .. }
            | AstExpr::IndexedPart { line, .. } => *line,
        }
    }
}
