//! Verilog-subset frontend: lexer, parser and hierarchical elaborator.
//!
//! This crate is the "compile & elaborate" step of the ERASER framework
//! (step ① of the paper's Fig. 4). It turns a Verilog source text into the
//! elaborated [`eraser_ir::Design`] RTL graph:
//!
//! * continuous `assign` expression trees are flattened into primitive
//!   [`eraser_ir::RtlNode`]s with synthetic intermediate nets,
//! * `always` blocks become [`eraser_ir::BehavioralNode`]s with their
//!   control-flow and visibility-dependency graphs attached,
//! * module hierarchy is flattened with dotted instance prefixes
//!   (`u_core.pc`).
//!
//! The supported language subset is documented in `DESIGN.md`; it covers
//! ANSI-style module headers, `wire`/`reg`/`integer` declarations,
//! parameters, continuous assigns, module instantiation with named port and
//! parameter overrides, and `always` blocks with `if`/`case`/`casez`/`for`,
//! blocking and non-blocking assignments.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     module counter(input wire clk, input wire rst, output reg [7:0] q);
//!         always @(posedge clk) begin
//!             if (rst) q <= 8'h00;
//!             else q <= q + 8'h01;
//!         end
//!     endmodule
//! "#;
//! let design = eraser_frontend::compile(src, Some("counter"))?;
//! assert_eq!(design.behavioral_nodes().len(), 1);
//! # Ok::<(), eraser_frontend::CompileError>(())
//! ```

mod ast;
mod elab;
mod error;
mod lexer;
mod parser;

pub use error::CompileError;

use eraser_ir::Design;

/// Compiles Verilog source text into an elaborated design.
///
/// `top` selects the top module; if `None`, the last module in the source is
/// used. Ports of the top module become the design's primary inputs and
/// outputs (the fault-observation points).
///
/// # Errors
///
/// Returns a [`CompileError`] with a line number for lexical, syntactic,
/// elaboration-time (unknown module/signal, non-constant where a constant is
/// required) and design-rule (multiple drivers, combinational cycle) errors.
pub fn compile(source: &str, top: Option<&str>) -> Result<Design, CompileError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(tokens)?;
    elab::elaborate(&unit, top)
}
