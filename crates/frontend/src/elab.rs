//! Hierarchical elaboration: AST → flattened [`Design`].
//!
//! Elaboration resolves parameters to constants, flattens the module
//! hierarchy with dotted instance prefixes, decomposes continuous-assign
//! expression trees into primitive RTL nodes (with synthetic intermediate
//! nets), and converts `always` bodies into behavioral statement trees.

use crate::ast::*;
use crate::error::CompileError;
use eraser_ir::{
    analysis::expr_width_with, eval::eval_binary, Design, DesignBuilder, Expr, LValue, PortDir,
    RtlOp, Sensitivity, SignalId, SignalKind, Stmt, UnaryOp,
};
use eraser_logic::{LogicBit, LogicVec};
use std::collections::HashMap;

/// Elaborates a parsed source unit into a flattened design.
///
/// # Errors
///
/// Returns a [`CompileError`] for unknown modules/signals, non-constant
/// expressions in constant contexts, driver-kind violations (continuous
/// assignment to a `reg`, behavioral assignment to a `wire`), and any
/// design-rule violation detected by
/// [`DesignBuilder::finish`](eraser_ir::DesignBuilder::finish).
pub fn elaborate(unit: &SourceUnit, top: Option<&str>) -> Result<Design, CompileError> {
    let mut modules: HashMap<&str, &ModuleDecl> = HashMap::new();
    for m in &unit.modules {
        if modules.insert(m.name.as_str(), m).is_some() {
            return Err(CompileError::at(
                m.line,
                format!("duplicate module `{}`", m.name),
            ));
        }
    }
    let top_decl = match top {
        Some(name) => *modules
            .get(name)
            .ok_or_else(|| CompileError::design(format!("top module `{name}` not found")))?,
        None => unit
            .modules
            .last()
            .ok_or_else(|| CompileError::design("source contains no modules"))?,
    };
    let mut elab = Elaborator {
        modules,
        builder: DesignBuilder::new(top_decl.name.clone()),
        temp_counter: 0,
        depth: 0,
    };
    elab.instantiate(top_decl, "", &HashMap::new(), None)?;
    Ok(elab.builder.finish()?)
}

/// A port connection prepared by the parent scope.
struct PreparedConn {
    dir: AstPortDir,
    /// Parent-side signal (source for inputs, destination for outputs).
    parent: Option<SignalId>,
    line: u32,
}

struct Scope {
    params: HashMap<String, LogicVec>,
    signals: HashMap<String, SignalId>,
}

struct Elaborator<'a> {
    modules: HashMap<&'a str, &'a ModuleDecl>,
    builder: DesignBuilder,
    temp_counter: usize,
    depth: u32,
}

impl<'a> Elaborator<'a> {
    /// Instantiates `decl` under `prefix`. For the top module
    /// (`conns == None`) ports become design ports; otherwise `conns` maps
    /// port names to prepared parent-side connections.
    fn instantiate(
        &mut self,
        decl: &'a ModuleDecl,
        prefix: &str,
        param_overrides: &HashMap<String, LogicVec>,
        conns: Option<HashMap<String, PreparedConn>>,
    ) -> Result<(), CompileError> {
        self.depth += 1;
        if self.depth > 64 {
            return Err(CompileError::at(
                decl.line,
                format!(
                    "instantiation depth limit exceeded at `{}` (recursive hierarchy?)",
                    decl.name
                ),
            ));
        }
        let mut scope = Scope {
            params: HashMap::new(),
            signals: HashMap::new(),
        };

        // Parameters: header first, then body; overrides apply to
        // non-local parameters.
        for (name, value) in &decl.header_params {
            let v = match param_overrides.get(name) {
                Some(ov) => ov.clone(),
                None => self.const_eval(value, &scope)?,
            };
            scope.params.insert(name.clone(), v);
        }
        for item in &decl.items {
            if let Item::Param {
                local,
                name,
                value,
                line: _,
            } = item
            {
                let v = match (!local).then(|| param_overrides.get(name)).flatten() {
                    Some(ov) => ov.clone(),
                    None => self.const_eval(value, &scope)?,
                };
                scope.params.insert(name.clone(), v);
            }
        }

        // Ports.
        let is_top = conns.is_none();
        for port in &decl.ports {
            let width = self.range_width(&port.range, &scope, port.line)?;
            let full = format!("{prefix}{}", port.name);
            let kind = match port.kind {
                AstNetKind::Wire => SignalKind::Wire,
                AstNetKind::Reg => SignalKind::Reg,
            };
            if port.dir == AstPortDir::Input && kind == SignalKind::Reg {
                return Err(CompileError::at(port.line, "input ports cannot be `reg`"));
            }
            let dir = if is_top {
                Some(match port.dir {
                    AstPortDir::Input => PortDir::Input,
                    AstPortDir::Output => PortDir::Output,
                })
            } else {
                None
            };
            let id = self.builder.add_signal_full(full, width, kind, dir, false);
            scope.signals.insert(port.name.clone(), id);
        }

        // Declarations.
        for item in &decl.items {
            match item {
                Item::Net {
                    kind,
                    range,
                    names,
                    init: _,
                    line,
                } => {
                    let width = self.range_width(range, &scope, *line)?;
                    let k = match kind {
                        AstNetKind::Wire => SignalKind::Wire,
                        AstNetKind::Reg => SignalKind::Reg,
                    };
                    for n in names {
                        if scope.signals.contains_key(n) {
                            return Err(CompileError::at(*line, format!("duplicate signal `{n}`")));
                        }
                        let id = self.builder.add_signal_full(
                            format!("{prefix}{n}"),
                            width,
                            k,
                            None,
                            false,
                        );
                        scope.signals.insert(n.clone(), id);
                    }
                }
                Item::Integer { names, line } => {
                    for n in names {
                        if scope.signals.contains_key(n) {
                            return Err(CompileError::at(*line, format!("duplicate signal `{n}`")));
                        }
                        // Loop variables: 32-bit variables, excluded from
                        // fault injection (marked synthetic).
                        let id = self.builder.add_signal_full(
                            format!("{prefix}{n}"),
                            32,
                            SignalKind::Reg,
                            None,
                            true,
                        );
                        scope.signals.insert(n.clone(), id);
                    }
                }
                _ => {}
            }
        }

        // Port connections (sub-instances): bridge with Buf nodes.
        if let Some(conns) = conns {
            for (pname, conn) in conns {
                let port_sig = *scope.signals.get(&pname).ok_or_else(|| {
                    CompileError::at(
                        conn.line,
                        format!("module `{}` has no port `{pname}`", decl.name),
                    )
                })?;
                match (conn.dir, conn.parent) {
                    (AstPortDir::Input, Some(src)) => {
                        self.builder.add_rtl_node(RtlOp::Buf, vec![src], port_sig);
                    }
                    (AstPortDir::Output, Some(dst)) => {
                        self.builder.add_rtl_node(RtlOp::Buf, vec![port_sig], dst);
                    }
                    (_, None) => {} // unconnected
                }
            }
        }

        // Behavior.
        for item in &decl.items {
            match item {
                Item::Net {
                    kind,
                    names,
                    init: Some(init),
                    line,
                    ..
                } => {
                    if *kind != AstNetKind::Wire {
                        return Err(CompileError::at(
                            *line,
                            "initializers are only supported on `wire` declarations",
                        ));
                    }
                    let out = self.lookup(&names[0], &scope, *line)?;
                    let rhs = self.resolve_expr(init, &scope)?;
                    self.flatten_into(&rhs, out);
                }
                Item::Assign { lhs, rhs, line } => {
                    let out = self.lookup(lhs, &scope, *line)?;
                    if self.kind_of(out) != SignalKind::Wire {
                        return Err(CompileError::at(
                            *line,
                            format!("continuous assignment target `{lhs}` must be a wire"),
                        ));
                    }
                    let rhs = self.resolve_expr(rhs, &scope)?;
                    self.flatten_into(&rhs, out);
                }
                Item::Always { sens, body, line } => {
                    let sensitivity = self.resolve_sens(sens, &scope, *line)?;
                    let stmt = self.resolve_stmt(body, &scope)?;
                    // Behavioral writes must target variables.
                    let mut writes = Vec::new();
                    stmt.collect_writes(&mut writes);
                    for w in &writes {
                        if self.kind_of(*w) != SignalKind::Reg {
                            return Err(CompileError::at(
                                *line,
                                "behavioral assignment target must be a reg".to_string(),
                            ));
                        }
                    }
                    let name = format!("{prefix}always@{line}");
                    self.builder.add_behavioral(name, sensitivity, stmt);
                }
                Item::Instance {
                    module,
                    name,
                    params,
                    conns: raw_conns,
                    line,
                } => {
                    let child = *self.modules.get(module.as_str()).ok_or_else(|| {
                        CompileError::at(*line, format!("unknown module `{module}`"))
                    })?;
                    let mut overrides = HashMap::new();
                    for (pname, pexpr) in params {
                        overrides.insert(pname.clone(), self.const_eval(pexpr, &scope)?);
                    }
                    // Prepare connections in the parent scope.
                    let port_dirs: HashMap<&str, AstPortDir> = child
                        .ports
                        .iter()
                        .map(|p| (p.name.as_str(), p.dir))
                        .collect();
                    let mut prepared = HashMap::new();
                    for (pname, pexpr) in raw_conns {
                        let dir = *port_dirs.get(pname.as_str()).ok_or_else(|| {
                            CompileError::at(
                                *line,
                                format!("module `{module}` has no port `{pname}`"),
                            )
                        })?;
                        let parent =
                            match pexpr {
                                None => None,
                                Some(e) => Some(match dir {
                                    AstPortDir::Input => {
                                        let resolved = self.resolve_expr(e, &scope)?;
                                        self.flatten(&resolved)
                                    }
                                    AstPortDir::Output => match e {
                                        AstExpr::Ident(n, l) => self.lookup(n, &scope, *l)?,
                                        other => return Err(CompileError::at(
                                            other.line(),
                                            "output port connections must be plain signal names",
                                        )),
                                    },
                                }),
                            };
                        prepared.insert(
                            pname.clone(),
                            PreparedConn {
                                dir,
                                parent,
                                line: *line,
                            },
                        );
                    }
                    let child_prefix = format!("{prefix}{name}.");
                    self.instantiate(child, &child_prefix, &overrides, Some(prepared))?;
                }
                _ => {}
            }
        }
        self.depth -= 1;
        Ok(())
    }

    // ---- helpers ----

    fn kind_of(&self, sig: SignalId) -> SignalKind {
        self.builder.signal_kind(sig)
    }

    fn lookup(&self, name: &str, scope: &Scope, line: u32) -> Result<SignalId, CompileError> {
        scope
            .signals
            .get(name)
            .copied()
            .ok_or_else(|| CompileError::at(line, format!("unknown signal `{name}`")))
    }

    fn range_width(
        &mut self,
        range: &Option<(AstExpr, AstExpr)>,
        scope: &Scope,
        line: u32,
    ) -> Result<u32, CompileError> {
        match range {
            None => Ok(1),
            Some((msb, lsb)) => {
                let m = self.const_u32(msb, scope)?;
                let l = self.const_u32(lsb, scope)?;
                if l != 0 {
                    return Err(CompileError::at(
                        line,
                        "only `[msb:0]` ranges are supported by this subset",
                    ));
                }
                Ok(m + 1)
            }
        }
    }

    fn const_u32(&mut self, e: &AstExpr, scope: &Scope) -> Result<u32, CompileError> {
        let v = self.const_eval(e, scope)?;
        v.to_u64()
            .filter(|x| *x <= u32::MAX as u64)
            .map(|x| x as u32)
            .ok_or_else(|| CompileError::at(e.line(), "expression is not a defined constant"))
    }

    /// Constant expression evaluation (literals, parameters, operators).
    fn const_eval(&mut self, e: &AstExpr, scope: &Scope) -> Result<LogicVec, CompileError> {
        match e {
            AstExpr::Literal(raw, line) => {
                LogicVec::parse_literal(raw).map_err(|err| CompileError::at(*line, err.to_string()))
            }
            AstExpr::Ident(name, line) => scope.params.get(name).cloned().ok_or_else(|| {
                CompileError::at(
                    *line,
                    format!("`{name}` is not a constant (parameter) here"),
                )
            }),
            AstExpr::Unary(op, inner) => {
                let v = self.const_eval(inner, scope)?;
                Ok(match op {
                    UnaryOp::Not => v.not(),
                    UnaryOp::Neg => v.neg(),
                    UnaryOp::LogicalNot => LogicVec::from_bit(v.truth().not()),
                    UnaryOp::RedAnd => LogicVec::from_bit(v.red_and()),
                    UnaryOp::RedOr => LogicVec::from_bit(v.red_or()),
                    UnaryOp::RedXor => LogicVec::from_bit(v.red_xor()),
                })
            }
            AstExpr::Binary(op, l, r) => {
                let lv = self.const_eval(l, scope)?;
                let rv = self.const_eval(r, scope)?;
                Ok(eval_binary(*op, &lv, &rv))
            }
            AstExpr::Ternary(c, t, f) => {
                let cv = self.const_eval(c, scope)?;
                match cv.truth() {
                    LogicBit::One => self.const_eval(t, scope),
                    _ => self.const_eval(f, scope),
                }
            }
            AstExpr::Concat(parts) => {
                let vals: Result<Vec<LogicVec>, CompileError> =
                    parts.iter().map(|p| self.const_eval(p, scope)).collect();
                let vals = vals?;
                let refs: Vec<&LogicVec> = vals.iter().rev().collect();
                Ok(LogicVec::concat_lsb_first(&refs))
            }
            AstExpr::Replicate(n, inner) => {
                let count = self.const_u32(n, scope)?;
                Ok(self.const_eval(inner, scope)?.replicate(count))
            }
            other => Err(CompileError::at(
                other.line(),
                "expression is not constant in this context",
            )),
        }
    }

    /// Resolves a source expression to an IR expression in `scope`.
    fn resolve_expr(&mut self, e: &AstExpr, scope: &Scope) -> Result<Expr, CompileError> {
        Ok(match e {
            AstExpr::Literal(raw, line) => Expr::Const(
                LogicVec::parse_literal(raw)
                    .map_err(|err| CompileError::at(*line, err.to_string()))?,
            ),
            AstExpr::Ident(name, line) => {
                if let Some(v) = scope.params.get(name) {
                    Expr::Const(v.clone())
                } else {
                    Expr::Signal(self.lookup(name, scope, *line)?)
                }
            }
            AstExpr::Unary(op, inner) => Expr::un(*op, self.resolve_expr(inner, scope)?),
            AstExpr::Binary(op, l, r) => Expr::bin(
                *op,
                self.resolve_expr(l, scope)?,
                self.resolve_expr(r, scope)?,
            ),
            AstExpr::Ternary(c, t, f) => Expr::Ternary {
                cond: Box::new(self.resolve_expr(c, scope)?),
                then_e: Box::new(self.resolve_expr(t, scope)?),
                else_e: Box::new(self.resolve_expr(f, scope)?),
            },
            AstExpr::Concat(parts) => Expr::Concat(
                parts
                    .iter()
                    .map(|p| self.resolve_expr(p, scope))
                    .collect::<Result<_, _>>()?,
            ),
            AstExpr::Replicate(n, inner) => {
                let count = self.const_u32(n, scope)?;
                Expr::Replicate(count, Box::new(self.resolve_expr(inner, scope)?))
            }
            AstExpr::Bit { base, index, line } => {
                // Bit select on a parameter constant.
                if let Some(v) = scope.params.get(base).cloned() {
                    let i = self.const_u32(index, scope)?;
                    return Ok(Expr::Const(LogicVec::from_bit(v.bit_or_x(i))));
                }
                let sig = self.lookup(base, scope, *line)?;
                match self.try_const_u32(index, scope) {
                    Some(i) => Expr::Slice {
                        base: sig,
                        hi: i,
                        lo: i,
                    },
                    None => Expr::Index {
                        base: sig,
                        index: Box::new(self.resolve_expr(index, scope)?),
                    },
                }
            }
            AstExpr::Part { base, hi, lo, line } => {
                let sig = self.lookup(base, scope, *line)?;
                let h = self.const_u32(hi, scope)?;
                let l = self.const_u32(lo, scope)?;
                if h < l {
                    return Err(CompileError::at(
                        *line,
                        "part select `[hi:lo]` requires hi >= lo",
                    ));
                }
                Expr::Slice {
                    base: sig,
                    hi: h,
                    lo: l,
                }
            }
            AstExpr::IndexedPart {
                base,
                start,
                width,
                line,
            } => {
                let sig = self.lookup(base, scope, *line)?;
                let w = self.const_u32(width, scope)?;
                match self.try_const_u32(start, scope) {
                    Some(s) => Expr::Slice {
                        base: sig,
                        hi: s + w - 1,
                        lo: s,
                    },
                    None => Expr::IndexedPart {
                        base: sig,
                        start: Box::new(self.resolve_expr(start, scope)?),
                        width: w,
                    },
                }
            }
        })
    }

    fn try_const_u32(&mut self, e: &AstExpr, scope: &Scope) -> Option<u32> {
        self.const_eval(e, scope)
            .ok()
            .and_then(|v| v.to_u64())
            .filter(|x| *x <= u32::MAX as u64)
            .map(|x| x as u32)
    }

    fn resolve_sens(
        &mut self,
        sens: &AstSens,
        scope: &Scope,
        line: u32,
    ) -> Result<Sensitivity, CompileError> {
        Ok(match sens {
            AstSens::Star => Sensitivity::Star,
            AstSens::Edges(edges) => Sensitivity::Edges(
                edges
                    .iter()
                    .map(|(k, n)| Ok((*k, self.lookup(n, scope, line)?)))
                    .collect::<Result<Vec<_>, CompileError>>()?,
            ),
            AstSens::Level(names) => Sensitivity::Level(
                names
                    .iter()
                    .map(|n| self.lookup(n, scope, line))
                    .collect::<Result<Vec<_>, CompileError>>()?,
            ),
        })
    }

    fn resolve_lvalue(
        &mut self,
        lv: &AstLValue,
        scope: &Scope,
        line: u32,
    ) -> Result<LValue, CompileError> {
        Ok(match lv {
            AstLValue::Ident(n) => LValue::Full(self.lookup(n, scope, line)?),
            AstLValue::Bit { base, index } => {
                let sig = self.lookup(base, scope, line)?;
                match self.try_const_u32(index, scope) {
                    Some(i) => LValue::PartSelect {
                        base: sig,
                        hi: i,
                        lo: i,
                    },
                    None => LValue::BitSelect {
                        base: sig,
                        index: self.resolve_expr(index, scope)?,
                    },
                }
            }
            AstLValue::Part { base, hi, lo } => {
                let sig = self.lookup(base, scope, line)?;
                LValue::PartSelect {
                    base: sig,
                    hi: self.const_u32(hi, scope)?,
                    lo: self.const_u32(lo, scope)?,
                }
            }
            AstLValue::IndexedPart { base, start, width } => {
                let sig = self.lookup(base, scope, line)?;
                let w = self.const_u32(width, scope)?;
                match self.try_const_u32(start, scope) {
                    Some(s) => LValue::PartSelect {
                        base: sig,
                        hi: s + w - 1,
                        lo: s,
                    },
                    None => LValue::IndexedPart {
                        base: sig,
                        start: self.resolve_expr(start, scope)?,
                        width: w,
                    },
                }
            }
        })
    }

    fn resolve_stmt(&mut self, s: &AstStmt, scope: &Scope) -> Result<Stmt, CompileError> {
        Ok(match s {
            AstStmt::Block(stmts) => Stmt::Block(
                stmts
                    .iter()
                    .map(|st| self.resolve_stmt(st, scope))
                    .collect::<Result<_, _>>()?,
            ),
            AstStmt::Assign {
                lhs,
                rhs,
                blocking,
                line,
            } => Stmt::Assign {
                lhs: self.resolve_lvalue(lhs, scope, *line)?,
                rhs: self.resolve_expr(rhs, scope)?,
                blocking: *blocking,
                segment: eraser_ir::SegmentId(0),
            },
            AstStmt::If {
                cond,
                then_s,
                else_s,
            } => Stmt::If {
                cond: self.resolve_expr(cond, scope)?,
                then_s: Box::new(self.resolve_stmt(then_s, scope)?),
                else_s: match else_s {
                    Some(e) => Some(Box::new(self.resolve_stmt(e, scope)?)),
                    None => None,
                },
                decision: eraser_ir::DecisionId(0),
            },
            AstStmt::Case {
                scrutinee,
                arms,
                default,
                wildcard,
            } => Stmt::Case {
                scrutinee: self.resolve_expr(scrutinee, scope)?,
                arms: arms
                    .iter()
                    .map(|(labels, body)| {
                        Ok(eraser_ir::CaseArm {
                            labels: labels
                                .iter()
                                .map(|l| self.resolve_expr(l, scope))
                                .collect::<Result<_, CompileError>>()?,
                            body: self.resolve_stmt(body, scope)?,
                        })
                    })
                    .collect::<Result<_, CompileError>>()?,
                default: match default {
                    Some(d) => Some(Box::new(self.resolve_stmt(d, scope)?)),
                    None => None,
                },
                kind: if *wildcard {
                    eraser_ir::CaseKind::Z
                } else {
                    eraser_ir::CaseKind::Exact
                },
                decision: eraser_ir::DecisionId(0),
            },
            AstStmt::For {
                init,
                cond,
                step,
                body,
            } => Stmt::For {
                init: Box::new(self.resolve_stmt(init, scope)?),
                cond: self.resolve_expr(cond, scope)?,
                step: Box::new(self.resolve_stmt(step, scope)?),
                body: Box::new(self.resolve_stmt(body, scope)?),
                decision: eraser_ir::DecisionId(0),
            },
            AstStmt::Nop => Stmt::Nop,
        })
    }

    // ---- RTL flattening ----

    /// Flattens `expr` into RTL nodes; the final value lands on `out`
    /// (with a width-adapting `Buf` if needed).
    fn flatten_into(&mut self, expr: &Expr, out: SignalId) {
        let w = self.expr_width(expr);
        let out_w = self.builder.signal_width(out);
        if w == out_w {
            self.emit_node(expr, Some(out));
        } else {
            let t = self.emit_node(expr, None);
            self.builder.add_rtl_node(RtlOp::Buf, vec![t], out);
        }
    }

    /// Flattens `expr` into RTL nodes, returning the signal holding its
    /// value (existing signal for plain references, fresh temp otherwise).
    fn flatten(&mut self, expr: &Expr) -> SignalId {
        if let Expr::Signal(s) = expr {
            return *s;
        }
        self.emit_node(expr, None)
    }

    fn fresh_temp(&mut self, width: u32) -> SignalId {
        let name = format!("$t{}", self.temp_counter);
        self.temp_counter += 1;
        self.builder.add_temp(name, width)
    }

    fn expr_width(&self, expr: &Expr) -> u32 {
        let b = &self.builder;
        expr_width_with(expr, &|s| b.signal_width(s))
    }

    /// Emits the RTL node for the root of `expr` (recursively flattening
    /// operands) into `out`, or into a fresh temp if `out` is `None`.
    fn emit_node(&mut self, expr: &Expr, out: Option<SignalId>) -> SignalId {
        let width = self.expr_width(expr);
        let out = out.unwrap_or_else(|| self.fresh_temp(width));
        match expr {
            Expr::Signal(s) => {
                self.builder.add_rtl_node(RtlOp::Buf, vec![*s], out);
            }
            Expr::Const(v) => {
                self.builder
                    .add_rtl_node(RtlOp::Const(v.clone()), vec![], out);
            }
            Expr::Unary(op, e) => {
                let a = self.flatten(e);
                self.builder.add_rtl_node(RtlOp::Unary(*op), vec![a], out);
            }
            Expr::Binary(op, l, r) => {
                let a = self.flatten(l);
                let b = self.flatten(r);
                self.builder
                    .add_rtl_node(RtlOp::Binary(*op), vec![a, b], out);
            }
            Expr::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                let c = self.flatten(cond);
                let t = self.flatten(then_e);
                let e = self.flatten(else_e);
                self.builder.add_rtl_node(RtlOp::Mux, vec![c, t, e], out);
            }
            Expr::Concat(parts) => {
                let inputs: Vec<SignalId> = parts.iter().map(|p| self.flatten(p)).collect();
                self.builder.add_rtl_node(RtlOp::Concat, inputs, out);
            }
            Expr::Replicate(n, e) => {
                let a = self.flatten(e);
                self.builder
                    .add_rtl_node(RtlOp::Replicate(*n), vec![a], out);
            }
            Expr::Slice { base, hi, lo } => {
                self.builder
                    .add_rtl_node(RtlOp::Slice { hi: *hi, lo: *lo }, vec![*base], out);
            }
            Expr::Index { base, index } => {
                let i = self.flatten(index);
                self.builder.add_rtl_node(RtlOp::Index, vec![*base, i], out);
            }
            Expr::IndexedPart { base, start, width } => {
                let s = self.flatten(start);
                self.builder.add_rtl_node(
                    RtlOp::IndexedPart { width: *width },
                    vec![*base, s],
                    out,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn compile(src: &str) -> Design {
        elaborate(&parse(lex(src).unwrap()).unwrap(), None).unwrap()
    }

    fn compile_err(src: &str) -> CompileError {
        elaborate(&parse(lex(src).unwrap()).unwrap(), None).unwrap_err()
    }

    #[test]
    fn flat_assign_becomes_rtl_nodes() {
        let d = compile(
            "module m(input wire [7:0] a, input wire [7:0] b, output wire [7:0] x);
               assign x = (a & b) + 8'h01;
             endmodule",
        );
        // Nodes: And, Const, Add (add feeds x directly) -> 3 nodes.
        assert_eq!(d.rtl_nodes().len(), 3);
        assert_eq!(d.behavioral_nodes().len(), 0);
        assert!(d.find_signal("$t0").is_some());
    }

    #[test]
    fn parameters_resolve_and_override() {
        let d = compile(
            "module sub #(parameter W = 4) (input wire [W-1:0] a, output wire [W-1:0] y);
               assign y = ~a;
             endmodule
             module top(input wire [7:0] a, output wire [7:0] y);
               sub #(.W(8)) u0 (.a(a), .y(y));
             endmodule",
        );
        let port = d.find_signal("u0.a").unwrap();
        assert_eq!(d.signal(port).width, 8);
    }

    #[test]
    fn hierarchy_flattens_with_prefixes() {
        let d = compile(
            "module inv(input wire i, output wire o);
               assign o = ~i;
             endmodule
             module top(input wire x, output wire y);
               wire m;
               inv a (.i(x), .o(m));
               inv b (.i(m), .o(y));
             endmodule",
        );
        assert!(d.find_signal("a.i").is_some());
        assert!(d.find_signal("b.o").is_some());
        // 2 Not nodes + 4 port Bufs.
        assert_eq!(d.rtl_nodes().len(), 6);
    }

    #[test]
    fn always_block_elaborates() {
        let d = compile(
            "module m(input wire clk, input wire rst, output reg [3:0] q);
               always @(posedge clk) begin
                 if (rst) q <= 4'h0;
                 else q <= q + 4'h1;
               end
             endmodule",
        );
        assert_eq!(d.behavioral_nodes().len(), 1);
        let b = &d.behavioral_nodes()[0];
        assert_eq!(b.vdg.decisions.len(), 1);
        assert_eq!(b.vdg.segments.len(), 2);
        assert!(b.sensitivity.is_edge());
    }

    #[test]
    fn localparam_cannot_be_overridden() {
        let d = compile(
            "module sub (output wire [7:0] y);
               localparam V = 8'h2a;
               assign y = V;
             endmodule
             module top(output wire [7:0] y);
               sub u0 (.y(y));
             endmodule",
        );
        assert_eq!(d.rtl_nodes().len(), 2); // Const + Buf
    }

    #[test]
    fn const_bit_select_becomes_slice() {
        let d = compile(
            "module m(input wire [7:0] a, output wire x);
               assign x = a[3];
             endmodule",
        );
        assert!(matches!(d.rtl_nodes()[0].op, RtlOp::Slice { hi: 3, lo: 3 }));
    }

    #[test]
    fn input_expression_connections_are_flattened() {
        let d = compile(
            "module inv(input wire i, output wire o); assign o = ~i; endmodule
             module top(input wire a, input wire b, output wire y);
               inv u (.i(a ^ b), .o(y));
             endmodule",
        );
        // Xor + (Buf into u.i) + Not + (Buf out of u.o).
        assert_eq!(d.rtl_nodes().len(), 4);
    }

    #[test]
    fn error_unknown_signal() {
        let e = compile_err("module m(output wire x); assign x = nosuch; endmodule");
        assert!(e.message.contains("unknown signal"));
    }

    #[test]
    fn error_assign_to_reg() {
        let e = compile_err("module m(output reg x); assign x = 1'b0; endmodule");
        assert!(e.message.contains("must be a wire"));
    }

    #[test]
    fn error_behavioral_write_to_wire() {
        let e = compile_err(
            "module m(input wire c, output wire x);
               always @(*) x = c;
             endmodule",
        );
        assert!(e.message.contains("must be a reg"));
    }

    #[test]
    fn error_nonzero_lsb() {
        let e =
            compile_err("module m(input wire [7:4] a, output wire x); assign x = a[4]; endmodule");
        assert!(e.message.contains("[msb:0]"));
    }

    #[test]
    fn error_unknown_module() {
        let e = compile_err("module top(input wire a); nosuch u (.x(a)); endmodule");
        assert!(e.message.contains("unknown module"));
    }

    #[test]
    fn integers_are_synthetic() {
        let d = compile(
            "module m(input wire clk, output reg [3:0] q);
               integer i;
               always @(posedge clk) begin
                 for (i = 0; i < 4; i = i + 1) q[i] <= ~q[i];
               end
             endmodule",
        );
        let i = d.find_signal("i").unwrap();
        assert!(d.signal(i).synthetic);
        assert_eq!(d.signal(i).width, 32);
    }

    #[test]
    fn recursive_instantiation_is_caught() {
        let e = compile_err("module a(input wire x); a u (.x(x)); endmodule");
        assert!(e.message.contains("depth"));
    }
}
