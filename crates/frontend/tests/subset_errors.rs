//! Diagnostic battery: the frontend must reject everything outside the
//! documented subset with a located, readable error (never a panic).

use eraser_frontend::compile;

fn err(src: &str) -> String {
    compile(src, None).unwrap_err().to_string()
}

#[test]
fn lexical_errors() {
    assert!(err("module m(); `define X endmodule").contains("unexpected character"));
    assert!(err("/* never closed").contains("unterminated"));
    assert!(err("module m(); wire w; assign w = 1'q0; endmodule").len() > 5);
}

#[test]
fn syntax_errors_carry_line_numbers() {
    let e = compile("module m(input wire a);\nwire x\nendmodule", None).unwrap_err();
    assert_eq!(e.line, 3); // missing semicolon discovered at `endmodule`
    assert_eq!(e.col, 1);
    let e = compile("module m();\n  initial begin end\nendmodule", None).unwrap_err();
    assert_eq!(e.line, 2);
    assert_eq!(e.col, 3); // `initial` starts after two spaces
    assert!(e.message.contains("initial"));
    assert!(e.to_string().starts_with("line 2, col 3:"));
}

#[test]
fn lexical_errors_carry_columns() {
    let e = compile("module m();\n  `define X\nendmodule", None).unwrap_err();
    assert_eq!((e.line, e.col), (2, 3));
    let e = compile("a\nbb /* never closed", None).unwrap_err();
    assert_eq!((e.line, e.col), (2, 4)); // the comment opener, not EOF
}

#[test]
fn structural_errors() {
    assert!(err("module a(); endmodule module a(); endmodule").contains("duplicate module"));
    assert!(err("module m(output wire x);
           assign x = 1'b0;
           assign x = 1'b1;
         endmodule")
    .contains("multiple drivers"));
    assert!(err("module m(input wire a, output wire x);
           wire y;
           assign x = y;
           assign y = x;
         endmodule")
    .contains("combinational cycle"));
    assert!(err("module m(input reg a); endmodule").contains("input ports cannot be `reg`"));
}

#[test]
fn elaboration_errors() {
    assert!(err("module m(output wire [3:1] x); endmodule").contains("[msb:0]"));
    assert!(err("module m(output wire x);
           sub u0 (.p(x));
         endmodule")
    .contains("unknown module"));
    assert!(err("module s(input wire p); endmodule
         module m(input wire a);
           s u0 (.nope(a));
         endmodule")
    .contains("no port"));
    assert!(err("module m(input wire [3:0] a, output wire x);
           assign x = a[b];
         endmodule")
    .contains("unknown signal"));
    assert!(err("module m(input wire a, output wire x);
           wire [a:0] y;
           assign x = a;
         endmodule")
    .contains("not a constant"));
}

#[test]
fn subset_limits_are_reported() {
    // reg with initializer is outside the subset.
    assert!(err("module m(input wire c, output wire x);
           reg r = 1'b0;
           assign x = c;
         endmodule")
    .contains("wire"));
}

#[test]
fn all_errors_are_results_not_panics() {
    // A fuzz-lite sweep: truncations of a valid module must never panic.
    let src = "module m(input wire clk, input wire [3:0] a, output reg [3:0] q);
               always @(posedge clk) begin
                 if (a[0]) q <= a + 4'h1;
                 else q <= {2{a[3:2]}};
               end
             endmodule";
    for cut in 1..src.len() {
        if src.is_char_boundary(cut) {
            let _ = compile(&src[..cut], None); // must not panic
        }
    }
    assert!(compile(src, None).is_ok());
}
