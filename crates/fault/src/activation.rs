//! Fault activation-window analysis — the temporal axis of execution
//! redundancy.
//!
//! Serial per-fault simulation re-executes the entire fault-free prefix of
//! the stimulus before each fault's first possible divergence. This module
//! derives, from one instrumented good replay (an `eraser-sim`
//! [`SiteProbe`]), the **activation window** of every fault: the earliest
//! stimulus step at which the fault's network can first diverge from the
//! good network. A checkpointed campaign then starts each fault from the
//! latest good-state checkpoint preceding its window instead of step 0 —
//! and skips outright any fault whose window lies beyond the stimulus.
//!
//! # Soundness model
//!
//! A stuck-at fault is injected as a force that is re-applied on every
//! write of the sited signal. While every committed value of the sited bit
//! *equals* the stuck value, the force is a no-op and the fault network is
//! **bit-identical** to the good network — strictly dormant. The first
//! commit whose defined value *contradicts* the stuck polarity is the
//! contradiction point `c(f)` (commit-granular: the probe sees transients
//! inside a settle step, not just settled values).
//!
//! Power-on `X` complicates this: forcing an unknown bit to a defined
//! value makes the fault network a *refinement* of the good network
//! (defined where the good run has `X`, identical elsewhere). Four-state
//! RTL evaluation is monotone under refinement **except** at the X hazards
//! the probe records (unknown-sensitive branch decisions, unknown dynamic
//! write indices, `X` on edge-watched bits, incomplete sensitivity lists)
//! and at `===`/`!==` expressions, which this module poisons statically.
//! While no hazard reachable from the fault site has occurred, the
//! refinement is *benign*: it cannot flip a decision, fire a different
//! edge, or produce a detectable output mismatch (detection requires
//! defined values on both sides). The window is therefore
//!
//! ```text
//! w(f) = c(f)                       if the site bit is never unknown
//! w(f) = min(c(f), h(f))            otherwise
//! ```
//!
//! where `h(f)` is the first X-hazard step on any signal statically
//! reachable from the fault site through the design's influence graph.
//!
//! # Restart eligibility
//!
//! Starting fault `f` from a checkpoint at step `b` (the good state after
//! steps `0..b`) reproduces the from-zero fault run bit-for-bit iff the
//! fault state at `b` equals the forced good state at `b`. That holds when
//! `b ≤ w(f)` **and** either the site bit has not yet been unknown
//! (`b ≤ x(f)`: strict dormancy, the states are equal outright) or the
//! good state at `b` is *fully defined* (a benign refinement of a fully
//! defined state is the state itself). [`ActivationWindows::eligible_start`]
//! encodes exactly this rule; checkpoint step 0 (the construction-settled
//! state) is always eligible, which is what makes the checkpointed
//! protocol a strict generalization of force-at-construction injection.

use crate::{Fault, FaultId, FaultList, StuckAt};
use eraser_ir::analysis::influence_adjacency;
use eraser_ir::{BinaryOp, Design, Expr, LValue, RtlOp, SignalId, Stmt};
use eraser_sim::{SiteProbe, NEVER};

/// Per-fault activation windows over one `(design, stimulus)` replay. See
/// the [module docs](self) for the derivation and soundness argument.
#[derive(Debug, Clone)]
pub struct ActivationWindows {
    /// Per fault: earliest step the fault may diverge ([`NEVER`] = not
    /// within this stimulus).
    windows: Vec<usize>,
    /// Per fault: first step the site bit committed an unknown ([`NEVER`]
    /// = never — the fault is strictly dormant until its window).
    site_x: Vec<usize>,
    /// Stimulus length in settle steps.
    num_steps: usize,
    /// Fault ids sorted by ascending window (ties by id), computed once at
    /// derivation — every consumer (serial scheduler, window-affinity
    /// partitioner) reads this cache instead of re-sorting.
    order: Vec<FaultId>,
}

impl ActivationWindows {
    /// Derives the windows of `faults` from a completed good-replay probe.
    ///
    /// Fault sites the probe did not track are given window 0
    /// (conservative). Faults whose bit lies outside their signal's width
    /// are inert and get [`NEVER`].
    pub fn derive(
        design: &Design,
        faults: &FaultList,
        probe: &SiteProbe,
        num_steps: usize,
    ) -> Self {
        let n = design.num_signals();
        // Per-signal first-hazard step: dynamic probe hazards plus the
        // static `===`/`!==` poison (case equality is not monotone under
        // X refinement, so any signal feeding one is hazardous from the
        // start).
        let mut hazard: Vec<usize> = (0..n)
            .map(|i| probe.hazard_step(SignalId::from_index(i)))
            .collect();
        let mut poison_buf = Vec::new();
        poison_case_eq(design, &mut hazard, &mut poison_buf);

        let adj = influence_adjacency(design);
        // Cache the reachable-hazard minimum per unique site signal.
        let mut site_hazard: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut stack = Vec::new();

        let mut windows = Vec::with_capacity(faults.len());
        let mut site_x = Vec::with_capacity(faults.len());
        for f in faults.iter() {
            let (w, x) = match probe.site_firsts(f.signal) {
                None => (0, 0),
                Some(firsts) if f.bit as usize >= firsts.len() => (NEVER, NEVER),
                Some(firsts) => {
                    let bf = firsts[f.bit as usize];
                    let c = match f.stuck {
                        StuckAt::Zero => bf.one,
                        StuckAt::One => bf.zero,
                    };
                    if bf.x == NEVER {
                        (c, NEVER)
                    } else {
                        let h = *site_hazard[f.signal.index()].get_or_insert_with(|| {
                            reachable_min(f.signal, &adj, &hazard, &mut visited, &mut stack)
                        });
                        (c.min(h), bf.x)
                    }
                }
            };
            windows.push(w);
            site_x.push(x);
        }
        let mut order: Vec<FaultId> = (0..windows.len() as u32).map(FaultId).collect();
        order.sort_by_key(|f| (windows[f.index()], f.0));
        ActivationWindows {
            windows,
            site_x,
            num_steps,
            order,
        }
    }

    /// The earliest step `fault` may diverge ([`NEVER`] = not within this
    /// stimulus).
    pub fn window(&self, fault: FaultId) -> usize {
        self.windows[fault.index()]
    }

    /// First step the fault's site bit committed an unknown ([`NEVER`] =
    /// never).
    pub fn first_site_x(&self, fault: FaultId) -> usize {
        self.site_x[fault.index()]
    }

    /// True if the fault provably cannot diverge during the stimulus — it
    /// need not be simulated at all (it is undetected by construction).
    pub fn never_active(&self, fault: FaultId) -> bool {
        self.windows[fault.index()] >= self.num_steps
    }

    /// True if restarting `fault` from the checkpoint at `step` (whose
    /// good state is `fully_defined` or not) is bit-identical to a
    /// from-zero run. Step 0 is always eligible.
    pub fn eligible_start(&self, fault: FaultId, step: usize, fully_defined: bool) -> bool {
        step <= self.windows[fault.index()] && (step <= self.site_x[fault.index()] || fully_defined)
    }

    /// Fault ids ordered by ascending window (ties by id) — the
    /// activation-window schedule: faults sharing a start checkpoint run
    /// consecutively, so the campaign restores each snapshot in one run.
    /// The ordering is computed once in [`derive`](Self::derive); this is
    /// a borrow of that cache.
    pub fn ordered_by_window(&self) -> &[FaultId] {
        &self.order
    }

    /// Copies the cached window ordering into `buf` (cleared first) —
    /// for callers that need an owned, mutable schedule without paying a
    /// fresh sort or allocation beyond the buffer's capacity.
    pub fn order_by_window_into(&self, buf: &mut Vec<FaultId>) {
        buf.clear();
        buf.extend_from_slice(&self.order);
    }

    /// Allocating convenience form of
    /// [`ordered_by_window`](Self::ordered_by_window).
    pub fn order_by_window(&self) -> Vec<FaultId> {
        self.order.clone()
    }

    /// The stimulus length the windows were derived over.
    pub fn num_steps(&self) -> usize {
        self.num_steps
    }
}

/// Builds the window-eligibility view of one fault (used by campaign
/// schedulers to pick a start checkpoint without re-deriving).
impl ActivationWindows {
    /// The latest eligible checkpoint for `fault` among `checkpoints`
    /// (`(step, fully_defined)`, ascending): returns its index.
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint is eligible — impossible when step 0 is in
    /// the schedule (it always is for interval-based schedules).
    pub fn start_checkpoint(&self, fault: &Fault, checkpoints: &[(usize, bool)]) -> usize {
        checkpoints
            .iter()
            .rposition(|&(step, defined)| self.eligible_start(fault.id, step, defined))
            .expect("checkpoint 0 is always eligible")
    }
}

/// Minimum hazard step over everything reachable from `from` (inclusive).
fn reachable_min(
    from: SignalId,
    adj: &[Vec<SignalId>],
    hazard: &[usize],
    visited: &mut [bool],
    stack: &mut Vec<SignalId>,
) -> usize {
    visited.fill(false);
    stack.clear();
    stack.push(from);
    visited[from.index()] = true;
    let mut min = NEVER;
    while let Some(s) = stack.pop() {
        min = min.min(hazard[s.index()]);
        if min == 0 {
            break; // cannot get lower
        }
        for &d in &adj[s.index()] {
            if !visited[d.index()] {
                visited[d.index()] = true;
                stack.push(d);
            }
        }
    }
    min
}

/// Marks every signal read by a `===`/`!==` expression as hazardous from
/// step 0 — case equality treats `X === X` as true, so it is not monotone
/// under X refinement and cannot be certified dynamically.
fn poison_case_eq(design: &Design, hazard: &mut [usize], buf: &mut Vec<SignalId>) {
    for node in design.rtl_nodes() {
        if matches!(
            node.op,
            RtlOp::Binary(BinaryOp::CaseEq) | RtlOp::Binary(BinaryOp::CaseNe)
        ) {
            for &i in &node.inputs {
                hazard[i.index()] = 0;
            }
        }
    }
    for node in design.behavioral_nodes() {
        poison_stmt(&node.body, hazard, buf);
    }
}

fn poison_stmt(stmt: &Stmt, hazard: &mut [usize], buf: &mut Vec<SignalId>) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                poison_stmt(s, hazard, buf);
            }
        }
        Stmt::Nop => {}
        Stmt::Assign { lhs, rhs, .. } => {
            poison_expr(rhs, hazard, buf);
            match lhs {
                LValue::BitSelect { index, .. } => poison_expr(index, hazard, buf),
                LValue::IndexedPart { start, .. } => poison_expr(start, hazard, buf),
                LValue::Full(_) | LValue::PartSelect { .. } => {}
            }
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
            ..
        } => {
            poison_expr(cond, hazard, buf);
            poison_stmt(then_s, hazard, buf);
            if let Some(e) = else_s {
                poison_stmt(e, hazard, buf);
            }
        }
        Stmt::Case {
            scrutinee,
            arms,
            default,
            ..
        } => {
            poison_expr(scrutinee, hazard, buf);
            for arm in arms {
                for l in &arm.labels {
                    poison_expr(l, hazard, buf);
                }
                poison_stmt(&arm.body, hazard, buf);
            }
            if let Some(d) = default {
                poison_stmt(d, hazard, buf);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            poison_stmt(init, hazard, buf);
            poison_expr(cond, hazard, buf);
            poison_stmt(body, hazard, buf);
            poison_stmt(step, hazard, buf);
        }
    }
}

fn poison_expr(e: &Expr, hazard: &mut [usize], buf: &mut Vec<SignalId>) {
    match e {
        Expr::Binary(op, a, b) => {
            if matches!(op, BinaryOp::CaseEq | BinaryOp::CaseNe) {
                buf.clear();
                e.collect_reads(buf);
                for s in buf.drain(..) {
                    hazard[s.index()] = 0;
                }
            } else {
                poison_expr(a, hazard, buf);
                poison_expr(b, hazard, buf);
            }
        }
        Expr::Unary(_, a) | Expr::Replicate(_, a) => poison_expr(a, hazard, buf),
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            poison_expr(cond, hazard, buf);
            poison_expr(then_e, hazard, buf);
            poison_expr(else_e, hazard, buf);
        }
        Expr::Concat(parts) => {
            for p in parts {
                poison_expr(p, hazard, buf);
            }
        }
        Expr::Index { index, .. } => poison_expr(index, hazard, buf),
        Expr::IndexedPart { start, .. } => poison_expr(start, hazard, buf),
        Expr::Const(_) | Expr::Signal(_) | Expr::Slice { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_faults, FaultListConfig};
    use eraser_frontend::compile;
    use eraser_logic::LogicVec;
    use eraser_sim::{ReplaySim, Simulator, StimulusBuilder};

    /// Replays a clocked stimulus on the good simulator with a probe and
    /// derives windows.
    fn probe_windows(src: &str, cycles: usize) -> (Design, FaultList, ActivationWindows) {
        let design = compile(src, None).unwrap();
        let faults = generate_faults(&design, &FaultListConfig::default());
        let clk = design.find_signal("clk").unwrap();
        let rst = design.find_signal("rst");
        let mut sb = StimulusBuilder::new();
        sb.add_cycle(
            clk,
            &rst.map(|r| vec![(r, LogicVec::from_u64(1, 1))])
                .unwrap_or_default(),
        );
        for _ in 0..cycles {
            sb.add_cycle(
                clk,
                &rst.map(|r| vec![(r, LogicVec::from_u64(1, 0))])
                    .unwrap_or_default(),
            );
        }
        let stim = sb.finish();
        let mut sim = Simulator::new(&design);
        sim.attach_probe(eraser_sim::SiteProbe::new(
            &design,
            faults.iter().map(|f| f.signal),
        ));
        for (i, step) in stim.steps.iter().enumerate() {
            sim.begin_probe_step(i);
            sim.replay_step(step);
        }
        let probe = sim.take_probe().unwrap();
        let windows = ActivationWindows::derive(&design, &faults, &probe, stim.steps.len());
        (design, faults, windows)
    }

    use eraser_ir::Design;

    #[test]
    fn counter_low_bits_activate_before_high_bits() {
        // q counts up from 0: bit 0 first holds 1 on the first increment,
        // bit 3 only after 8 increments — sa0 windows are staggered.
        let (design, faults, win) = probe_windows(
            "module m(input wire clk, input wire rst, output reg [3:0] q);
               always @(posedge clk) begin
                 if (rst) q <= 4'h0; else q <= q + 4'h1;
               end
             endmodule",
            12,
        );
        let q = design.find_signal("q").unwrap();
        let window_of = |bit: u32, stuck: StuckAt| {
            let f = faults
                .iter()
                .find(|f| f.signal == q && f.bit == bit && f.stuck == stuck)
                .unwrap();
            win.window(f.id)
        };
        let w0 = window_of(0, StuckAt::Zero);
        let w3 = window_of(3, StuckAt::Zero);
        assert!(w0 > 0, "bit 0 sa0 dormant through reset (got {w0})");
        assert!(w3 > w0, "bit 3 sa0 ({w3}) must open after bit 0 ({w0})");
        // sa1 faults contradict at the reset write of 0.
        let w_sa1 = window_of(0, StuckAt::One);
        assert!(w_sa1 <= w0);
        // Ordering groups by window.
        let order = win.order_by_window();
        assert_eq!(order.len(), faults.len());
        assert!(order
            .windows(2)
            .all(|p| win.window(p[0]) <= win.window(p[1])));
        // The cached borrow and the into-buffer variant agree with it.
        assert_eq!(win.ordered_by_window(), &order[..]);
        let mut buf = vec![FaultId(999)];
        win.order_by_window_into(&mut buf);
        assert_eq!(buf, order);
    }

    #[test]
    fn masked_bits_never_activate() {
        // t[3:2] = 0 always (mask): their sa0 faults can never diverge.
        let (design, faults, win) = probe_windows(
            "module m(input wire clk, input wire [3:0] a, output reg [3:0] q);
               wire [3:0] t;
               assign t = a & 4'h3;
               always @(posedge clk) q <= t;
             endmodule",
            8,
        );
        let t = design.find_signal("t").unwrap();
        let f = faults
            .iter()
            .find(|f| f.signal == t && f.bit == 3 && f.stuck == StuckAt::Zero)
            .unwrap();
        assert!(win.never_active(f.id), "t[3] is constant 0: sa0 is inert");
        // And since t[3] is defined 0 from construction (0 & X = 0), the
        // fault is strictly dormant: no site X at all.
        assert_eq!(win.first_site_x(f.id), NEVER);
        // Its sa1 counterpart contradicts immediately.
        let f1 = faults
            .iter()
            .find(|f| f.signal == t && f.bit == 3 && f.stuck == StuckAt::One)
            .unwrap();
        assert!(!win.never_active(f1.id));
    }

    #[test]
    fn x_decision_hazard_collapses_windows_of_feeding_sites() {
        // The case scrutinee `sel` is a registered value: X at power-on,
        // so the combinational decode hazards at step 0 and every fault
        // able to reach `sel` collapses to window 0. The decode output
        // regs (written by the hazardous block) keep window 0 too, while
        // sites that cannot influence the decision are unaffected.
        let (design, faults, win) = probe_windows(
            "module m(input wire clk, input wire rst, input wire [1:0] a, output reg [3:0] y);
               reg [1:0] sel;
               always @(*) begin
                 case (sel)
                   2'd0: y = 4'h1;
                   2'd1: y = 4'h2;
                   default: y = 4'h4;
                 endcase
               end
               always @(posedge clk) begin
                 if (rst) sel <= 2'h0; else sel <= a;
               end
             endmodule",
            8,
        );
        let sel = design.find_signal("sel").unwrap();
        for f in faults.iter().filter(|f| f.signal == sel) {
            assert_eq!(
                win.window(f.id),
                0,
                "sel faults reach an X-hazardous decision"
            );
        }
    }

    #[test]
    fn eligibility_requires_window_and_definedness() {
        let (_, faults, win) = probe_windows(
            "module m(input wire clk, input wire rst, output reg [3:0] q);
               always @(posedge clk) begin
                 if (rst) q <= 4'h0; else q <= q + 4'h1;
               end
             endmodule",
            12,
        );
        let f = &faults.faults()[0];
        let w = win.window(f.id);
        let x = win.first_site_x(f.id);
        // Step 0 is always eligible.
        assert!(win.eligible_start(f.id, 0, false));
        if w > 0 && w != NEVER {
            // Past the window: never eligible.
            assert!(!win.eligible_start(f.id, w + 1, true));
            // Between the site X and the window: needs a defined state.
            if x < w {
                assert!(!win.eligible_start(f.id, x + 1, false));
                assert!(win.eligible_start(f.id, w, true));
            }
        }
        // start_checkpoint picks the latest eligible one.
        let ckpts = vec![(0usize, false), (2, true), (6, true)];
        let idx = win.start_checkpoint(f, &ckpts);
        assert!(win.eligible_start(f.id, ckpts[idx].0, ckpts[idx].1));
        for later in &ckpts[idx + 1..] {
            assert!(!win.eligible_start(f.id, later.0, later.1));
        }
    }
}
