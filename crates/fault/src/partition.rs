//! Fault-list partitioning for fault-parallel campaign execution.
//!
//! A fault universe is split into disjoint [`FaultShard`]s, each a
//! self-contained [`FaultList`] with dense local ids plus the mapping back
//! to the global universe. Any engine can run a shard unchanged; shard
//! coverage reports are [lifted](FaultShard::lift_coverage) into the global
//! id space and recombined with [`CoverageReport::merge`]. Because the
//! concurrent engine's per-fault semantics are independent of which other
//! faults share its batch, the merged result is bit-identical to a single
//! serial run over the whole universe — partitioning is purely a
//! parallelism axis, never a semantics axis.

use crate::{CoverageReport, Fault, FaultId, FaultList};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// How a fault universe is split into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PartitionStrategy {
    /// Consecutive id ranges; shard sizes differ by at most one.
    Contiguous,
    /// Fault `i` goes to shard `i % n` — maximally interleaved, evens out
    /// clustered hard faults.
    RoundRobin,
    /// Faults sited on the same signal stay in one shard, groups spread
    /// greedily by size (longest-processing-time first). Keeps ERASER's
    /// per-signal diff lists dense inside each shard.
    #[default]
    SiteAffinity,
    /// Faults that can start from the same activation-window checkpoint
    /// stay in one shard, so every shard engine resumes from the latest
    /// shared good-state snapshot instead of step 0. Window information
    /// comes from an instrumented good replay: the checkpointed campaign
    /// path builds the real schedule via
    /// [`WindowPlan`](crate::WindowPlan); a plain
    /// [`partition`](FaultList::partition) call has no windows and
    /// degrades to [`SiteAffinity`](Self::SiteAffinity) grouping.
    WindowAffinity,
}

impl PartitionStrategy {
    /// All strategies, in declaration order.
    pub fn all() -> [PartitionStrategy; 4] {
        [
            PartitionStrategy::Contiguous,
            PartitionStrategy::RoundRobin,
            PartitionStrategy::SiteAffinity,
            PartitionStrategy::WindowAffinity,
        ]
    }
}

impl fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionStrategy::Contiguous => write!(f, "contiguous"),
            PartitionStrategy::RoundRobin => write!(f, "round-robin"),
            PartitionStrategy::SiteAffinity => write!(f, "site-affinity"),
            PartitionStrategy::WindowAffinity => write!(f, "window-affinity"),
        }
    }
}

impl FromStr for PartitionStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "contiguous" => Ok(PartitionStrategy::Contiguous),
            "round-robin" | "roundrobin" => Ok(PartitionStrategy::RoundRobin),
            "site-affinity" | "siteaffinity" | "affinity" => Ok(PartitionStrategy::SiteAffinity),
            "window-affinity" | "windowaffinity" | "window" => {
                Ok(PartitionStrategy::WindowAffinity)
            }
            other => Err(format!(
                "unknown partition strategy `{other}` \
                 (expected contiguous, round-robin, site-affinity or window-affinity)"
            )),
        }
    }
}

/// One shard of a partitioned fault universe: a dense local [`FaultList`]
/// plus the mapping of local ids back to the global universe.
#[derive(Debug, Clone)]
pub struct FaultShard {
    /// Shard number within its partition.
    pub index: usize,
    /// The shard's faults with dense local ids (`0..len`). Engines run this
    /// list exactly as they would a whole universe.
    pub list: FaultList,
    /// Local id index -> global [`FaultId`], ascending.
    global: Vec<FaultId>,
}

impl FaultShard {
    /// Builds a shard from a selection of universe faults. `faults` must
    /// be in ascending global-id order (the shard invariant every merge
    /// path relies on); callers outside [`FaultList::partition`] — the
    /// window planner — sort before constructing.
    pub(crate) fn from_faults(index: usize, faults: Vec<&Fault>) -> FaultShard {
        debug_assert!(faults.windows(2).all(|p| p[0].id < p[1].id));
        let global: Vec<FaultId> = faults.iter().map(|f| f.id).collect();
        FaultShard {
            index,
            list: faults.into_iter().copied().collect(),
            global,
        }
    }

    /// Number of faults in the shard.
    pub fn len(&self) -> usize {
        self.global.len()
    }

    /// True if the shard holds no faults (possible when a universe is split
    /// into more shards than it has faults).
    pub fn is_empty(&self) -> bool {
        self.global.is_empty()
    }

    /// The global id of a shard-local fault.
    pub fn global_id(&self, local: FaultId) -> FaultId {
        self.global[local.index()]
    }

    /// All global ids covered by this shard, in local-id order.
    pub fn global_ids(&self) -> &[FaultId] {
        &self.global
    }

    /// Expands a shard-local coverage report into the global universe of
    /// `total` faults: every local detection is re-recorded under its
    /// global id; faults outside the shard stay undetected.
    ///
    /// # Panics
    ///
    /// Panics if `local` was not produced over this shard's fault list.
    pub fn lift_coverage(&self, local: &CoverageReport, total: usize) -> CoverageReport {
        let mut lifted = CoverageReport::new(total);
        self.merge_coverage_into(local, &mut lifted);
        lifted
    }

    /// Records every detection of a shard-local report directly into a
    /// global-universe accumulator — the single reduction rule every
    /// fault-parallel driver uses, and the efficient form of
    /// [`lift_coverage`](Self::lift_coverage) +
    /// [`CoverageReport::merge`]: O(shard size) per shard, no intermediate
    /// full-universe report. Shards of one partition are disjoint, so the
    /// accumulated result is independent of merge order.
    ///
    /// # Panics
    ///
    /// Panics if `local` was not produced over this shard's fault list.
    pub fn merge_coverage_into(&self, local: &CoverageReport, global: &mut CoverageReport) {
        assert_eq!(
            local.total(),
            self.len(),
            "shard {}: coverage report covers {} faults, shard holds {}",
            self.index,
            local.total(),
            self.len()
        );
        for (li, &gid) in self.global.iter().enumerate() {
            if let Some(d) = local.detection(FaultId(li as u32)) {
                global.record(gid, d);
            }
        }
    }
}

impl FaultList {
    /// Splits the universe into `n` disjoint shards under `strategy`.
    ///
    /// Always returns exactly `max(n, 1)` shards; trailing shards may be
    /// empty when the universe is smaller than `n`. Every fault appears in
    /// exactly one shard, and within each shard faults keep their global
    /// relative order (local ids ascend with global ids), so shard runs are
    /// deterministic regardless of strategy.
    pub fn partition(&self, n: usize, strategy: PartitionStrategy) -> Vec<FaultShard> {
        let n = n.max(1);
        let mut buckets: Vec<Vec<&Fault>> = vec![Vec::new(); n];
        match strategy {
            PartitionStrategy::Contiguous => {
                let base = self.len() / n;
                let extra = self.len() % n;
                let mut next = 0usize;
                for (i, bucket) in buckets.iter_mut().enumerate() {
                    let take = base + usize::from(i < extra);
                    bucket.extend(self.faults()[next..next + take].iter());
                    next += take;
                }
            }
            PartitionStrategy::RoundRobin => {
                for (i, f) in self.iter().enumerate() {
                    buckets[i % n].push(f);
                }
            }
            // Without an instrumented good run there is no window
            // information, so the window-affinity fallback reuses the
            // site-affinity grouping (faults sharing a site usually share a
            // window — the window is a property of the sited signal's
            // commit history). The checkpointed campaign drivers never take
            // this path: they build a [`WindowPlan`](crate::WindowPlan)
            // from real [`ActivationWindows`](crate::ActivationWindows).
            PartitionStrategy::SiteAffinity | PartitionStrategy::WindowAffinity => {
                // Group faults by injection site, first appearance order.
                let mut site_of: HashMap<usize, usize> = HashMap::new();
                let mut groups: Vec<Vec<&Fault>> = Vec::new();
                for f in self.iter() {
                    let gi = *site_of.entry(f.signal.index()).or_insert_with(|| {
                        groups.push(Vec::new());
                        groups.len() - 1
                    });
                    groups[gi].push(f);
                }
                // Longest-processing-time-first onto the least-loaded
                // shard; ties broken by first global id, then shard index —
                // fully deterministic.
                groups.sort_by_key(|g| (usize::MAX - g.len(), g[0].id));
                let mut load = vec![0usize; n];
                for group in groups {
                    let target = (0..n).min_by_key(|&i| (load[i], i)).unwrap();
                    load[target] += group.len();
                    buckets[target].extend(group);
                }
                for bucket in &mut buckets {
                    bucket.sort_by_key(|f| f.id);
                }
            }
        }
        buckets
            .into_iter()
            .enumerate()
            .map(|(index, faults)| FaultShard::from_faults(index, faults))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Detection, StuckAt};
    use eraser_ir::SignalId;

    /// A universe of `n` faults over `sites` signals (round-robin siting),
    /// mimicking generate_faults' dense ids.
    fn universe(n: usize, sites: usize) -> FaultList {
        (0..n)
            .map(|i| Fault {
                id: FaultId(0), // reassigned by FromIterator
                signal: SignalId(((i / 2) % sites) as u32),
                bit: (i / 2 / sites) as u32,
                stuck: if i % 2 == 0 {
                    StuckAt::Zero
                } else {
                    StuckAt::One
                },
            })
            .collect()
    }

    fn assert_lossless(list: &FaultList, shards: &[FaultShard]) {
        let mut seen: Vec<FaultId> = shards
            .iter()
            .flat_map(|s| s.global.iter().copied())
            .collect();
        seen.sort_unstable();
        let all: Vec<FaultId> = list.iter().map(|f| f.id).collect();
        assert_eq!(seen, all, "faults lost or duplicated");
        for shard in shards {
            assert_eq!(shard.list.len(), shard.len());
            // Local ids dense, global mapping ascending, faults preserved.
            let mut prev = None;
            for (li, f) in shard.list.iter().enumerate() {
                assert_eq!(f.id.index(), li);
                let gid = shard.global_id(f.id);
                assert!(
                    prev.map(|p| p < gid).unwrap_or(true),
                    "global ids not ascending"
                );
                prev = Some(gid);
                let orig = list.fault(gid);
                assert_eq!(
                    (f.signal, f.bit, f.stuck),
                    (orig.signal, orig.bit, orig.stuck)
                );
            }
        }
    }

    #[test]
    fn contiguous_balances_sizes() {
        let list = universe(23, 4);
        let shards = list.partition(5, PartitionStrategy::Contiguous);
        assert_eq!(shards.len(), 5);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, [5, 5, 5, 4, 4]);
        assert_lossless(&list, &shards);
        // Consecutive ranges.
        assert_eq!(
            shards[0].global_ids(),
            &[FaultId(0), FaultId(1), FaultId(2), FaultId(3), FaultId(4)]
        );
    }

    #[test]
    fn round_robin_interleaves() {
        let list = universe(10, 3);
        let shards = list.partition(3, PartitionStrategy::RoundRobin);
        assert_lossless(&list, &shards);
        assert_eq!(
            shards[0].global_ids(),
            &[FaultId(0), FaultId(3), FaultId(6), FaultId(9)]
        );
        assert_eq!(
            shards[1].global_ids(),
            &[FaultId(1), FaultId(4), FaultId(7)]
        );
    }

    #[test]
    fn site_affinity_keeps_groups_whole() {
        let list = universe(40, 5);
        let shards = list.partition(3, PartitionStrategy::SiteAffinity);
        assert_lossless(&list, &shards);
        // Every signal's faults live in exactly one shard.
        for sig in 0..5u32 {
            let holders: Vec<usize> = shards
                .iter()
                .filter(|s| s.list.iter().any(|f| f.signal == SignalId(sig)))
                .map(|s| s.index)
                .collect();
            assert_eq!(
                holders.len(),
                1,
                "signal {sig} split across shards {holders:?}"
            );
        }
        // Load is balanced within the largest group size.
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        let max_group = 8; // 40 faults over 5 sites
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= max_group);
    }

    #[test]
    fn more_shards_than_faults_yields_empty_shards() {
        let list = universe(3, 2);
        for strategy in PartitionStrategy::all() {
            let shards = list.partition(8, strategy);
            assert_eq!(shards.len(), 8, "{strategy}");
            assert_lossless(&list, &shards);
            assert!(shards.iter().any(|s| s.is_empty()), "{strategy}");
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let list = universe(6, 2);
        for strategy in PartitionStrategy::all() {
            let shards = list.partition(0, strategy);
            assert_eq!(shards.len(), 1);
            assert_eq!(shards[0].len(), 6);
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let list = universe(64, 7);
        for strategy in PartitionStrategy::all() {
            let a = list.partition(4, strategy);
            let b = list.partition(4, strategy);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.global_ids(), y.global_ids(), "{strategy}");
            }
        }
    }

    #[test]
    fn lift_coverage_remaps_detections() {
        let list = universe(10, 3);
        let shards = list.partition(3, PartitionStrategy::RoundRobin);
        // Detect the second local fault of shard 1 (global id 4).
        let mut local = CoverageReport::new(shards[1].len());
        let det = Detection {
            step: 7,
            output: SignalId(0),
        };
        local.record(FaultId(1), det);
        let lifted = shards[1].lift_coverage(&local, list.len());
        assert_eq!(lifted.total(), 10);
        assert_eq!(lifted.detection(FaultId(4)), Some(det));
        assert_eq!(lifted.detected(), 1);
    }

    #[test]
    fn merge_coverage_into_matches_lift_then_merge() {
        let list = universe(20, 4);
        let shards = list.partition(4, PartitionStrategy::SiteAffinity);
        let mut direct = CoverageReport::new(list.len());
        let mut lifted = CoverageReport::new(list.len());
        for shard in &shards {
            // Detect every even local fault at a shard-dependent step.
            let mut local = CoverageReport::new(shard.len());
            for li in (0..shard.len()).step_by(2) {
                local.record(
                    FaultId(li as u32),
                    Detection {
                        step: shard.index + 1,
                        output: SignalId(0),
                    },
                );
            }
            shard.merge_coverage_into(&local, &mut direct);
            lifted.merge(&shard.lift_coverage(&local, list.len()));
        }
        assert_eq!(direct, lifted);
    }

    #[test]
    #[should_panic(expected = "coverage report covers")]
    fn lift_coverage_rejects_foreign_report() {
        let list = universe(10, 3);
        let shards = list.partition(2, PartitionStrategy::Contiguous);
        let wrong = CoverageReport::new(3);
        shards[0].lift_coverage(&wrong, 10);
    }

    #[test]
    fn strategy_round_trips_through_strings() {
        for strategy in PartitionStrategy::all() {
            let parsed: PartitionStrategy = strategy.to_string().parse().unwrap();
            assert_eq!(parsed, strategy);
        }
        assert!("diagonal".parse::<PartitionStrategy>().is_err());
    }
}
