//! Fault universe construction.

use crate::{Fault, FaultId, StuckAt};
use eraser_ir::{Design, PortDir, SignalId};

/// Configuration for fault list generation.
#[derive(Debug, Clone, Default)]
pub struct FaultListConfig {
    /// Also inject faults on primary inputs (off by default; commercial
    /// flows typically fault the logic, not the stimulus).
    pub include_inputs: bool,
    /// Signals excluded by name (e.g. clocks and resets — faulting a clock
    /// turns the fault simulation into a clock-gating experiment).
    pub exclude_names: Vec<String>,
    /// Keep at most this many faults, sampling deterministically with a
    /// fixed stride (evenly across the design). `None` keeps all.
    pub max_faults: Option<usize>,
}

/// An ordered fault universe for one design.
#[derive(Debug, Clone, Default)]
pub struct FaultList {
    faults: Vec<Fault>,
}

impl FaultList {
    /// All faults, indexed by [`FaultId`].
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// One fault.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fault(&self, id: FaultId) -> &Fault {
        &self.faults[id.index()]
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates over the faults.
    pub fn iter(&self) -> impl Iterator<Item = &Fault> {
        self.faults.iter()
    }

    /// Faults sited on `sig`, in id order.
    pub fn on_signal(&self, sig: SignalId) -> impl Iterator<Item = &Fault> {
        self.faults.iter().filter(move |f| f.signal == sig)
    }
}

impl FromIterator<Fault> for FaultList {
    fn from_iter<T: IntoIterator<Item = Fault>>(iter: T) -> Self {
        let mut faults: Vec<Fault> = iter.into_iter().collect();
        for (i, f) in faults.iter_mut().enumerate() {
            f.id = FaultId(i as u32);
        }
        FaultList { faults }
    }
}

/// Generates per-bit stuck-at-0/1 faults for every named (non-synthetic)
/// wire and reg of the design, per the paper's fault model.
///
/// Synthetic intermediate nets (compiler temporaries, loop variables) are
/// excluded, as are primary inputs unless requested and any name listed in
/// `config.exclude_names`.
pub fn generate_faults(design: &Design, config: &FaultListConfig) -> FaultList {
    let mut sites = Vec::new();
    for (i, sig) in design.signals().iter().enumerate() {
        if sig.synthetic {
            continue;
        }
        if sig.port == Some(PortDir::Input) && !config.include_inputs {
            continue;
        }
        if config.exclude_names.iter().any(|n| n == &sig.name) {
            continue;
        }
        let id = SignalId::from_index(i);
        for bit in 0..sig.width {
            for stuck in [StuckAt::Zero, StuckAt::One] {
                sites.push((id, bit, stuck));
            }
        }
    }
    // Deterministic even sampling when capped.
    if let Some(max) = config.max_faults {
        if sites.len() > max && max > 0 {
            let stride = sites.len() as f64 / max as f64;
            let mut sampled = Vec::with_capacity(max);
            let mut pos = 0.0f64;
            while sampled.len() < max {
                sampled.push(sites[pos as usize]);
                pos += stride;
            }
            sites = sampled;
        }
    }
    sites
        .into_iter()
        .enumerate()
        .map(|(i, (signal, bit, stuck))| Fault {
            id: FaultId(i as u32),
            signal,
            bit,
            stuck,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_frontend::compile;

    fn design() -> Design {
        compile(
            "module m(input wire clk, input wire [3:0] a, output reg [3:0] q);
               wire [3:0] t;
               assign t = a ^ 4'h3;
               always @(posedge clk) q <= t;
             endmodule",
            None,
        )
        .unwrap()
    }

    #[test]
    fn default_universe_covers_wires_and_regs() {
        let d = design();
        let fl = generate_faults(&d, &FaultListConfig::default());
        // t (4 bits) + q (4 bits) = 8 bits x 2 polarities = 16 faults.
        // (clk and a are inputs; $t const node temp is synthetic.)
        assert_eq!(fl.len(), 16);
        // Ids are dense and ordered.
        for (i, f) in fl.iter().enumerate() {
            assert_eq!(f.id.index(), i);
        }
    }

    #[test]
    fn include_inputs_adds_ports() {
        let d = design();
        let fl = generate_faults(
            &d,
            &FaultListConfig {
                include_inputs: true,
                exclude_names: vec!["clk".into()],
                ..Default::default()
            },
        );
        // + a (4 bits x 2) = 24; clk excluded by name.
        assert_eq!(fl.len(), 24);
        let clk = d.find_signal("clk").unwrap();
        assert_eq!(fl.on_signal(clk).count(), 0);
    }

    #[test]
    fn sampling_is_deterministic_and_even() {
        let d = design();
        let cfg = FaultListConfig {
            max_faults: Some(5),
            ..Default::default()
        };
        let a = generate_faults(&d, &cfg);
        let b = generate_faults(&d, &cfg);
        assert_eq!(a.len(), 5);
        assert_eq!(
            a.iter().map(|f| (f.signal, f.bit)).collect::<Vec<_>>(),
            b.iter().map(|f| (f.signal, f.bit)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn on_signal_filters() {
        let d = design();
        let fl = generate_faults(&d, &FaultListConfig::default());
        let q = d.find_signal("q").unwrap();
        assert_eq!(fl.on_signal(q).count(), 8);
    }
}
