//! Static fault collapsing — structural redundancy removed before a
//! single cycle runs.
//!
//! Classic gate-level fault collapsing prunes the fault universe with
//! equivalence and dominance relations derived from circuit structure.
//! This module applies the idea at the RTL signal level, under the
//! framework's strongest correctness bar: the collapsed campaign must
//! reproduce every per-fault detection record (first-detection step and
//! observing output) **bit-identically**. That bar restricts the rules to
//! *true equivalences* — two faults are folded only when their faulty
//! networks are indistinguishable at every observation point at every
//! step — plus *provably-undetectable* drops. Dominance relations (input
//! stuck-at dominated by an AND gate's output stuck-at, say) preserve the
//! detected *set* but not per-fault first-detection records, so they are
//! deliberately excluded.
//!
//! # Rules (all width-aware, per bit)
//!
//! For an alias/buffer node `assign a = b;` (and its `assign a = ~b;`
//! complement) where `b` is read by **no one else** — its complete reader
//! set is exactly this node: no other RTL node input, no behavioral read,
//! no sensitivity-list membership — and `b` is not a primary output:
//!
//! 1. **Alias fold**: `b[i]` stuck-at-`v` ≡ `a[i]` stuck-at-`v` for every
//!    bit `i` carried through (`i < min(w_a, w_b)`). The two faulty
//!    networks assign identical values to `a` at all times, and `b` has no
//!    other observer, so every downstream signal — hence every output at
//!    every step — is identical. This is the RTL form of the classic
//!    single-fanout rule: a stuck-at on the single-use input of a buffer
//!    collapses with the same stuck-at on the buffer's output.
//! 2. **Inverter fold**: for `a = ~b` with `w_a == w_b`, `b[i]` stuck-at-`v`
//!    ≡ `a[i]` stuck-at-`¬v` (bitwise NOT maps a forced defined bit to its
//!    forced complement; widths must match so no extension bits exist).
//! 3. **Truncated-bit drop**: bits of `b` above the alias width
//!    (`i ≥ w_a` when `w_b > w_a`) reach no reader at all — structurally
//!    unobservable, dropped.
//!
//! Independent of fanout:
//!
//! 4. **Constant-dormant drop**: a fault on a `Const`-driven site whose
//!    stuck polarity *equals* the (defined) constant bit never changes any
//!    committed value — the forced network is the good network, so the
//!    fault is undetectable by construction. Bits the constant leaves `X`
//!    are kept (forcing them is a refinement, not a no-op).
//! 5. **Unobservable drop**: a site with no path to any primary output in
//!    the static influence graph
//!    ([`influence_adjacency`](eraser_ir::analysis::influence_adjacency))
//!    can never produce a detectable output mismatch — fault differences
//!    propagate only along influence edges.
//! 6. **Unread-bit drop**: a bit of a non-output signal that no reader
//!    ever observes
//!    ([`read_bit_coverage`](eraser_ir::analysis::read_bit_coverage) —
//!    every read of the signal is a slice, constant-position select or
//!    narrowing buffer that excludes it) can never spread a difference
//!    anywhere: the behavioral-plane generalization of the truncated-bit
//!    rule, and the rule that fires on slice-heavy designs (decoders
//!    reading instruction fields, wide buses used partially).
//!
//! Folds are closed transitively (union-find), so `assign` chains of any
//! length collapse to one class. A class containing *any* dropped member
//! is dropped whole: members are pairwise equivalent, so one provably
//! undetectable member proves the class undetectable.
//!
//! # Using the result
//!
//! Simulate [`representatives`](CollapsedFaultList::representatives) with
//! any engine, then [`lift_coverage`](CollapsedFaultList::lift_coverage)
//! back to the full universe: each member inherits its representative's
//! record verbatim (equivalence makes the records identical anyway), and
//! dropped faults stay undetected — exactly what the uncollapsed run
//! reports for them.

use crate::{CoverageReport, Fault, FaultId, FaultList, StuckAt};
use eraser_ir::analysis::{observable_signals, read_bit_coverage};
use eraser_ir::{Design, RtlOp, SignalId, UnaryOp};
use eraser_logic::LogicBit;
use std::collections::HashMap;

/// A statically collapsed fault universe: one representative per
/// equivalence class plus the class→members map and the dropped set.
#[derive(Debug, Clone)]
pub struct CollapsedFaultList {
    /// Faults in the original universe.
    total: usize,
    /// One representative per kept class, dense local ids in ascending
    /// global-id order — an ordinary [`FaultList`] any engine can run.
    representatives: FaultList,
    /// Per representative (by local id): the global ids of every class
    /// member, ascending; `members[i][0]` is the representative itself.
    members: Vec<Vec<FaultId>>,
    /// Global ids of dropped (provably undetectable) faults, ascending.
    dropped: Vec<FaultId>,
    /// Global fault index → its class representative's *global* id
    /// (`None` for dropped faults).
    rep_of: Vec<Option<FaultId>>,
}

/// Union-find root with path halving; roots are always class minima
/// because [`union_min`] attaches the larger root under the smaller.
fn find(parent: &mut [u32], mut i: u32) -> u32 {
    while parent[i as usize] != i {
        parent[i as usize] = parent[parent[i as usize] as usize];
        i = parent[i as usize];
    }
    i
}

/// Unions two classes, keeping the minimum id as the root (deterministic
/// representatives independent of rule application order).
fn union_min(parent: &mut [u32], a: u32, b: u32) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra == rb {
        return;
    }
    if ra < rb {
        parent[rb as usize] = ra;
    } else {
        parent[ra as usize] = rb;
    }
}

impl CollapsedFaultList {
    /// Builds the collapsed universe of `faults` over `design`'s static
    /// structure. Pure analysis: no simulation, no stimulus.
    pub fn build(design: &Design, faults: &FaultList) -> Self {
        let n = faults.len();
        let num_signals = design.num_signals();

        // Fault lookup by (site, bit, polarity): fold rules pair faults
        // across signals and survive sampled universes (a missing partner
        // simply means no union).
        let mut by_site: HashMap<(SignalId, u32, StuckAt), u32> = HashMap::with_capacity(n);
        for (i, f) in faults.iter().enumerate() {
            by_site.insert((f.signal, f.bit, f.stuck), i as u32);
        }

        // Complete reader census per signal: RTL reads (occurrence count +
        // the sole reading node when unique), behavioral reads and
        // sensitivity-list memberships, output membership.
        let mut rtl_reads: Vec<u32> = vec![0; num_signals];
        let mut sole_rtl_reader: Vec<usize> = vec![usize::MAX; num_signals];
        for (ni, node) in design.rtl_nodes().iter().enumerate() {
            for &s in &node.inputs {
                rtl_reads[s.index()] += 1;
                sole_rtl_reader[s.index()] = ni;
            }
        }
        let mut behavioral_read = vec![false; num_signals];
        for node in design.behavioral_nodes() {
            for &s in &node.reads {
                behavioral_read[s.index()] = true;
            }
            for s in node.activation_signals() {
                behavioral_read[s.index()] = true;
            }
        }
        let mut is_output = vec![false; num_signals];
        for &o in design.outputs() {
            is_output[o.index()] = true;
        }
        // True iff the node at `ni` is the signal's one and only reader.
        let solely_read_by = |s: SignalId, ni: usize| {
            rtl_reads[s.index()] == 1
                && sole_rtl_reader[s.index()] == ni
                && !behavioral_read[s.index()]
                && !is_output[s.index()]
        };

        let mut parent: Vec<u32> = (0..n as u32).collect();
        let mut dropped_flag = vec![false; n];

        for (ni, node) in design.rtl_nodes().iter().enumerate() {
            match &node.op {
                // Rules 1 and 3: alias fold + truncated-bit drop.
                RtlOp::Buf if node.inputs.len() == 1 => {
                    let b = node.inputs[0];
                    let a = node.output;
                    if a == b || !solely_read_by(b, ni) {
                        continue;
                    }
                    let wa = design.signal(a).width;
                    let wb = design.signal(b).width;
                    for bit in 0..wb {
                        for stuck in [StuckAt::Zero, StuckAt::One] {
                            let Some(&fb) = by_site.get(&(b, bit, stuck)) else {
                                continue;
                            };
                            if bit < wa {
                                if let Some(&fa) = by_site.get(&(a, bit, stuck)) {
                                    union_min(&mut parent, fb, fa);
                                }
                            } else {
                                // b's high bits are sliced away by the
                                // narrower alias and b has no other reader.
                                dropped_flag[fb as usize] = true;
                            }
                        }
                    }
                }
                // Rule 2: inverter fold (width-preserving only).
                RtlOp::Unary(UnaryOp::Not) if node.inputs.len() == 1 => {
                    let b = node.inputs[0];
                    let a = node.output;
                    if a == b || !solely_read_by(b, ni) {
                        continue;
                    }
                    let wa = design.signal(a).width;
                    let wb = design.signal(b).width;
                    if wa != wb {
                        continue;
                    }
                    for bit in 0..wb {
                        for (sb, sa) in
                            [(StuckAt::Zero, StuckAt::One), (StuckAt::One, StuckAt::Zero)]
                        {
                            if let (Some(&fb), Some(&fa)) =
                                (by_site.get(&(b, bit, sb)), by_site.get(&(a, bit, sa)))
                            {
                                union_min(&mut parent, fb, fa);
                            }
                        }
                    }
                }
                // Rule 4: constant-dormant drop.
                RtlOp::Const(v) => {
                    let s = node.output;
                    for bit in 0..v.width() {
                        let stuck = match v.bit(bit) {
                            LogicBit::Zero => StuckAt::Zero,
                            LogicBit::One => StuckAt::One,
                            // An X/Z constant bit: forcing it refines the
                            // network rather than reproducing it — keep.
                            _ => continue,
                        };
                        if let Some(&fi) = by_site.get(&(s, bit, stuck)) {
                            dropped_flag[fi as usize] = true;
                        }
                    }
                }
                _ => {}
            }
        }

        // Rule 5: unobservable drop.
        let observable = observable_signals(design);
        for (i, f) in faults.iter().enumerate() {
            if !observable[f.signal.index()] {
                dropped_flag[i] = true;
            }
        }

        // Rule 6: unread-bit drop.
        let read_bits = read_bit_coverage(design);
        for (i, f) in faults.iter().enumerate() {
            if !read_bits[f.signal.index()]
                .get(f.bit as usize)
                .copied()
                .unwrap_or(false)
            {
                dropped_flag[i] = true;
            }
        }

        // Assemble classes. Roots are minima, so walking faults in id
        // order visits each class's representative first.
        let mut class_of_root: HashMap<u32, usize> = HashMap::new();
        let mut classes: Vec<Vec<FaultId>> = Vec::new();
        let mut class_dropped: Vec<bool> = Vec::new();
        for i in 0..n as u32 {
            let root = find(&mut parent, i);
            let ci = *class_of_root.entry(root).or_insert_with(|| {
                classes.push(Vec::new());
                class_dropped.push(false);
                classes.len() - 1
            });
            classes[ci].push(FaultId(i));
            class_dropped[ci] |= dropped_flag[i as usize];
        }

        let mut representatives: Vec<Fault> = Vec::new();
        let mut members: Vec<Vec<FaultId>> = Vec::new();
        let mut dropped: Vec<FaultId> = Vec::new();
        let mut rep_of: Vec<Option<FaultId>> = vec![None; n];
        for (ci, class) in classes.into_iter().enumerate() {
            if class_dropped[ci] {
                dropped.extend(class.iter().copied());
            } else {
                let rep = class[0];
                for &m in &class {
                    rep_of[m.index()] = Some(rep);
                }
                representatives.push(*faults.fault(rep));
                members.push(class);
            }
        }
        dropped.sort_unstable();

        CollapsedFaultList {
            total: n,
            // FromIterator reassigns dense local ids 0..k in push order,
            // which is ascending global-representative order.
            representatives: representatives.into_iter().collect(),
            members,
            dropped,
            rep_of,
        }
    }

    /// Faults in the original (uncollapsed) universe.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The representative fault list — one fault per kept class, ready to
    /// run on any engine (dense local ids).
    pub fn representatives(&self) -> &FaultList {
        &self.representatives
    }

    /// Kept equivalence classes (= faults actually simulated).
    pub fn num_classes(&self) -> usize {
        self.members.len()
    }

    /// Faults folded into another class member's simulation:
    /// `total - classes - dropped`.
    pub fn collapsed_faults(&self) -> usize {
        self.total - self.num_classes() - self.dropped.len()
    }

    /// Global ids of provably undetectable faults, never simulated.
    pub fn dropped(&self) -> &[FaultId] {
        &self.dropped
    }

    /// Global member ids (ascending, representative first) of the class
    /// behind representative-local id `rep`.
    pub fn class_members(&self, rep: FaultId) -> &[FaultId] {
        &self.members[rep.index()]
    }

    /// The *global* id of the representative simulated on behalf of
    /// `fault` (a global id), or `None` if its class was dropped.
    pub fn representative_of(&self, fault: FaultId) -> Option<FaultId> {
        self.rep_of[fault.index()]
    }

    /// Expands a coverage report over the representative universe into the
    /// full universe: every class member inherits its representative's
    /// detection record verbatim; dropped faults stay undetected. See
    /// [`CoverageReport::lift_classes`].
    ///
    /// # Panics
    ///
    /// Panics if `local` was not produced over
    /// [`representatives`](Self::representatives).
    pub fn lift_coverage(&self, local: &CoverageReport) -> CoverageReport {
        local.lift_classes(self.total, &self.members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_faults, Detection, FaultListConfig};
    use eraser_frontend::compile;

    fn fid(faults: &FaultList, design: &Design, name: &str, bit: u32, stuck: StuckAt) -> FaultId {
        let sig = design.find_signal(name).unwrap();
        faults
            .iter()
            .find(|f| f.signal == sig && f.bit == bit && f.stuck == stuck)
            .unwrap_or_else(|| panic!("no fault {name}[{bit}] {stuck}"))
            .id
    }

    #[test]
    fn alias_chain_folds_to_one_class() {
        let design = compile(
            "module m(input wire clk, input wire [3:0] a, output reg [3:0] q);
               wire [3:0] b;
               wire [3:0] c;
               assign b = a;
               assign c = b;
               always @(posedge clk) q <= c;
             endmodule",
            None,
        )
        .unwrap();
        let faults = generate_faults(&design, &FaultListConfig::default());
        let col = CollapsedFaultList::build(&design, &faults);
        assert_eq!(col.total(), faults.len());
        // b is read only by the alias to c: every b fault folds with its c
        // counterpart, bit for bit, polarity for polarity.
        for bit in 0..4 {
            for stuck in [StuckAt::Zero, StuckAt::One] {
                let fb = fid(&faults, &design, "b", bit, stuck);
                let fc = fid(&faults, &design, "c", bit, stuck);
                let rb = col.representative_of(fb).expect("b class kept");
                let rc = col.representative_of(fc).expect("c class kept");
                assert_eq!(
                    rb, rc,
                    "b[{bit}] {stuck} must share c[{bit}] {stuck}'s class"
                );
            }
        }
        assert!(col.collapsed_faults() >= 8, "{}", col.collapsed_faults());
        assert_eq!(
            col.num_classes() + col.collapsed_faults() + col.dropped().len(),
            col.total()
        );
        assert!(col.representatives().len() < faults.len());
    }

    #[test]
    fn single_fanout_inverter_folds_with_flipped_polarity() {
        let design = compile(
            "module m(input wire clk, input wire [3:0] a, output reg [3:0] q);
               wire [3:0] nb;
               wire [3:0] b;
               assign b = a ^ 4'h5;
               assign nb = ~b;
               always @(posedge clk) q <= nb;
             endmodule",
            None,
        )
        .unwrap();
        let faults = generate_faults(&design, &FaultListConfig::default());
        let col = CollapsedFaultList::build(&design, &faults);
        for bit in 0..4 {
            let fb = fid(&faults, &design, "b", bit, StuckAt::Zero);
            let fnb = fid(&faults, &design, "nb", bit, StuckAt::One);
            assert_eq!(
                col.representative_of(fb),
                col.representative_of(fnb),
                "b[{bit}] sa0 ≡ nb[{bit}] sa1"
            );
        }
    }

    #[test]
    fn shared_fanout_blocks_the_fold() {
        // b feeds both the alias and the XOR: folding b with c would hide
        // b's second observation path, so no fold may happen.
        let design = compile(
            "module m(input wire clk, input wire [3:0] a,
                      output reg [3:0] q, output wire [3:0] w);
               wire [3:0] b;
               wire [3:0] c;
               assign b = a;
               assign c = b;
               assign w = b ^ 4'h1;
               always @(posedge clk) q <= c;
             endmodule",
            None,
        )
        .unwrap();
        let faults = generate_faults(&design, &FaultListConfig::default());
        let col = CollapsedFaultList::build(&design, &faults);
        for bit in 0..4 {
            for stuck in [StuckAt::Zero, StuckAt::One] {
                let fb = fid(&faults, &design, "b", bit, stuck);
                let fc = fid(&faults, &design, "c", bit, stuck);
                assert_ne!(
                    col.representative_of(fb),
                    col.representative_of(fc),
                    "b[{bit}] {stuck} has independent fanout, must not fold"
                );
            }
        }
    }

    #[test]
    fn unobservable_sites_drop() {
        let design = compile(
            "module m(input wire clk, input wire [3:0] a, output reg [3:0] q);
               wire [3:0] dead;
               assign dead = a ^ 4'h3;
               always @(posedge clk) q <= a;
             endmodule",
            None,
        )
        .unwrap();
        let faults = generate_faults(&design, &FaultListConfig::default());
        let col = CollapsedFaultList::build(&design, &faults);
        for bit in 0..4 {
            for stuck in [StuckAt::Zero, StuckAt::One] {
                let f = fid(&faults, &design, "dead", bit, stuck);
                assert_eq!(col.representative_of(f), None, "dead[{bit}] {stuck} kept");
                assert!(col.dropped().contains(&f));
            }
        }
        // q faults stay live.
        let fq = fid(&faults, &design, "q", 0, StuckAt::Zero);
        assert!(col.representative_of(fq).is_some());
        assert_eq!(
            col.num_classes() + col.collapsed_faults() + col.dropped().len(),
            col.total()
        );
    }

    #[test]
    fn constant_dormant_bits_drop_only_matching_polarity() {
        let design = compile(
            "module m(input wire clk, output reg [3:0] q);
               wire [3:0] k;
               assign k = 4'b0101;
               always @(posedge clk) q <= q ^ k;
             endmodule",
            None,
        )
        .unwrap();
        let faults = generate_faults(&design, &FaultListConfig::default());
        let col = CollapsedFaultList::build(&design, &faults);
        for bit in 0..4u32 {
            let const_bit = (0b0101 >> bit) & 1;
            let dormant = if const_bit == 1 {
                StuckAt::One
            } else {
                StuckAt::Zero
            };
            let contradicting = if const_bit == 1 {
                StuckAt::Zero
            } else {
                StuckAt::One
            };
            let fd = fid(&faults, &design, "k", bit, dormant);
            let fc = fid(&faults, &design, "k", bit, contradicting);
            assert_eq!(
                col.representative_of(fd),
                None,
                "k[{bit}] {dormant} dormant"
            );
            assert!(
                col.representative_of(fc).is_some(),
                "k[{bit}] {contradicting} contradicts the constant and stays"
            );
        }
    }

    #[test]
    fn lift_coverage_marks_every_member() {
        let design = compile(
            "module m(input wire clk, input wire [3:0] a, output reg [3:0] q);
               wire [3:0] b;
               wire [3:0] c;
               assign b = a;
               assign c = b;
               always @(posedge clk) q <= c;
             endmodule",
            None,
        )
        .unwrap();
        let faults = generate_faults(&design, &FaultListConfig::default());
        let col = CollapsedFaultList::build(&design, &faults);
        // Detect every representative at a per-class step.
        let mut local = CoverageReport::new(col.num_classes());
        for i in 0..col.num_classes() {
            local.record(
                FaultId(i as u32),
                Detection {
                    step: i + 1,
                    output: design.outputs()[0],
                },
            );
        }
        let lifted = col.lift_coverage(&local);
        assert_eq!(lifted.total(), faults.len());
        for i in 0..col.num_classes() {
            let rep = FaultId(i as u32);
            for &m in col.class_members(rep) {
                assert_eq!(
                    lifted.detection(m),
                    local.detection(rep),
                    "member {m} must inherit its representative's record"
                );
            }
        }
        assert_eq!(
            lifted.detected(),
            faults.len() - col.dropped().len(),
            "every kept member detected, dropped members untouched"
        );
    }

    #[test]
    fn sampled_universe_with_missing_partners_still_builds() {
        let design = compile(
            "module m(input wire clk, input wire [7:0] a, output reg [7:0] q);
               wire [7:0] b;
               wire [7:0] c;
               assign b = a;
               assign c = b;
               always @(posedge clk) q <= c;
             endmodule",
            None,
        )
        .unwrap();
        // Sampling breaks many (b, c) pairs: the build must stay sound,
        // keeping unpaired faults as their own class.
        let faults = generate_faults(
            &design,
            &FaultListConfig {
                max_faults: Some(13),
                ..Default::default()
            },
        );
        let col = CollapsedFaultList::build(&design, &faults);
        assert_eq!(col.total(), faults.len());
        assert_eq!(
            col.num_classes() + col.collapsed_faults() + col.dropped().len(),
            col.total()
        );
        for f in faults.iter() {
            if let Some(rep) = col.representative_of(f.id) {
                assert!(rep <= f.id, "representative is the class minimum");
            }
        }
    }
}
