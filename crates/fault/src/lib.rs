//! Fault model for RTL fault simulation.
//!
//! Implements the fault universe of the ERASER paper's evaluation: per-bit
//! **stuck-at faults on wires and regs**, with observation points at the
//! design's primary outputs. A fault is *detected* when, at an observation
//! step, the faulty value of any output differs (in defined bits) from the
//! good value.
//!
//! * [`Fault`], [`StuckAt`], [`FaultId`] — one stuck-at fault site,
//! * [`FaultList`] and [`generate_faults`] — fault universe construction
//!   with the usual exclusions (clocks/resets, synthetic nets) and optional
//!   deterministic sampling,
//! * [`FaultList::partition`], [`FaultShard`] and [`PartitionStrategy`] —
//!   disjoint sharding of a universe for fault-parallel campaigns,
//! * [`BatchPlan`] — static site-major `(batch, lane)` assignment for
//!   64-wide bit-parallel (PPSFP-style) evaluation,
//! * [`CollapsedFaultList`] — static fault collapsing: equivalence classes
//!   over alias/inverter chains plus provably-undetectable drops
//!   (constant-dormant, structurally unobservable), computed before any
//!   simulation; a detected representative marks every class member via
//!   [`CoverageReport::lift_classes`],
//! * [`ActivationWindows`] — per-fault activation-window analysis over an
//!   instrumented good replay: the earliest step each fault can first
//!   diverge, the restart-eligibility rule for checkpointed campaigns,
//!   and the activation-ordered fault schedule,
//! * [`WindowPlan`] — the two-dimensional schedule composing both axes:
//!   faults grouped by latest eligible checkpoint into [`WindowShard`]s
//!   whose engines resume from shared good-state snapshots, chunked with
//!   worker-count-independent constants so merged results stay
//!   bit-identical at any thread count,
//! * [`CoverageReport`] — detection bookkeeping and the coverage metric
//!   reported in Table II of the paper, with lossless shard
//!   [merging](CoverageReport::merge).

mod activation;
mod batch;
mod collapse;
mod coverage;
mod list;
mod partition;
mod window;

pub use activation::ActivationWindows;
pub use batch::BatchPlan;
pub use collapse::CollapsedFaultList;
pub use coverage::{CoverageReport, Detection};
pub use list::{generate_faults, FaultList, FaultListConfig};
pub use partition::{FaultShard, PartitionStrategy};
pub use window::{WindowPlan, WindowShard};

use eraser_ir::SignalId;
use eraser_logic::{LogicBit, LogicVec};
use std::fmt;

/// True if `good` and `faulty` differ in a bit where **both** are defined —
/// the observable-detection criterion used at observation points.
///
/// A difference involving `X`/`Z` on either side is *not* counted: a tester
/// comparing against an unknown expected value cannot claim detection. All
/// engines in this workspace share this predicate, which is what makes
/// their coverage numbers comparable.
pub fn detectable_mismatch(good: &LogicVec, faulty: &LogicVec) -> bool {
    // Compare on zero-padded words (the word-level view of zero-extension
    // to the common width) — no intermediate vectors, no allocation.
    let pad = |words: &[u64], i: usize| words.get(i).copied().unwrap_or(0);
    let n = (good.width().max(faulty.width()) as usize).div_ceil(64);
    let (ga, gb) = (good.avals(), good.bvals());
    let (fa, fb) = (faulty.avals(), faulty.bvals());
    for i in 0..n {
        let defined = !pad(gb, i) & !pad(fb, i);
        if (pad(ga, i) ^ pad(fa, i)) & defined != 0 {
            return true;
        }
    }
    false
}

/// Identifies a fault within a [`FaultList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultId(pub u32);

impl FaultId {
    /// The raw index into the fault list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Stuck-at polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StuckAt {
    /// Stuck-at-0.
    Zero,
    /// Stuck-at-1.
    One,
}

impl StuckAt {
    /// The forced bit value.
    #[inline]
    pub fn bit(self) -> LogicBit {
        match self {
            StuckAt::Zero => LogicBit::Zero,
            StuckAt::One => LogicBit::One,
        }
    }
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckAt::Zero => write!(f, "sa0"),
            StuckAt::One => write!(f, "sa1"),
        }
    }
}

/// One stuck-at fault: a bit of a signal permanently forced to a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Fault id (index in its list).
    pub id: FaultId,
    /// Faulted signal.
    pub signal: SignalId,
    /// Faulted bit position.
    pub bit: u32,
    /// Polarity.
    pub stuck: StuckAt,
}

impl Fault {
    /// Applies the force to a would-be value of the fault site: the faulty
    /// network always observes `value` with the stuck bit overridden.
    pub fn apply(&self, value: &LogicVec) -> LogicVec {
        let mut out = value.clone();
        self.apply_assign(&mut out);
        out
    }

    /// Applies the force onto `value` in place — the allocation-free form
    /// of [`Fault::apply`].
    #[inline]
    pub fn apply_assign(&self, value: &mut LogicVec) {
        if self.bit < value.width() {
            value.set_bit(self.bit, self.stuck.bit());
        }
    }

    /// True if forcing `value` would actually change it (the fault is
    /// *visible* at its site for this good value).
    pub fn changes(&self, value: &LogicVec) -> bool {
        self.bit < value.width() && value.bit(self.bit) != self.stuck.bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mismatch_requires_defined_bits() {
        let g = LogicVec::from_u64(4, 0b1010);
        let f = LogicVec::from_u64(4, 0b1000);
        assert!(detectable_mismatch(&g, &f));
        assert!(!detectable_mismatch(&g, &g));
        // X on either side masks the difference.
        let mut fx = f.clone();
        fx.set_bit(1, LogicBit::X);
        assert!(!detectable_mismatch(&g, &fx));
        let mut gx = g.clone();
        gx.set_bit(1, LogicBit::X);
        assert!(!detectable_mismatch(&gx, &f));
        // But a defined difference elsewhere still detects.
        let f2 = LogicVec::from_u64(4, 0b0010);
        assert!(detectable_mismatch(&gx, &f2));
    }

    #[test]
    fn apply_forces_single_bit() {
        let f = Fault {
            id: FaultId(0),
            signal: SignalId(0),
            bit: 2,
            stuck: StuckAt::One,
        };
        let v = LogicVec::from_u64(8, 0x00);
        assert_eq!(f.apply(&v).to_u64(), Some(0x04));
        assert!(f.changes(&v));
        let v = LogicVec::from_u64(8, 0x04);
        assert_eq!(f.apply(&v).to_u64(), Some(0x04));
        assert!(!f.changes(&v));
    }

    #[test]
    fn apply_forces_x_to_defined() {
        let f = Fault {
            id: FaultId(1),
            signal: SignalId(0),
            bit: 0,
            stuck: StuckAt::Zero,
        };
        let v = LogicVec::new_x(4);
        let forced = f.apply(&v);
        assert_eq!(forced.bit(0), LogicBit::Zero);
        assert_eq!(forced.bit(1), LogicBit::X);
        assert!(f.changes(&v));
    }

    #[test]
    fn out_of_range_bit_is_inert() {
        let f = Fault {
            id: FaultId(2),
            signal: SignalId(0),
            bit: 9,
            stuck: StuckAt::One,
        };
        let v = LogicVec::from_u64(4, 0);
        assert_eq!(f.apply(&v), v);
        assert!(!f.changes(&v));
    }
}
