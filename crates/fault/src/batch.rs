//! Lane assignment for bit-parallel (PPSFP-style) fault batching.
//!
//! A [`BatchPlan`] maps every fault of a [`FaultList`] to a fixed
//! `(batch, lane)` slot, where a *batch* is a group of up to
//! [`eraser_logic::LANES`] faults that the engine may evaluate together in
//! one word-parallel pass. The assignment is static — computed once per
//! engine over its (possibly sharded) fault list — so a fault keeps its
//! lane for the whole campaign and a shard's plan covers exactly its local
//! dense ids, which is what makes batching compose with fault-parallel
//! sharding for free.
//!
//! Packing is site-major: faults are grouped by fault-site signal (faults
//! on the same signal tend to diverge on the same node evaluations, so
//! co-scheduling them maximizes filled lanes), and whole site groups are
//! packed greedily into 64-lane batches. A group that does not fit the
//! remaining lanes of the current batch opens a new one; groups larger
//! than 64 span batches.

use crate::{FaultId, FaultList};
use eraser_logic::LANES;

/// A static `(batch, lane)` assignment for every fault of a list.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// Indexed by fault id: the fault's batch index and lane (0..64).
    assign: Vec<(u32, u8)>,
    num_batches: u32,
    num_groups: u32,
}

impl BatchPlan {
    /// Builds the site-major greedy packing over `faults`.
    pub fn build(faults: &FaultList) -> Self {
        let mut order: Vec<FaultId> = faults.iter().map(|f| f.id).collect();
        order.sort_by_key(|&f| (faults.fault(f).signal.index(), f));

        let mut assign = vec![(0u32, 0u8); faults.len()];
        let mut batch = 0u32;
        let mut cursor = 0u32;
        let mut num_groups = 0u32;
        let mut i = 0;
        while i < order.len() {
            // One site group: the run of faults on the same signal.
            let site = faults.fault(order[i]).signal;
            let mut end = i + 1;
            while end < order.len() && faults.fault(order[end]).signal == site {
                end += 1;
            }
            num_groups += 1;
            // Whole groups stay together when they fit; a group larger
            // than the remaining lanes of a non-empty batch opens a fresh
            // one (and oversized groups simply roll over).
            if cursor > 0 && cursor + (end - i) as u32 > LANES {
                batch += 1;
                cursor = 0;
            }
            for &f in &order[i..end] {
                if cursor == LANES {
                    batch += 1;
                    cursor = 0;
                }
                assign[f.index()] = (batch, cursor as u8);
                cursor += 1;
            }
            i = end;
        }
        let num_batches = if order.is_empty() { 0 } else { batch + 1 };
        BatchPlan {
            assign,
            num_batches,
            num_groups,
        }
    }

    /// The `(batch, lane)` slot of `fault`.
    #[inline]
    pub fn slot(&self, fault: FaultId) -> (u32, u8) {
        self.assign[fault.index()]
    }

    /// Number of batches formed.
    pub fn num_batches(&self) -> u32 {
        self.num_batches
    }

    /// Number of site groups formed (runs of faults on one signal).
    pub fn num_groups(&self) -> u32 {
        self.num_groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, StuckAt};
    use eraser_ir::SignalId;

    fn list(sites: &[u32]) -> FaultList {
        sites
            .iter()
            .enumerate()
            .map(|(i, &s)| Fault {
                id: FaultId(i as u32),
                signal: SignalId(s),
                bit: i as u32 % 8,
                stuck: if i % 2 == 0 {
                    StuckAt::Zero
                } else {
                    StuckAt::One
                },
            })
            .collect()
    }

    #[test]
    fn same_site_faults_share_a_batch() {
        let faults = list(&[3, 3, 7, 3, 7]);
        let plan = BatchPlan::build(&faults);
        assert_eq!(plan.num_batches(), 1);
        assert_eq!(plan.num_groups(), 2);
        // Site-major: the three site-3 faults take lanes 0..3, the two
        // site-7 faults lanes 3..5, all in batch 0.
        let lanes: Vec<(u32, u8)> = (0..5).map(|i| plan.slot(FaultId(i))).collect();
        assert_eq!(lanes, vec![(0, 0), (0, 1), (0, 3), (0, 2), (0, 4)]);
    }

    #[test]
    fn group_that_does_not_fit_opens_a_new_batch() {
        // 60 faults on site 0, then 10 on site 1: the second group must
        // not straddle the batch boundary.
        let sites: Vec<u32> = repeat_n(0, 60).chain(repeat_n(1, 10)).collect();
        let faults = list(&sites);
        let plan = BatchPlan::build(&faults);
        assert_eq!(plan.num_batches(), 2);
        assert_eq!(plan.num_groups(), 2);
        for i in 0..60 {
            assert_eq!(plan.slot(FaultId(i)).0, 0);
        }
        for i in 60..70 {
            assert_eq!(plan.slot(FaultId(i)), (1, (i - 60) as u8));
        }
    }

    fn repeat_n(v: u32, n: usize) -> impl Iterator<Item = u32> {
        std::iter::repeat_n(v, n)
    }

    #[test]
    fn oversized_group_spans_batches() {
        let sites = vec![5u32; 150];
        let faults = list(&sites);
        let plan = BatchPlan::build(&faults);
        assert_eq!(plan.num_batches(), 3);
        assert_eq!(plan.num_groups(), 1);
        assert_eq!(plan.slot(FaultId(0)), (0, 0));
        assert_eq!(plan.slot(FaultId(63)), (0, 63));
        assert_eq!(plan.slot(FaultId(64)), (1, 0));
        assert_eq!(plan.slot(FaultId(149)), (2, 21));
    }

    #[test]
    fn every_slot_is_unique_and_in_range() {
        let sites: Vec<u32> = (0..200).map(|i| i % 37).collect();
        let faults = list(&sites);
        let plan = BatchPlan::build(&faults);
        let mut seen = std::collections::HashSet::new();
        for f in faults.iter() {
            let (b, l) = plan.slot(f.id);
            assert!(b < plan.num_batches());
            assert!((l as u32) < LANES);
            assert!(seen.insert((b, l)), "slot ({b}, {l}) assigned twice");
        }
    }

    #[test]
    fn empty_list_builds_an_empty_plan() {
        let faults = list(&[]);
        let plan = BatchPlan::build(&faults);
        assert_eq!(plan.num_batches(), 0);
        assert_eq!(plan.num_groups(), 0);
    }
}
