//! Detection bookkeeping and the fault-coverage metric.

use crate::FaultId;
use eraser_ir::SignalId;
use std::fmt;

/// One fault detection event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// The stimulus step (settle point) at which the difference was
    /// observed.
    pub step: usize,
    /// The output (observation point) where the difference appeared.
    pub output: SignalId,
}

/// Per-fault detection records and the coverage metric of the paper's
/// Table II.
///
/// Engines record the *first* detection of each fault; subsequent reports
/// for an already-detected fault are ignored, so coverage comparisons
/// between engines are insensitive to fault-dropping policies.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    detections: Vec<Option<Detection>>,
}

impl CoverageReport {
    /// Creates a report for a universe of `num_faults` faults, all
    /// undetected.
    pub fn new(num_faults: usize) -> Self {
        CoverageReport {
            detections: vec![None; num_faults],
        }
    }

    /// Records the first detection of `fault`. Returns `true` if this was
    /// the first report for it.
    pub fn record(&mut self, fault: FaultId, detection: Detection) -> bool {
        let slot = &mut self.detections[fault.index()];
        if slot.is_none() {
            *slot = Some(detection);
            true
        } else {
            false
        }
    }

    /// Whether `fault` has been detected.
    pub fn is_detected(&self, fault: FaultId) -> bool {
        self.detections[fault.index()].is_some()
    }

    /// The detection record of `fault`, if any.
    pub fn detection(&self, fault: FaultId) -> Option<Detection> {
        self.detections[fault.index()]
    }

    /// Total faults in the universe.
    pub fn total(&self) -> usize {
        self.detections.len()
    }

    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.detections.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage in percent (`100 * detected / total`), the Table II
    /// metric. Returns 100 for an empty universe.
    pub fn coverage_percent(&self) -> f64 {
        if self.detections.is_empty() {
            100.0
        } else {
            100.0 * self.detected() as f64 / self.total() as f64
        }
    }

    /// Ids of undetected faults.
    pub fn undetected(&self) -> Vec<FaultId> {
        self.detections
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| FaultId(i as u32))
            .collect()
    }

    /// Merges another report over the *same* fault universe into this one:
    /// a fault undetected here adopts the other report's detection; a fault
    /// detected in both keeps the earlier detection (ties keep `self`'s).
    ///
    /// Shard reports from a partitioned campaign (see
    /// [`FaultList::partition`](crate::FaultList::partition)) cover
    /// disjoint fault sets once [lifted](crate::FaultShard::lift_coverage),
    /// so merging them is a lossless union and the merged report is
    /// bit-identical to a single run over the whole universe.
    ///
    /// # Panics
    ///
    /// Panics if the two reports cover universes of different sizes.
    pub fn merge(&mut self, other: &CoverageReport) {
        assert_eq!(
            self.detections.len(),
            other.detections.len(),
            "cannot merge coverage over different universes ({} vs {} faults)",
            self.detections.len(),
            other.detections.len()
        );
        for (mine, theirs) in self.detections.iter_mut().zip(&other.detections) {
            match (&mine, theirs) {
                (None, Some(d)) => *mine = Some(*d),
                (Some(a), Some(b)) if b.step < a.step => *mine = Some(*b),
                _ => {}
            }
        }
    }

    /// Expands a report over a *collapsed* universe (one slot per
    /// equivalence class, see
    /// [`CollapsedFaultList`](crate::CollapsedFaultList)) into the full
    /// universe of `total` faults: every member of `classes[i]` inherits
    /// slot `i`'s detection record verbatim; faults appearing in no class
    /// (the dropped set) stay undetected.
    ///
    /// Because class members are *equivalent* — identical faulty values at
    /// every observation point at every step — the uncollapsed run would
    /// have produced exactly the representative's `(step, output)` record
    /// for each of them, so the lifted report is bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if `self` does not have exactly one slot per class.
    pub fn lift_classes(&self, total: usize, classes: &[Vec<FaultId>]) -> CoverageReport {
        assert_eq!(
            self.detections.len(),
            classes.len(),
            "class-lift needs one detection slot per class ({} vs {} classes)",
            self.detections.len(),
            classes.len()
        );
        let mut lifted = CoverageReport::new(total);
        for (slot, members) in self.detections.iter().zip(classes) {
            if let Some(d) = slot {
                for &m in members {
                    lifted.detections[m.index()] = Some(*d);
                }
            }
        }
        lifted
    }

    /// True if two reports detect exactly the same fault set (the parity
    /// criterion used to validate engines against each other; detection
    /// steps may differ between engines with different scheduling).
    pub fn same_detected_set(&self, other: &CoverageReport) -> bool {
        self.detections.len() == other.detections.len()
            && self
                .detections
                .iter()
                .zip(&other.detections)
                .all(|(a, b)| a.is_some() == b.is_some())
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} detected ({:.2}%)",
            self.detected(),
            self.total(),
            self.coverage_percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_first_detection_only() {
        let mut r = CoverageReport::new(3);
        let d0 = Detection {
            step: 4,
            output: SignalId(1),
        };
        assert!(r.record(FaultId(1), d0));
        assert!(!r.record(
            FaultId(1),
            Detection {
                step: 9,
                output: SignalId(2)
            }
        ));
        assert_eq!(r.detection(FaultId(1)), Some(d0));
        assert_eq!(r.detected(), 1);
        assert_eq!(r.total(), 3);
        assert!((r.coverage_percent() - 33.333).abs() < 0.01);
        assert_eq!(r.undetected(), vec![FaultId(0), FaultId(2)]);
    }

    #[test]
    fn parity_ignores_steps() {
        let mut a = CoverageReport::new(2);
        let mut b = CoverageReport::new(2);
        a.record(
            FaultId(0),
            Detection {
                step: 1,
                output: SignalId(0),
            },
        );
        b.record(
            FaultId(0),
            Detection {
                step: 7,
                output: SignalId(1),
            },
        );
        assert!(a.same_detected_set(&b));
        b.record(
            FaultId(1),
            Detection {
                step: 8,
                output: SignalId(1),
            },
        );
        assert!(!a.same_detected_set(&b));
    }

    #[test]
    fn merge_unions_disjoint_reports() {
        let mut a = CoverageReport::new(4);
        let mut b = CoverageReport::new(4);
        let d0 = Detection {
            step: 2,
            output: SignalId(0),
        };
        let d3 = Detection {
            step: 5,
            output: SignalId(1),
        };
        a.record(FaultId(0), d0);
        b.record(FaultId(3), d3);
        a.merge(&b);
        assert_eq!(a.detection(FaultId(0)), Some(d0));
        assert_eq!(a.detection(FaultId(3)), Some(d3));
        assert_eq!(a.detected(), 2);
        assert!(!a.is_detected(FaultId(1)));
    }

    #[test]
    fn merge_empty_shard_is_identity() {
        // An empty shard (or a shard whose faults all went undetected)
        // lifts to an all-None report; merging it changes nothing.
        let mut a = CoverageReport::new(3);
        a.record(
            FaultId(1),
            Detection {
                step: 4,
                output: SignalId(0),
            },
        );
        let before = a.clone();
        a.merge(&CoverageReport::new(3));
        assert_eq!(a, before);
    }

    #[test]
    fn merge_all_detected_shard_keeps_earliest() {
        // An all-dropped shard: every fault detected. Overlapping merges
        // keep the earlier step; ties keep self's record.
        let mut a = CoverageReport::new(2);
        let mut b = CoverageReport::new(2);
        a.record(
            FaultId(0),
            Detection {
                step: 9,
                output: SignalId(0),
            },
        );
        b.record(
            FaultId(0),
            Detection {
                step: 3,
                output: SignalId(1),
            },
        );
        b.record(
            FaultId(1),
            Detection {
                step: 3,
                output: SignalId(2),
            },
        );
        a.merge(&b);
        assert_eq!(a.detection(FaultId(0)).unwrap().step, 3);
        assert_eq!(a.detection(FaultId(1)).unwrap().output, SignalId(2));
        // Tie: self wins.
        let mut c = CoverageReport::new(2);
        c.record(
            FaultId(1),
            Detection {
                step: 3,
                output: SignalId(7),
            },
        );
        a.merge(&c);
        assert_eq!(a.detection(FaultId(1)).unwrap().output, SignalId(2));
    }

    #[test]
    fn lift_classes_copies_records_and_leaves_dropped_undetected() {
        // Collapsed universe: class 0 = {0, 2, 5}, class 1 = {1, 4};
        // fault 3 was dropped (member of no class).
        let classes = vec![
            vec![FaultId(0), FaultId(2), FaultId(5)],
            vec![FaultId(1), FaultId(4)],
        ];
        let mut local = CoverageReport::new(2);
        let d = Detection {
            step: 6,
            output: SignalId(3),
        };
        local.record(FaultId(0), d);
        let lifted = local.lift_classes(6, &classes);
        assert_eq!(lifted.total(), 6);
        for m in [0u32, 2, 5] {
            assert_eq!(lifted.detection(FaultId(m)), Some(d));
        }
        for m in [1u32, 3, 4] {
            assert!(!lifted.is_detected(FaultId(m)));
        }
    }

    #[test]
    #[should_panic(expected = "one detection slot per class")]
    fn lift_classes_rejects_slot_mismatch() {
        CoverageReport::new(3).lift_classes(5, &[vec![FaultId(0)]]);
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn merge_rejects_size_mismatch() {
        let mut a = CoverageReport::new(2);
        a.merge(&CoverageReport::new(3));
    }

    #[test]
    fn empty_universe_is_full_coverage() {
        let r = CoverageReport::new(0);
        assert_eq!(r.coverage_percent(), 100.0);
        assert_eq!(r.to_string(), "0/0 detected (100.00%)");
    }
}
