//! Window-aware shard planning — the two-dimensional parallelism
//! schedule.
//!
//! Fault-parallel sharding ([`FaultList::partition`]) and checkpointed
//! activation-window starts ([`ActivationWindows`]) are each a pure
//! speedup axis; a [`WindowPlan`] composes them. Given the per-fault
//! windows of one instrumented good replay and the campaign's checkpoint
//! schedule, the plan:
//!
//! 1. drops every fault that provably cannot diverge within the stimulus
//!    ([`ActivationWindows::never_active`]) — undetected by construction,
//!    never simulated;
//! 2. groups the remaining faults by their **latest eligible checkpoint**
//!    ([`ActivationWindows::start_checkpoint`]), walking the cached
//!    window ordering so faults with nearby windows land in the same
//!    group and every shard's start is as late as the soundness rule
//!    allows;
//! 3. splits oversized groups into fixed-size chunks so a work queue can
//!    balance across workers — stealing whole window groups first and
//!    falling back to the intra-group chunks of a heavy window;
//! 4. orders the shards by descending estimated cost (suffix length ×
//!    fault count) so the queue schedules longest-processing-time first.
//!
//! The chunking constants are **fixed** — independent of worker count —
//! so the same `(faults, windows, checkpoints)` input always yields the
//! identical shard set. A campaign that executes the plan serially and
//! one that executes it on N workers run the *same* engines on the same
//! fault groups, which is what keeps coverage records **and** every
//! redundancy counter bit-identical at any thread count.

use crate::{ActivationWindows, Fault, FaultId, FaultList, FaultShard};

/// Upper bound on shards cut from one plan when the universe is large:
/// enough oversubscription for dynamic balancing on any realistic worker
/// count, few enough that per-shard engine construction stays negligible.
/// Fixed (not derived from the thread count) so the plan — and therefore
/// every merged counter — is identical however many workers execute it.
const MAX_WINDOW_SHARDS: usize = 16;

/// Never split a checkpoint group into chunks smaller than this; tiny
/// shards pay full engine construction for almost no faults.
const MIN_WINDOW_SHARD_FAULTS: usize = 16;

/// One schedulable unit of a [`WindowPlan`]: a fault shard plus the
/// checkpoint its engine resumes from.
#[derive(Debug, Clone)]
pub struct WindowShard {
    /// The faults, as an ordinary dense-id shard — engines run it
    /// unchanged and coverage merges through
    /// [`FaultShard::merge_coverage_into`].
    pub shard: FaultShard,
    /// Index into the campaign's checkpoint schedule (the `checkpoints`
    /// slice handed to [`WindowPlan::build`]): every fault in the shard is
    /// restart-eligible there, and it is the latest such checkpoint for
    /// each of them.
    pub checkpoint: usize,
    /// The checkpoint's stimulus step — the common start of the shard's
    /// engine, and the number of good-prefix settle steps each member
    /// fault skips.
    pub start: usize,
}

impl WindowShard {
    /// Good-prefix settle steps the whole shard skips: `start` per fault.
    pub fn skipped_prefix_steps(&self) -> u64 {
        self.start as u64 * self.shard.len() as u64
    }
}

/// The composed two-dimensional schedule over one fault universe. See the
/// [module docs](self) for construction and the determinism argument.
#[derive(Debug, Clone)]
pub struct WindowPlan {
    /// Shards in queue order (descending estimated cost). Disjoint; their
    /// union plus [`skipped`](Self::skipped) is the whole universe.
    pub shards: Vec<WindowShard>,
    /// Faults dropped before simulation: provably inactive within the
    /// stimulus, undetected by construction.
    pub skipped: Vec<FaultId>,
}

impl WindowPlan {
    /// Builds the plan for `faults` from derived `windows` and the
    /// checkpoint schedule `checkpoints` (`(step, fully_defined)` pairs,
    /// ascending by step, step 0 first — the shape the campaign drivers
    /// record).
    pub fn build(
        faults: &FaultList,
        windows: &ActivationWindows,
        checkpoints: &[(usize, bool)],
    ) -> WindowPlan {
        let mut skipped = Vec::new();
        // Bucket survivors by latest eligible checkpoint, walking the
        // cached window ordering so each bucket fills in window order.
        let mut buckets: Vec<Vec<&Fault>> = vec![Vec::new(); checkpoints.len()];
        let mut kept = 0usize;
        for &id in windows.ordered_by_window() {
            if windows.never_active(id) {
                skipped.push(id);
                continue;
            }
            let fault = faults.fault(id);
            buckets[windows.start_checkpoint(fault, checkpoints)].push(fault);
            kept += 1;
        }
        skipped.sort_unstable();
        let target = kept
            .div_ceil(MAX_WINDOW_SHARDS)
            .max(MIN_WINDOW_SHARD_FAULTS);
        let mut shards = Vec::new();
        for (ci, bucket) in buckets.iter().enumerate() {
            for chunk in bucket.chunks(target) {
                // Shards carry faults in ascending global-id order (the
                // FaultShard invariant); the window ordering inside a
                // chunk was only for grouping.
                let mut members: Vec<&Fault> = chunk.to_vec();
                members.sort_by_key(|f| f.id);
                shards.push(WindowShard {
                    shard: FaultShard::from_faults(shards.len(), members),
                    checkpoint: ci,
                    start: checkpoints[ci].0,
                });
            }
        }
        // Longest-processing-time-first queue order: cost ~ remaining
        // stimulus × faults. Deterministic tie-break by (checkpoint,
        // first global id).
        let num_steps = windows.num_steps();
        shards.sort_by_key(|ws| {
            let cost = (num_steps - ws.start.min(num_steps)) * ws.shard.len();
            (
                usize::MAX - cost,
                ws.checkpoint,
                ws.shard.global_ids().first().copied(),
            )
        });
        WindowPlan { shards, skipped }
    }

    /// Total faults scheduled for simulation (universe minus the
    /// never-active drops).
    pub fn scheduled_faults(&self) -> usize {
        self.shards.iter().map(|ws| ws.shard.len()).sum()
    }

    /// Good-prefix settle steps the whole plan skips, summed over every
    /// scheduled fault — the composed campaign's `skipped_prefix_steps`.
    pub fn skipped_prefix_steps(&self) -> u64 {
        self.shards.iter().map(|ws| ws.skipped_prefix_steps()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_faults, FaultListConfig};
    use eraser_frontend::compile;
    use eraser_logic::LogicVec;
    use eraser_sim::{ReplaySim, Simulator, SiteProbe, StimulusBuilder};

    /// A free-running counter whose higher bits activate later: plenty of
    /// distinct windows.
    fn staggered_fixture() -> (eraser_ir::Design, FaultList, ActivationWindows, usize) {
        let design = compile(
            "module m(input wire clk, input wire rst, output reg [7:0] q);
               always @(posedge clk) begin
                 if (rst) q <= 8'h00; else q <= q + 8'h01;
               end
             endmodule",
            None,
        )
        .unwrap();
        let faults = generate_faults(&design, &FaultListConfig::default());
        let clk = design.find_signal("clk").unwrap();
        let rst = design.find_signal("rst").unwrap();
        let mut sb = StimulusBuilder::new();
        sb.add_cycle(clk, &[(rst, LogicVec::from_u64(1, 1))]);
        for _ in 0..40 {
            sb.add_cycle(clk, &[(rst, LogicVec::from_u64(1, 0))]);
        }
        let stim = sb.finish();
        let mut sim = Simulator::new(&design);
        sim.attach_probe(SiteProbe::new(&design, faults.iter().map(|f| f.signal)));
        for (i, step) in stim.steps.iter().enumerate() {
            sim.begin_probe_step(i);
            sim.replay_step(step);
        }
        let probe = sim.take_probe().unwrap();
        let n = stim.steps.len();
        let windows = ActivationWindows::derive(&design, &faults, &probe, n);
        (design, faults, windows, n)
    }

    fn interval_checkpoints(interval: usize, num_steps: usize) -> Vec<(usize, bool)> {
        (0..num_steps)
            .filter(|s| s % interval == 0)
            .map(|s| (s, true))
            .collect()
    }

    #[test]
    fn plan_is_lossless_and_grouped_by_checkpoint() {
        let (_, faults, windows, n) = staggered_fixture();
        let checkpoints = interval_checkpoints(8, n);
        let plan = WindowPlan::build(&faults, &windows, &checkpoints);
        // Lossless: every fault is scheduled exactly once or skipped.
        let mut seen: Vec<FaultId> = plan.skipped.clone();
        for ws in &plan.shards {
            seen.extend_from_slice(ws.shard.global_ids());
            // Every member is eligible at the shard's checkpoint and at no
            // later one.
            let (step, defined) = checkpoints[ws.checkpoint];
            assert_eq!(step, ws.start);
            for f in ws.shard.list.iter() {
                let gid = ws.shard.global_id(f.id);
                assert!(windows.eligible_start(gid, step, defined));
                assert_eq!(
                    windows.start_checkpoint(faults.fault(gid), &checkpoints),
                    ws.checkpoint
                );
            }
        }
        seen.sort_unstable();
        let all: Vec<FaultId> = faults.iter().map(|f| f.id).collect();
        assert_eq!(seen, all, "plan lost or duplicated faults");
        assert_eq!(plan.scheduled_faults() + plan.skipped.len(), faults.len());
        // The staggered counter has faults with late windows: some shard
        // must actually start past step 0.
        assert!(
            plan.skipped_prefix_steps() > 0,
            "no shard skipped any prefix: {:?}",
            plan.shards
                .iter()
                .map(|w| (w.start, w.shard.len()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn plan_is_deterministic_and_thread_independent() {
        // The plan has no worker-count input at all; building it twice
        // yields the identical shard sequence.
        let (_, faults, windows, n) = staggered_fixture();
        let checkpoints = interval_checkpoints(4, n);
        let a = WindowPlan::build(&faults, &windows, &checkpoints);
        let b = WindowPlan::build(&faults, &windows, &checkpoints);
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.shards.len(), b.shards.len());
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.shard.global_ids(), y.shard.global_ids());
            assert_eq!((x.checkpoint, x.start), (y.checkpoint, y.start));
        }
    }

    #[test]
    fn queue_order_is_costliest_first() {
        let (_, faults, windows, n) = staggered_fixture();
        let checkpoints = interval_checkpoints(8, n);
        let plan = WindowPlan::build(&faults, &windows, &checkpoints);
        let cost = |ws: &WindowShard| (n - ws.start) * ws.shard.len();
        assert!(plan.shards.windows(2).all(|p| cost(&p[0]) >= cost(&p[1])));
    }

    #[test]
    fn single_checkpoint_degenerates_to_plain_sharding() {
        // With only the step-0 checkpoint every fault groups there; the
        // plan is then just fixed-size sharding with zero skipped prefix.
        let (_, faults, windows, _) = staggered_fixture();
        let plan = WindowPlan::build(&faults, &windows, &[(0, false)]);
        assert_eq!(plan.skipped_prefix_steps(), 0);
        assert!(plan.shards.iter().all(|ws| ws.start == 0));
        assert_eq!(plan.scheduled_faults() + plan.skipped.len(), faults.len());
    }
}
