//! Golden-model checks for the bundled Yosys-JSON netlist fixtures.
//!
//! Each fixture is imported, driven with its deterministic stimulus, and
//! compared cycle-by-cycle against a software reference model — proving
//! the importer's cell mapping (simple gates, muxes with constant bits,
//! flops) preserves function, not just structure.

use eraser_designs::netlist_fixtures;
use eraser_ir::SignalId;
use eraser_sim::Simulator;

fn sig(d: &eraser_ir::Design, name: &str) -> SignalId {
    d.find_signal(name)
        .unwrap_or_else(|| panic!("fixture is missing signal `{name}`"))
}

#[test]
fn counter8_gate_matches_golden_model() {
    let fixtures = netlist_fixtures();
    let src = &fixtures[0];
    let d = src.design();
    let (rst, en, q, tc) = (sig(d, "rst"), sig(d, "en"), sig(d, "q"), sig(d, "tc"));
    let stim = src.stimulus();
    let mut sim = Simulator::new(d);

    // q' = rst ? 0 : (en ? q+1 : q); tc = &q. State is unknown until the
    // first reset cycle lands.
    let mut model: Option<u8> = None;
    let mut saw_tc = false;
    for cycle in 0..stim.num_cycles() {
        for (s, v) in &stim.steps[2 * cycle] {
            sim.set_input(*s, v);
        }
        sim.step();
        for (s, v) in &stim.steps[2 * cycle + 1] {
            sim.set_input(*s, v);
        }
        sim.step();
        let rst_v = sim.value(rst).to_u64() == Some(1);
        let en_v = sim.value(en).to_u64() == Some(1);
        model = match (rst_v, model) {
            (true, _) => Some(0),
            (false, Some(m)) => Some(if en_v { m.wrapping_add(1) } else { m }),
            (false, None) => None,
        };
        if let Some(m) = model {
            assert_eq!(
                sim.value(q).to_u64(),
                Some(m as u64),
                "q mismatch at cycle {cycle}"
            );
            let tc_expect = (m == 0xff) as u64;
            assert_eq!(
                sim.value(tc).to_u64(),
                Some(tc_expect),
                "tc mismatch at cycle {cycle} (q = {m:#x})"
            );
            saw_tc |= tc_expect == 1;
        }
    }
    assert!(model.is_some(), "reset never asserted");
    assert!(
        saw_tc,
        "counter never wrapped; terminal-count cone untested"
    );
}

#[test]
fn mac16_gate_matches_golden_model() {
    let fixtures = netlist_fixtures();
    let src = &fixtures[1];
    let d = src.design();
    let (rst, en) = (sig(d, "rst"), sig(d, "en"));
    let (lfsr, acc, parity) = (sig(d, "lfsr"), sig(d, "acc"), sig(d, "parity"));
    let stim = src.stimulus();
    let mut sim = Simulator::new(d);

    // lfsr' = rst ? 1 : {lfsr[14:0], fb} with fb = l15^l14^l12^l3;
    // acc' = rst ? 0 : acc + (en ? lfsr : 0); parity = ^acc.
    let mut model: Option<(u16, u16)> = None;
    for cycle in 0..stim.num_cycles() {
        for (s, v) in &stim.steps[2 * cycle] {
            sim.set_input(*s, v);
        }
        sim.step();
        for (s, v) in &stim.steps[2 * cycle + 1] {
            sim.set_input(*s, v);
        }
        sim.step();
        let rst_v = sim.value(rst).to_u64() == Some(1);
        let en_v = sim.value(en).to_u64() == Some(1);
        model = match (rst_v, model) {
            (true, _) => Some((1, 0)),
            (false, Some((l, a))) => {
                let fb = ((l >> 15) ^ (l >> 14) ^ (l >> 12) ^ (l >> 3)) & 1;
                let l2 = (l << 1) | fb;
                let a2 = a.wrapping_add(if en_v { l } else { 0 });
                Some((l2, a2))
            }
            (false, None) => None,
        };
        if let Some((l, a)) = model {
            assert_eq!(
                sim.value(lfsr).to_u64(),
                Some(l as u64),
                "lfsr mismatch at cycle {cycle}"
            );
            assert_eq!(
                sim.value(acc).to_u64(),
                Some(a as u64),
                "acc mismatch at cycle {cycle}"
            );
            assert_eq!(
                sim.value(parity).to_u64(),
                Some((a.count_ones() & 1) as u64),
                "parity mismatch at cycle {cycle} (acc = {a:#x})"
            );
        }
    }
    assert!(model.is_some(), "reset never asserted");
}
