//! Validates the good simulation of the datapath benchmarks against their
//! software golden models — the correctness anchor for every engine (all
//! fault simulators share the same evaluation machinery).

use eraser_designs::{golden, Benchmark, Lcg};
use eraser_logic::LogicVec;
use eraser_sim::Simulator;

fn v(w: u32, x: u64) -> LogicVec {
    LogicVec::from_u64(w, x)
}

#[test]
fn alu64_matches_golden() {
    let d = Benchmark::Alu64.build();
    let clk = d.find_signal("clk").unwrap();
    let rst = d.find_signal("rst").unwrap();
    let (a, b, op, start) = (
        d.find_signal("a").unwrap(),
        d.find_signal("b").unwrap(),
        d.find_signal("op").unwrap(),
        d.find_signal("start").unwrap(),
    );
    let (result, zero, carry) = (
        d.find_signal("result").unwrap(),
        d.find_signal("zero").unwrap(),
        d.find_signal("carry").unwrap(),
    );
    let mut sim = Simulator::new(&d);
    sim.set_input(rst, &v(1, 1));
    sim.set_input(start, &v(1, 0));
    sim.clock_cycle(clk);
    sim.set_input(rst, &v(1, 0));
    sim.set_input(start, &v(1, 1));
    let mut rng = Lcg::new(7);
    for i in 0..200u64 {
        let av = rng.next_u64();
        let bv = rng.next_u64();
        let opv = (i % 14) as u8;
        sim.set_input(a, &v(64, av));
        sim.set_input(b, &v(64, bv));
        sim.set_input(op, &v(4, opv as u64));
        sim.clock_cycle(clk);
        let (er, ez, ec) = golden::alu64(opv, av, bv);
        assert_eq!(
            sim.value(result).to_u64(),
            Some(er),
            "op {opv} a {av:#x} b {bv:#x}"
        );
        assert_eq!(
            sim.value(zero).to_u64(),
            Some(ez as u64),
            "zero for op {opv}"
        );
        assert_eq!(
            sim.value(carry).to_u64(),
            Some(ec as u64),
            "carry for op {opv}"
        );
    }
}

#[test]
fn fpu32_matches_golden() {
    let d = Benchmark::Fpu32.build();
    let clk = d.find_signal("clk").unwrap();
    let rst = d.find_signal("rst").unwrap();
    let (x, y, op_mul, start) = (
        d.find_signal("x").unwrap(),
        d.find_signal("y").unwrap(),
        d.find_signal("op_mul").unwrap(),
        d.find_signal("start").unwrap(),
    );
    let z = d.find_signal("z").unwrap();
    let mut sim = Simulator::new(&d);
    sim.set_input(rst, &v(1, 1));
    sim.set_input(start, &v(1, 0));
    sim.clock_cycle(clk);
    sim.set_input(rst, &v(1, 0));
    sim.set_input(start, &v(1, 1));
    let mut rng = Lcg::new(99);
    for i in 0..400u64 {
        let mk = |rng: &mut Lcg| -> u32 {
            let sign = (rng.below(2) as u32) << 31;
            let exp = (if rng.below(8) == 0 {
                rng.below(256)
            } else {
                90 + rng.below(80)
            } as u32)
                << 23;
            sign | exp | (rng.below(1 << 23) as u32)
        };
        let xv = mk(&mut rng);
        let yv = mk(&mut rng);
        let mul = i % 2 == 1;
        sim.set_input(x, &v(32, xv as u64));
        sim.set_input(y, &v(32, yv as u64));
        sim.set_input(op_mul, &v(1, mul as u64));
        sim.clock_cycle(clk);
        let expect = golden::fpu32(mul, xv, yv);
        assert_eq!(
            sim.value(z).to_u64(),
            Some(expect as u64),
            "{} x={xv:#010x} y={yv:#010x}",
            if mul { "mul" } else { "add" }
        );
    }
}

fn check_sha(bench: Benchmark) {
    let d = bench.build();
    let clk = d.find_signal("clk").unwrap();
    let rst = d.find_signal("rst").unwrap();
    let start = d.find_signal("start").unwrap();
    let block = d.find_signal("block_in").unwrap();
    let digest = d.find_signal("digest").unwrap();
    let done = d.find_signal("done").unwrap();
    let mut sim = Simulator::new(&d);
    sim.set_input(rst, &v(1, 1));
    sim.set_input(start, &v(1, 0));
    sim.clock_cycle(clk);
    sim.set_input(rst, &v(1, 0));
    let mut rng = Lcg::new(5);
    for hash in 0..3 {
        // Build a block; words[0] is bits 511..480.
        let mut words = [0u32; 16];
        if hash == 0 {
            // FIPS "abc" vector.
            words[0] = 0x61626380;
            words[15] = 24;
        } else {
            for w in words.iter_mut() {
                *w = rng.next_u64() as u32;
            }
        }
        let mut blk = LogicVec::zeros(512);
        for (i, w) in words.iter().enumerate() {
            blk.assign_slice(511 - 32 * i as u32 - 31, &v(32, *w as u64));
        }
        sim.set_input(block, &blk);
        sim.set_input(start, &v(1, 1));
        sim.clock_cycle(clk);
        sim.set_input(start, &v(1, 0));
        for _ in 0..66 {
            sim.clock_cycle(clk);
        }
        assert_eq!(sim.value(done).to_u64(), Some(1), "hash {hash} not done");
        let expect = golden::sha256_compress(&words);
        let got = sim.value(digest);
        for (i, e) in expect.iter().enumerate() {
            let lo = 255 - 32 * i as u32 - 31;
            assert_eq!(
                got.slice(lo + 31, lo).to_u64(),
                Some(*e as u64),
                "{} hash {hash} word {i}",
                bench.name()
            );
        }
    }
}

#[test]
fn sha256_hv_matches_golden() {
    check_sha(Benchmark::Sha256Hv);
}

#[test]
fn sha256_c2v_matches_golden() {
    check_sha(Benchmark::Sha256C2v);
}

#[test]
fn conv_acc_matches_golden() {
    let d = Benchmark::ConvAcc.build();
    let clk = d.find_signal("clk").unwrap();
    let rst = d.find_signal("rst").unwrap();
    let (load_w, valid_in) = (
        d.find_signal("load_w").unwrap(),
        d.find_signal("valid_in").unwrap(),
    );
    let (window, weights) = (
        d.find_signal("window").unwrap(),
        d.find_signal("weights").unwrap(),
    );
    let (pixel_out, valid_out) = (
        d.find_signal("pixel_out").unwrap(),
        d.find_signal("valid_out").unwrap(),
    );
    let mut rng = Lcg::new(3);
    let mut wbytes = [0u8; 9];
    for b in wbytes.iter_mut() {
        *b = rng.below(256) as u8;
    }
    let pack = |bytes: &[u8; 9]| {
        let mut x = LogicVec::zeros(72);
        for (k, b) in bytes.iter().enumerate() {
            x.assign_slice(k as u32 * 8, &v(8, *b as u64));
        }
        x
    };
    let mut sim = Simulator::new(&d);
    sim.set_input(rst, &v(1, 1));
    sim.set_input(load_w, &v(1, 0));
    sim.set_input(valid_in, &v(1, 0));
    sim.clock_cycle(clk);
    sim.set_input(rst, &v(1, 0));
    sim.set_input(load_w, &v(1, 1));
    sim.set_input(weights, &pack(&wbytes));
    sim.clock_cycle(clk);
    sim.set_input(load_w, &v(1, 0));
    sim.set_input(valid_in, &v(1, 1));

    // Data latency: window -> PE accumulators (1 cycle) -> pixel_out
    // (1 more). The valid pipeline is one stage deeper, so the first
    // window of a burst is swallowed while the pipe fills; thereafter
    // pixel_out after cycle i holds the result of window i-1.
    let mut expected: Vec<u16> = Vec::new();
    for i in 0..60usize {
        let mut win = [0u8; 9];
        for b in win.iter_mut() {
            *b = rng.below(256) as u8;
        }
        expected.push(golden::conv3x3(&win, &wbytes));
        sim.set_input(window, &pack(&win));
        sim.clock_cycle(clk);
        if i >= 2 {
            assert_eq!(sim.value(valid_out).to_u64(), Some(1), "cycle {i}");
            assert_eq!(
                sim.value(pixel_out).to_u64(),
                Some(expected[i - 1] as u64),
                "pixel at cycle {i}"
            );
        }
    }
}
