// 3x3 convolution accelerator — the hierarchical MAC-array benchmark
// (paper Table II "Conv_acc"). Three `mac3` lanes each hold a row of
// weights and register the dot product of their window row; the top level
// saturates the lane sum to 16 bits. Latency: window -> lane accumulators
// (1 cycle) -> `pixel_out` (1 more); the `valid` pipeline is one stage
// deeper, so the first window of a burst fills the pipe.
module mac3(
    input wire clk,
    input wire rst,
    input wire load_w,
    input wire [23:0] win,
    input wire [23:0] wt,
    output reg [17:0] psum
);
    reg [23:0] wreg;

    always @(posedge clk) begin
        if (rst) begin
            wreg <= 24'h0;
            psum <= 18'h0;
        end
        else begin
            if (load_w) wreg <= wt;
            psum <= {2'b00, {8'h00, win[7:0]} * {8'h00, wreg[7:0]}}
                  + {2'b00, {8'h00, win[15:8]} * {8'h00, wreg[15:8]}}
                  + {2'b00, {8'h00, win[23:16]} * {8'h00, wreg[23:16]}};
        end
    end
endmodule

module conv_acc(
    input wire clk,
    input wire rst,
    input wire load_w,
    input wire valid_in,
    input wire [71:0] window,
    input wire [71:0] weights,
    output reg [15:0] pixel_out,
    output reg valid_out
);
    wire [17:0] p0, p1, p2;
    reg v0, v1;

    mac3 lane0 (.clk(clk), .rst(rst), .load_w(load_w),
                .win(window[23:0]), .wt(weights[23:0]), .psum(p0));
    mac3 lane1 (.clk(clk), .rst(rst), .load_w(load_w),
                .win(window[47:24]), .wt(weights[47:24]), .psum(p1));
    mac3 lane2 (.clk(clk), .rst(rst), .load_w(load_w),
                .win(window[71:48]), .wt(weights[71:48]), .psum(p2));

    wire [19:0] total = {2'b00, p0} + {2'b00, p1} + {2'b00, p2};

    always @(posedge clk) begin
        if (rst) begin
            pixel_out <= 16'h0;
            valid_out <= 1'b0;
            v0 <= 1'b0;
            v1 <= 1'b0;
        end
        else begin
            pixel_out <= total > 20'h0ffff ? 16'hffff : total[15:0];
            v0 <= valid_in & ~load_w;
            v1 <= v0;
            valid_out <= v1;
        end
    end
endmodule
