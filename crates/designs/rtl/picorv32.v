// Two-phase state-machine CPU with a casez instruction decoder, the
// decode style of PicoRV32 (paper Table II "PicoRV32"): FETCH latches the
// instruction from the internal ROM, EXEC dispatches through a casez with
// wildcard opcode patterns. Accumulator + stack-pointer architecture;
// free-running on clock/reset with pc, acc, sp and the trap flag as the
// observation surface.
module picorv32(
    input wire clk,
    input wire rst,
    output reg [7:0] pc,
    output reg [15:0] acc,
    output reg [15:0] sp,
    output reg trap
);
    reg [1:0] state; // 0 fetch, 1 execute
    reg [15:0] instr;
    reg [15:0] rom;

    always @(*) begin
        case (pc[4:0])
            5'd0: rom = 16'h0011;  // addi 0x11
            5'd1: rom = 16'h1234;  // xorh 0x34
            5'd2: rom = 16'h4102;  // spadd 2
            5'd3: rom = 16'h2100;  // rol in acc[0]=1
            5'd4: rom = 16'h00e3;  // addi 0xe3
            5'd5: rom = 16'hc000;  // and sp
            5'd6: rom = 16'h2000;  // rol in 0
            5'd7: rom = 16'h1477;  // xorh 0x77
            5'd8: rom = 16'h41fe;  // spadd -2
            5'd9: rom = 16'h800c;  // blt: branch to 12 if acc negative
            5'd10: rom = 16'h0019; // addi 0x19
            5'd11: rom = 16'h2100; // rol in 1
            5'd12: rom = 16'h4103; // spadd 3
            5'd13: rom = 16'hc000; // and sp
            5'd14: rom = 16'h1455; // xorh 0x55
            5'd15: rom = 16'h0007; // addi 7
            5'd16: rom = 16'h2000; // rol in 0
            5'd17: rom = 16'h8003; // blt: branch to 3 if acc negative
            5'd18: rom = 16'h00c1; // addi 0xc1
            default: rom = 16'he000; // trap-toggle, jump to 0
        endcase
    end

    always @(posedge clk) begin
        if (rst) begin
            state <= 2'd0;
            pc <= 8'h0;
            acc <= 16'h0;
            sp <= 16'h0100;
            trap <= 1'b0;
            instr <= 16'h0;
        end
        else if (state == 2'd0) begin
            instr <= rom;
            state <= 2'd1;
        end
        else begin
            state <= 2'd0;
            pc <= pc[4:0] == 5'd19 ? 8'h0 : pc + 8'h1;
            casez (instr[15:8])
                8'b0000_????: acc <= acc + {8'h00, instr[7:0]};
                8'b0001_????: acc <= acc ^ {instr[7:0], 8'h00};
                8'b001?_????: acc <= {acc[14:0], instr[8]};
                8'b0100_????: sp <= sp + {{8{instr[7]}}, instr[7:0]};
                8'b10??_????: begin
                    if (acc[15]) pc <= {3'h0, instr[4:0]};
                end
                8'b110?_????: acc <= acc & sp;
                8'b111?_????: begin
                    trap <= ~trap;
                    pc <= 8'h0;
                end
                default: ;
            endcase
        end
    end
endmodule
