// Multicycle accumulator CPU in the spirit of the Sodor 5-stage teaching
// cores (paper Table II "Sodor Core"): a four-state FETCH/DECODE/EXEC/WB
// control FSM over a 16-instruction internal program ROM. Free-running:
// only clock and reset are driven; the architectural state (pc, acc,
// registers, output port) is the observation surface.
module sodor_core(
    input wire clk,
    input wire rst,
    output reg [7:0] pc,
    output reg [15:0] acc,
    output reg [15:0] outp,
    output reg [1:0] state
);
    reg [15:0] instr;
    reg [15:0] r0, r1, r2, r3;
    reg [15:0] alu;
    reg [15:0] rom;
    reg [15:0] rv;
    reg [3:0] op;
    reg [1:0] rs;
    reg [7:0] imm;

    // Program ROM: {op[3:0], rs[1:0], 2'b00, imm[7:0]}.
    always @(*) begin
        case (pc[3:0])
            4'd0: rom = {4'd0, 2'd0, 2'b00, 8'h05};  // ADDI 0x05
            4'd1: rom = {4'd2, 2'd1, 2'b00, 8'h00};  // MOV  r1 <- acc
            4'd2: rom = {4'd1, 2'd0, 2'b00, 8'ha3};  // XORI 0xa3
            4'd3: rom = {4'd3, 2'd1, 2'b00, 8'h00};  // ADD  r1
            4'd4: rom = {4'd5, 2'd0, 2'b00, 8'h00};  // ROL
            4'd5: rom = {4'd2, 2'd2, 2'b00, 8'h00};  // MOV  r2 <- acc
            4'd6: rom = {4'd6, 2'd0, 2'b00, 8'hf7};  // ANDI 0xf7f7
            4'd7: rom = {4'd4, 2'd0, 2'b00, 8'h00};  // OUT
            4'd8: rom = {4'd7, 2'd2, 2'b00, 8'h00};  // SUB  r2
            4'd9: rom = {4'd0, 2'd0, 2'b00, 8'h1b};  // ADDI 0x1b
            4'd10: rom = {4'd2, 2'd3, 2'b00, 8'h00}; // MOV  r3 <- acc
            4'd11: rom = {4'd3, 2'd3, 2'b00, 8'h00}; // ADD  r3
            4'd12: rom = {4'd8, 2'd0, 2'b00, 8'h00}; // SWAP
            4'd13: rom = {4'd1, 2'd0, 2'b00, 8'h5c}; // XORI 0x5c
            4'd14: rom = {4'd3, 2'd0, 2'b00, 8'h00}; // ADD  r0
            default: rom = {4'd4, 2'd0, 2'b00, 8'h00}; // OUT
        endcase
    end

    // Register-file read mux for the EXEC stage.
    always @(*) begin
        case (rs)
            2'd0: rv = r0;
            2'd1: rv = r1;
            2'd2: rv = r2;
            default: rv = r3;
        endcase
    end

    always @(posedge clk) begin
        if (rst) begin
            pc <= 8'h0;
            acc <= 16'h0;
            outp <= 16'h0;
            state <= 2'd0;
            instr <= 16'h0;
            r0 <= 16'h0;
            r1 <= 16'h0;
            r2 <= 16'h0;
            r3 <= 16'h0;
            alu <= 16'h0;
            op <= 4'h0;
            rs <= 2'h0;
            imm <= 8'h0;
        end
        else begin
            case (state)
                2'd0: begin // FETCH
                    instr <= rom;
                    state <= 2'd1;
                end
                2'd1: begin // DECODE
                    op <= instr[15:12];
                    rs <= instr[11:10];
                    imm <= instr[7:0];
                    state <= 2'd2;
                end
                2'd2: begin // EXEC
                    case (op)
                        4'd0: alu <= acc + {8'h00, imm};
                        4'd1: alu <= acc ^ {8'h00, imm};
                        4'd3: alu <= acc + rv;
                        4'd4: alu <= outp ^ acc;
                        4'd5: alu <= {acc[14:0], acc[15]};
                        4'd6: alu <= acc & {imm, imm};
                        4'd7: alu <= acc - rv;
                        4'd8: alu <= {acc[7:0], acc[15:8]};
                        default: alu <= acc;
                    endcase
                    state <= 2'd3;
                end
                default: begin // WB
                    case (op)
                        4'd2: begin
                            case (rs)
                                2'd0: r0 <= acc;
                                2'd1: r1 <= acc;
                                2'd2: r2 <= acc;
                                default: r3 <= acc;
                            endcase
                        end
                        4'd4: outp <= alu;
                        default: acc <= alu;
                    endcase
                    pc <= pc[3:0] == 4'd15 ? 8'h0 : pc + 8'h1;
                    state <= 2'd0;
                end
            endcase
        end
    end
endmodule
