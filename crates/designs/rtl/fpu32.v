// Single-precision add/multiply unit — the branch-heavy datapath benchmark
// (paper Table II "FPU"). Truncating rounding, flush-to-zero on
// zero-exponent operands and on underflow, saturate-to-infinity on
// overflow; no NaN handling. This simplification contract is mirrored
// exactly by `eraser_designs::golden::fpu32`. One register stage: after a
// rising edge, `z` holds the result for the inputs sampled at that edge.
module fpu32(
    input wire clk,
    input wire rst,
    input wire start,
    input wire op_mul,
    input wire [31:0] x,
    input wire [31:0] y,
    output reg [31:0] z
);
    reg sx, sy, sl;
    reg [7:0] ex, ey, el, es, d;
    reg [22:0] mx, my, mant;
    reg [23:0] ml, ms, shifted, diff, norm;
    reg [47:0] prod;
    reg [9:0] exp10;
    reg [24:0] sum;
    reg [4:0] lead;
    reg [31:0] res;
    integer i;

    always @(posedge clk) begin
        if (rst) z <= 32'h0;
        else if (start) begin
            sx = x[31];
            sy = y[31];
            ex = x[30:23];
            ey = y[30:23];
            mx = x[22:0];
            my = y[22:0];
            if (op_mul) begin
                // Multiply: full 48-bit product of the hidden-bit mantissas,
                // then a single normalization step and truncation.
                if (ex == 8'h0 || ey == 8'h0) res = 32'h0;
                else begin
                    prod = {24'h0, 1'b1, mx} * {24'h0, 1'b1, my};
                    if (prod[47]) begin
                        exp10 = {2'b00, ex} + {2'b00, ey} + 10'd1;
                        mant = prod[46:24];
                    end
                    else begin
                        exp10 = {2'b00, ex} + {2'b00, ey};
                        mant = prod[45:23];
                    end
                    if (exp10 < 10'd128) res = 32'h0;
                    else if (exp10 >= 10'd382) res = {sx ^ sy, 8'hff, 23'h0};
                    else res = {sx ^ sy, exp10[7:0] - 8'd127, mant};
                end
            end
            else begin
                // Add: align the smaller magnitude, add or subtract by sign,
                // renormalize with a leading-one scan.
                if (ex == 8'h0) res = ey == 8'h0 ? 32'h0 : y;
                else if (ey == 8'h0) res = x;
                else begin
                    if ({ex, mx} < {ey, my}) begin
                        sl = sy;
                        el = ey;
                        ml = {1'b1, my};
                        es = ex;
                        ms = {1'b1, mx};
                    end
                    else begin
                        sl = sx;
                        el = ex;
                        ml = {1'b1, mx};
                        es = ey;
                        ms = {1'b1, my};
                    end
                    d = el - es;
                    if (d > 8'd24) res = {sl, el, ml[22:0]};
                    else begin
                        shifted = ms >> d;
                        if (sx == sy) begin
                            sum = {1'b0, ml} + {1'b0, shifted};
                            if (sum[24]) begin
                                if (el == 8'hfe) res = {sl, 8'hff, 23'h0};
                                else res = {sl, el + 8'h1, sum[23:1]};
                            end
                            else res = {sl, el, sum[22:0]};
                        end
                        else begin
                            diff = ml - shifted;
                            if (diff == 24'h0) res = 32'h0;
                            else begin
                                lead = 5'd0;
                                for (i = 0; i < 24; i = i + 1)
                                    if (diff[i]) lead = i[4:0];
                                if ({2'b00, el} + {5'h0, lead} < 10'd24) res = 32'h0;
                                else begin
                                    norm = diff << (5'd23 - lead);
                                    res = {sl, el - (8'd23 - {3'b000, lead}), norm[22:0]};
                                end
                            end
                        end
                    end
                end
            end
            z <= res;
        end
    end
endmodule
