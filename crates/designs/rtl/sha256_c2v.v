// SHA-256 single-block compression core, generator-flattened style — the
// same function as `sha256_hv` but with all round combinational logic
// flattened into continuous assigns (RTL nodes), the way a Chisel/C2V-style
// generator emits it (paper Table II "SHA256_C2V"). The behavioral node is
// reduced to register updates, so behavioral work is a negligible share —
// the ablation contrast circuit of Fig. 7. Interface and bit-exact
// behavior are identical to `sha256_hv`.
module sha256_c2v(
    input wire clk,
    input wire rst,
    input wire start,
    input wire [511:0] block_in,
    output reg [255:0] digest,
    output reg done
);
    reg [1:0] state; // 0 idle, 1 rounds, 2 finalize
    reg [6:0] round;
    reg [31:0] a, b, c, d, e, f, g, h;
    reg [31:0] w0, w1, w2, w3, w4, w5, w6, w7;
    reg [31:0] w8, w9, w10, w11, w12, w13, w14, w15;

    wire [5:0] r = round[5:0];
    wire [31:0] kt =
        r == 6'd0 ? 32'h428a2f98 : r == 6'd1 ? 32'h71374491 :
        r == 6'd2 ? 32'hb5c0fbcf : r == 6'd3 ? 32'he9b5dba5 :
        r == 6'd4 ? 32'h3956c25b : r == 6'd5 ? 32'h59f111f1 :
        r == 6'd6 ? 32'h923f82a4 : r == 6'd7 ? 32'hab1c5ed5 :
        r == 6'd8 ? 32'hd807aa98 : r == 6'd9 ? 32'h12835b01 :
        r == 6'd10 ? 32'h243185be : r == 6'd11 ? 32'h550c7dc3 :
        r == 6'd12 ? 32'h72be5d74 : r == 6'd13 ? 32'h80deb1fe :
        r == 6'd14 ? 32'h9bdc06a7 : r == 6'd15 ? 32'hc19bf174 :
        r == 6'd16 ? 32'he49b69c1 : r == 6'd17 ? 32'hefbe4786 :
        r == 6'd18 ? 32'h0fc19dc6 : r == 6'd19 ? 32'h240ca1cc :
        r == 6'd20 ? 32'h2de92c6f : r == 6'd21 ? 32'h4a7484aa :
        r == 6'd22 ? 32'h5cb0a9dc : r == 6'd23 ? 32'h76f988da :
        r == 6'd24 ? 32'h983e5152 : r == 6'd25 ? 32'ha831c66d :
        r == 6'd26 ? 32'hb00327c8 : r == 6'd27 ? 32'hbf597fc7 :
        r == 6'd28 ? 32'hc6e00bf3 : r == 6'd29 ? 32'hd5a79147 :
        r == 6'd30 ? 32'h06ca6351 : r == 6'd31 ? 32'h14292967 :
        r == 6'd32 ? 32'h27b70a85 : r == 6'd33 ? 32'h2e1b2138 :
        r == 6'd34 ? 32'h4d2c6dfc : r == 6'd35 ? 32'h53380d13 :
        r == 6'd36 ? 32'h650a7354 : r == 6'd37 ? 32'h766a0abb :
        r == 6'd38 ? 32'h81c2c92e : r == 6'd39 ? 32'h92722c85 :
        r == 6'd40 ? 32'ha2bfe8a1 : r == 6'd41 ? 32'ha81a664b :
        r == 6'd42 ? 32'hc24b8b70 : r == 6'd43 ? 32'hc76c51a3 :
        r == 6'd44 ? 32'hd192e819 : r == 6'd45 ? 32'hd6990624 :
        r == 6'd46 ? 32'hf40e3585 : r == 6'd47 ? 32'h106aa070 :
        r == 6'd48 ? 32'h19a4c116 : r == 6'd49 ? 32'h1e376c08 :
        r == 6'd50 ? 32'h2748774c : r == 6'd51 ? 32'h34b0bcb5 :
        r == 6'd52 ? 32'h391c0cb3 : r == 6'd53 ? 32'h4ed8aa4a :
        r == 6'd54 ? 32'h5b9cca4f : r == 6'd55 ? 32'h682e6ff3 :
        r == 6'd56 ? 32'h748f82ee : r == 6'd57 ? 32'h78a5636f :
        r == 6'd58 ? 32'h84c87814 : r == 6'd59 ? 32'h8cc70208 :
        r == 6'd60 ? 32'h90befffa : r == 6'd61 ? 32'ha4506ceb :
        r == 6'd62 ? 32'hbef9a3f7 : 32'hc67178f2;

    wire [31:0] s1 = {e[5:0], e[31:6]} ^ {e[10:0], e[31:11]} ^ {e[24:0], e[31:25]};
    wire [31:0] ch = (e & f) ^ (~e & g);
    wire [31:0] t1 = h + s1 + ch + kt + w0;
    wire [31:0] s0 = {a[1:0], a[31:2]} ^ {a[12:0], a[31:13]} ^ {a[21:0], a[31:22]};
    wire [31:0] maj = (a & b) ^ (a & c) ^ (b & c);
    wire [31:0] t2 = s0 + maj;
    wire [31:0] a_next = t1 + t2;
    wire [31:0] e_next = d + t1;
    wire [31:0] ws0 = {w1[6:0], w1[31:7]} ^ {w1[17:0], w1[31:18]} ^ (w1 >> 3);
    wire [31:0] ws1 = {w14[16:0], w14[31:17]} ^ {w14[18:0], w14[31:19]} ^ (w14 >> 10);
    wire [31:0] wnext = w0 + ws0 + w9 + ws1;
    wire [255:0] final_digest = {32'h6a09e667 + a, 32'hbb67ae85 + b,
                                 32'h3c6ef372 + c, 32'ha54ff53a + d,
                                 32'h510e527f + e, 32'h9b05688c + f,
                                 32'h1f83d9ab + g, 32'h5be0cd19 + h};

    always @(posedge clk) begin
        if (rst) begin
            state <= 2'd0;
            round <= 7'd0;
            digest <= 256'h0;
            done <= 1'b0;
        end
        else if (state == 2'd0) begin
            if (start) begin
                w0 <= block_in[511:480];
                w1 <= block_in[479:448];
                w2 <= block_in[447:416];
                w3 <= block_in[415:384];
                w4 <= block_in[383:352];
                w5 <= block_in[351:320];
                w6 <= block_in[319:288];
                w7 <= block_in[287:256];
                w8 <= block_in[255:224];
                w9 <= block_in[223:192];
                w10 <= block_in[191:160];
                w11 <= block_in[159:128];
                w12 <= block_in[127:96];
                w13 <= block_in[95:64];
                w14 <= block_in[63:32];
                w15 <= block_in[31:0];
                a <= 32'h6a09e667;
                b <= 32'hbb67ae85;
                c <= 32'h3c6ef372;
                d <= 32'ha54ff53a;
                e <= 32'h510e527f;
                f <= 32'h9b05688c;
                g <= 32'h1f83d9ab;
                h <= 32'h5be0cd19;
                round <= 7'd0;
                done <= 1'b0;
                state <= 2'd1;
            end
        end
        else if (state == 2'd1) begin
            h <= g;
            g <= f;
            f <= e;
            e <= e_next;
            d <= c;
            c <= b;
            b <= a;
            a <= a_next;
            w0 <= w1;
            w1 <= w2;
            w2 <= w3;
            w3 <= w4;
            w4 <= w5;
            w5 <= w6;
            w6 <= w7;
            w7 <= w8;
            w8 <= w9;
            w9 <= w10;
            w10 <= w11;
            w11 <= w12;
            w12 <= w13;
            w13 <= w14;
            w14 <= w15;
            w15 <= wnext;
            round <= round + 7'd1;
            if (round == 7'd63) state <= 2'd2;
        end
        else begin
            digest <= final_digest;
            done <= 1'b1;
            state <= 2'd0;
        end
    end
endmodule
