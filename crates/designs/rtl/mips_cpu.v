// Single-cycle MIPS-flavored CPU with an assign-heavy ALU (paper Table II
// "MIPS CPU"): every ALU function is a dedicated continuous assign (RTL
// nodes) selected by a flat result mux, with the register file and pc in a
// single always block. Free-running on clock/reset; pc, the s/t registers
// and the hi/lo accumulators are the observation surface.
module mips_cpu(
    input wire clk,
    input wire rst,
    output reg [7:0] pc,
    output wire [15:0] alu_y,
    output reg [15:0] hi,
    output reg [15:0] lo
);
    reg [15:0] instr;
    reg [15:0] s, t;

    // Program ROM: {wb[1:0], fn[2:0], rt, 2'b00, imm[7:0]}.
    // wb: 0 -> s, 1 -> t, 2 -> hi, 3 -> lo.
    always @(*) begin
        case (pc[3:0])
            4'd0: instr = {2'd0, 3'd7, 1'b0, 2'b00, 8'h2b}; // s = s + 0x2b
            4'd1: instr = {2'd1, 3'd7, 1'b0, 2'b00, 8'h91}; // t = s + 0x91
            4'd2: instr = {2'd2, 3'd0, 1'b0, 2'b00, 8'h00}; // hi = s + t
            4'd3: instr = {2'd0, 3'd4, 1'b0, 2'b00, 8'h00}; // s = s ^ t
            4'd4: instr = {2'd3, 3'd6, 1'b0, 2'b00, 8'h00}; // lo = s << t[3:0]
            4'd5: instr = {2'd1, 3'd1, 1'b0, 2'b00, 8'h00}; // t = s - t
            4'd6: instr = {2'd0, 3'd2, 1'b0, 2'b00, 8'h00}; // s = s & t
            4'd7: instr = {2'd2, 3'd3, 1'b0, 2'b00, 8'h00}; // hi = s | t
            4'd8: instr = {2'd1, 3'd7, 1'b1, 2'b00, 8'h63}; // t = t + 0x63
            4'd9: instr = {2'd0, 3'd5, 1'b0, 2'b00, 8'h00}; // s = s < t
            4'd10: instr = {2'd3, 3'd0, 1'b0, 2'b00, 8'h00}; // lo = s + t
            4'd11: instr = {2'd0, 3'd7, 1'b1, 2'b00, 8'hd9}; // s = t + 0xd9
            4'd12: instr = {2'd1, 3'd4, 1'b0, 2'b00, 8'h00}; // t = s ^ t
            4'd13: instr = {2'd2, 3'd1, 1'b0, 2'b00, 8'h00}; // hi = s - t
            4'd14: instr = {2'd0, 3'd3, 1'b0, 2'b00, 8'h00}; // s = s | t
            default: instr = {2'd3, 3'd2, 1'b0, 2'b00, 8'h00}; // lo = s & t
        endcase
    end

    wire [1:0] wb = instr[15:14];
    wire [2:0] fn = instr[13:11];
    wire rt = instr[10];
    wire [7:0] imm = instr[7:0];

    // The assign-heavy ALU: one RTL expression tree per function.
    wire [15:0] base = rt ? t : s;
    wire [15:0] immx = {8'h00, imm};
    wire [15:0] add_r = s + t;
    wire [15:0] sub_r = s - t;
    wire [15:0] and_r = s & t;
    wire [15:0] or_r = s | t;
    wire [15:0] xor_r = s ^ t;
    wire [15:0] slt_r = {15'h0, s < t};
    wire [15:0] sll_r = s << t[3:0];
    wire [15:0] addi_r = base + immx;

    assign alu_y =
        fn == 3'd0 ? add_r :
        fn == 3'd1 ? sub_r :
        fn == 3'd2 ? and_r :
        fn == 3'd3 ? or_r :
        fn == 3'd4 ? xor_r :
        fn == 3'd5 ? slt_r :
        fn == 3'd6 ? sll_r :
        addi_r;

    always @(posedge clk) begin
        if (rst) begin
            pc <= 8'h0;
            s <= 16'h0;
            t <= 16'h0;
            hi <= 16'h0;
            lo <= 16'h0;
        end
        else begin
            pc <= pc[3:0] == 4'd15 ? 8'h0 : pc + 8'h1;
            case (wb)
                2'd0: s <= alu_y;
                2'd1: t <= alu_y;
                2'd2: hi <= alu_y;
                default: lo <= alu_y;
            endcase
        end
    end
endmodule
