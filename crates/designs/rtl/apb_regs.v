// APB slave with an eight-word register file — the protocol-FSM benchmark
// (paper Table II "APB"). Implements the AMBA APB3 SETUP/ACCESS handshake
// with `pready` asserted in the ACCESS phase and `pslverr` for addresses
// outside the register file. Writes land at the end of ACCESS; reads
// return the addressed register (zero for out-of-range reads).
module apb_regs(
    input wire pclk,
    input wire presetn,
    input wire psel,
    input wire penable,
    input wire pwrite,
    input wire [4:0] paddr,
    input wire [31:0] pwdata,
    output reg [31:0] prdata,
    output reg pready,
    output reg pslverr
);
    reg [31:0] r0, r1, r2, r3, r4, r5, r6, r7;
    reg [1:0] state; // 0 idle, 1 setup seen, 2 access done

    wire addr_ok = paddr < 5'd8;

    always @(posedge pclk) begin
        if (!presetn) begin
            r0 <= 32'h0;
            r1 <= 32'h0;
            r2 <= 32'h0;
            r3 <= 32'h0;
            r4 <= 32'h0;
            r5 <= 32'h0;
            r6 <= 32'h0;
            r7 <= 32'h0;
            prdata <= 32'h0;
            pready <= 1'b0;
            pslverr <= 1'b0;
            state <= 2'd0;
        end
        else begin
            // Protocol FSM: track SETUP -> ACCESS; pready covers ACCESS.
            if (psel & ~penable) state <= 2'd1;
            else if (psel & penable) state <= 2'd2;
            else state <= 2'd0;
            pready <= psel & ~penable;
            if (psel & penable) begin
                pslverr <= ~addr_ok;
                if (pwrite) begin
                    if (addr_ok) begin
                        case (paddr[2:0])
                            3'd0: r0 <= pwdata;
                            3'd1: r1 <= pwdata;
                            3'd2: r2 <= pwdata;
                            3'd3: r3 <= pwdata;
                            3'd4: r4 <= pwdata;
                            3'd5: r5 <= pwdata;
                            3'd6: r6 <= pwdata;
                            default: r7 <= pwdata;
                        endcase
                    end
                end
                else begin
                    if (addr_ok) begin
                        case (paddr[2:0])
                            3'd0: prdata <= r0;
                            3'd1: prdata <= r1;
                            3'd2: prdata <= r2;
                            3'd3: prdata <= r3;
                            3'd4: prdata <= r4;
                            3'd5: prdata <= r5;
                            3'd6: prdata <= r6;
                            default: prdata <= r7;
                        endcase
                    end
                    else prdata <= 32'h0;
                end
            end
        end
    end
endmodule
