// SHA-256 single-block compression core, handwritten behavioral style —
// the behavioral-node-dominated benchmark (paper Table II "SHA256_HV").
// All round logic lives inside one big edge-triggered always block with
// blocking temporaries (the work profile the ERASER implicit-redundancy
// check targets). Protocol: pulse `start` with `block_in` valid for one
// cycle; 64 round cycles plus one finalize cycle later `done` rises and
// `digest` holds the FIPS 180-4 compression of the block against the
// standard IV. `block_in[511:480]` is message word 0; `digest[255:224]` is
// hash word 0 — both matching `eraser_designs::golden::sha256_compress`.
module sha256_hv(
    input wire clk,
    input wire rst,
    input wire start,
    input wire [511:0] block_in,
    output reg [255:0] digest,
    output reg done
);
    reg [1:0] state; // 0 idle, 1 rounds, 2 finalize
    reg [6:0] round;
    reg [31:0] a, b, c, d, e, f, g, h;
    reg [31:0] w0, w1, w2, w3, w4, w5, w6, w7;
    reg [31:0] w8, w9, w10, w11, w12, w13, w14, w15;
    reg [31:0] kt, s0, s1, ch, maj, t1, t2, ws0, ws1, wnext;

    always @(posedge clk) begin
        if (rst) begin
            state <= 2'd0;
            round <= 7'd0;
            digest <= 256'h0;
            done <= 1'b0;
        end
        else if (state == 2'd0) begin
            if (start) begin
                w0 <= block_in[511:480];
                w1 <= block_in[479:448];
                w2 <= block_in[447:416];
                w3 <= block_in[415:384];
                w4 <= block_in[383:352];
                w5 <= block_in[351:320];
                w6 <= block_in[319:288];
                w7 <= block_in[287:256];
                w8 <= block_in[255:224];
                w9 <= block_in[223:192];
                w10 <= block_in[191:160];
                w11 <= block_in[159:128];
                w12 <= block_in[127:96];
                w13 <= block_in[95:64];
                w14 <= block_in[63:32];
                w15 <= block_in[31:0];
                a <= 32'h6a09e667;
                b <= 32'hbb67ae85;
                c <= 32'h3c6ef372;
                d <= 32'ha54ff53a;
                e <= 32'h510e527f;
                f <= 32'h9b05688c;
                g <= 32'h1f83d9ab;
                h <= 32'h5be0cd19;
                round <= 7'd0;
                done <= 1'b0;
                state <= 2'd1;
            end
        end
        else if (state == 2'd1) begin
            case (round[5:0])
                6'd0: kt = 32'h428a2f98;
                6'd1: kt = 32'h71374491;
                6'd2: kt = 32'hb5c0fbcf;
                6'd3: kt = 32'he9b5dba5;
                6'd4: kt = 32'h3956c25b;
                6'd5: kt = 32'h59f111f1;
                6'd6: kt = 32'h923f82a4;
                6'd7: kt = 32'hab1c5ed5;
                6'd8: kt = 32'hd807aa98;
                6'd9: kt = 32'h12835b01;
                6'd10: kt = 32'h243185be;
                6'd11: kt = 32'h550c7dc3;
                6'd12: kt = 32'h72be5d74;
                6'd13: kt = 32'h80deb1fe;
                6'd14: kt = 32'h9bdc06a7;
                6'd15: kt = 32'hc19bf174;
                6'd16: kt = 32'he49b69c1;
                6'd17: kt = 32'hefbe4786;
                6'd18: kt = 32'h0fc19dc6;
                6'd19: kt = 32'h240ca1cc;
                6'd20: kt = 32'h2de92c6f;
                6'd21: kt = 32'h4a7484aa;
                6'd22: kt = 32'h5cb0a9dc;
                6'd23: kt = 32'h76f988da;
                6'd24: kt = 32'h983e5152;
                6'd25: kt = 32'ha831c66d;
                6'd26: kt = 32'hb00327c8;
                6'd27: kt = 32'hbf597fc7;
                6'd28: kt = 32'hc6e00bf3;
                6'd29: kt = 32'hd5a79147;
                6'd30: kt = 32'h06ca6351;
                6'd31: kt = 32'h14292967;
                6'd32: kt = 32'h27b70a85;
                6'd33: kt = 32'h2e1b2138;
                6'd34: kt = 32'h4d2c6dfc;
                6'd35: kt = 32'h53380d13;
                6'd36: kt = 32'h650a7354;
                6'd37: kt = 32'h766a0abb;
                6'd38: kt = 32'h81c2c92e;
                6'd39: kt = 32'h92722c85;
                6'd40: kt = 32'ha2bfe8a1;
                6'd41: kt = 32'ha81a664b;
                6'd42: kt = 32'hc24b8b70;
                6'd43: kt = 32'hc76c51a3;
                6'd44: kt = 32'hd192e819;
                6'd45: kt = 32'hd6990624;
                6'd46: kt = 32'hf40e3585;
                6'd47: kt = 32'h106aa070;
                6'd48: kt = 32'h19a4c116;
                6'd49: kt = 32'h1e376c08;
                6'd50: kt = 32'h2748774c;
                6'd51: kt = 32'h34b0bcb5;
                6'd52: kt = 32'h391c0cb3;
                6'd53: kt = 32'h4ed8aa4a;
                6'd54: kt = 32'h5b9cca4f;
                6'd55: kt = 32'h682e6ff3;
                6'd56: kt = 32'h748f82ee;
                6'd57: kt = 32'h78a5636f;
                6'd58: kt = 32'h84c87814;
                6'd59: kt = 32'h8cc70208;
                6'd60: kt = 32'h90befffa;
                6'd61: kt = 32'ha4506ceb;
                6'd62: kt = 32'hbef9a3f7;
                default: kt = 32'hc67178f2;
            endcase
            // Round: compression function on the working variables.
            s1 = {e[5:0], e[31:6]} ^ {e[10:0], e[31:11]} ^ {e[24:0], e[31:25]};
            ch = (e & f) ^ (~e & g);
            t1 = h + s1 + ch + kt + w0;
            s0 = {a[1:0], a[31:2]} ^ {a[12:0], a[31:13]} ^ {a[21:0], a[31:22]};
            maj = (a & b) ^ (a & c) ^ (b & c);
            t2 = s0 + maj;
            h <= g;
            g <= f;
            f <= e;
            e <= d + t1;
            d <= c;
            c <= b;
            b <= a;
            a <= t1 + t2;
            // Message schedule: sliding 16-word window, w0 is W[round].
            ws0 = {w1[6:0], w1[31:7]} ^ {w1[17:0], w1[31:18]} ^ (w1 >> 3);
            ws1 = {w14[16:0], w14[31:17]} ^ {w14[18:0], w14[31:19]} ^ (w14 >> 10);
            wnext = w0 + ws0 + w9 + ws1;
            w0 <= w1;
            w1 <= w2;
            w2 <= w3;
            w3 <= w4;
            w4 <= w5;
            w5 <= w6;
            w6 <= w7;
            w7 <= w8;
            w8 <= w9;
            w9 <= w10;
            w10 <= w11;
            w11 <= w12;
            w12 <= w13;
            w13 <= w14;
            w14 <= w15;
            w15 <= wnext;
            round <= round + 7'd1;
            if (round == 7'd63) state <= 2'd2;
        end
        else begin
            digest <= {32'h6a09e667 + a, 32'hbb67ae85 + b, 32'h3c6ef372 + c,
                       32'ha54ff53a + d, 32'h510e527f + e, 32'h9b05688c + f,
                       32'h1f83d9ab + g, 32'h5be0cd19 + h};
            done <= 1'b1;
            state <= 2'd0;
        end
    end
endmodule
