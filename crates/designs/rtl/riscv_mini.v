// Single-cycle three-register RISC machine in the spirit of riscv-mini
// (paper Table II "RISCV Mini"): every cycle fetches from the internal
// 16-instruction ROM, reads a register, computes in the comb ALU and
// writes back — pc, the register file and the ALU result are the
// observation surface. A conditional backward branch keeps the program
// looping through distinct phases.
module riscv_mini(
    input wire clk,
    input wire rst,
    output reg [7:0] pc,
    output wire [15:0] alu_out,
    output reg [15:0] x1,
    output reg [15:0] x2,
    output reg [15:0] x3
);
    reg [15:0] instr;
    reg [15:0] va;

    // Program ROM: {op[3:0], rd[1:0], ra[1:0], imm[7:0]}.
    always @(*) begin
        case (pc[3:0])
            4'd0: instr = {4'd0, 2'd1, 2'd1, 8'h07};  // addi x1, x1, 7
            4'd1: instr = {4'd1, 2'd2, 2'd1, 8'h3c};  // xori x2, x1, 0x3c
            4'd2: instr = {4'd2, 2'd3, 2'd2, 8'h00};  // sll1 x3, x2
            4'd3: instr = {4'd0, 2'd3, 2'd3, 8'hfe};  // addi x3, x3, 0xfe
            4'd4: instr = {4'd3, 2'd1, 2'd2, 8'h00};  // and  x1, x2 (acc style)
            4'd5: instr = {4'd4, 2'd2, 2'd3, 8'h00};  // or   x2, x3
            4'd6: instr = {4'd5, 2'd1, 2'd1, 8'h55};  // xorr x1, x1, 0x55aa mix
            4'd7: instr = {4'd6, 2'd3, 2'd1, 8'h00};  // slt  x3, x1 < x2
            4'd8: instr = {4'd0, 2'd2, 2'd2, 8'h11};  // addi x2, x2, 0x11
            4'd9: instr = {4'd7, 2'd0, 2'd3, 8'h00};  // bnez x3, +0 (fallthrough pc 0?) no: target imm
            4'd10: instr = {4'd2, 2'd1, 2'd1, 8'h00}; // sll1 x1, x1
            4'd11: instr = {4'd1, 2'd3, 2'd2, 8'hc7}; // xori x3, x2, 0xc7
            4'd12: instr = {4'd0, 2'd1, 2'd3, 8'h02}; // addi x1, x3, 2
            4'd13: instr = {4'd3, 2'd2, 2'd1, 8'h00}; // and  x2, x1
            4'd14: instr = {4'd7, 2'd0, 2'd1, 8'h03}; // bnez x1 -> pc 3
            default: instr = {4'd0, 2'd1, 2'd0, 8'h01}; // addi x1, x0, 1
        endcase
    end

    wire [3:0] op = instr[15:12];
    wire [1:0] rd = instr[11:10];
    wire [1:0] ra = instr[9:8];
    wire [7:0] imm = instr[7:0];

    // Register read mux (x0 is hardwired zero).
    always @(*) begin
        case (ra)
            2'd0: va = 16'h0;
            2'd1: va = x1;
            2'd2: va = x2;
            default: va = x3;
        endcase
    end

    assign alu_out =
        op == 4'd0 ? va + {8'h00, imm} :
        op == 4'd1 ? va ^ {8'h00, imm} :
        op == 4'd2 ? {va[14:0], 1'b0} :
        op == 4'd3 ? va & x2 :
        op == 4'd4 ? va | x3 :
        op == 4'd5 ? va ^ {imm, imm} :
        op == 4'd6 ? {15'h0, va < x2} :
        va;

    always @(posedge clk) begin
        if (rst) begin
            pc <= 8'h0;
            x1 <= 16'h0;
            x2 <= 16'h0;
            x3 <= 16'h0;
        end
        else begin
            if (op == 4'd7 && va != 16'h0) pc <= {4'h0, imm[3:0]};
            else pc <= pc[3:0] == 4'd15 ? 8'h0 : pc + 8'h1;
            if (op != 4'd7) begin
                case (rd)
                    2'd1: x1 <= alu_out;
                    2'd2: x2 <= alu_out;
                    2'd3: x3 <= alu_out;
                    default: ;
                endcase
            end
        end
    end
endmodule
