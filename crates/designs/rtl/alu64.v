// 64-bit ALU with a behavioral case decode — the wide-datapath benchmark
// (paper Table II "ALU"). One register stage: after a rising edge, the
// outputs hold f(a, b, op) of the inputs sampled at that edge. The opcode
// map matches `eraser_designs::golden::alu64` bit for bit.
module alu64(
    input wire clk,
    input wire rst,
    input wire start,
    input wire [63:0] a,
    input wire [63:0] b,
    input wire [3:0] op,
    output reg [63:0] result,
    output reg zero,
    output reg carry
);
    reg [63:0] tmp;
    reg c;

    always @(posedge clk) begin
        if (rst) begin
            result <= 64'h0;
            zero <= 1'b0;
            carry <= 1'b0;
        end
        else if (start) begin
            c = 1'b0;
            case (op)
                4'd0: begin tmp = a + b; c = tmp < a; end
                4'd1: begin tmp = a - b; c = a < b; end
                4'd2: tmp = a & b;
                4'd3: tmp = a | b;
                4'd4: tmp = a ^ b;
                4'd5: tmp = ~(a | b);
                4'd6: tmp = a << b[5:0];
                4'd7: tmp = a >> b[5:0];
                4'd8: tmp = {63'h0, a < b};
                4'd9: tmp = a * b;
                4'd10: tmp = (a << 32) | {32'h0, b[31:0]};
                4'd11: tmp = a + {b[31:0], 32'h0};
                4'd12: tmp = (a >> 32) ^ {32'h0, b[31:0]};
                default: tmp = a;
            endcase
            result <= tmp;
            zero <= tmp == 64'h0;
            carry <= c;
        end
    end
endmodule
