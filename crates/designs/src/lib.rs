//! The benchmark suite of the ERASER evaluation (paper Table II).
//!
//! Ten designs written in the frontend's Verilog subset, mirroring the
//! *character* of the paper's benchmarks (see `DESIGN.md` for the
//! substitution rationale):
//!
//! | Benchmark | Character |
//! |---|---|
//! | `Alu64` | wide arithmetic datapath, behavioral case decode |
//! | `Fpu32` | branch-heavy floating-point add/multiply |
//! | `Sha256Hv` | behavioral-node-dominated crypto rounds |
//! | `Apb` | protocol FSM + register file |
//! | `SodorCore` | multicycle CPU (FSM) |
//! | `RiscvMini` | single-cycle CPU |
//! | `PicoRv32` | state-machine CPU with casez decoder |
//! | `ConvAcc` | hierarchical MAC array accelerator |
//! | `Sha256C2v` | same function as `Sha256Hv`, flattened into RTL nodes |
//! | `MipsCpu` | single-cycle CPU, assign-heavy ALU |
//!
//! Each benchmark provides its compiled [`Design`], a deterministic
//! [`Stimulus`] generator, and a fault-list configuration; golden software
//! models for the datapath designs live in [`golden`].
//!
//! The [`DesignSource`] layer generalizes this: benchmarks, external
//! Verilog files, and Yosys-JSON netlists (including the bundled
//! gate-level fixtures from [`netlist_fixtures`]) all resolve to the same
//! design + stimulus + fault-config bundle.

pub mod golden;
mod source;
mod stim;

pub use source::{
    netlist_fixtures, DesignSource, COUNTER8_GATE_JSON, MAC16_GATE_JSON, NETLIST_FIXTURE_NAMES,
};

use eraser_fault::FaultListConfig;
use eraser_frontend::compile;
use eraser_ir::Design;
use eraser_sim::Stimulus;

/// Simple deterministic PRNG (64-bit LCG, top bits) used by all stimulus
/// generators — identical streams on every run and platform.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Lcg {
            state: seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1),
        }
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 1 ^ self.state >> 33
    }

    /// Next value in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// One benchmark of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// 64-bit ALU.
    Alu64,
    /// Floating-point unit.
    Fpu32,
    /// SHA-256, handwritten behavioral style.
    Sha256Hv,
    /// APB slave with register file.
    Apb,
    /// Multicycle CPU.
    SodorCore,
    /// Single-cycle CPU.
    RiscvMini,
    /// State-machine CPU with casez decoder.
    PicoRv32,
    /// Convolution accelerator.
    ConvAcc,
    /// SHA-256, flattened generator style.
    Sha256C2v,
    /// MIPS-flavored CPU.
    MipsCpu,
}

impl Benchmark {
    /// All benchmarks, in the paper's Table II order.
    pub fn all() -> [Benchmark; 10] {
        [
            Benchmark::Alu64,
            Benchmark::Fpu32,
            Benchmark::Sha256Hv,
            Benchmark::Apb,
            Benchmark::SodorCore,
            Benchmark::RiscvMini,
            Benchmark::PicoRv32,
            Benchmark::ConvAcc,
            Benchmark::Sha256C2v,
            Benchmark::MipsCpu,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Alu64 => "ALU",
            Benchmark::Fpu32 => "FPU",
            Benchmark::Sha256Hv => "SHA256_HV",
            Benchmark::Apb => "APB",
            Benchmark::SodorCore => "Sodor Core",
            Benchmark::RiscvMini => "RISCV Mini",
            Benchmark::PicoRv32 => "PicoRV32",
            Benchmark::ConvAcc => "Conv_acc",
            Benchmark::Sha256C2v => "SHA256_C2V",
            Benchmark::MipsCpu => "MIPS CPU",
        }
    }

    /// Verilog source text.
    pub fn source(self) -> &'static str {
        match self {
            Benchmark::Alu64 => include_str!("../rtl/alu64.v"),
            Benchmark::Fpu32 => include_str!("../rtl/fpu32.v"),
            Benchmark::Sha256Hv => include_str!("../rtl/sha256_hv.v"),
            Benchmark::Apb => include_str!("../rtl/apb_regs.v"),
            Benchmark::SodorCore => include_str!("../rtl/sodor_core.v"),
            Benchmark::RiscvMini => include_str!("../rtl/riscv_mini.v"),
            Benchmark::PicoRv32 => include_str!("../rtl/picorv32.v"),
            Benchmark::ConvAcc => include_str!("../rtl/conv_acc.v"),
            Benchmark::Sha256C2v => include_str!("../rtl/sha256_c2v.v"),
            Benchmark::MipsCpu => include_str!("../rtl/mips_cpu.v"),
        }
    }

    /// Top module name.
    pub fn top(self) -> &'static str {
        match self {
            Benchmark::Alu64 => "alu64",
            Benchmark::Fpu32 => "fpu32",
            Benchmark::Sha256Hv => "sha256_hv",
            Benchmark::Apb => "apb_regs",
            Benchmark::SodorCore => "sodor_core",
            Benchmark::RiscvMini => "riscv_mini",
            Benchmark::PicoRv32 => "picorv32",
            Benchmark::ConvAcc => "conv_acc",
            Benchmark::Sha256C2v => "sha256_c2v",
            Benchmark::MipsCpu => "mips_cpu",
        }
    }

    /// Compiles the benchmark to an elaborated design.
    ///
    /// # Panics
    ///
    /// Panics if the bundled source fails to compile — a build defect, not
    /// a runtime condition.
    pub fn build(self) -> Design {
        compile(self.source(), Some(self.top()))
            .unwrap_or_else(|e| panic!("bundled benchmark {} failed to compile: {e}", self.name()))
    }

    /// The clock/reset-style input names excluded from fault injection.
    fn excluded_names(self) -> Vec<String> {
        match self {
            Benchmark::Apb => vec!["pclk".into(), "presetn".into()],
            _ => vec!["clk".into(), "rst".into()],
        }
    }

    /// Fault-list configuration: per-bit stuck-at faults on named wires and
    /// regs, capped per design to keep campaign runtimes balanced (the
    /// paper's fault counts are of the same order).
    pub fn fault_config(self) -> FaultListConfig {
        let max_faults = match self {
            Benchmark::Alu64 => None,
            Benchmark::Fpu32 => Some(700),
            Benchmark::Sha256Hv => Some(660),
            Benchmark::Apb => Some(300),
            Benchmark::SodorCore => None,
            Benchmark::RiscvMini => None,
            Benchmark::PicoRv32 => None,
            Benchmark::ConvAcc => Some(400),
            Benchmark::Sha256C2v => Some(660),
            Benchmark::MipsCpu => Some(700),
        };
        FaultListConfig {
            include_inputs: false,
            exclude_names: self.excluded_names(),
            max_faults,
        }
    }

    /// Default stimulus length in clock cycles (what the benchmark harness
    /// runs; tests use shorter streams).
    pub fn default_cycles(self) -> usize {
        match self {
            Benchmark::Alu64 => 300,
            Benchmark::Fpu32 => 300,
            Benchmark::Sha256Hv => 450,
            Benchmark::Apb => 400,
            Benchmark::SodorCore => 400,
            Benchmark::RiscvMini => 400,
            Benchmark::PicoRv32 => 400,
            Benchmark::ConvAcc => 300,
            Benchmark::Sha256C2v => 450,
            Benchmark::MipsCpu => 400,
        }
    }

    /// Builds the deterministic stimulus for `design` (which must be this
    /// benchmark's design) with the default length.
    pub fn stimulus(self, design: &Design) -> Stimulus {
        self.stimulus_with_cycles(design, self.default_cycles())
    }

    /// Builds the deterministic stimulus with an explicit cycle budget.
    pub fn stimulus_with_cycles(self, design: &Design, cycles: usize) -> Stimulus {
        stim::build(self, design, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_fault::generate_faults;

    #[test]
    fn all_benchmarks_compile() {
        for b in Benchmark::all() {
            let d = b.build();
            assert!(!d.outputs().is_empty(), "{} has no outputs", b.name());
            assert!(
                !d.behavioral_nodes().is_empty(),
                "{} has no behavioral nodes",
                b.name()
            );
        }
    }

    #[test]
    fn fault_universes_are_nonempty_and_capped() {
        for b in Benchmark::all() {
            let d = b.build();
            let cfg = b.fault_config();
            let fl = generate_faults(&d, &cfg);
            assert!(fl.len() > 50, "{}: only {} faults", b.name(), fl.len());
            if let Some(cap) = cfg.max_faults {
                assert!(fl.len() <= cap, "{}: cap exceeded", b.name());
            }
        }
    }

    #[test]
    fn stimuli_are_deterministic() {
        for b in [Benchmark::Alu64, Benchmark::Apb, Benchmark::ConvAcc] {
            let d = b.build();
            let s1 = b.stimulus_with_cycles(&d, 20);
            let s2 = b.stimulus_with_cycles(&d, 20);
            assert_eq!(s1, s2, "{}", b.name());
        }
    }

    #[test]
    fn lcg_is_stable() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Lcg::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
