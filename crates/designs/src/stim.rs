//! Deterministic stimulus generators, one per benchmark.
//!
//! All generators use [`StimulusBuilder::add_cycle`]: two settle steps per
//! clock cycle (drive low + data changes, then drive high), with the reset
//! sequence at the front. The streams are pure functions of a fixed seed,
//! so every engine replays identical inputs.

use crate::{Benchmark, Lcg};
use eraser_ir::{Design, SignalId};
use eraser_logic::LogicVec;
use eraser_sim::{Stimulus, StimulusBuilder};

fn sig(design: &Design, name: &str) -> SignalId {
    design
        .find_signal(name)
        .unwrap_or_else(|| panic!("benchmark design is missing signal `{name}`"))
}

fn v(w: u32, x: u64) -> LogicVec {
    LogicVec::from_u64(w, x)
}

/// Builds the stimulus for `bench` over `cycles` clock cycles.
pub fn build(bench: Benchmark, design: &Design, cycles: usize) -> Stimulus {
    match bench {
        Benchmark::Alu64 => alu(design, cycles),
        Benchmark::Fpu32 => fpu(design, cycles),
        Benchmark::Sha256Hv | Benchmark::Sha256C2v => sha(design, cycles),
        Benchmark::Apb => apb(design, cycles),
        Benchmark::SodorCore | Benchmark::RiscvMini | Benchmark::PicoRv32 | Benchmark::MipsCpu => {
            cpu(design, cycles)
        }
        Benchmark::ConvAcc => conv(design, cycles),
    }
}

fn alu(d: &Design, cycles: usize) -> Stimulus {
    let (clk, rst) = (sig(d, "clk"), sig(d, "rst"));
    let (a, b, op, start) = (sig(d, "a"), sig(d, "b"), sig(d, "op"), sig(d, "start"));
    let mut rng = Lcg::new(0xa1);
    let mut sb = StimulusBuilder::new();
    sb.add_cycle(clk, &[(rst, v(1, 1)), (start, v(1, 0))]);
    for i in 0..cycles {
        sb.add_cycle(
            clk,
            &[
                (rst, v(1, 0)),
                (start, v(1, 1)),
                (a, v(64, rng.next_u64())),
                (b, v(64, rng.next_u64())),
                (op, v(4, (i as u64) % 14)),
            ],
        );
    }
    sb.finish()
}

fn fpu(d: &Design, cycles: usize) -> Stimulus {
    let (clk, rst) = (sig(d, "clk"), sig(d, "rst"));
    let (x, y, op_mul, start) = (sig(d, "x"), sig(d, "y"), sig(d, "op_mul"), sig(d, "start"));
    let mut rng = Lcg::new(0xf9);
    let mut sb = StimulusBuilder::new();
    sb.add_cycle(clk, &[(rst, v(1, 1)), (start, v(1, 0))]);
    for i in 0..cycles {
        // Bias exponents toward the normal range so add/mul paths are
        // exercised, with occasional extremes for the clamping branches.
        let mk = |rng: &mut Lcg| -> u64 {
            let sign = rng.below(2) << 31;
            let exp = if rng.below(8) == 0 {
                rng.below(256)
            } else {
                100 + rng.below(60)
            } << 23;
            let mant = rng.below(1 << 23);
            sign | exp | mant
        };
        let xv = mk(&mut rng);
        let yv = mk(&mut rng);
        sb.add_cycle(
            clk,
            &[
                (rst, v(1, 0)),
                (start, v(1, 1)),
                (op_mul, v(1, (i as u64) & 1)),
                (x, v(32, xv)),
                (y, v(32, yv)),
            ],
        );
    }
    sb.finish()
}

fn sha(d: &Design, cycles: usize) -> Stimulus {
    let (clk, rst) = (sig(d, "clk"), sig(d, "rst"));
    let (start, block) = (sig(d, "start"), sig(d, "block_in"));
    let mut rng = Lcg::new(0x5a);
    let mut sb = StimulusBuilder::new();
    sb.add_cycle(clk, &[(rst, v(1, 1)), (start, v(1, 0))]);
    sb.add_cycle(clk, &[(rst, v(1, 0))]);
    let mut remaining = cycles.saturating_sub(2);
    while remaining > 67 {
        // One hash: start pulse with a fresh block, 66 busy cycles
        // (64 rounds + handshake margin), then an idle gap before the next
        // block arrives — the host-interface dead time a real core sees.
        let mut blk = LogicVec::zeros(512);
        for w in 0..8 {
            blk.assign_slice(w * 64, &v(64, rng.next_u64()));
        }
        sb.add_cycle(clk, &[(start, v(1, 1)), (block, blk)]);
        sb.add_cycle(clk, &[(start, v(1, 0))]);
        for _ in 0..66 {
            sb.add_cycle(clk, &[]);
        }
        remaining -= 68;
        let idle = 40.min(remaining);
        for _ in 0..idle {
            sb.add_cycle(clk, &[]);
        }
        remaining -= idle;
    }
    sb.finish()
}

fn apb(d: &Design, cycles: usize) -> Stimulus {
    let (clk, rstn) = (sig(d, "pclk"), sig(d, "presetn"));
    let (psel, pen, pwr) = (sig(d, "psel"), sig(d, "penable"), sig(d, "pwrite"));
    let (addr, wdata) = (sig(d, "paddr"), sig(d, "pwdata"));
    let mut rng = Lcg::new(0xab);
    let mut sb = StimulusBuilder::new();
    sb.add_cycle(clk, &[(rstn, v(1, 0)), (psel, v(1, 0)), (pen, v(1, 0))]);
    sb.add_cycle(clk, &[(rstn, v(1, 1))]);
    let mut remaining = cycles.saturating_sub(2);
    while remaining >= 3 {
        // One APB transaction: SETUP, ACCESS, idle.
        let write = rng.below(4) != 0; // mostly writes early, reads verify
        let a = if rng.below(8) == 0 {
            rng.below(32) // occasionally out of range -> pslverr path
        } else {
            rng.below(8)
        };
        sb.add_cycle(
            clk,
            &[
                (psel, v(1, 1)),
                (pen, v(1, 0)),
                (pwr, v(1, write as u64)),
                (addr, v(5, a)),
                (wdata, v(32, rng.next_u64())),
            ],
        );
        sb.add_cycle(clk, &[(pen, v(1, 1))]);
        sb.add_cycle(clk, &[(psel, v(1, 0)), (pen, v(1, 0))]);
        remaining -= 3;
    }
    sb.finish()
}

fn cpu(d: &Design, cycles: usize) -> Stimulus {
    let (clk, rst) = (sig(d, "clk"), sig(d, "rst"));
    let mut sb = StimulusBuilder::new();
    sb.add_cycle(clk, &[(rst, v(1, 1))]);
    sb.add_cycle(clk, &[(rst, v(1, 0))]);
    for _ in 0..cycles.saturating_sub(2) {
        sb.add_cycle(clk, &[]);
    }
    sb.finish()
}

fn conv(d: &Design, cycles: usize) -> Stimulus {
    let (clk, rst) = (sig(d, "clk"), sig(d, "rst"));
    let (load_w, valid_in) = (sig(d, "load_w"), sig(d, "valid_in"));
    let (window, weights) = (sig(d, "window"), sig(d, "weights"));
    let mut rng = Lcg::new(0xcc);
    let mut sb = StimulusBuilder::new();
    let mut wv = LogicVec::zeros(72);
    for k in 0..9 {
        wv.assign_slice(k * 8, &v(8, rng.below(256)));
    }
    sb.add_cycle(
        clk,
        &[(rst, v(1, 1)), (load_w, v(1, 0)), (valid_in, v(1, 0))],
    );
    sb.add_cycle(clk, &[(rst, v(1, 0)), (load_w, v(1, 1)), (weights, wv)]);
    sb.add_cycle(clk, &[(load_w, v(1, 0)), (valid_in, v(1, 1))]);
    for i in 0..cycles.saturating_sub(3) {
        let mut win = LogicVec::zeros(72);
        for k in 0..9 {
            win.assign_slice(k as u32 * 8, &v(8, rng.below(256)));
        }
        // Occasionally reload weights mid-stream.
        if i > 0 && i % 97 == 0 {
            let mut nw = LogicVec::zeros(72);
            for k in 0..9 {
                nw.assign_slice(k * 8, &v(8, rng.below(256)));
            }
            sb.add_cycle(
                clk,
                &[(load_w, v(1, 1)), (weights, nw), (valid_in, v(1, 0))],
            );
        } else {
            sb.add_cycle(
                clk,
                &[(load_w, v(1, 0)), (valid_in, v(1, 1)), (window, win)],
            );
        }
    }
    sb.finish()
}
