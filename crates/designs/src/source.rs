//! The design-source layer: one abstraction over every way a design can
//! enter the framework.
//!
//! A [`DesignSource`] bundles what a fault-simulation campaign needs to
//! run — a name, a compiled [`Design`], a deterministic [`Stimulus`]
//! factory, and a [`FaultListConfig`] — regardless of where the design
//! came from:
//!
//! * the built-in [`Benchmark`] suite ([`DesignSource::benchmark`]),
//! * an external Verilog-subset file ([`DesignSource::from_verilog_path`]),
//! * a Yosys-JSON netlist ([`DesignSource::from_netlist_path`]), or
//! * the bundled gate-level netlist fixtures ([`netlist_fixtures`]).
//!
//! External designs get a generic clocked-random stimulus: the clock and
//! reset are found by name heuristics (overridable), reset is held for
//! the first two cycles (active-low when its name ends in `_n`), and the
//! remaining inputs are driven from a seeded LCG — a pure function of
//! the seed, so every engine replays identical inputs.

use crate::Benchmark;
use eraser_fault::FaultListConfig;
use eraser_frontend::compile;
use eraser_ir::{Design, SignalId};
use eraser_logic::LogicVec;
use eraser_netlist::import_str;
use eraser_sim::{Stimulus, StimulusBuilder};
use std::path::Path;

/// The bundled counter fixture (`yosys write_json` format, simple-gate
/// cells): an 8-bit sync-reset counter with enable, ripple carry chain,
/// terminal-count AND tree, and buffer chains.
pub const COUNTER8_GATE_JSON: &str = include_str!("../netlists/counter8_gate.json");

/// The bundled accumulator fixture: a 16-bit Fibonacci LFSR (taps
/// 16,15,13,4) feeding a gate-level ripple-carry accumulator with an XOR
/// parity tree — 179 one-bit cells.
pub const MAC16_GATE_JSON: &str = include_str!("../netlists/mac16_gate.json");

/// How a [`DesignSource`] builds its stimulus.
#[derive(Debug, Clone)]
enum StimulusKind {
    /// A built-in benchmark with its hand-written stimulus generator.
    Benchmark(Benchmark),
    /// Generic seeded clocked-random inputs for external designs.
    ClockedRandom {
        clock: SignalId,
        reset: Option<SignalId>,
        seed: u64,
    },
}

/// One fault-simulation target: a compiled design plus everything needed
/// to campaign against it deterministically.
#[derive(Debug, Clone)]
pub struct DesignSource {
    name: String,
    design: Design,
    stimulus: StimulusKind,
    fault_config: FaultListConfig,
    default_cycles: usize,
}

impl DesignSource {
    /// Wraps a built-in [`Benchmark`] (its design, stimulus generator,
    /// fault config, and cycle budget).
    pub fn benchmark(bench: Benchmark) -> DesignSource {
        DesignSource {
            name: bench.name().to_string(),
            design: bench.build(),
            stimulus: StimulusKind::Benchmark(bench),
            fault_config: bench.fault_config(),
            default_cycles: bench.default_cycles(),
        }
    }

    /// Every built-in benchmark as a design source.
    pub fn all_benchmarks() -> Vec<DesignSource> {
        Benchmark::all()
            .iter()
            .map(|&b| Self::benchmark(b))
            .collect()
    }

    /// Wraps an already-compiled design with the generic clocked-random
    /// stimulus. `clock`/`reset` override the name heuristics.
    ///
    /// # Errors
    ///
    /// When no clock input can be identified (or a requested signal does
    /// not exist).
    pub fn from_design(
        design: Design,
        clock: Option<&str>,
        reset: Option<&str>,
        seed: u64,
        default_cycles: usize,
    ) -> Result<DesignSource, String> {
        let clock_sig = match clock {
            Some(name) => design
                .find_signal(name)
                .ok_or_else(|| format!("design has no signal named `{name}`"))?,
            None => find_clock(&design)
                .ok_or_else(|| "no clock input found (specify one by name)".to_string())?,
        };
        let reset_sig = match reset {
            Some(name) => Some(
                design
                    .find_signal(name)
                    .ok_or_else(|| format!("design has no signal named `{name}`"))?,
            ),
            None => find_reset(&design),
        };
        // Faulting the clock or reset turns the campaign into a
        // clock-gating experiment; exclude both from the universe.
        let mut exclude = vec![design.signal(clock_sig).name.clone()];
        if let Some(r) = reset_sig {
            exclude.push(design.signal(r).name.clone());
        }
        Ok(DesignSource {
            name: design.name().to_string(),
            design,
            stimulus: StimulusKind::ClockedRandom {
                clock: clock_sig,
                reset: reset_sig,
                seed,
            },
            fault_config: FaultListConfig {
                include_inputs: false,
                exclude_names: exclude,
                max_faults: None,
            },
            default_cycles,
        })
    }

    /// Compiles Verilog-subset source text into a design source.
    ///
    /// # Errors
    ///
    /// Compile errors (with line/column) and clock-detection failures,
    /// as text.
    pub fn from_verilog_str(
        source: &str,
        top: Option<&str>,
        seed: u64,
    ) -> Result<DesignSource, String> {
        let design = compile(source, top).map_err(|e| e.to_string())?;
        Self::from_design(design, None, None, seed, DEFAULT_EXTERNAL_CYCLES)
    }

    /// Imports Yosys-JSON netlist text into a design source.
    ///
    /// # Errors
    ///
    /// Import errors (unsupported cells, JSON syntax with line/column)
    /// and clock-detection failures, as text.
    pub fn from_netlist_str(
        text: &str,
        top: Option<&str>,
        seed: u64,
    ) -> Result<DesignSource, String> {
        let design = import_str(text, top).map_err(|e| e.to_string())?;
        Self::from_design(design, None, None, seed, DEFAULT_EXTERNAL_CYCLES)
    }

    /// Loads a design from a file path, dispatching on the extension:
    /// `.json` is treated as a Yosys-JSON netlist, anything else as
    /// Verilog-subset source.
    ///
    /// # Errors
    ///
    /// Read failures, compile/import errors (prefixed with the path),
    /// and clock-detection failures, as text.
    pub fn from_path(path: &Path, top: Option<&str>, seed: u64) -> Result<DesignSource, String> {
        Self::load(path, top, None, None, seed)
    }

    /// [`DesignSource::from_path`] with explicit clock/reset names (the
    /// CLI's `--clock`/`--reset` overrides for the detection heuristics).
    ///
    /// # Errors
    ///
    /// As [`DesignSource::from_path`].
    pub fn load(
        path: &Path,
        top: Option<&str>,
        clock: Option<&str>,
        reset: Option<&str>,
        seed: u64,
    ) -> Result<DesignSource, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        let is_json = path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("json"));
        let result = (|| {
            let design = if is_json {
                import_str(&text, top).map_err(|e| e.to_string())?
            } else {
                compile(&text, top).map_err(|e| e.to_string())?
            };
            Self::from_design(design, clock, reset, seed, DEFAULT_EXTERNAL_CYCLES)
        })();
        result.map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Loads an external Verilog-subset file.
    ///
    /// # Errors
    ///
    /// As [`DesignSource::from_path`].
    pub fn from_verilog_path(
        path: &Path,
        top: Option<&str>,
        seed: u64,
    ) -> Result<DesignSource, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        Self::from_verilog_str(&text, top, seed).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Loads an external Yosys-JSON netlist file.
    ///
    /// # Errors
    ///
    /// As [`DesignSource::from_path`].
    pub fn from_netlist_path(
        path: &Path,
        top: Option<&str>,
        seed: u64,
    ) -> Result<DesignSource, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        Self::from_netlist_str(&text, top, seed).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The design name (benchmark name, or the module name for external
    /// designs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compiled design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The fault-universe configuration for this design.
    pub fn fault_config(&self) -> &FaultListConfig {
        &self.fault_config
    }

    /// Mutable access, for callers layering caps (`--max-faults`) on top.
    pub fn fault_config_mut(&mut self) -> &mut FaultListConfig {
        &mut self.fault_config
    }

    /// The cycle budget this source was configured with.
    pub fn default_cycles(&self) -> usize {
        self.default_cycles
    }

    /// Overrides the cycle budget (`--stimulus-steps`).
    pub fn set_default_cycles(&mut self, cycles: usize) {
        self.default_cycles = cycles;
    }

    /// Re-seeds the clocked-random stimulus (`--seed`). No effect on
    /// benchmark sources, whose stimuli are fixed by construction.
    pub fn set_seed(&mut self, seed: u64) {
        if let StimulusKind::ClockedRandom { seed: s, .. } = &mut self.stimulus {
            *s = seed;
        }
    }

    /// The clock driving the stimulus, for external designs.
    pub fn clock(&self) -> Option<SignalId> {
        match &self.stimulus {
            StimulusKind::ClockedRandom { clock, .. } => Some(*clock),
            StimulusKind::Benchmark(_) => None,
        }
    }

    /// The detected reset, for external designs.
    pub fn reset(&self) -> Option<SignalId> {
        match &self.stimulus {
            StimulusKind::ClockedRandom { reset, .. } => *reset,
            StimulusKind::Benchmark(_) => None,
        }
    }

    /// The deterministic stimulus over the default cycle budget.
    pub fn stimulus(&self) -> Stimulus {
        self.stimulus_with_cycles(self.default_cycles)
    }

    /// The deterministic stimulus over `cycles` clock cycles.
    pub fn stimulus_with_cycles(&self, cycles: usize) -> Stimulus {
        match &self.stimulus {
            StimulusKind::Benchmark(b) => b.stimulus_with_cycles(&self.design, cycles),
            StimulusKind::ClockedRandom { clock, reset, seed } => {
                clocked_random_stimulus(&self.design, *clock, *reset, *seed, cycles)
            }
        }
    }
}

/// Cycle budget for external designs when the caller does not say.
const DEFAULT_EXTERNAL_CYCLES: usize = 500;

/// The module names of the bundled netlist fixtures, in
/// [`netlist_fixtures`] order — for name-based selection without paying
/// for an import.
pub const NETLIST_FIXTURE_NAMES: [&str; 2] = ["counter8_gate", "mac16_gate"];

/// The two bundled gate-level netlist fixtures as ready-to-run design
/// sources, with deterministic seeds and cycle budgets sized so the
/// counter wraps (exercising the terminal-count cone).
pub fn netlist_fixtures() -> Vec<DesignSource> {
    let mut counter = DesignSource::from_netlist_str(COUNTER8_GATE_JSON, None, 0xc8)
        .expect("bundled counter8_gate fixture imports");
    counter.set_default_cycles(600);
    let mut mac = DesignSource::from_netlist_str(MAC16_GATE_JSON, None, 0x3a6)
        .expect("bundled mac16_gate fixture imports");
    mac.set_default_cycles(400);
    vec![counter, mac]
}

/// Picks the clock input: a 1-bit input named like a clock, else the
/// first 1-bit input.
fn find_clock(design: &Design) -> Option<SignalId> {
    let one_bit_inputs: Vec<SignalId> = design
        .inputs()
        .iter()
        .copied()
        .filter(|s| design.signal(*s).width == 1)
        .collect();
    one_bit_inputs
        .iter()
        .copied()
        .find(|s| {
            let n = design.signal(*s).name.to_ascii_lowercase();
            n == "clk" || n == "clock" || n == "pclk" || n.ends_with("_clk")
        })
        .or_else(|| one_bit_inputs.first().copied())
}

/// Picks the reset input by name (`rst`, `reset`, `*rst_n`), if any.
fn find_reset(design: &Design) -> Option<SignalId> {
    design.inputs().iter().copied().find(|s| {
        let n = design.signal(*s).name.to_ascii_lowercase();
        design.signal(*s).width == 1 && (n == "rst" || n == "reset" || n.ends_with("rst_n"))
    })
}

/// Clocked random stimulus over all non-clock/reset inputs; reset
/// (active high, or active low if its name ends in `_n`) held for two
/// cycles.
fn clocked_random_stimulus(
    design: &Design,
    clock: SignalId,
    reset: Option<SignalId>,
    seed: u64,
    cycles: usize,
) -> Stimulus {
    let mut sb = StimulusBuilder::new();
    let reset_active_low = reset
        .map(|r| design.signal(r).name.ends_with("_n"))
        .unwrap_or(false);
    let data_inputs: Vec<SignalId> = design
        .inputs()
        .iter()
        .copied()
        .filter(|s| Some(*s) != reset && *s != clock)
        .collect();
    let mut state = seed | 1;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 16
    };
    for cycle in 0..cycles {
        let mut changes = Vec::new();
        if let Some(r) = reset {
            let asserted = cycle < 2;
            // Active-high: asserted -> 1; active-low (`*_n`): asserted -> 0.
            changes.push((
                r,
                LogicVec::from_u64(1, (asserted ^ reset_active_low) as u64),
            ));
        }
        for &inp in &data_inputs {
            let w = design.signal(inp).width;
            let mut v = LogicVec::zeros(w);
            for word in 0..w.div_ceil(64) {
                let bits = LogicVec::from_u64(64.min(w - word * 64), rng());
                v.assign_slice(word * 64, &bits);
            }
            changes.push((inp, v));
        }
        sb.add_cycle(clock, &changes);
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_source_matches_the_enum() {
        let src = DesignSource::benchmark(Benchmark::Alu64);
        assert_eq!(src.name(), Benchmark::Alu64.name());
        assert_eq!(src.default_cycles(), Benchmark::Alu64.default_cycles());
        let direct = Benchmark::Alu64.stimulus_with_cycles(src.design(), 10);
        assert_eq!(src.stimulus_with_cycles(10), direct);
    }

    #[test]
    fn fixtures_import_and_exclude_clock_and_reset() {
        let fixtures = netlist_fixtures();
        assert_eq!(fixtures.len(), NETLIST_FIXTURE_NAMES.len());
        for (f, name) in fixtures.iter().zip(NETLIST_FIXTURE_NAMES) {
            assert_eq!(f.name(), name);
        }
        for f in &fixtures {
            assert!(f.fault_config().exclude_names.contains(&"clk".to_string()));
            assert!(f.fault_config().exclude_names.contains(&"rst".to_string()));
            assert!(f.clock().is_some());
            assert!(f.reset().is_some());
        }
    }

    #[test]
    fn clocked_random_stimulus_is_seed_deterministic() {
        let a = DesignSource::from_netlist_str(COUNTER8_GATE_JSON, None, 7).unwrap();
        let b = DesignSource::from_netlist_str(COUNTER8_GATE_JSON, None, 7).unwrap();
        let c = DesignSource::from_netlist_str(COUNTER8_GATE_JSON, None, 8).unwrap();
        assert_eq!(a.stimulus_with_cycles(20), b.stimulus_with_cycles(20));
        assert_ne!(a.stimulus_with_cycles(20), c.stimulus_with_cycles(20));
    }

    #[test]
    fn verilog_and_netlist_paths_dispatch_on_extension() {
        let dir = std::env::temp_dir().join("eraser-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        let vpath = dir.join("toy.v");
        std::fs::write(
            &vpath,
            "module toy(input clk, input rst, input d, output reg q);\n\
             always @(posedge clk) q <= rst ? 1'b0 : d;\nendmodule\n",
        )
        .unwrap();
        let src = DesignSource::from_path(&vpath, None, 1).unwrap();
        assert_eq!(src.name(), "toy");
        let jpath = dir.join("counter8_gate.json");
        std::fs::write(&jpath, COUNTER8_GATE_JSON).unwrap();
        let src = DesignSource::from_path(&jpath, None, 1).unwrap();
        assert_eq!(src.name(), "counter8_gate");
        let missing = DesignSource::from_path(&dir.join("nope.v"), None, 1).unwrap_err();
        assert!(missing.contains("nope.v"));
    }
}
