//! Software golden models for the datapath benchmarks.
//!
//! Each model mirrors the corresponding RTL bit-for-bit (including the
//! documented simplifications, e.g. the FPU's truncating rounding), so the
//! good simulation of every engine can be validated against independent
//! Rust implementations. The SHA-256 model is additionally validated
//! against the FIPS 180-4 "abc" test vector, closing the chain
//! RTL → good simulation → golden model → standard.

/// SHA-256 round constants.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 initial hash values.
pub const SHA256_IV: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// One SHA-256 compression of a 512-bit block against the standard IV,
/// including the final IV addition — exactly what the `sha256_hv` /
/// `sha256_c2v` cores compute for a single block. `block[0]` holds the
/// most-significant word (bits 511..480), matching the cores' `block_in`.
pub fn sha256_compress(block: &[u32; 16]) -> [u32; 8] {
    let mut w = [0u32; 64];
    w[..16].copy_from_slice(block);
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = SHA256_IV;
    for t in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    [
        SHA256_IV[0].wrapping_add(a),
        SHA256_IV[1].wrapping_add(b),
        SHA256_IV[2].wrapping_add(c),
        SHA256_IV[3].wrapping_add(d),
        SHA256_IV[4].wrapping_add(e),
        SHA256_IV[5].wrapping_add(f),
        SHA256_IV[6].wrapping_add(g),
        SHA256_IV[7].wrapping_add(h),
    ]
}

/// Golden model of the `alu64` combinational stage: `(result, zero, carry)`.
pub fn alu64(op: u8, a: u64, b: u64) -> (u64, bool, bool) {
    let (tmp, c) = match op {
        0 => {
            let t = a.wrapping_add(b);
            (t, t < a)
        }
        1 => (a.wrapping_sub(b), a < b),
        2 => (a & b, false),
        3 => (a | b, false),
        4 => (a ^ b, false),
        5 => (!(a | b), false),
        6 => (a << (b & 63), false),
        7 => (a >> (b & 63), false),
        8 => ((a < b) as u64, false),
        9 => (a.wrapping_mul(b), false),
        10 => ((a << 32) | (b & 0xffff_ffff), false),
        11 => (a.wrapping_add((b & 0xffff_ffff) << 32), false),
        12 => ((a >> 32) ^ (b & 0xffff_ffff), false),
        _ => (a, false),
    };
    (tmp, tmp == 0, c)
}

/// Golden model of the `fpu32` truncating float unit (see the RTL header
/// for the simplification contract).
pub fn fpu32(op_mul: bool, x: u32, y: u32) -> u32 {
    let sx = x >> 31 & 1;
    let sy = y >> 31 & 1;
    let ex = x >> 23 & 0xff;
    let ey = y >> 23 & 0xff;
    let mx = x & 0x7f_ffff;
    let my = y & 0x7f_ffff;
    if op_mul {
        if ex == 0 || ey == 0 {
            return 0;
        }
        let prod = ((1u64 << 23) | mx as u64) * ((1u64 << 23) | my as u64);
        let (exp10, mant) = if prod >> 47 & 1 == 1 {
            (ex + ey + 1, (prod >> 24 & 0x7f_ffff) as u32)
        } else {
            (ex + ey, (prod >> 23 & 0x7f_ffff) as u32)
        };
        if exp10 < 128 {
            return 0;
        }
        if exp10 >= 382 {
            return (sx ^ sy) << 31 | 0xff << 23;
        }
        (sx ^ sy) << 31 | (exp10.wrapping_sub(127) & 0xff) << 23 | mant
    } else {
        if ex == 0 {
            return if ey == 0 { 0 } else { y };
        }
        if ey == 0 {
            return x;
        }
        // Order by magnitude.
        let (sl, el, ml, es, ms) = if (ex << 23 | mx) < (ey << 23 | my) {
            (sy, ey, (1 << 23) | my, ex, (1 << 23) | mx)
        } else {
            (sx, ex, (1 << 23) | mx, ey, (1 << 23) | my)
        };
        let d = el - es;
        if d > 24 {
            return sl << 31 | el << 23 | (ml & 0x7f_ffff);
        }
        let shifted = ms >> d;
        if sx == sy {
            let sum = ml + shifted;
            if sum >> 24 & 1 == 1 {
                if el == 0xfe {
                    sl << 31 | 0xff << 23
                } else {
                    sl << 31 | (el + 1) << 23 | (sum >> 1 & 0x7f_ffff)
                }
            } else {
                sl << 31 | el << 23 | (sum & 0x7f_ffff)
            }
        } else {
            let diff = ml - shifted;
            if diff == 0 {
                return 0;
            }
            let lead = 31 - diff.leading_zeros(); // highest set bit (<= 23)
            if el + lead < 24 {
                return 0;
            }
            let norm = diff << (23 - lead);
            sl << 31 | (el - (23 - lead)) << 23 | (norm & 0x7f_ffff)
        }
    }
}

/// Golden model of the `conv_acc` datapath: saturating 3x3 dot product.
/// `window[k]`/`weights[k]` are the bytes at bit offsets `8k` of the
/// 72-bit ports.
pub fn conv3x3(window: &[u8; 9], weights: &[u8; 9]) -> u16 {
    let total: u32 = window
        .iter()
        .zip(weights)
        .map(|(&p, &w)| p as u32 * w as u32)
        .sum();
    if total > 0xffff {
        0xffff
    } else {
        total as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_fips_abc_vector() {
        // "abc" padded to one 512-bit block.
        let mut block = [0u32; 16];
        block[0] = 0x61626380;
        block[15] = 24;
        let digest = sha256_compress(&block);
        assert_eq!(
            digest,
            [
                0xba7816bf, 0x8f01cfea, 0x414140de, 0x5dae2223, 0xb00361a3, 0x96177a9c, 0xb410ff61,
                0xf20015ad
            ]
        );
    }

    #[test]
    fn alu_golden_basics() {
        assert_eq!(alu64(0, u64::MAX, 1), (0, true, true));
        assert_eq!(alu64(1, 3, 5), (u64::MAX - 1, false, true));
        assert_eq!(alu64(8, 3, 5), (1, false, false));
        assert_eq!(alu64(9, 1 << 40, 1 << 30), (0, true, false)); // 2^70 wraps to 0
        assert_eq!(alu64(9, 3, 5), (15, false, false));
    }

    #[test]
    fn fpu_golden_exact_cases() {
        let one = 0x3f80_0000u32; // 1.0
        let two = 0x4000_0000u32; // 2.0
        let three = 0x4040_0000u32; // 3.0
        let half = 0x3f00_0000u32; // 0.5
        assert_eq!(fpu32(false, one, one), two); // 1 + 1 = 2
        assert_eq!(fpu32(true, three, two), 0x40c0_0000); // 3 * 2 = 6
        assert_eq!(fpu32(true, half, two), one); // 0.5 * 2 = 1
        assert_eq!(fpu32(false, two, one | 0x8000_0000), one); // 2 + (-1) = 1
        assert_eq!(fpu32(false, one, one | 0x8000_0000), 0); // 1 + (-1) = 0
        assert_eq!(fpu32(true, one, 0), 0); // x * 0 = 0
        assert_eq!(fpu32(false, one, 0), one); // x + 0 = x
    }

    #[test]
    fn fpu_golden_matches_host_on_exact_ops() {
        // Products of small powers of two are exact under any rounding.
        for e1 in 120..135u32 {
            for e2 in 120..135u32 {
                let x = e1 << 23;
                let y = e2 << 23;
                let expect = f32::from_bits(x) * f32::from_bits(y);
                let got = f32::from_bits(fpu32(true, x, y));
                if expect.is_normal() {
                    assert_eq!(got, expect, "2^{} * 2^{}", e1 as i32 - 127, e2 as i32 - 127);
                }
            }
        }
    }

    #[test]
    fn conv_golden_saturates() {
        assert_eq!(conv3x3(&[255; 9], &[255; 9]), 0xffff);
        assert_eq!(conv3x3(&[1; 9], &[2; 9]), 18);
        assert_eq!(conv3x3(&[0; 9], &[255; 9]), 0);
    }
}
