//! The persisted unit of the campaign service: one completed campaign —
//! its spec, its full [`CoverageReport`], its [`RedundancyStats`] — plus
//! the service-level cache observations, serialized losslessly through
//! the `eraser-netlist` JSON layer.
//!
//! Serialization is *bit-faithful* for everything the acceptance
//! invariants care about: detections round-trip as
//! `[fault, step, output]` triples and every stats counter by name, so a
//! record read back from a [`ResultStore`](crate::ResultStore) compares
//! equal (`CoverageReport` and the counter fields of `RedundancyStats`)
//! to the in-memory result of the `run_campaign` call that produced it.
//! Durations are stored as integer nanoseconds.

use eraser_core::{CampaignSpec, RedundancyStats};
use eraser_fault::{CoverageReport, Detection, FaultId};
use eraser_ir::SignalId;
use eraser_netlist::json::{self, JsonValue};
use std::time::Duration;

/// One completed campaign, as persisted by a result store.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRecord {
    /// The service-assigned campaign id (`"c1"`, `"c2"`, ...).
    pub id: String,
    /// The spec the campaign ran under (as submitted, before env/CLI
    /// fall-through).
    pub spec: CampaignSpec,
    /// The resolved design name (benchmark table name, fixture module
    /// name, or the file's module name).
    pub design_name: String,
    /// Size of the generated fault universe.
    pub num_faults: usize,
    /// Stimulus length in settle steps.
    pub steps: usize,
    /// Good-run settle steps this campaign executed to build checkpoint
    /// artifacts: the stimulus length on a cache miss, `0` on a cache hit
    /// or when checkpointing is off.
    pub good_run_steps: u64,
    /// Whether the good-run artifacts came from the service cache.
    pub cache_hit: bool,
    /// Full per-fault detection records.
    pub coverage: CoverageReport,
    /// Redundancy and timing counters.
    pub stats: RedundancyStats,
}

impl CampaignRecord {
    /// The record as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        let mut detections: Vec<JsonValue> = Vec::new();
        for i in 0..self.coverage.total() {
            if let Some(d) = self.coverage.detection(FaultId(i as u32)) {
                detections.push(JsonValue::Arr(vec![
                    JsonValue::num(i as u64),
                    JsonValue::num(d.step as u64),
                    JsonValue::num(d.output.index() as u64),
                ]));
            }
        }
        let coverage = JsonValue::Obj(vec![
            ("total".into(), JsonValue::num(self.coverage.total() as u64)),
            (
                "detected".into(),
                JsonValue::num(self.coverage.detected() as u64),
            ),
            (
                "percent".into(),
                JsonValue::Num(self.coverage.coverage_percent()),
            ),
            ("detections".into(), JsonValue::Arr(detections)),
        ]);
        let s = &self.stats;
        let stats = JsonValue::Obj(
            stat_counters(s)
                .into_iter()
                .map(|(k, v)| (k.to_string(), JsonValue::num(v)))
                .chain([
                    (
                        "time_behavioral_ns".to_string(),
                        JsonValue::num(s.time_behavioral.as_nanos() as u64),
                    ),
                    (
                        "time_total_ns".to_string(),
                        JsonValue::num(s.time_total.as_nanos() as u64),
                    ),
                ])
                .collect(),
        );
        JsonValue::Obj(vec![
            ("id".into(), JsonValue::str(self.id.clone())),
            ("spec".into(), self.spec.to_json_value()),
            ("design".into(), JsonValue::str(self.design_name.clone())),
            ("faults".into(), JsonValue::num(self.num_faults as u64)),
            ("steps".into(), JsonValue::num(self.steps as u64)),
            ("good_run_steps".into(), JsonValue::num(self.good_run_steps)),
            ("cache_hit".into(), JsonValue::Bool(self.cache_hit)),
            ("coverage".into(), coverage),
            ("stats".into(), stats),
        ])
    }

    /// The record as compact JSON.
    pub fn to_json(&self) -> String {
        json::to_string(&self.to_json_value())
    }

    /// Parses a record back from its JSON value.
    ///
    /// # Errors
    ///
    /// A message naming the missing or ill-typed key.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let id = want_str(v, "id")?;
        let spec =
            CampaignSpec::from_json_value(v.get("spec").ok_or("missing required key `spec`")?)
                .map_err(|e| e.to_string())?;
        let design_name = want_str(v, "design")?;
        let num_faults = want_u64(v, "faults")? as usize;
        let steps = want_u64(v, "steps")? as usize;
        let good_run_steps = want_u64(v, "good_run_steps")?;
        let cache_hit = v
            .get("cache_hit")
            .and_then(JsonValue::as_bool)
            .ok_or("key `cache_hit`: expected true or false")?;

        let cov = v.get("coverage").ok_or("missing required key `coverage`")?;
        let total = want_u64(cov, "total")? as usize;
        let mut coverage = CoverageReport::new(total);
        for d in cov
            .get("detections")
            .and_then(JsonValue::as_arr)
            .ok_or("key `detections`: expected an array")?
        {
            let triple = d
                .as_arr()
                .ok_or("detection: expected [fault, step, output]")?;
            let [f, s, o] = triple else {
                return Err("detection: expected [fault, step, output]".into());
            };
            let fault = f.as_u64().ok_or("detection fault: expected an integer")? as u32;
            let step = s.as_u64().ok_or("detection step: expected an integer")? as usize;
            let output = o.as_u64().ok_or("detection output: expected an integer")? as u32;
            coverage.record(
                FaultId(fault),
                Detection {
                    step,
                    output: SignalId(output),
                },
            );
        }

        let st = v.get("stats").ok_or("missing required key `stats`")?;
        let mut stats = RedundancyStats {
            time_behavioral: Duration::from_nanos(want_u64(st, "time_behavioral_ns")?),
            time_total: Duration::from_nanos(want_u64(st, "time_total_ns")?),
            ..RedundancyStats::default()
        };
        for (key, slot) in stat_counters_mut(&mut stats) {
            *slot = want_u64(st, key)?;
        }

        Ok(CampaignRecord {
            id,
            spec,
            design_name,
            num_faults,
            steps,
            good_run_steps,
            cache_hit,
            coverage,
            stats,
        })
    }

    /// Parses a record from JSON text.
    ///
    /// # Errors
    ///
    /// As [`from_json_value`](Self::from_json_value), plus JSON syntax
    /// errors with line/column.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json_value(&v)
    }
}

/// Every `u64` counter of [`RedundancyStats`], by JSON key — one list so
/// the serializer and parser can never drift apart on a field.
fn stat_counters(s: &RedundancyStats) -> [(&'static str, u64); 19] {
    [
        ("good_activations", s.good_activations),
        ("opportunities", s.opportunities),
        ("explicit_skipped", s.explicit_skipped),
        ("implicit_skipped", s.implicit_skipped),
        ("fault_executions", s.fault_executions),
        ("fault_only_activations", s.fault_only_activations),
        ("suppressed_activations", s.suppressed_activations),
        ("rtl_good_evals", s.rtl_good_evals),
        ("rtl_fault_evals", s.rtl_fault_evals),
        ("deltas", s.deltas),
        ("skipped_prefix_steps", s.skipped_prefix_steps),
        ("skipped_faults", s.skipped_faults),
        ("dropped_faults", s.dropped_faults),
        ("batch_groups", s.batch_groups),
        ("batch_lanes", s.batch_lanes),
        ("batch_scalar_fallbacks", s.batch_scalar_fallbacks),
        ("collapsed_faults", s.collapsed_faults),
        ("collapse_classes", s.collapse_classes),
        ("collapse_dropped", s.collapse_dropped),
    ]
}

fn stat_counters_mut(s: &mut RedundancyStats) -> [(&'static str, &mut u64); 19] {
    [
        ("good_activations", &mut s.good_activations),
        ("opportunities", &mut s.opportunities),
        ("explicit_skipped", &mut s.explicit_skipped),
        ("implicit_skipped", &mut s.implicit_skipped),
        ("fault_executions", &mut s.fault_executions),
        ("fault_only_activations", &mut s.fault_only_activations),
        ("suppressed_activations", &mut s.suppressed_activations),
        ("rtl_good_evals", &mut s.rtl_good_evals),
        ("rtl_fault_evals", &mut s.rtl_fault_evals),
        ("deltas", &mut s.deltas),
        ("skipped_prefix_steps", &mut s.skipped_prefix_steps),
        ("skipped_faults", &mut s.skipped_faults),
        ("dropped_faults", &mut s.dropped_faults),
        ("batch_groups", &mut s.batch_groups),
        ("batch_lanes", &mut s.batch_lanes),
        ("batch_scalar_fallbacks", &mut s.batch_scalar_fallbacks),
        ("collapsed_faults", &mut s.collapsed_faults),
        ("collapse_classes", &mut s.collapse_classes),
        ("collapse_dropped", &mut s.collapse_dropped),
    ]
}

fn want_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("key `{key}`: expected a string"))
}

fn want_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("key `{key}`: expected a non-negative integer"))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(id: &str) -> CampaignRecord {
        let mut coverage = CoverageReport::new(5);
        coverage.record(
            FaultId(1),
            Detection {
                step: 7,
                output: SignalId(3),
            },
        );
        coverage.record(
            FaultId(4),
            Detection {
                step: 0,
                output: SignalId(0),
            },
        );
        CampaignRecord {
            id: id.to_string(),
            spec: eraser_core::CampaignSpec::benchmark("APB")
                .seed(9)
                .threads(2),
            design_name: "APB".into(),
            num_faults: 5,
            steps: 40,
            good_run_steps: 40,
            cache_hit: false,
            coverage,
            stats: RedundancyStats {
                good_activations: 11,
                opportunities: 500,
                explicit_skipped: 300,
                implicit_skipped: 100,
                fault_executions: 100,
                skipped_prefix_steps: 17,
                time_behavioral: Duration::from_micros(250),
                time_total: Duration::from_micros(900),
                ..RedundancyStats::default()
            },
        }
    }

    #[test]
    fn round_trips_bit_identically() {
        let rec = sample("c1");
        let back = CampaignRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.coverage, rec.coverage);
        assert_eq!(back.stats, rec.stats);
    }

    #[test]
    fn rejects_truncated_json() {
        let rec = sample("c1");
        let text = rec.to_json();
        assert!(CampaignRecord::from_json(&text[..text.len() / 2]).is_err());
        assert!(CampaignRecord::from_json("{}").is_err());
    }
}
