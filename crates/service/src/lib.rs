//! The ERASER campaign service: an async (queued, worker-pool) campaign
//! server with pluggable result backends, fronted by the unified
//! [`CampaignSpec`](eraser_core::CampaignSpec) API.
//!
//! Three layers, each usable on its own:
//!
//! * [`store`] — the [`ResultStore`] trait and its two backends: the
//!   in-memory [`MemStore`] and the append-only, crash-recovering
//!   [`JournalStore`]. A [`CampaignRecord`] round-trips bit-faithfully:
//!   coverage detections and every redundancy counter survive
//!   persistence exactly.
//! * [`service`] — [`CampaignService`]: a bounded FIFO job queue drained
//!   by a worker pool running
//!   [`run_campaign_with`](eraser_core::run_campaign_with), with a keyed
//!   cache sharing the compiled design, fault universe, stimulus,
//!   [`TapeProgram`](eraser_core::TapeProgram) /
//!   [`BatchProgram`](eraser_core::BatchProgram), and good-run
//!   checkpoint artifacts across campaigns on the same (design,
//!   stimulus-seed) pair — a repeat submission executes zero good-run
//!   steps.
//! * [`http`] — [`HttpServer`]: a dependency-free HTTP/1.1 front end
//!   over `std::net` exposing `POST /campaigns`, `GET /campaigns/:id`,
//!   `GET /campaigns/:id/result` and `GET /healthz`.
//!
//! The service is amortization and observability only: every campaign it
//! runs produces coverage and semantic counters bit-identical to a
//! direct [`run_campaign`](eraser_core::run_campaign) call with the same
//! resolved config, which the end-to-end HTTP test asserts.

pub mod http;
pub mod record;
pub mod service;
pub mod store;

pub use http::HttpServer;
pub use record::CampaignRecord;
pub use service::{
    prepare_spec, CampaignService, JobStatus, PreparedCampaign, ServiceHandle, StatusView,
    SubmitError,
};
pub use store::{open_store, JournalStore, MemStore, ResultStore, StoreError};
