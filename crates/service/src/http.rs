//! The dependency-free HTTP/1.1 front end.
//!
//! A hand-rolled server over [`std::net::TcpListener`]: one accept loop,
//! one short-lived thread per connection, one request per connection
//! (`Connection: close`). Bodies and responses are JSON via the
//! `eraser-netlist` JSON layer. Endpoints:
//!
//! | Method & path              | Meaning                                     |
//! |----------------------------|---------------------------------------------|
//! | `GET /healthz`             | liveness probe                              |
//! | `POST /campaigns`          | submit a [`CampaignSpec`]; `202` + id       |
//! | `GET /campaigns`           | list all campaigns                          |
//! | `GET /campaigns/:id`       | status + scheduler progress                 |
//! | `GET /campaigns/:id/result`| the full persisted [`CampaignRecord`]       |
//!
//! Submission returns `400` for a malformed spec (the parser's key-naming
//! message in the `error` field), `503` when the bounded queue is full.
//! `/result` returns `404` for an unknown id and `409` while the campaign
//! is still queued or running.
//!
//! [`CampaignSpec`]: eraser_core::CampaignSpec
//! [`CampaignRecord`]: crate::CampaignRecord

use crate::service::{JobStatus, ServiceHandle, StatusView, SubmitError};
use eraser_core::CampaignSpec;
use eraser_netlist::json::{self, JsonValue};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest accepted request body (a campaign spec is tiny; this is pure
/// defense).
const MAX_BODY: usize = 1 << 20;

/// Per-connection socket timeout: a stalled peer frees its thread.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A running HTTP front end over a [`ServiceHandle`].
pub struct HttpServer {
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:3939"`; port `0` picks one) and
    /// starts serving `service` in background threads.
    ///
    /// # Errors
    ///
    /// The bind failure, as text.
    pub fn bind(addr: &str, service: ServiceHandle) -> Result<HttpServer, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve bound address: {e}"))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = service.clone();
                std::thread::spawn(move || handle_connection(stream, &service));
            }
        });
        Ok(HttpServer {
            addr: local,
            accept_thread: Some(accept_thread),
            shutdown,
        })
    }

    /// The bound address — with port `0`, the one the OS picked.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections (in-flight requests finish on their
    /// own threads). Also run on drop.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop only observes the flag on a connection; poke it.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One parsed request.
struct Request {
    method: String,
    path: String,
    body: String,
}

/// Reads one HTTP/1.1 request (start line, headers, `Content-Length`
/// body). `None` on a malformed or oversized request.
fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_BODY {
            return None;
        }
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end]).ok()?;
    let mut lines = head.split("\r\n");
    let mut start = lines.next()?.split(' ');
    let method = start.next()?.to_string();
    let path = start.next()?.to_string();
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return None;
    }
    let body_start = header_end + 4;
    while buf.len() < body_start + content_length {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec()).ok()?;
    Some(Request { method, path, body })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn handle_connection(mut stream: TcpStream, service: &ServiceHandle) {
    let response = match read_request(&mut stream) {
        Some(req) => route(&req, service),
        None => error_response(400, "malformed request"),
    };
    let _ = stream.write_all(response.as_bytes());
}

/// Formats one complete HTTP response.
fn respond(status: u16, reason: &str, body: &JsonValue) -> String {
    let payload = json::to_string(body);
    format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{payload}",
        payload.len()
    )
}

fn error_response(status: u16, message: &str) -> String {
    let reason = match status {
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Error",
    };
    respond(
        status,
        reason,
        &JsonValue::Obj(vec![("error".into(), JsonValue::str(message))]),
    )
}

fn status_json(view: &StatusView) -> JsonValue {
    let p = view.progress;
    let mut obj = vec![
        ("id".into(), JsonValue::str(view.id.clone())),
        ("status".into(), JsonValue::str(view.status.name())),
    ];
    if let JobStatus::Failed(msg) = &view.status {
        obj.push(("error".into(), JsonValue::str(msg.clone())));
    }
    obj.push((
        "progress".into(),
        JsonValue::Obj(vec![
            ("groups_total".into(), JsonValue::num(p.groups_total)),
            ("groups_done".into(), JsonValue::num(p.groups_done)),
            ("faults_total".into(), JsonValue::num(p.faults_total)),
            ("faults_done".into(), JsonValue::num(p.faults_done)),
            ("percent".into(), JsonValue::Num(p.percent())),
        ]),
    ));
    JsonValue::Obj(obj)
}

fn route(req: &Request, service: &ServiceHandle) -> String {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => respond(
            200,
            "OK",
            &JsonValue::Obj(vec![("status".into(), JsonValue::str("ok"))]),
        ),
        ("POST", "/campaigns") => match CampaignSpec::from_json(&req.body) {
            Ok(spec) => match service.submit(spec) {
                Ok(id) => respond(
                    202,
                    "Accepted",
                    &JsonValue::Obj(vec![
                        ("id".into(), JsonValue::str(id)),
                        ("status".into(), JsonValue::str("queued")),
                    ]),
                ),
                Err(e @ SubmitError::QueueFull) | Err(e @ SubmitError::ShuttingDown) => {
                    error_response(503, &e.to_string())
                }
            },
            Err(e) => error_response(400, &e.to_string()),
        },
        ("GET", "/campaigns") => {
            let items = service.list().iter().map(status_json).collect();
            respond(
                200,
                "OK",
                &JsonValue::Obj(vec![("campaigns".into(), JsonValue::Arr(items))]),
            )
        }
        ("GET", path) => {
            let Some(rest) = path.strip_prefix("/campaigns/") else {
                return error_response(404, "no such route");
            };
            if let Some(id) = rest.strip_suffix("/result") {
                match service.result(id) {
                    Err(e) => error_response(500, &e.to_string()),
                    Ok(Some(record)) => respond(200, "OK", &record.to_json_value()),
                    Ok(None) => match service.status(id) {
                        Some(view) => respond(409, "Conflict", &status_json(&view)),
                        None => error_response(404, "unknown campaign"),
                    },
                }
            } else if rest.contains('/') {
                error_response(404, "no such route")
            } else {
                match service.status(rest) {
                    Some(view) => respond(200, "OK", &status_json(&view)),
                    None => error_response(404, "unknown campaign"),
                }
            }
        }
        _ => error_response(405, "method not allowed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"partial\r\n"), None);
    }
}
