//! The campaign service: a bounded job queue, a worker pool running
//! [`run_campaign_with`], and the keyed cache that lets repeat
//! submissions skip compilation and the instrumented good run.
//!
//! # Lifecycle
//!
//! [`submit`](CampaignService::submit) validates nothing beyond what the
//! [`CampaignSpec`] parser already did — design resolution happens on a
//! worker, so a bad design name fails the *job*, not the submission —
//! and enqueues the spec, returning a service-assigned id (`"c1"`,
//! `"c2"`, ...). Jobs run FIFO across `workers` threads; the queue is
//! bounded and a full queue rejects the submission
//! ([`SubmitError::QueueFull`], HTTP 503 at the server layer).
//!
//! # The cache
//!
//! Keyed by the resolved (design, stimulus-seed) identity — design
//! reference plus top/clock/reset overrides, seed, stimulus length and
//! fault cap — the service shares across campaigns:
//!
//! * the compiled design, fault universe, and stimulus;
//! * the lowered [`TapeProgram`] / [`BatchProgram`] (compiled lazily the
//!   first time a campaign's resolved config wants them);
//! * the [`GoodRunArtifacts`] per checkpoint interval — so a repeat
//!   submission of an identical (design, seed) spec executes **zero**
//!   good-run steps, which its [`CampaignRecord::good_run_steps`] field
//!   reports.
//!
//! Sharing is amortization only: [`run_campaign_with`] builds identical
//! plans and engines from cached and freshly built data, so coverage and
//! semantic counters stay bit-identical to a direct library call
//! (`tests/http_e2e.rs` asserts exactly this end to end).

use crate::record::CampaignRecord;
use crate::store::{ResultStore, StoreError};
use eraser_core::{
    record_good_run, run_campaign_with, BatchProgram, CampaignContext, CampaignProgress,
    CampaignSpec, DesignRef, GoodRunArtifacts, ProgressSnapshot, TapeProgram,
};
use eraser_designs::{Benchmark, DesignSource};
use eraser_fault::{generate_faults, FaultList};
use eraser_ir::EvalBackend;
use eraser_sim::Stimulus;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded job queue is at capacity; retry later.
    QueueFull,
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Where a campaign is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the record is in the result store.
    Done,
    /// Design resolution or execution failed, with the message.
    Failed(String),
}

impl JobStatus {
    /// The wire name (`queued` / `running` / `done` / `failed`).
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// A point-in-time status of one campaign, for `GET /campaigns/:id`.
#[derive(Debug, Clone)]
pub struct StatusView {
    /// The campaign id.
    pub id: String,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Scheduler progress (window groups / fault shards completed).
    pub progress: ProgressSnapshot,
}

/// One tracked job.
struct Job {
    spec: CampaignSpec,
    status: JobStatus,
    progress: Arc<CampaignProgress>,
}

/// Queue + job table, under one lock.
#[derive(Default)]
struct State {
    queue: VecDeque<String>,
    jobs: HashMap<String, Job>,
    order: Vec<String>,
    next_id: u64,
}

/// The resolved, reusable inputs of a campaign on one (design, seed)
/// identity.
struct Prepared {
    source: DesignSource,
    faults: FaultList,
    stimulus: Stimulus,
}

/// The fully resolved inputs of one campaign — what a caller running
/// [`run_campaign_with`] directly (the CLI's `--spec` path) needs. The
/// service's own workers use the cached equivalent.
pub struct PreparedCampaign {
    /// The resolved design source (name, compiled design, fault config).
    pub source: DesignSource,
    /// The generated fault universe.
    pub faults: FaultList,
    /// The deterministic stimulus.
    pub stimulus: Stimulus,
}

/// Resolves a spec's design reference, fault universe, and stimulus —
/// the one spec→design resolution rule, shared by the service workers
/// and the CLI.
///
/// # Errors
///
/// Unknown benchmark/fixture names, file load and import failures, and
/// clock-detection failures, as text.
pub fn prepare_spec(spec: &CampaignSpec) -> Result<PreparedCampaign, String> {
    let source = resolve_source(spec)?;
    let faults = generate_faults(source.design(), source.fault_config());
    let stimulus = source.stimulus();
    Ok(PreparedCampaign {
        source,
        faults,
        stimulus,
    })
}

/// Everything cached for one (design, stimulus-seed) identity.
#[derive(Default)]
struct CacheEntry {
    prepared: Option<Arc<Prepared>>,
    tapes: Option<Arc<TapeProgram>>,
    batch: Option<Arc<BatchProgram>>,
    /// Good-run artifacts per checkpoint interval.
    good: HashMap<usize, Arc<GoodRunArtifacts>>,
}

struct Inner {
    state: Mutex<State>,
    work: Condvar,
    store: Mutex<Box<dyn ResultStore>>,
    caches: Mutex<HashMap<String, CacheEntry>>,
    queue_cap: usize,
    shutdown: AtomicBool,
}

/// The campaign service (see the module docs). Cloneable-by-`Arc` via
/// [`handle`](Self::handle); [`shutdown`](Self::shutdown) (also run on
/// drop) stops the workers, abandoning still-queued jobs.
pub struct CampaignService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// A shareable reference to a running service — what the HTTP layer's
/// connection threads hold.
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<Inner>,
}

impl CampaignService {
    /// Starts a service draining jobs with `workers` threads over a
    /// bounded queue of `queue_cap` entries, persisting results to
    /// `store`. Both sizes are clamped to at least 1.
    pub fn new(store: Box<dyn ResultStore>, workers: usize, queue_cap: usize) -> CampaignService {
        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            store: Mutex::new(store),
            caches: Mutex::new(HashMap::new()),
            queue_cap: queue_cap.max(1),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        CampaignService { inner, workers }
    }

    /// A shareable handle for serving threads.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Stops the workers: running jobs finish, queued jobs are abandoned
    /// (their status stays `Queued`).
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for CampaignService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ServiceHandle {
    /// Enqueues a campaign, returning its id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity,
    /// [`SubmitError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, spec: CampaignSpec) -> Result<String, SubmitError> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let mut state = self.inner.state.lock().unwrap();
        if state.queue.len() >= self.inner.queue_cap {
            return Err(SubmitError::QueueFull);
        }
        state.next_id += 1;
        let id = format!("c{}", state.next_id);
        state.jobs.insert(
            id.clone(),
            Job {
                spec,
                status: JobStatus::Queued,
                progress: Arc::new(CampaignProgress::new()),
            },
        );
        state.order.push(id.clone());
        state.queue.push_back(id.clone());
        drop(state);
        self.inner.work.notify_one();
        Ok(id)
    }

    /// The status of campaign `id` — from the live job table, or (after a
    /// restart onto a journal store) from the persisted record, which is
    /// by definition `Done`.
    pub fn status(&self, id: &str) -> Option<StatusView> {
        let state = self.inner.state.lock().unwrap();
        if let Some(job) = state.jobs.get(id) {
            return Some(StatusView {
                id: id.to_string(),
                status: job.status.clone(),
                progress: job.progress.snapshot(),
            });
        }
        drop(state);
        let store = self.inner.store.lock().unwrap();
        store.get(id).ok().flatten().map(|_| StatusView {
            id: id.to_string(),
            status: JobStatus::Done,
            progress: ProgressSnapshot::default(),
        })
    }

    /// The persisted record of a completed campaign.
    ///
    /// # Errors
    ///
    /// Store I/O failures; an unknown or unfinished id is `Ok(None)`.
    pub fn result(&self, id: &str) -> Result<Option<CampaignRecord>, StoreError> {
        self.inner.store.lock().unwrap().get(id)
    }

    /// Every known campaign — live jobs in submission order, then
    /// store-only (pre-restart) records.
    pub fn list(&self) -> Vec<StatusView> {
        let state = self.inner.state.lock().unwrap();
        let mut out: Vec<StatusView> = state
            .order
            .iter()
            .filter_map(|id| {
                state.jobs.get(id).map(|job| StatusView {
                    id: id.clone(),
                    status: job.status.clone(),
                    progress: job.progress.snapshot(),
                })
            })
            .collect();
        let live: std::collections::HashSet<&String> = state.order.iter().collect();
        let store = self.inner.store.lock().unwrap();
        for id in store.ids() {
            if !live.contains(&id) {
                out.push(StatusView {
                    id,
                    status: JobStatus::Done,
                    progress: ProgressSnapshot::default(),
                });
            }
        }
        out
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let (id, spec, progress) = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = state.queue.pop_front() {
                    let job = state.jobs.get_mut(&id).expect("queued job exists");
                    job.status = JobStatus::Running;
                    break (id, job.spec.clone(), Arc::clone(&job.progress));
                }
                state = inner.work.wait(state).unwrap();
            }
        };
        // A panicking engine must not take the worker down with it — the
        // job fails, the queue keeps draining.
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(inner, &id, &spec, &progress)))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "campaign panicked".to_string());
                Err(format!("campaign panicked: {msg}"))
            });
        let status = match outcome {
            Ok(record) => {
                let stored = inner.store.lock().unwrap().put(&record);
                match stored {
                    Ok(()) => JobStatus::Done,
                    Err(e) => JobStatus::Failed(e.to_string()),
                }
            }
            Err(message) => JobStatus::Failed(message),
        };
        let mut state = inner.state.lock().unwrap();
        if let Some(job) = state.jobs.get_mut(&id) {
            job.status = status;
        }
    }
}

/// The cache identity of a spec: everything that determines the compiled
/// design, the fault universe, and the stimulus.
fn cache_key(spec: &CampaignSpec) -> String {
    format!(
        "{}|top={:?}|clock={:?}|reset={:?}|seed={}|steps={:?}|max={:?}",
        spec.design.key(),
        spec.top,
        spec.clock,
        spec.reset,
        spec.seed,
        spec.steps,
        spec.max_faults
    )
}

/// Resolves a [`DesignRef`] into a [`DesignSource`], applying the spec's
/// top/clock/reset/seed/steps/max-faults knobs.
fn resolve_source(spec: &CampaignSpec) -> Result<DesignSource, String> {
    let mut source = match &spec.design {
        DesignRef::Benchmark(name) => {
            let bench = Benchmark::all()
                .into_iter()
                .find(|b| b.name().eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    let known: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
                    format!("unknown benchmark `{name}` (known: {})", known.join(", "))
                })?;
            DesignSource::benchmark(bench)
        }
        DesignRef::Fixture(name) => {
            let mut fixture = eraser_designs::netlist_fixtures()
                .into_iter()
                .find(|f| f.name().eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    format!(
                        "unknown netlist fixture `{name}` (known: {})",
                        eraser_designs::NETLIST_FIXTURE_NAMES.join(", ")
                    )
                })?;
            fixture.set_seed(spec.seed);
            fixture
        }
        DesignRef::Path(path) => DesignSource::load(
            Path::new(path),
            spec.top.as_deref(),
            spec.clock.as_deref(),
            spec.reset.as_deref(),
            spec.seed,
        )?,
    };
    if let Some(steps) = spec.steps {
        source.set_default_cycles(steps);
    }
    if let Some(max) = spec.max_faults {
        source.fault_config_mut().max_faults = Some(max);
    }
    Ok(source)
}

/// Fetches (or resolves and caches) the prepared inputs for `spec`.
fn prepared_for(inner: &Inner, spec: &CampaignSpec) -> Result<Arc<Prepared>, String> {
    let key = cache_key(spec);
    if let Some(p) = inner
        .caches
        .lock()
        .unwrap()
        .get(&key)
        .and_then(|e| e.prepared.clone())
    {
        return Ok(p);
    }
    let source = resolve_source(spec)?;
    let faults = generate_faults(source.design(), source.fault_config());
    let stimulus = source.stimulus();
    let prepared = Arc::new(Prepared {
        source,
        faults,
        stimulus,
    });
    let mut caches = inner.caches.lock().unwrap();
    let entry = caches.entry(key).or_default();
    // A concurrent worker may have prepared the same identity; keep the
    // first so every later campaign shares one design instance.
    Ok(entry.prepared.get_or_insert(prepared).clone())
}

/// Executes one campaign: resolve through the cache, run, build the
/// record.
fn run_job(
    inner: &Inner,
    id: &str,
    spec: &CampaignSpec,
    progress: &CampaignProgress,
) -> Result<CampaignRecord, String> {
    let key = cache_key(spec);
    let prepared = prepared_for(inner, spec)?;
    let config = spec.resolve();

    // Shared compiled programs, compiled lazily on first need.
    let tapes: Option<Arc<TapeProgram>> = if config.backend == EvalBackend::Tape {
        let mut caches = inner.caches.lock().unwrap();
        let entry = caches.entry(key.clone()).or_default();
        Some(
            entry
                .tapes
                .get_or_insert_with(|| Arc::new(TapeProgram::compile(prepared.source.design())))
                .clone(),
        )
    } else {
        None
    };
    let batch: Option<Arc<BatchProgram>> = if config.batch.enabled {
        let mut caches = inner.caches.lock().unwrap();
        let entry = caches.entry(key.clone()).or_default();
        Some(
            entry
                .batch
                .get_or_insert_with(|| Arc::new(BatchProgram::compile(prepared.source.design())))
                .clone(),
        )
    } else {
        None
    };

    // Good-run artifacts: shareable only when the simulated universe is
    // the recorded one — checkpointing on, collapsing off (collapsing
    // simulates representatives, and `run_campaign_with` would ignore the
    // artifacts anyway).
    let use_good = config.checkpoint.is_enabled()
        && !config.collapse.enabled
        && !prepared.faults.is_empty()
        && !prepared.stimulus.steps.is_empty();
    let (good, good_run_steps, cache_hit) = if use_good {
        let interval = config.checkpoint.interval;
        let hit = inner
            .caches
            .lock()
            .unwrap()
            .get(&key)
            .and_then(|e| e.good.get(&interval).cloned());
        match hit {
            Some(g) => (Some(g), 0u64, true),
            None => {
                // Record outside the cache lock; a concurrent duplicate
                // recording is wasted work, not an error, and first-insert
                // wins so later campaigns share one copy.
                let g = Arc::new(record_good_run(
                    prepared.source.design(),
                    &prepared.faults,
                    &prepared.stimulus,
                    &config,
                    tapes.as_deref(),
                ));
                let steps = g.steps() as u64;
                let mut caches = inner.caches.lock().unwrap();
                let entry = caches.entry(key.clone()).or_default();
                let shared = entry.good.entry(interval).or_insert(g).clone();
                (Some(shared), steps, false)
            }
        }
    } else {
        (None, 0, false)
    };

    let ctx = CampaignContext {
        tapes: tapes.as_deref(),
        batch: batch.as_deref(),
        good_run: good.as_deref(),
        progress: Some(progress),
    };
    let result = run_campaign_with(
        prepared.source.design(),
        &prepared.faults,
        &prepared.stimulus,
        &config,
        &ctx,
    );

    Ok(CampaignRecord {
        id: id.to_string(),
        spec: spec.clone(),
        design_name: prepared.source.name().to_string(),
        num_faults: prepared.faults.len(),
        steps: prepared.stimulus.steps.len(),
        good_run_steps,
        cache_hit,
        coverage: result.coverage,
        stats: result.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use std::time::Duration;

    fn wait_done(handle: &ServiceHandle, id: &str) -> JobStatus {
        for _ in 0..3000 {
            match handle.status(id).map(|v| v.status) {
                Some(JobStatus::Done) => return JobStatus::Done,
                Some(JobStatus::Failed(m)) => return JobStatus::Failed(m),
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        panic!("campaign {id} did not finish");
    }

    #[test]
    fn unknown_design_fails_the_job_not_the_service() {
        let mut service = CampaignService::new(Box::new(MemStore::new()), 1, 4);
        let handle = service.handle();
        let id = handle
            .submit(CampaignSpec::benchmark("NoSuchBench"))
            .unwrap();
        match wait_done(&handle, &id) {
            JobStatus::Failed(msg) => assert!(msg.contains("NoSuchBench"), "{msg}"),
            other => panic!("expected failure, got {other:?}"),
        }
        // The worker survived: a valid campaign still runs to completion.
        let id2 = handle
            .submit(
                CampaignSpec::benchmark("APB")
                    .steps(20)
                    .threads(1)
                    .backend(EvalBackend::Tree),
            )
            .unwrap();
        assert_eq!(wait_done(&handle, &id2), JobStatus::Done);
        let record = handle.result(&id2).unwrap().unwrap();
        assert_eq!(record.design_name, "APB");
        assert!(record.num_faults > 0);
        service.shutdown();
    }

    #[test]
    fn queue_bound_rejects_when_full() {
        // No workers ever drain (workers=1 but we fill faster than a
        // 20-step campaign finishes is racy — instead use a queue of 1 and
        // stack a second submission immediately).
        let service = CampaignService::new(Box::new(MemStore::new()), 1, 1);
        let handle = service.handle();
        let long = CampaignSpec::benchmark("APB").steps(200).threads(1);
        // First submission may start running immediately (leaving the
        // queue empty) — keep stacking until one sits queued, then the
        // next must bounce.
        let mut bounced = false;
        for _ in 0..50 {
            match handle.submit(long.clone()) {
                Ok(_) => {}
                Err(SubmitError::QueueFull) => {
                    bounced = true;
                    break;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        assert!(bounced, "queue bound never enforced");
    }

    #[test]
    fn repeat_submission_skips_the_good_run() {
        let service = CampaignService::new(Box::new(MemStore::new()), 1, 8);
        let handle = service.handle();
        let spec = CampaignSpec::benchmark("APB")
            .steps(40)
            .threads(1)
            .checkpoint_interval(8)
            .backend(EvalBackend::Tree);
        let a = handle.submit(spec.clone()).unwrap();
        assert_eq!(wait_done(&handle, &a), JobStatus::Done);
        let b = handle.submit(spec).unwrap();
        assert_eq!(wait_done(&handle, &b), JobStatus::Done);
        let ra = handle.result(&a).unwrap().unwrap();
        let rb = handle.result(&b).unwrap().unwrap();
        assert!(!ra.cache_hit);
        assert_eq!(ra.good_run_steps, ra.steps as u64);
        assert!(ra.good_run_steps > 0);
        assert!(rb.cache_hit);
        assert_eq!(rb.good_run_steps, 0, "cached artifacts were not reused");
        // Amortization must not perturb results.
        assert_eq!(ra.coverage, rb.coverage);
    }
}
