//! Pluggable result backends: where completed campaign records live.
//!
//! A [`ResultStore`] persists [`CampaignRecord`]s by id. Two backends
//! ship:
//!
//! * [`MemStore`] — a process-local map; results live exactly as long as
//!   the service.
//! * [`JournalStore`] — an append-only on-disk journal. Every `put`
//!   appends one length- and checksum-framed JSON record and flushes;
//!   nothing is ever rewritten in place, so a crash can only ever damage
//!   the *tail* of the file. On open, recovery replays the journal,
//!   stops at the first incomplete or corrupt frame, and truncates the
//!   file back to the last intact record — every campaign whose `put`
//!   completed is recovered, deterministically.
//!
//! # Journal frame format
//!
//! ```text
//! ERASER-REC <payload-len> <fnv1a-64-hex>\n
//! <payload bytes>\n
//! ```
//!
//! The payload is the record's compact JSON. The checksum is FNV-1a over
//! the payload bytes; a frame whose header is malformed, whose payload is
//! short, or whose checksum mismatches ends recovery at the previous
//! frame boundary.

use crate::record::CampaignRecord;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A result-backend failure (I/O or corrupt data outside the recoverable
/// journal tail).
#[derive(Debug)]
pub struct StoreError {
    /// What went wrong.
    pub message: String,
}

impl StoreError {
    fn new(message: impl Into<String>) -> Self {
        StoreError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "result store error: {}", self.message)
    }
}

impl std::error::Error for StoreError {}

/// A persistence backend for completed campaign records.
///
/// Contract (exercised by the shared conformance suite in
/// `tests/store_conformance.rs`):
///
/// * `get` of an unknown id is `Ok(None)`, never an error;
/// * `put` followed by `get` returns a record comparing equal — coverage
///   detections and every stats counter bit-identical;
/// * `put` with an existing id replaces that record;
/// * `ids` lists each stored id exactly once, in first-`put` order.
pub trait ResultStore: Send {
    /// Persists `record`, replacing any previous record with the same id.
    fn put(&mut self, record: &CampaignRecord) -> Result<(), StoreError>;

    /// Looks up a record by id.
    fn get(&self, id: &str) -> Result<Option<CampaignRecord>, StoreError>;

    /// All stored ids, each once, in first-`put` order.
    fn ids(&self) -> Vec<String>;
}

/// The in-memory backend: a map, nothing more.
#[derive(Debug, Default)]
pub struct MemStore {
    records: HashMap<String, CampaignRecord>,
    order: Vec<String>,
}

impl MemStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ResultStore for MemStore {
    fn put(&mut self, record: &CampaignRecord) -> Result<(), StoreError> {
        if self
            .records
            .insert(record.id.clone(), record.clone())
            .is_none()
        {
            self.order.push(record.id.clone());
        }
        Ok(())
    }

    fn get(&self, id: &str) -> Result<Option<CampaignRecord>, StoreError> {
        Ok(self.records.get(id).cloned())
    }

    fn ids(&self) -> Vec<String> {
        self.order.clone()
    }
}

/// Frame header magic; doubles as a human-readable file signature.
const FRAME_MAGIC: &str = "ERASER-REC";

/// FNV-1a 64-bit, the journal's payload checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The append-only on-disk backend (see the module docs for the frame
/// format and recovery rule). Keeps a full in-memory index — the journal
/// is the durability layer, not the read path.
#[derive(Debug)]
pub struct JournalStore {
    path: PathBuf,
    file: File,
    records: HashMap<String, CampaignRecord>,
    order: Vec<String>,
}

impl JournalStore {
    /// Opens (or creates) the journal at `path`, replaying every intact
    /// frame and truncating any damaged tail.
    ///
    /// # Errors
    ///
    /// I/O failures opening, reading, or truncating the file. Tail
    /// damage is *not* an error — it is the crash case recovery exists
    /// for.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StoreError::new(format!("cannot open `{}`: {e}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| StoreError::new(format!("cannot read `{}`: {e}", path.display())))?;

        let mut records = HashMap::new();
        let mut order = Vec::new();
        let mut pos = 0usize;
        // Replay intact frames; the first malformed one ends the journal.
        while let Some((record, next)) = read_frame(&bytes, pos) {
            if records.insert(record.id.clone(), record.clone()).is_none() {
                order.push(record.id);
            }
            pos = next;
        }
        if pos < bytes.len() {
            // Damaged tail (torn write): truncate back to the last intact
            // frame so future appends start from a clean boundary.
            file.set_len(pos as u64).map_err(|e| {
                StoreError::new(format!("cannot truncate `{}`: {e}", path.display()))
            })?;
        }
        file.seek(SeekFrom::Start(pos as u64))
            .map_err(|e| StoreError::new(format!("cannot seek `{}`: {e}", path.display())))?;
        Ok(JournalStore {
            path,
            file,
            records,
            order,
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses one frame at `pos`. `None` means end-of-journal: clean EOF *or*
/// a damaged frame (short, malformed header, checksum mismatch,
/// unparsable payload) — recovery treats both as "the journal ends here".
fn read_frame(bytes: &[u8], pos: usize) -> Option<(CampaignRecord, usize)> {
    if pos >= bytes.len() {
        return None;
    }
    let header_end = pos + bytes[pos..].iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[pos..header_end]).ok()?;
    let mut parts = header.split(' ');
    if parts.next()? != FRAME_MAGIC {
        return None;
    }
    let len: usize = parts.next()?.parse().ok()?;
    let checksum = u64::from_str_radix(parts.next()?, 16).ok()?;
    if parts.next().is_some() {
        return None;
    }
    let payload_start = header_end + 1;
    let payload_end = payload_start.checked_add(len)?;
    // The trailing newline must be present too — a payload that is intact
    // but lost its terminator is still a torn write.
    if payload_end >= bytes.len() || bytes[payload_end] != b'\n' {
        return None;
    }
    let payload = &bytes[payload_start..payload_end];
    if fnv1a(payload) != checksum {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let record = CampaignRecord::from_json(text).ok()?;
    Some((record, payload_end + 1))
}

impl ResultStore for JournalStore {
    fn put(&mut self, record: &CampaignRecord) -> Result<(), StoreError> {
        let payload = record.to_json();
        let frame = format!(
            "{FRAME_MAGIC} {} {:016x}\n{payload}\n",
            payload.len(),
            fnv1a(payload.as_bytes())
        );
        self.file
            .write_all(frame.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| {
                StoreError::new(format!("cannot append to `{}`: {e}", self.path.display()))
            })?;
        if self
            .records
            .insert(record.id.clone(), record.clone())
            .is_none()
        {
            self.order.push(record.id.clone());
        }
        Ok(())
    }

    fn get(&self, id: &str) -> Result<Option<CampaignRecord>, StoreError> {
        Ok(self.records.get(id).cloned())
    }

    fn ids(&self) -> Vec<String> {
        self.order.clone()
    }
}

/// Parses a CLI/server store selector: `mem` or `journal:PATH`.
///
/// # Errors
///
/// A usage message for anything else.
pub fn open_store(selector: &str) -> Result<Box<dyn ResultStore>, StoreError> {
    if selector == "mem" {
        return Ok(Box::new(MemStore::new()));
    }
    if let Some(path) = selector.strip_prefix("journal:") {
        if path.is_empty() {
            return Err(StoreError::new("journal store needs a path (journal:PATH)"));
        }
        return Ok(Box::new(JournalStore::open(path)?));
    }
    Err(StoreError::new(format!(
        "unknown result store `{selector}` (expected mem or journal:PATH)"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn open_store_parses_selectors() {
        assert!(open_store("mem").is_ok());
        assert!(open_store("journal:").is_err());
        assert!(open_store("redis:x").is_err());
        let err = open_store("postgres").err().expect("selector rejected");
        assert!(err.message.contains("postgres"));
    }
}
