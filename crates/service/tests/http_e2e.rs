//! End-to-end HTTP campaign tests: a real server on an ephemeral port, a
//! hand-rolled client, and the acceptance invariants —
//!
//! * a campaign submitted over HTTP (benchmark **and** netlist fixture)
//!   returns coverage bit-identical to a direct [`run_campaign`] call
//!   with every redundancy counter preserved through the result store;
//! * a second submission of the identical (design, seed) spec reports
//!   zero good-run steps executed (the artifact cache);
//! * a journal-backed service restarted onto the same file serves every
//!   completed campaign's record unchanged.

use eraser_core::{run_campaign, CampaignSpec};
use eraser_netlist::json::{self, JsonValue};
use eraser_service::{
    prepare_spec, CampaignRecord, CampaignService, HttpServer, JournalStore, MemStore,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Minimal HTTP/1.1 client: one request, one connection.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Polls `GET /campaigns/:id` until done (panicking on failure or
/// timeout) and returns the persisted record.
fn await_record(addr: SocketAddr, id: &str) -> CampaignRecord {
    for _ in 0..6000 {
        let (status, body) = http(addr, "GET", &format!("/campaigns/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let v = json::parse(&body).unwrap();
        match v.get("status").and_then(JsonValue::as_str) {
            Some("done") => {
                let (status, body) = http(addr, "GET", &format!("/campaigns/{id}/result"), "");
                assert_eq!(status, 200, "{body}");
                return CampaignRecord::from_json(&body).expect("well-formed record");
            }
            Some("failed") => panic!("campaign {id} failed: {body}"),
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    panic!("campaign {id} did not finish");
}

fn submit(addr: SocketAddr, spec: &CampaignSpec) -> String {
    let (status, body) = http(addr, "POST", "/campaigns", &spec.to_json());
    assert_eq!(status, 202, "{body}");
    json::parse(&body)
        .unwrap()
        .get("id")
        .and_then(JsonValue::as_str)
        .expect("id in response")
        .to_string()
}

/// Every semantic counter must survive the HTTP + store round trip
/// bit-identically; the time fields are wall measurements and may differ
/// between the service run and the direct run.
fn assert_counters_identical(
    got: &eraser_core::RedundancyStats,
    want: &eraser_core::RedundancyStats,
) {
    let mut got = got.clone();
    let mut want = want.clone();
    got.time_behavioral = Duration::ZERO;
    got.time_total = Duration::ZERO;
    want.time_behavioral = Duration::ZERO;
    want.time_total = Duration::ZERO;
    assert_eq!(got, want);
}

/// The tentpole acceptance test: health check, two designs end to end
/// with bit-identical results, spec validation, unknown-id handling, and
/// the good-run cache on a repeat submission.
#[test]
fn http_campaigns_match_direct_library_calls() {
    let mut service = CampaignService::new(Box::new(MemStore::new()), 2, 16);
    let mut server = HttpServer::bind("127.0.0.1:0", service.handle()).unwrap();
    let addr = server.local_addr();

    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("ok"));

    // Pin every knob so the service worker and the direct call resolve
    // the identical config regardless of ERASER_* in the environment.
    let apb = CampaignSpec::benchmark("APB")
        .steps(40)
        .threads(1)
        .backend(eraser_core::EvalBackend::Tree)
        .checkpoint_interval(8)
        .batch(false)
        .collapse(false);
    let mac = CampaignSpec::fixture("mac16_gate")
        .seed(0x3a6)
        .steps(60)
        .threads(2)
        .backend(eraser_core::EvalBackend::Tape)
        .checkpoint_interval(0)
        .batch(true)
        .collapse(false);

    let apb_id = submit(addr, &apb);
    let mac_id = submit(addr, &mac);
    let apb_record = await_record(addr, &apb_id);
    let mac_record = await_record(addr, &mac_id);

    for (spec, record) in [(&apb, &apb_record), (&mac, &mac_record)] {
        let prep = prepare_spec(spec).unwrap();
        let direct = run_campaign(
            prep.source.design(),
            &prep.faults,
            &prep.stimulus,
            &spec.resolve(),
        );
        assert_eq!(
            record.coverage, direct.coverage,
            "{}: HTTP coverage must be bit-identical to the direct call",
            record.design_name
        );
        assert_counters_identical(&record.stats, &direct.stats);
        assert_eq!(record.num_faults, prep.faults.len());
        assert_eq!(record.steps, prep.stimulus.steps.len());
        assert_eq!(record.spec, *spec);
    }
    // The checkpointed campaign ran its good run fresh; the
    // non-checkpointed one never runs a separate good pass.
    assert!(!apb_record.cache_hit);
    assert_eq!(apb_record.good_run_steps, apb_record.steps as u64);
    assert_eq!(mac_record.good_run_steps, 0);

    // Second submission of the identical (design, seed) spec: zero
    // good-run steps executed, results unchanged.
    let repeat_id = submit(addr, &apb);
    let repeat = await_record(addr, &repeat_id);
    assert!(repeat.cache_hit, "artifacts were not reused");
    assert_eq!(repeat.good_run_steps, 0);
    assert_eq!(repeat.coverage, apb_record.coverage);
    assert_counters_identical(&repeat.stats, &apb_record.stats);

    // Spec validation speaks HTTP: unknown key → 400 naming it.
    let (status, body) = http(
        addr,
        "POST",
        "/campaigns",
        r#"{"design": {"benchmark": "APB"}, "sede": 1}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("sede"), "{body}");

    // Unknown ids and unfinished results.
    let (status, _) = http(addr, "GET", "/campaigns/c999", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/campaigns/c999/result", "");
    assert_eq!(status, 404);
    let (status, body) = http(addr, "GET", "/campaigns", "");
    assert_eq!(status, 200);
    assert!(body.contains(&apb_id) && body.contains(&mac_id), "{body}");

    server.shutdown();
    service.shutdown();
}

/// Restarting a journal-backed service onto the same file must serve
/// every completed campaign's record, unchanged, over HTTP.
#[test]
fn journal_backed_service_survives_restart() {
    let path = std::env::temp_dir().join(format!("eraser-http-journal-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let spec = CampaignSpec::benchmark("ALU")
        .steps(20)
        .threads(1)
        .backend(eraser_core::EvalBackend::Tree)
        .checkpoint_interval(0)
        .batch(false)
        .collapse(false);

    let (id, first) = {
        let mut service = CampaignService::new(Box::new(JournalStore::open(&path).unwrap()), 1, 8);
        let mut server = HttpServer::bind("127.0.0.1:0", service.handle()).unwrap();
        let id = submit(server.local_addr(), &spec);
        let record = await_record(server.local_addr(), &id);
        server.shutdown();
        service.shutdown();
        (id, record)
    };

    // A fresh service process (new queue, empty job table) on the same
    // journal: the campaign is known, done, and byte-for-byte intact.
    let mut service = CampaignService::new(Box::new(JournalStore::open(&path).unwrap()), 1, 8);
    let mut server = HttpServer::bind("127.0.0.1:0", service.handle()).unwrap();
    let addr = server.local_addr();
    let (status, body) = http(addr, "GET", &format!("/campaigns/{id}"), "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("done"), "{body}");
    let (status, body) = http(addr, "GET", &format!("/campaigns/{id}/result"), "");
    assert_eq!(status, 200, "{body}");
    let recovered = CampaignRecord::from_json(&body).unwrap();
    assert_eq!(recovered, first);
    server.shutdown();
    service.shutdown();
    let _ = std::fs::remove_file(&path);
}
