//! The shared [`ResultStore`] conformance suite, run against both
//! backends, plus the journal-specific persistence and crash-recovery
//! tests.
//!
//! The conformance contract (documented on the trait): unknown ids read
//! as `None`, put/get round-trips are bit-identical (coverage detections
//! and every stats counter), re-`put` of an id replaces, and `ids` lists
//! first-`put` order without duplicates. The journal additionally
//! survives reopen, and — the crash-injection test — deterministically
//! recovers every completed record when the file loses an arbitrary
//! number of tail bytes mid-record.

use eraser_core::{CampaignSpec, RedundancyStats};
use eraser_fault::{CoverageReport, Detection, FaultId};
use eraser_ir::SignalId;
use eraser_service::{CampaignRecord, JournalStore, MemStore, ResultStore};
use std::path::PathBuf;
use std::time::Duration;

/// A distinguishable record: every field derived from `n` so two records
/// never collide and corruption is detectable by equality.
fn record(n: u64) -> CampaignRecord {
    let total = 8 + n as usize;
    let mut coverage = CoverageReport::new(total);
    for i in 0..total {
        if i as u64 % 3 != 1 {
            coverage.record(
                FaultId(i as u32),
                Detection {
                    step: (n as usize + i) * 2,
                    output: SignalId((i % 5) as u32),
                },
            );
        }
    }
    CampaignRecord {
        id: format!("c{n}"),
        spec: CampaignSpec::benchmark("APB")
            .seed(n)
            .steps(40 + n as usize),
        design_name: "APB".into(),
        num_faults: total,
        steps: 40 + n as usize,
        good_run_steps: n * 40,
        cache_hit: n % 2 == 1,
        coverage,
        stats: RedundancyStats {
            good_activations: n,
            opportunities: n * 100,
            explicit_skipped: n * 60,
            implicit_skipped: n * 30,
            fault_executions: n * 10,
            rtl_good_evals: n * 7,
            rtl_fault_evals: n * 11,
            deltas: n * 13,
            skipped_prefix_steps: n * 17,
            dropped_faults: n,
            time_behavioral: Duration::from_nanos(n * 1001),
            time_total: Duration::from_nanos(n * 5003),
            ..RedundancyStats::default()
        },
    }
}

/// The backend-agnostic contract. Every [`ResultStore`] implementation
/// must pass this unchanged.
fn check_conformance(store: &mut dyn ResultStore) {
    // Empty store: unknown ids are None, not errors.
    assert!(store.get("c1").unwrap().is_none());
    assert!(store.ids().is_empty());

    // Round-trip, bit-identical.
    let r1 = record(1);
    let r2 = record(2);
    store.put(&r1).unwrap();
    store.put(&r2).unwrap();
    let back = store.get("c1").unwrap().expect("c1 stored");
    assert_eq!(back, r1);
    assert_eq!(
        back.coverage, r1.coverage,
        "detections must survive exactly"
    );
    assert_eq!(back.stats, r1.stats, "every counter must survive exactly");
    assert_eq!(store.get("c2").unwrap().unwrap(), r2);
    assert!(store.get("c3").unwrap().is_none());

    // First-put order, no duplicates.
    assert_eq!(store.ids(), vec!["c1".to_string(), "c2".to_string()]);

    // Re-put replaces.
    let mut r1b = record(1);
    r1b.stats.opportunities += 999;
    store.put(&r1b).unwrap();
    assert_eq!(store.get("c1").unwrap().unwrap(), r1b);
    assert_eq!(store.ids(), vec!["c1".to_string(), "c2".to_string()]);
}

/// A per-test scratch path (removed before and after use).
fn scratch(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("eraser-store-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn mem_store_conforms() {
    check_conformance(&mut MemStore::new());
}

#[test]
fn journal_store_conforms() {
    let path = scratch("conform");
    check_conformance(&mut JournalStore::open(&path).unwrap());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn journal_survives_reopen() {
    let path = scratch("reopen");
    let (r1, r2) = (record(1), record(2));
    {
        let mut store = JournalStore::open(&path).unwrap();
        store.put(&r1).unwrap();
        store.put(&r2).unwrap();
    }
    let store = JournalStore::open(&path).unwrap();
    assert_eq!(store.ids(), vec!["c1".to_string(), "c2".to_string()]);
    assert_eq!(store.get("c1").unwrap().unwrap(), r1);
    assert_eq!(store.get("c2").unwrap().unwrap(), r2);
    let _ = std::fs::remove_file(&path);
}

/// The deterministic crash-injection test: truncate the journal at every
/// byte offset inside the final record's frame and check that recovery
/// always restores exactly the completed records and resets the file to
/// a clean boundary new appends extend.
#[test]
fn journal_recovers_from_mid_record_truncation() {
    let path = scratch("crash");
    let (r1, r2, r3) = (record(1), record(2), record(3));
    let len_after_two;
    let len_after_three;
    {
        let mut store = JournalStore::open(&path).unwrap();
        store.put(&r1).unwrap();
        store.put(&r2).unwrap();
        len_after_two = std::fs::metadata(&path).unwrap().len();
        store.put(&r3).unwrap();
        len_after_three = std::fs::metadata(&path).unwrap().len();
    }
    assert!(len_after_three > len_after_two);
    let full = std::fs::read(&path).unwrap();

    // A torn write can stop at any byte: header cut short, payload cut
    // short, checksum line intact but newline missing. Sample the whole
    // range (stride keeps the test fast; endpoints are covered).
    let cuts: Vec<u64> = (len_after_two + 1..len_after_three)
        .step_by(7)
        .chain([len_after_two + 1, len_after_three - 1])
        .collect();
    for cut in cuts {
        std::fs::write(&path, &full[..cut as usize]).unwrap();
        let store = JournalStore::open(&path).unwrap();
        assert_eq!(
            store.ids(),
            vec!["c1".to_string(), "c2".to_string()],
            "cut at byte {cut}: completed records must all recover"
        );
        assert_eq!(store.get("c1").unwrap().unwrap(), r1);
        assert_eq!(store.get("c2").unwrap().unwrap(), r2);
        assert!(store.get("c3").unwrap().is_none());
        // Recovery truncates back to the last intact frame...
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len_after_two);
        drop(store);
        // ...and the journal accepts appends from that clean boundary.
        let mut store = JournalStore::open(&path).unwrap();
        store.put(&r3).unwrap();
        drop(store);
        let store = JournalStore::open(&path).unwrap();
        assert_eq!(store.ids(), vec!["c1", "c2", "c3"]);
        assert_eq!(store.get("c3").unwrap().unwrap(), r3);
    }
    let _ = std::fs::remove_file(&path);
}

/// Flipping a byte inside a frame (not just truncating) must also end
/// recovery at the previous intact record — the checksum is what
/// guarantees it.
#[test]
fn journal_checksum_catches_corruption() {
    let path = scratch("corrupt");
    {
        let mut store = JournalStore::open(&path).unwrap();
        store.put(&record(1)).unwrap();
        store.put(&record(2)).unwrap();
    }
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() * 3 / 4; // inside the second frame's payload
    bytes[mid] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();
    let store = JournalStore::open(&path).unwrap();
    assert_eq!(store.ids(), vec!["c1".to_string()]);
    assert_eq!(store.get("c1").unwrap().unwrap(), record(1));
    let _ = std::fs::remove_file(&path);
}
