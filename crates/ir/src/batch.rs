//! Bit-parallel (PPSFP-style) batch evaluation of RTL nodes.
//!
//! The scalar engines evaluate divergent faults one machine at a time; this
//! module evaluates up to [`eraser_logic::LANES`] fault machines at once by
//! transposing their ≤ 64-bit operand values into [`LanePlanes`] (word `j`
//! holds bit `j` of every lane) and applying the *same* four-state word
//! formulas as the scalar tape backend word-by-word over the planes. Every
//! scalar formula in `tape.rs` is bitwise across bit positions, so the
//! transposition is exact: lane `i` of the batch result is bit-identical to
//! a scalar evaluation of machine `i`, including `X`/`Z` propagation — no
//! lane ever needs an X fallback.
//!
//! A [`BatchTape`] is compiled per RTL node by [`BatchProgram::compile`].
//! Compilation is partial by design: nodes whose operator is not
//! word-parallel (multiplication, division, shifts, variable indexing,
//! constants) or that touch a signal wider than 64 bits get `None` and fall
//! back to the scalar path. The batchable set covers the bitwise, reduction,
//! logical, equality, comparison and ripple-carry add/sub operators plus
//! mux, concatenation, replication and constant part selects — the bulk of
//! the combinational network on the benchmark suite.
//!
//! Like the scalar tape, a batch result is forced to the output signal's
//! declared width: computed bits are truncated to it and missing bits are
//! zero (matching `resize_assign` zero-extension, which applies even to an
//! all-X natural result).

use crate::design::Design;
use crate::expr::{BinaryOp, UnaryOp};
use crate::node::{RtlNode, RtlOp};
use eraser_logic::LanePlanes;

/// The word-parallel operator of a [`BatchTape`]. Unbatchable operators are
/// unrepresentable — compilation rejects them instead.
#[derive(Debug, Clone, PartialEq)]
enum BatchOp {
    /// Identity buffer.
    Buf,
    /// A unary operator (all six are word-parallel).
    Unary(UnaryOp),
    /// A word-parallel binary operator (compilation excludes `Mul`, `Div`,
    /// `Rem` and the shifts).
    Binary(BinaryOp),
    /// Ternary select with bit-wise X merge; inputs `[cond, then, else]`.
    Mux,
    /// Concatenation, inputs MSB-first.
    Concat,
    /// Replication of the single input.
    Replicate(u32),
    /// Constant part select `input[hi:lo]`.
    Slice {
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
}

/// A compiled batch evaluation of one RTL node: one word-parallel operator
/// plus the forced output width.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchTape {
    op: BatchOp,
    out_width: u32,
}

impl BatchTape {
    /// The output signal width the batch result is forced to.
    pub fn out_width(&self) -> u32 {
        self.out_width
    }
}

/// Compiles `node` into a batch tape, or `None` if the node must stay on
/// the scalar path (non-word-parallel operator, or any signal > 64 bits).
fn compile_node(
    node: &RtlNode,
    sig_width: &dyn Fn(crate::ids::SignalId) -> u32,
) -> Option<BatchTape> {
    let out_width = sig_width(node.output);
    if out_width > 64 || node.inputs.iter().any(|&s| sig_width(s) > 64) {
        return None;
    }
    let op = match &node.op {
        RtlOp::Buf => BatchOp::Buf,
        RtlOp::Unary(u) => BatchOp::Unary(*u),
        RtlOp::Binary(b) => match b {
            // Multiplication/division are not bitwise across positions;
            // shift amounts are lane-variant signals (a constant amount
            // reaches the node as a `Const`-driven signal that can itself
            // carry fault differences), so all of these stay scalar.
            BinaryOp::Mul
            | BinaryOp::Div
            | BinaryOp::Rem
            | BinaryOp::Shl
            | BinaryOp::Shr
            | BinaryOp::AShr => return None,
            _ => BatchOp::Binary(*b),
        },
        RtlOp::Mux => BatchOp::Mux,
        RtlOp::Concat => BatchOp::Concat,
        RtlOp::Replicate(n) => BatchOp::Replicate(*n),
        RtlOp::Slice { hi, lo } => BatchOp::Slice { hi: *hi, lo: *lo },
        // Constant drivers have no inputs, so no fault machine can ever
        // diverge on them; Index/IndexedPart select by a lane-variant
        // signal value. All stay scalar.
        RtlOp::Const(_) | RtlOp::Index | RtlOp::IndexedPart { .. } => return None,
    };
    Some(BatchTape { op, out_width })
}

/// The compiled batch plane of a design: one optional [`BatchTape`] per RTL
/// node, indexed by [`RtlNodeId`](crate::ids::RtlNodeId).
///
/// Independent of the scalar [`TapeProgram`](crate::tape::TapeProgram) —
/// batching composes with either scalar backend.
#[derive(Debug, Clone, Default)]
pub struct BatchProgram {
    rtl: Vec<Option<BatchTape>>,
}

impl BatchProgram {
    /// Compiles the batchable subset of `design`'s RTL nodes.
    pub fn compile(design: &Design) -> Self {
        let width = |s: crate::ids::SignalId| design.signal(s).width;
        BatchProgram {
            rtl: design
                .rtl_nodes()
                .iter()
                .map(|n| compile_node(n, &width))
                .collect(),
        }
    }

    /// The batch tape of RTL node `index`, if the node is batchable.
    #[inline]
    pub fn rtl(&self, index: usize) -> Option<&BatchTape> {
        self.rtl[index].as_ref()
    }

    /// Number of batchable RTL nodes.
    pub fn num_batchable(&self) -> usize {
        self.rtl.iter().filter(|t| t.is_some()).count()
    }
}

/// An owned-or-shared reference to a [`BatchProgram`], mirroring
/// [`TapeRef`](crate::tape::TapeRef): fault-parallel shards share one
/// compiled program, serial engines own theirs.
#[derive(Debug)]
pub enum BatchRef<'d> {
    /// Engine-owned program.
    Owned(BatchProgram),
    /// Program shared across engines (fault-parallel workers).
    Shared(&'d BatchProgram),
}

impl BatchRef<'_> {
    /// The referenced program.
    #[inline]
    pub fn program(&self) -> &BatchProgram {
        match self {
            BatchRef::Owned(p) => p,
            BatchRef::Shared(p) => p,
        }
    }
}

// ---- word-parallel kernels ----

/// Mask of lanes with any unknown (`X`/`Z`) bit anywhere in the value.
#[inline]
fn x_lanes(p: &LanePlanes) -> u64 {
    let mut m = 0;
    for j in 0..p.width() {
        m |= p.word(j).1;
    }
    m
}

/// Per-lane truth value as `(one, x)` lane masks (`zero` is the rest): the
/// lane form of `LogicVec::truth` — `1` if any defined `1` bit, else `X` if
/// any unknown bit, else `0`.
#[inline]
fn truth_lanes(p: &LanePlanes) -> (u64, u64) {
    let mut one = 0;
    let mut unk = 0;
    for j in 0..p.width() {
        let (a, b) = p.word(j);
        one |= a & !b;
        unk |= b;
    }
    (one, !one & unk)
}

/// Writes a single-bit result whose defined value is the `val` lane mask
/// and whose unknown lanes are `x` (bit 0 of the output; higher forced
/// bits stay zero).
#[inline]
fn set_bit0(out: &mut LanePlanes, val: u64, x: u64) {
    out.set_word(0, (val & !x) | x, x);
}

/// Ripple-carry sum of per-position lane words `l + r + carry_in`, written
/// to the low `n` output bits with unknown lanes `x` forced to X. Exact
/// under truncation: bit `j` of a sum depends only on bits `0..=j`.
#[inline]
fn ripple_add(
    out: &mut LanePlanes,
    n: u32,
    x: u64,
    mut carry: u64,
    word: impl Fn(u32) -> (u64, u64),
) {
    for j in 0..n {
        let (la, ra) = word(j);
        let s = la ^ ra ^ carry;
        carry = (la & ra) | (carry & (la ^ ra));
        out.set_word(j, (s & !x) | x, x);
    }
}

/// Per-lane unsigned comparison over the zero-extended operands, MSB first:
/// returns `(lt, gt)` lane masks (equal lanes are in neither).
#[inline]
fn cmp_lanes(l: &LanePlanes, r: &LanePlanes) -> (u64, u64) {
    let maxw = l.width().max(r.width());
    let (mut lt, mut gt) = (0u64, 0u64);
    for j in (0..maxw).rev() {
        let la = l.word(j).0;
        let ra = r.word(j).0;
        let undec = !lt & !gt;
        gt |= undec & la & !ra;
        lt |= undec & !la & ra;
    }
    (lt, gt)
}

/// Lane mask of operand pairs that differ on their defined (`aval`) planes
/// over the zero-extended width — the lane form of `la != ra` on fully
/// defined words.
#[inline]
fn ne_lanes(l: &LanePlanes, r: &LanePlanes) -> u64 {
    let maxw = l.width().max(r.width());
    let mut ne = 0;
    for j in 0..maxw {
        ne |= l.word(j).0 ^ r.word(j).0;
    }
    ne
}

/// Evaluates `tape` over `inputs` (one plane per RTL-node input, in node
/// order) into `out`, which is reshaped to the forced output width with
/// every computed lane exact.
///
/// Lanes of `out` beyond those actually packed by the caller hold
/// whatever the input planes' corresponding lanes held (normally the
/// broadcast good value) — the caller decides which lanes are meaningful.
pub fn run_batch(tape: &BatchTape, inputs: &[LanePlanes], out: &mut LanePlanes) {
    let ow = tape.out_width;
    out.reset(ow);
    match &tape.op {
        BatchOp::Buf => {
            let p = &inputs[0];
            for j in 0..ow.min(p.width()) {
                let (a, b) = p.word(j);
                out.set_word(j, a, b);
            }
        }
        BatchOp::Unary(u) => run_unary(*u, &inputs[0], ow, out),
        BatchOp::Binary(b) => run_binary(*b, &inputs[0], &inputs[1], ow, out),
        BatchOp::Mux => {
            let (cond, t, e) = (&inputs[0], &inputs[1], &inputs[2]);
            let (c_one, c_x) = truth_lanes(cond);
            let c_zero = !(c_one | c_x);
            for j in 0..ow.min(t.width().max(e.width())) {
                let (ta, tb) = t.word(j);
                let (ea, eb) = e.word(j);
                // Per-bit X merge for unknown conditions: agreeing defined
                // bits survive (the lane form of `merge_x_assign`).
                let agree = !(ta ^ ea) & !(tb ^ eb);
                let keep = agree & !tb;
                let (ma, mb) = ((ta & keep) | !keep, !keep);
                out.set_word(
                    j,
                    (c_one & ta) | (c_zero & ea) | (c_x & ma),
                    (c_one & tb) | (c_zero & eb) | (c_x & mb),
                );
            }
        }
        BatchOp::Concat => {
            // Source order is MSB-first; output bits run LSB-first.
            let mut j = 0;
            'parts: for p in inputs.iter().rev() {
                for k in 0..p.width() {
                    if j >= ow {
                        break 'parts;
                    }
                    let (a, b) = p.word(k);
                    out.set_word(j, a, b);
                    j += 1;
                }
            }
        }
        BatchOp::Replicate(n) => {
            let p = &inputs[0];
            for j in 0..ow.min(p.width() * n) {
                let (a, b) = p.word(j % p.width());
                out.set_word(j, a, b);
            }
        }
        BatchOp::Slice { hi, lo } => {
            let p = &inputs[0];
            for j in 0..ow.min(hi - lo + 1) {
                // Bits beyond the source width read as X in every lane
                // (out-of-range part select), matching `slice_into`.
                let (a, b) = if lo + j < p.width() {
                    p.word(lo + j)
                } else {
                    (u64::MAX, u64::MAX)
                };
                out.set_word(j, a, b);
            }
        }
    }
}

/// Word-parallel unary operators — the lane transposition of the scalar
/// `un64` helper.
fn run_unary(op: UnaryOp, p: &LanePlanes, ow: u32, out: &mut LanePlanes) {
    let w = p.width();
    match op {
        UnaryOp::Not => {
            for j in 0..ow.min(w) {
                let (a, b) = p.word(j);
                out.set_word(j, (!a & !b) | b, b);
            }
        }
        UnaryOp::Neg => {
            // `-a = !a + 1`; unknown lanes are all-X across the natural
            // width.
            let x = x_lanes(p);
            ripple_add(out, ow.min(w), x, u64::MAX, |j| (!p.word(j).0, 0));
        }
        UnaryOp::LogicalNot => {
            let (one, x) = truth_lanes(p);
            set_bit0(out, !(one | x), x);
        }
        UnaryOp::RedAnd => {
            // A defined 0 bit dominates any unknown: the lane is 0.
            let mut zero = 0;
            let mut unk = 0;
            for j in 0..w {
                let (a, b) = p.word(j);
                zero |= !a & !b;
                unk |= b;
            }
            let x = !zero & unk;
            set_bit0(out, !zero, x);
        }
        UnaryOp::RedOr => {
            let (one, x) = truth_lanes(p);
            set_bit0(out, one, x);
        }
        UnaryOp::RedXor => {
            let x = x_lanes(p);
            let mut parity = 0;
            for j in 0..w {
                parity ^= p.word(j).0;
            }
            set_bit0(out, parity, x);
        }
    }
}

/// Word-parallel binary operators — the lane transposition of the scalar
/// `bin64` helper (the unbatchable operators are rejected at compile time).
fn run_binary(op: BinaryOp, l: &LanePlanes, r: &LanePlanes, ow: u32, out: &mut LanePlanes) {
    let n = ow.min(l.width().max(r.width()));
    match op {
        BinaryOp::And => {
            for j in 0..n {
                let (la, lb) = l.word(j);
                let (ra, rb) = r.word(j);
                let def0 = (!la & !lb) | (!ra & !rb);
                let x = (lb | rb) & !def0;
                let one = (la & !lb) & (ra & !rb);
                out.set_word(j, one | x, x);
            }
        }
        BinaryOp::Or => {
            for j in 0..n {
                let (la, lb) = l.word(j);
                let (ra, rb) = r.word(j);
                let one = (la & !lb) | (ra & !rb);
                let x = (lb | rb) & !one;
                out.set_word(j, one | x, x);
            }
        }
        BinaryOp::Xor => {
            for j in 0..n {
                let (la, lb) = l.word(j);
                let (ra, rb) = r.word(j);
                let x = lb | rb;
                out.set_word(j, ((la ^ ra) & !x) | x, x);
            }
        }
        BinaryOp::Xnor => {
            for j in 0..n {
                let (la, lb) = l.word(j);
                let (ra, rb) = r.word(j);
                let x = lb | rb;
                out.set_word(j, (!(la ^ ra) & !x) | x, x);
            }
        }
        BinaryOp::Add => {
            let x = x_lanes(l) | x_lanes(r);
            ripple_add(out, n, x, 0, |j| (l.word(j).0, r.word(j).0));
        }
        BinaryOp::Sub => {
            // `l - r = l + !r + 1`, complementing the zero-extended right
            // operand at every bit position.
            let x = x_lanes(l) | x_lanes(r);
            ripple_add(out, n, x, u64::MAX, |j| (l.word(j).0, !r.word(j).0));
        }
        BinaryOp::Eq => {
            let x = x_lanes(l) | x_lanes(r);
            set_bit0(out, !ne_lanes(l, r), x);
        }
        BinaryOp::Ne => {
            let x = x_lanes(l) | x_lanes(r);
            set_bit0(out, ne_lanes(l, r), x);
        }
        BinaryOp::CaseEq | BinaryOp::CaseNe => {
            // Case equality is never X: both planes must match exactly.
            let maxw = l.width().max(r.width());
            let mut diff = 0;
            for j in 0..maxw {
                let (la, lb) = l.word(j);
                let (ra, rb) = r.word(j);
                diff |= (la ^ ra) | (lb ^ rb);
            }
            let val = if op == BinaryOp::CaseEq { !diff } else { diff };
            set_bit0(out, val, 0);
        }
        BinaryOp::Lt => {
            let x = x_lanes(l) | x_lanes(r);
            let (lt, _) = cmp_lanes(l, r);
            set_bit0(out, lt, x);
        }
        BinaryOp::Le => {
            let x = x_lanes(l) | x_lanes(r);
            let (_, gt) = cmp_lanes(l, r);
            set_bit0(out, !gt, x);
        }
        BinaryOp::Gt => {
            let x = x_lanes(l) | x_lanes(r);
            let (_, gt) = cmp_lanes(l, r);
            set_bit0(out, gt, x);
        }
        BinaryOp::Ge => {
            let x = x_lanes(l) | x_lanes(r);
            let (lt, _) = cmp_lanes(l, r);
            set_bit0(out, !lt, x);
        }
        BinaryOp::LogicalAnd => {
            let (l_one, l_x) = truth_lanes(l);
            let (r_one, r_x) = truth_lanes(r);
            let zero = !(l_one | l_x) | !(r_one | r_x);
            let one = l_one & r_one;
            set_bit0(out, one, !(one | zero));
        }
        BinaryOp::LogicalOr => {
            let (l_one, l_x) = truth_lanes(l);
            let (r_one, r_x) = truth_lanes(r);
            let zero = !(l_one | l_x) & !(r_one | r_x);
            let one = l_one | r_one;
            set_bit0(out, one, !(one | zero));
        }
        BinaryOp::Mul
        | BinaryOp::Div
        | BinaryOp::Rem
        | BinaryOp::Shl
        | BinaryOp::Shr
        | BinaryOp::AShr => unreachable!("rejected by batch compilation"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_expr;
    use crate::expr::Expr;
    use crate::ids::SignalId;
    use eraser_logic::{LogicBit, LogicVec};

    /// Deterministic four-state value generator.
    fn val(width: u32, seed: u64) -> LogicVec {
        let mut v = LogicVec::zeros(width);
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        for k in 0..width {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bit = match s >> 61 {
                0 | 1 | 6 => LogicBit::Zero,
                2 | 3 | 7 => LogicBit::One,
                4 => LogicBit::X,
                _ => LogicBit::Z,
            };
            v.set_bit(k, bit);
        }
        v
    }

    /// The scalar oracle: evaluates the node's expression-tree equivalent
    /// per lane (the tree walker the tape backend is parity-tested
    /// against), with the engine's forced-output-width resize.
    fn oracle(node: &RtlNode, lane_vals: &[Vec<LogicVec>], out_width: u32) -> Vec<LogicVec> {
        let expr = match &node.op {
            RtlOp::Buf => Expr::sig(SignalId(0)),
            RtlOp::Unary(u) => Expr::Unary(*u, Box::new(Expr::sig(SignalId(0)))),
            RtlOp::Binary(b) => Expr::bin(*b, Expr::sig(SignalId(0)), Expr::sig(SignalId(1))),
            RtlOp::Mux => Expr::Ternary {
                cond: Box::new(Expr::sig(SignalId(0))),
                then_e: Box::new(Expr::sig(SignalId(1))),
                else_e: Box::new(Expr::sig(SignalId(2))),
            },
            RtlOp::Concat => Expr::Concat(
                (0..node.inputs.len())
                    .map(|i| Expr::sig(SignalId(i as u32)))
                    .collect(),
            ),
            RtlOp::Replicate(n) => Expr::Replicate(*n, Box::new(Expr::sig(SignalId(0)))),
            RtlOp::Slice { hi, lo } => Expr::Slice {
                base: SignalId(0),
                hi: *hi,
                lo: *lo,
            },
            op => panic!("no oracle for {op:?}"),
        };
        lane_vals
            .iter()
            .map(|vals| {
                let mut o = eval_expr(&expr, &vals[..]);
                o.resize_assign(out_width);
                o
            })
            .collect()
    }

    /// Packs 64 lanes of generated inputs, runs the batch kernel, and
    /// checks every extracted lane against the scalar oracle.
    fn check(op: RtlOp, in_widths: &[u32], out_width: u32, seed: u64) {
        let node = RtlNode {
            op,
            inputs: (0..in_widths.len() as u32).map(SignalId).collect(),
            output: SignalId(in_widths.len() as u32),
        };
        let widths: Vec<u32> = in_widths.to_vec();
        let sig_width = move |s: SignalId| {
            if (s.0 as usize) < widths.len() {
                widths[s.0 as usize]
            } else {
                out_width
            }
        };
        let tape = compile_node(&node, &sig_width).expect("node must be batchable");

        let lane_vals: Vec<Vec<LogicVec>> = (0..64)
            .map(|lane| {
                in_widths
                    .iter()
                    .enumerate()
                    .map(|(k, &w)| val(w, seed ^ (lane as u64) << 8 ^ (k as u64) << 16))
                    .collect()
            })
            .collect();
        let planes: Vec<LanePlanes> = in_widths
            .iter()
            .enumerate()
            .map(|(k, _)| {
                let mut p = LanePlanes::new();
                p.broadcast(&lane_vals[0][k]);
                for (lane, vals) in lane_vals.iter().enumerate() {
                    p.set_lane(lane as u32, &vals[k]);
                }
                p
            })
            .collect();
        let mut out = LanePlanes::new();
        run_batch(&tape, &planes, &mut out);

        let expect = oracle(&node, &lane_vals, out_width);
        let mut got = LogicVec::default();
        for (lane, want) in expect.iter().enumerate() {
            out.extract_lane(lane as u32, &mut got);
            assert_eq!(
                &got, want,
                "{:?} in_widths {in_widths:?} out {out_width} lane {lane}: \
                 batch diverged from scalar oracle",
                node.op
            );
        }
    }

    #[test]
    fn bitwise_binary_matches_oracle() {
        for op in [BinaryOp::And, BinaryOp::Or, BinaryOp::Xor, BinaryOp::Xnor] {
            check(RtlOp::Binary(op), &[13, 13], 13, 7);
            check(RtlOp::Binary(op), &[5, 9], 9, 11); // zero-extension
            check(RtlOp::Binary(op), &[64, 64], 64, 13);
        }
    }

    #[test]
    fn arithmetic_matches_oracle_including_truncation() {
        for op in [BinaryOp::Add, BinaryOp::Sub] {
            check(RtlOp::Binary(op), &[16, 16], 16, 3);
            check(RtlOp::Binary(op), &[12, 8], 12, 5); // mixed widths
            check(RtlOp::Binary(op), &[16, 16], 9, 5); // truncated output
            check(RtlOp::Binary(op), &[64, 64], 64, 9);
        }
    }

    #[test]
    fn comparisons_match_oracle() {
        for op in [
            BinaryOp::Eq,
            BinaryOp::Ne,
            BinaryOp::Lt,
            BinaryOp::Le,
            BinaryOp::Gt,
            BinaryOp::Ge,
            BinaryOp::CaseEq,
            BinaryOp::CaseNe,
        ] {
            check(RtlOp::Binary(op), &[11, 11], 1, 17);
            check(RtlOp::Binary(op), &[7, 12], 1, 19); // zero-extension
            check(RtlOp::Binary(op), &[4, 4], 1, 23); // narrow: frequent equals
        }
    }

    #[test]
    fn logical_connectives_match_oracle() {
        for op in [BinaryOp::LogicalAnd, BinaryOp::LogicalOr] {
            check(RtlOp::Binary(op), &[6, 3], 1, 29);
            check(RtlOp::Binary(op), &[1, 1], 1, 31);
        }
    }

    #[test]
    fn unary_matches_oracle() {
        for op in [
            UnaryOp::Not,
            UnaryOp::Neg,
            UnaryOp::LogicalNot,
            UnaryOp::RedAnd,
            UnaryOp::RedOr,
            UnaryOp::RedXor,
        ] {
            let ow = match op {
                UnaryOp::Not | UnaryOp::Neg => 10,
                _ => 1,
            };
            check(RtlOp::Unary(op), &[10], ow, 37);
            let ow = match op {
                UnaryOp::Not | UnaryOp::Neg => 64,
                _ => 1,
            };
            check(RtlOp::Unary(op), &[64], ow, 41);
        }
    }

    #[test]
    fn structural_ops_match_oracle() {
        check(RtlOp::Buf, &[24], 24, 43);
        check(RtlOp::Mux, &[1, 8, 8], 8, 47);
        check(RtlOp::Mux, &[3, 6, 9], 9, 53); // wide cond, mixed widths
        check(RtlOp::Concat, &[5, 3, 8], 16, 59);
        check(RtlOp::Replicate(3), &[5], 15, 61);
        check(RtlOp::Slice { hi: 9, lo: 2 }, &[16], 8, 67);
        check(RtlOp::Slice { hi: 20, lo: 12 }, &[16], 9, 71); // out of range -> X
    }

    #[test]
    fn unbatchable_nodes_compile_to_none() {
        let w = |_: SignalId| 8u32;
        let node = |op: RtlOp, n: u32| RtlNode {
            op,
            inputs: (0..n).map(SignalId).collect(),
            output: SignalId(n),
        };
        for op in [
            RtlOp::Binary(BinaryOp::Mul),
            RtlOp::Binary(BinaryOp::Div),
            RtlOp::Binary(BinaryOp::Rem),
            RtlOp::Binary(BinaryOp::Shl),
            RtlOp::Binary(BinaryOp::Shr),
            RtlOp::Binary(BinaryOp::AShr),
        ] {
            assert!(compile_node(&node(op, 2), &w).is_none());
        }
        assert!(compile_node(&node(RtlOp::Index, 2), &w).is_none());
        assert!(compile_node(&node(RtlOp::IndexedPart { width: 4 }, 2), &w).is_none());
        assert!(compile_node(&node(RtlOp::Const(LogicVec::zeros(8)), 0), &w).is_none());
        // Wide signals stay scalar.
        let wide = |_: SignalId| 128u32;
        assert!(compile_node(&node(RtlOp::Binary(BinaryOp::And), 2), &wide).is_none());
        // Batchable shape for contrast.
        assert!(compile_node(&node(RtlOp::Binary(BinaryOp::And), 2), &w).is_some());
    }
}
