//! Static analyses: expression widths, RTL node result widths, the signal
//! influence graph and structural observability, design statistics.

use crate::design::Design;
use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::ids::SignalId;
use crate::node::RtlOp;

/// The result width of `expr` under the documented width model:
///
/// * bitwise/arithmetic binary operators evaluate at `max(w_l, w_r)`,
/// * shifts keep the left operand's width,
/// * comparisons, logical operators and reductions produce 1 bit,
/// * concat/replicate/slice widths are structural.
///
/// `sig_width` maps a signal to its declared width (the builder or design
/// provides it).
pub fn expr_width_with(expr: &Expr, sig_width: &impl Fn(crate::SignalId) -> u32) -> u32 {
    match expr {
        Expr::Const(v) => v.width(),
        Expr::Signal(s) => sig_width(*s),
        Expr::Unary(op, e) => match op {
            UnaryOp::Not | UnaryOp::Neg => expr_width_with(e, sig_width),
            UnaryOp::LogicalNot | UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor => 1,
        },
        Expr::Binary(op, l, r) => {
            if op.is_single_bit() {
                1
            } else {
                match op {
                    BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => expr_width_with(l, sig_width),
                    _ => expr_width_with(l, sig_width).max(expr_width_with(r, sig_width)),
                }
            }
        }
        Expr::Ternary { then_e, else_e, .. } => {
            expr_width_with(then_e, sig_width).max(expr_width_with(else_e, sig_width))
        }
        Expr::Concat(parts) => parts.iter().map(|p| expr_width_with(p, sig_width)).sum(),
        Expr::Replicate(n, e) => n * expr_width_with(e, sig_width),
        Expr::Slice { hi, lo, .. } => hi - lo + 1,
        Expr::Index { .. } => 1,
        Expr::IndexedPart { width, .. } => *width,
    }
}

/// [`expr_width_with`] reading widths from a finalized design.
pub fn expr_width(design: &Design, expr: &Expr) -> u32 {
    expr_width_with(expr, &|s| design.signal(s).width)
}

/// The output width an RTL node produces given its input widths, or `None`
/// if the input count does not match the operator's arity.
pub fn rtl_output_width(op: &RtlOp, input_widths: &[u32]) -> Option<u32> {
    match op {
        RtlOp::Buf => (input_widths.len() == 1).then(|| input_widths[0]),
        RtlOp::Unary(u) => {
            if input_widths.len() != 1 {
                return None;
            }
            Some(match u {
                UnaryOp::Not | UnaryOp::Neg => input_widths[0],
                _ => 1,
            })
        }
        RtlOp::Binary(bo) => {
            if input_widths.len() != 2 {
                return None;
            }
            Some(if bo.is_single_bit() {
                1
            } else {
                match bo {
                    BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => input_widths[0],
                    _ => input_widths[0].max(input_widths[1]),
                }
            })
        }
        RtlOp::Mux => (input_widths.len() == 3).then(|| input_widths[1].max(input_widths[2])),
        RtlOp::Concat => (!input_widths.is_empty()).then(|| input_widths.iter().sum()),
        RtlOp::Replicate(n) => (input_widths.len() == 1).then(|| n * input_widths[0]),
        RtlOp::Slice { hi, lo } => (input_widths.len() == 1).then(|| hi - lo + 1),
        RtlOp::Index => (input_widths.len() == 2).then_some(1),
        RtlOp::IndexedPart { width } => (input_widths.len() == 2).then_some(*width),
        RtlOp::Const(v) => input_widths.is_empty().then(|| v.width()),
    }
}

/// Static influence graph: `adj[s]` lists the signals whose next committed
/// value can depend on `s` — RTL node inputs map to their output, and a
/// behavioral node's reads *and* activation signals map to every signal it
/// writes (an activation-only source can change *when* a write happens,
/// which is influence even without dataflow).
///
/// This is the structural over-approximation of fault-difference
/// propagation shared by activation-window analysis and static fault
/// collapsing in `eraser-fault`: a fault difference sited on `s` can only
/// ever surface on signals reachable from `s` in this graph.
pub fn influence_adjacency(design: &Design) -> Vec<Vec<SignalId>> {
    let mut adj: Vec<Vec<SignalId>> = vec![Vec::new(); design.num_signals()];
    for node in design.rtl_nodes() {
        for &i in &node.inputs {
            adj[i.index()].push(node.output);
        }
    }
    for node in design.behavioral_nodes() {
        let mut sources = node.reads.clone();
        sources.extend(node.activation_signals());
        sources.sort_unstable();
        sources.dedup();
        for &s in &sources {
            adj[s.index()].extend(node.writes.iter().copied());
        }
    }
    adj
}

/// Per-signal structural observability: `true` iff the signal has a path
/// to a primary output in the [influence graph](influence_adjacency)
/// (outputs themselves included). A fault sited on an unobservable signal
/// can never produce a detectable output mismatch — no engine needs to
/// simulate it.
pub fn observable_signals(design: &Design) -> Vec<bool> {
    let n = design.num_signals();
    // Reverse the influence edges, then flood backwards from the outputs.
    let mut rev: Vec<Vec<SignalId>> = vec![Vec::new(); n];
    for (s, dsts) in influence_adjacency(design).iter().enumerate() {
        for &d in dsts {
            rev[d.index()].push(SignalId::from_index(s));
        }
    }
    let mut observable = vec![false; n];
    let mut stack: Vec<SignalId> = Vec::new();
    for &o in design.outputs() {
        if !observable[o.index()] {
            observable[o.index()] = true;
            stack.push(o);
        }
    }
    while let Some(s) = stack.pop() {
        for &p in &rev[s.index()] {
            if !observable[p.index()] {
                observable[p.index()] = true;
                stack.push(p);
            }
        }
    }
    observable
}

/// Per-signal, per-bit read coverage: `cover[s][i]` is `true` iff some
/// reader of signal `s` may observe bit `i` — or `s` is a primary output
/// (outputs are observed whole). A fault on an uncovered bit can never
/// produce a difference anywhere: no expression, node input, activation
/// test or output observation ever looks at it.
///
/// The analysis is a conservative one-step read census, precise where
/// bit extents are static and whole-signal otherwise:
///
/// * behavioral `Slice` reads cover exactly `lo..=hi`; `Index` and
///   `IndexedPart` with constant positions cover exactly the selected
///   bits, dynamic positions cover the whole base signal;
/// * every other expression reference covers its signal whole (arithmetic
///   X-semantics can let any input bit poison the result);
/// * a narrowing RTL `Buf` covers only the bits it carries through —
///   truncated high bits are discarded before any operator sees them;
///   every other RTL node covers its inputs whole;
/// * activation/sensitivity signals are covered whole (a change on any
///   bit can re-trigger the block).
///
/// Coverage is *not* transitively closed over liveness — combine with
/// [`observable_signals`] for signal-level dead-cone removal.
pub fn read_bit_coverage(design: &Design) -> Vec<Vec<bool>> {
    let mut cover: Vec<Vec<bool>> = design
        .signals()
        .iter()
        .map(|s| vec![false; s.width as usize])
        .collect();
    let mark_all = |cover: &mut Vec<Vec<bool>>, s: SignalId| {
        for b in cover[s.index()].iter_mut() {
            *b = true;
        }
    };

    for node in design.rtl_nodes() {
        if let crate::RtlOp::Buf = node.op {
            if node.inputs.len() == 1 {
                let b = node.inputs[0];
                let carried = design.signal(node.output).width.min(design.signal(b).width) as usize;
                for bit in cover[b.index()].iter_mut().take(carried) {
                    *bit = true;
                }
                continue;
            }
        }
        for &i in &node.inputs {
            mark_all(&mut cover, i);
        }
    }
    for node in design.behavioral_nodes() {
        mark_stmt_bit_reads(&node.body, &mut cover);
        for s in node.activation_signals() {
            mark_all(&mut cover, s);
        }
    }
    for &o in design.outputs() {
        mark_all(&mut cover, o);
    }
    cover
}

fn mark_expr_bit_reads(expr: &Expr, cover: &mut Vec<Vec<bool>>) {
    match expr {
        Expr::Const(_) => {}
        Expr::Signal(s) => {
            for b in cover[s.index()].iter_mut() {
                *b = true;
            }
        }
        Expr::Unary(_, e) | Expr::Replicate(_, e) => mark_expr_bit_reads(e, cover),
        Expr::Binary(_, l, r) => {
            mark_expr_bit_reads(l, cover);
            mark_expr_bit_reads(r, cover);
        }
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            mark_expr_bit_reads(cond, cover);
            mark_expr_bit_reads(then_e, cover);
            mark_expr_bit_reads(else_e, cover);
        }
        Expr::Concat(parts) => {
            for p in parts {
                mark_expr_bit_reads(p, cover);
            }
        }
        Expr::Slice { base, hi, lo } => {
            let w = cover[base.index()].len();
            let (lo, hi) = (*lo as usize, (*hi as usize + 1).min(w));
            for b in cover[base.index()][lo.min(hi)..hi].iter_mut() {
                *b = true;
            }
        }
        Expr::Index { base, index } => {
            match index.as_ref() {
                Expr::Const(v) => {
                    if let Some(i) = v.to_u64() {
                        if let Some(b) = cover[base.index()].get_mut(i as usize) {
                            *b = true;
                        }
                    } else {
                        // X/Z index: reads as X, touches no defined bit,
                        // but stay conservative about the whole base.
                        for b in cover[base.index()].iter_mut() {
                            *b = true;
                        }
                    }
                }
                _ => {
                    for b in cover[base.index()].iter_mut() {
                        *b = true;
                    }
                }
            }
            mark_expr_bit_reads(index, cover);
        }
        Expr::IndexedPart { base, start, width } => {
            match start.as_ref() {
                Expr::Const(v) if v.to_u64().is_some() => {
                    let s = v.to_u64().unwrap() as usize;
                    let w = cover[base.index()].len();
                    let end = (s + *width as usize).min(w);
                    for b in cover[base.index()][s.min(end)..end].iter_mut() {
                        *b = true;
                    }
                }
                _ => {
                    for b in cover[base.index()].iter_mut() {
                        *b = true;
                    }
                }
            }
            mark_expr_bit_reads(start, cover);
        }
    }
}

fn mark_stmt_bit_reads(stmt: &crate::Stmt, cover: &mut Vec<Vec<bool>>) {
    use crate::{LValue, Stmt};
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                mark_stmt_bit_reads(s, cover);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            mark_expr_bit_reads(rhs, cover);
            // Partial-write positions are reads; the written base bits are
            // not (the carried-over bits flow value-preserving, they do
            // not spread a difference to other bits).
            match lhs {
                LValue::Full(_) | LValue::PartSelect { .. } => {}
                LValue::BitSelect { index, .. } => mark_expr_bit_reads(index, cover),
                LValue::IndexedPart { start, .. } => mark_expr_bit_reads(start, cover),
            }
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
            ..
        } => {
            mark_expr_bit_reads(cond, cover);
            mark_stmt_bit_reads(then_s, cover);
            if let Some(e) = else_s {
                mark_stmt_bit_reads(e, cover);
            }
        }
        Stmt::Case {
            scrutinee,
            arms,
            default,
            ..
        } => {
            mark_expr_bit_reads(scrutinee, cover);
            for arm in arms {
                for l in &arm.labels {
                    mark_expr_bit_reads(l, cover);
                }
                mark_stmt_bit_reads(&arm.body, cover);
            }
            if let Some(d) = default {
                mark_stmt_bit_reads(d, cover);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            mark_stmt_bit_reads(init, cover);
            mark_expr_bit_reads(cond, cover);
            mark_stmt_bit_reads(step, cover);
            mark_stmt_bit_reads(body, cover);
        }
        Stmt::Nop => {}
    }
}

/// Aggregate size statistics of a design — the "#Cells"-style numbers of the
/// paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignStats {
    /// Total signals (nets + variables), including synthetic temporaries.
    pub signals: usize,
    /// Named (non-synthetic) signals — the fault-injection surface.
    pub named_signals: usize,
    /// Primitive RTL nodes.
    pub rtl_nodes: usize,
    /// Behavioral nodes (`always` blocks).
    pub behavioral_nodes: usize,
    /// Edge-triggered behavioral nodes.
    pub sequential_nodes: usize,
    /// Total VDG nodes (path decisions + dependency segments) across all
    /// behavioral bodies — the behavioral complexity measure.
    pub vdg_nodes: usize,
    /// Total named signal bits (the per-bit stuck-at fault surface is twice
    /// this).
    pub named_bits: u64,
}

impl DesignStats {
    /// The cell-count proxy reported in benchmark tables: RTL nodes plus
    /// the VDG nodes of every behavioral body (each decision/assignment is
    /// roughly a synthesized cell cluster).
    pub fn cells(&self) -> usize {
        self.rtl_nodes + self.vdg_nodes
    }
}

/// Computes [`DesignStats`] for a design.
pub fn design_stats(design: &Design) -> DesignStats {
    let named: Vec<_> = design.signals().iter().filter(|s| !s.synthetic).collect();
    DesignStats {
        signals: design.num_signals(),
        named_signals: named.len(),
        rtl_nodes: design.rtl_nodes().len(),
        behavioral_nodes: design.behavioral_nodes().len(),
        sequential_nodes: design
            .behavioral_nodes()
            .iter()
            .filter(|b| b.sensitivity.is_edge())
            .count(),
        vdg_nodes: design
            .behavioral_nodes()
            .iter()
            .map(|b| b.vdg.node_count())
            .sum(),
        named_bits: named.iter().map(|s| s.width as u64).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignBuilder, PortDir, SignalKind};
    use crate::expr::Expr;
    use crate::ids::SignalId;

    #[test]
    fn widths_follow_model() {
        let w = |_: SignalId| 8u32;
        assert_eq!(expr_width_with(&Expr::val(4, 1), &w), 4);
        assert_eq!(expr_width_with(&Expr::sig(SignalId(0)), &w), 8);
        assert_eq!(
            expr_width_with(
                &Expr::bin(BinaryOp::Add, Expr::sig(SignalId(0)), Expr::val(16, 1)),
                &w
            ),
            16
        );
        assert_eq!(
            expr_width_with(
                &Expr::bin(BinaryOp::Eq, Expr::sig(SignalId(0)), Expr::val(16, 1)),
                &w
            ),
            1
        );
        assert_eq!(
            expr_width_with(
                &Expr::bin(BinaryOp::Shl, Expr::sig(SignalId(0)), Expr::val(16, 1)),
                &w
            ),
            8
        );
        assert_eq!(
            expr_width_with(&Expr::Concat(vec![Expr::val(4, 0), Expr::val(4, 0)]), &w),
            8
        );
        assert_eq!(
            expr_width_with(&Expr::Replicate(3, Box::new(Expr::val(2, 0))), &w),
            6
        );
        assert_eq!(
            expr_width_with(
                &Expr::Slice {
                    base: SignalId(0),
                    hi: 6,
                    lo: 2
                },
                &w
            ),
            5
        );
        assert_eq!(
            expr_width_with(&Expr::un(UnaryOp::RedXor, Expr::sig(SignalId(0))), &w),
            1
        );
    }

    #[test]
    fn rtl_widths_and_arity() {
        assert_eq!(rtl_output_width(&RtlOp::Buf, &[8]), Some(8));
        assert_eq!(rtl_output_width(&RtlOp::Buf, &[8, 8]), None);
        assert_eq!(
            rtl_output_width(&RtlOp::Binary(BinaryOp::Add), &[8, 16]),
            Some(16)
        );
        assert_eq!(
            rtl_output_width(&RtlOp::Binary(BinaryOp::Lt), &[8, 16]),
            Some(1)
        );
        assert_eq!(rtl_output_width(&RtlOp::Mux, &[1, 8, 8]), Some(8));
        assert_eq!(rtl_output_width(&RtlOp::Mux, &[1, 8]), None);
        assert_eq!(
            rtl_output_width(&RtlOp::Slice { hi: 3, lo: 1 }, &[8]),
            Some(3)
        );
        assert_eq!(rtl_output_width(&RtlOp::Index, &[8, 3]), Some(1));
        assert_eq!(rtl_output_width(&RtlOp::Replicate(4), &[2]), Some(8));
    }

    #[test]
    fn influence_and_observability() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_port("a", 4, PortDir::Input);
        let q = b.add_port("q", 4, PortDir::Output);
        let dead = b.add_signal("dead", 4, SignalKind::Wire);
        b.add_rtl_node(RtlOp::Buf, vec![a], q);
        b.add_rtl_node(RtlOp::Buf, vec![a], dead);
        let d = b.finish().unwrap();
        let adj = influence_adjacency(&d);
        assert!(adj[a.index()].contains(&q));
        assert!(adj[a.index()].contains(&dead));
        assert!(adj[q.index()].is_empty());
        let obs = observable_signals(&d);
        assert!(obs[a.index()], "a reaches q");
        assert!(obs[q.index()], "outputs observe themselves");
        assert!(!obs[dead.index()], "dead drives nothing");
    }

    #[test]
    fn read_bit_coverage_tracks_static_extents() {
        use crate::node::Sensitivity;
        use crate::stmt::Stmt;

        let mut b = DesignBuilder::new("t");
        let a = b.add_port("a", 8, PortDir::Input);
        let s = b.add_signal("s", 8, SignalKind::Wire);
        let n = b.add_signal("n", 4, SignalKind::Wire);
        let q = b.add_port_reg("q", 4, PortDir::Output);
        let clk = b.add_port("clk", 1, PortDir::Input);
        b.add_rtl_node(RtlOp::Buf, vec![a], s);
        // Narrowing buffer: only s[3:0] carried through.
        b.add_rtl_node(RtlOp::Buf, vec![s], n);
        // Behavioral slice read: only a[5:4] beyond the full read of a by
        // the first Buf... a is read whole there, so slice-precision is
        // checked on q's source n via a bit select.
        b.add_behavioral(
            "q",
            Sensitivity::Edges(vec![(crate::EdgeKind::Pos, clk)]),
            Stmt::assign(
                q,
                Expr::Concat(vec![
                    Expr::val(3, 0),
                    Expr::Index {
                        base: n,
                        index: Box::new(Expr::val(2, 1)),
                    },
                ]),
                false,
            ),
        );
        let d = b.finish().unwrap();
        let cover = read_bit_coverage(&d);
        // a: read whole by the widening... same-width Buf.
        assert!(cover[a.index()].iter().all(|&r| r));
        // s: only the low 4 bits survive the narrowing Buf.
        assert_eq!(
            cover[s.index()],
            vec![true, true, true, true, false, false, false, false]
        );
        // n: only bit 1 is read (constant-position bit select).
        assert_eq!(cover[n.index()], vec![false, true, false, false]);
        // q: outputs are observed whole.
        assert!(cover[q.index()].iter().all(|&r| r));
        // clk: sensitivity signals are covered whole.
        assert!(cover[clk.index()][0]);
    }

    #[test]
    fn stats_counts() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_port("a", 8, PortDir::Input);
        let t = b.add_temp("$t0", 8);
        let _q = b.add_signal("q", 8, SignalKind::Reg);
        b.add_rtl_node(RtlOp::Buf, vec![a], t);
        let d = b.finish().unwrap();
        let st = design_stats(&d);
        assert_eq!(st.signals, 3);
        assert_eq!(st.named_signals, 2);
        assert_eq!(st.named_bits, 16);
        assert_eq!(st.rtl_nodes, 1);
        assert_eq!(st.cells(), 1);
    }
}
