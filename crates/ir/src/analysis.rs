//! Static analyses: expression widths, RTL node result widths, design
//! statistics.

use crate::design::Design;
use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::node::RtlOp;

/// The result width of `expr` under the documented width model:
///
/// * bitwise/arithmetic binary operators evaluate at `max(w_l, w_r)`,
/// * shifts keep the left operand's width,
/// * comparisons, logical operators and reductions produce 1 bit,
/// * concat/replicate/slice widths are structural.
///
/// `sig_width` maps a signal to its declared width (the builder or design
/// provides it).
pub fn expr_width_with(expr: &Expr, sig_width: &impl Fn(crate::SignalId) -> u32) -> u32 {
    match expr {
        Expr::Const(v) => v.width(),
        Expr::Signal(s) => sig_width(*s),
        Expr::Unary(op, e) => match op {
            UnaryOp::Not | UnaryOp::Neg => expr_width_with(e, sig_width),
            UnaryOp::LogicalNot | UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor => 1,
        },
        Expr::Binary(op, l, r) => {
            if op.is_single_bit() {
                1
            } else {
                match op {
                    BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => expr_width_with(l, sig_width),
                    _ => expr_width_with(l, sig_width).max(expr_width_with(r, sig_width)),
                }
            }
        }
        Expr::Ternary { then_e, else_e, .. } => {
            expr_width_with(then_e, sig_width).max(expr_width_with(else_e, sig_width))
        }
        Expr::Concat(parts) => parts.iter().map(|p| expr_width_with(p, sig_width)).sum(),
        Expr::Replicate(n, e) => n * expr_width_with(e, sig_width),
        Expr::Slice { hi, lo, .. } => hi - lo + 1,
        Expr::Index { .. } => 1,
        Expr::IndexedPart { width, .. } => *width,
    }
}

/// [`expr_width_with`] reading widths from a finalized design.
pub fn expr_width(design: &Design, expr: &Expr) -> u32 {
    expr_width_with(expr, &|s| design.signal(s).width)
}

/// The output width an RTL node produces given its input widths, or `None`
/// if the input count does not match the operator's arity.
pub fn rtl_output_width(op: &RtlOp, input_widths: &[u32]) -> Option<u32> {
    match op {
        RtlOp::Buf => (input_widths.len() == 1).then(|| input_widths[0]),
        RtlOp::Unary(u) => {
            if input_widths.len() != 1 {
                return None;
            }
            Some(match u {
                UnaryOp::Not | UnaryOp::Neg => input_widths[0],
                _ => 1,
            })
        }
        RtlOp::Binary(bo) => {
            if input_widths.len() != 2 {
                return None;
            }
            Some(if bo.is_single_bit() {
                1
            } else {
                match bo {
                    BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => input_widths[0],
                    _ => input_widths[0].max(input_widths[1]),
                }
            })
        }
        RtlOp::Mux => (input_widths.len() == 3).then(|| input_widths[1].max(input_widths[2])),
        RtlOp::Concat => (!input_widths.is_empty()).then(|| input_widths.iter().sum()),
        RtlOp::Replicate(n) => (input_widths.len() == 1).then(|| n * input_widths[0]),
        RtlOp::Slice { hi, lo } => (input_widths.len() == 1).then(|| hi - lo + 1),
        RtlOp::Index => (input_widths.len() == 2).then_some(1),
        RtlOp::IndexedPart { width } => (input_widths.len() == 2).then_some(*width),
        RtlOp::Const(v) => input_widths.is_empty().then(|| v.width()),
    }
}

/// Aggregate size statistics of a design — the "#Cells"-style numbers of the
/// paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignStats {
    /// Total signals (nets + variables), including synthetic temporaries.
    pub signals: usize,
    /// Named (non-synthetic) signals — the fault-injection surface.
    pub named_signals: usize,
    /// Primitive RTL nodes.
    pub rtl_nodes: usize,
    /// Behavioral nodes (`always` blocks).
    pub behavioral_nodes: usize,
    /// Edge-triggered behavioral nodes.
    pub sequential_nodes: usize,
    /// Total VDG nodes (path decisions + dependency segments) across all
    /// behavioral bodies — the behavioral complexity measure.
    pub vdg_nodes: usize,
    /// Total named signal bits (the per-bit stuck-at fault surface is twice
    /// this).
    pub named_bits: u64,
}

impl DesignStats {
    /// The cell-count proxy reported in benchmark tables: RTL nodes plus
    /// the VDG nodes of every behavioral body (each decision/assignment is
    /// roughly a synthesized cell cluster).
    pub fn cells(&self) -> usize {
        self.rtl_nodes + self.vdg_nodes
    }
}

/// Computes [`DesignStats`] for a design.
pub fn design_stats(design: &Design) -> DesignStats {
    let named: Vec<_> = design.signals().iter().filter(|s| !s.synthetic).collect();
    DesignStats {
        signals: design.num_signals(),
        named_signals: named.len(),
        rtl_nodes: design.rtl_nodes().len(),
        behavioral_nodes: design.behavioral_nodes().len(),
        sequential_nodes: design
            .behavioral_nodes()
            .iter()
            .filter(|b| b.sensitivity.is_edge())
            .count(),
        vdg_nodes: design
            .behavioral_nodes()
            .iter()
            .map(|b| b.vdg.node_count())
            .sum(),
        named_bits: named.iter().map(|s| s.width as u64).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignBuilder, PortDir, SignalKind};
    use crate::expr::Expr;
    use crate::ids::SignalId;

    #[test]
    fn widths_follow_model() {
        let w = |_: SignalId| 8u32;
        assert_eq!(expr_width_with(&Expr::val(4, 1), &w), 4);
        assert_eq!(expr_width_with(&Expr::sig(SignalId(0)), &w), 8);
        assert_eq!(
            expr_width_with(
                &Expr::bin(BinaryOp::Add, Expr::sig(SignalId(0)), Expr::val(16, 1)),
                &w
            ),
            16
        );
        assert_eq!(
            expr_width_with(
                &Expr::bin(BinaryOp::Eq, Expr::sig(SignalId(0)), Expr::val(16, 1)),
                &w
            ),
            1
        );
        assert_eq!(
            expr_width_with(
                &Expr::bin(BinaryOp::Shl, Expr::sig(SignalId(0)), Expr::val(16, 1)),
                &w
            ),
            8
        );
        assert_eq!(
            expr_width_with(&Expr::Concat(vec![Expr::val(4, 0), Expr::val(4, 0)]), &w),
            8
        );
        assert_eq!(
            expr_width_with(&Expr::Replicate(3, Box::new(Expr::val(2, 0))), &w),
            6
        );
        assert_eq!(
            expr_width_with(
                &Expr::Slice {
                    base: SignalId(0),
                    hi: 6,
                    lo: 2
                },
                &w
            ),
            5
        );
        assert_eq!(
            expr_width_with(&Expr::un(UnaryOp::RedXor, Expr::sig(SignalId(0))), &w),
            1
        );
    }

    #[test]
    fn rtl_widths_and_arity() {
        assert_eq!(rtl_output_width(&RtlOp::Buf, &[8]), Some(8));
        assert_eq!(rtl_output_width(&RtlOp::Buf, &[8, 8]), None);
        assert_eq!(
            rtl_output_width(&RtlOp::Binary(BinaryOp::Add), &[8, 16]),
            Some(16)
        );
        assert_eq!(
            rtl_output_width(&RtlOp::Binary(BinaryOp::Lt), &[8, 16]),
            Some(1)
        );
        assert_eq!(rtl_output_width(&RtlOp::Mux, &[1, 8, 8]), Some(8));
        assert_eq!(rtl_output_width(&RtlOp::Mux, &[1, 8]), None);
        assert_eq!(
            rtl_output_width(&RtlOp::Slice { hi: 3, lo: 1 }, &[8]),
            Some(3)
        );
        assert_eq!(rtl_output_width(&RtlOp::Index, &[8, 3]), Some(1));
        assert_eq!(rtl_output_width(&RtlOp::Replicate(4), &[2]), Some(8));
    }

    #[test]
    fn stats_counts() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_port("a", 8, PortDir::Input);
        let t = b.add_temp("$t0", 8);
        let _q = b.add_signal("q", 8, SignalKind::Reg);
        b.add_rtl_node(RtlOp::Buf, vec![a], t);
        let d = b.finish().unwrap();
        let st = design_stats(&d);
        assert_eq!(st.signals, 3);
        assert_eq!(st.named_signals, 2);
        assert_eq!(st.named_bits, 16);
        assert_eq!(st.rtl_nodes, 1);
        assert_eq!(st.cells(), 1);
    }
}
