//! Behavioral statements.
//!
//! Bodies of `always` blocks are statement trees. During
//! [`DesignBuilder::finish`](crate::DesignBuilder::finish) every branching
//! statement is assigned a [`DecisionId`] and every assignment a
//! [`SegmentId`]; these ids tie the statement tree to the behavioral node's
//! [visibility dependency graph](crate::vdg::Vdg), which is what the
//! implicit-redundancy check of the ERASER algorithm walks.

use crate::expr::Expr;
use crate::ids::{DecisionId, SegmentId, SignalId};

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// The whole signal.
    Full(SignalId),
    /// A single dynamically-indexed bit: `sig[index] = ...`.
    BitSelect {
        /// Target signal.
        base: SignalId,
        /// Bit index expression (evaluated at execution time).
        index: Expr,
    },
    /// A constant part select: `sig[hi:lo] = ...`.
    PartSelect {
        /// Target signal.
        base: SignalId,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// An indexed part select: `sig[start +: width] = ...`.
    IndexedPart {
        /// Target signal.
        base: SignalId,
        /// Start (low) bit index expression.
        start: Expr,
        /// Width of the written range.
        width: u32,
    },
}

impl LValue {
    /// The signal this lvalue (partially) writes.
    pub fn target(&self) -> SignalId {
        match self {
            LValue::Full(s) => *s,
            LValue::BitSelect { base, .. } => *base,
            LValue::PartSelect { base, .. } => *base,
            LValue::IndexedPart { base, .. } => *base,
        }
    }

    /// True if the lvalue writes only part of the target, so the result
    /// also depends on the target's previous value.
    pub fn is_partial(&self) -> bool {
        !matches!(self, LValue::Full(_))
    }

    /// Signals *read* in order to perform this write (index expressions,
    /// plus the target itself for partial writes).
    pub fn collect_reads(&self, out: &mut Vec<SignalId>) {
        match self {
            LValue::Full(_) => {}
            LValue::BitSelect { base, index } => {
                out.push(*base);
                index.collect_reads(out);
            }
            LValue::PartSelect { base, .. } => out.push(*base),
            LValue::IndexedPart { base, start, .. } => {
                out.push(*base);
                start.collect_reads(out);
            }
        }
    }
}

/// The matching semantics of a `case` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// `case` — four-state identity match (`===` per item).
    Exact,
    /// `casez` — `z`/`?` bits in labels are wildcards.
    Z,
}

/// One arm of a `case` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    /// Labels; the arm is taken if any label matches.
    pub labels: Vec<Expr>,
    /// The arm body.
    pub body: Stmt,
}

/// A behavioral statement.
///
/// `decision` / `segment` fields are assigned by
/// [`DesignBuilder::finish`](crate::DesignBuilder::finish) (zero before
/// finalization) and link each statement to its VDG node.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin ... end`.
    Block(Vec<Stmt>),
    /// A blocking (`=`) or non-blocking (`<=`) assignment.
    Assign {
        /// Target of the assignment.
        lhs: LValue,
        /// Value expression.
        rhs: Expr,
        /// True for `=`, false for `<=`.
        blocking: bool,
        /// VDG dependency-segment id (assigned at design finalization).
        segment: SegmentId,
    },
    /// `if (cond) then_s [else else_s]`. A condition evaluating to `X`/`Z`
    /// takes the `else` branch, per IEEE 1364.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when the condition is true.
        then_s: Box<Stmt>,
        /// Taken otherwise (may be absent).
        else_s: Option<Box<Stmt>>,
        /// VDG decision id (assigned at design finalization).
        decision: DecisionId,
    },
    /// `case`/`casez` statement. Arms are tested in order; `default` runs if
    /// no arm matches.
    Case {
        /// Scrutinee expression.
        scrutinee: Expr,
        /// Arms in source order.
        arms: Vec<CaseArm>,
        /// Optional default body.
        default: Option<Box<Stmt>>,
        /// Matching semantics.
        kind: CaseKind,
        /// VDG decision id (assigned at design finalization).
        decision: DecisionId,
    },
    /// `for (init; cond; step) body` with run-time bounds. The condition is
    /// a VDG decision evaluated once per iteration.
    For {
        /// Loop initialization assignment.
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Loop step assignment.
        step: Box<Stmt>,
        /// Loop body.
        body: Box<Stmt>,
        /// VDG decision id for the condition (assigned at finalization).
        decision: DecisionId,
    },
    /// No operation (empty statement).
    Nop,
}

impl Stmt {
    /// Convenience constructor for a full-signal assignment.
    pub fn assign(sig: SignalId, rhs: Expr, blocking: bool) -> Stmt {
        Stmt::Assign {
            lhs: LValue::Full(sig),
            rhs,
            blocking,
            segment: SegmentId(0),
        }
    }

    /// Convenience constructor for `if` without `else`.
    pub fn if_then(cond: Expr, then_s: Stmt) -> Stmt {
        Stmt::If {
            cond,
            then_s: Box::new(then_s),
            else_s: None,
            decision: DecisionId(0),
        }
    }

    /// Convenience constructor for `if`/`else`.
    pub fn if_else(cond: Expr, then_s: Stmt, else_s: Stmt) -> Stmt {
        Stmt::If {
            cond,
            then_s: Box::new(then_s),
            else_s: Some(Box::new(else_s)),
            decision: DecisionId(0),
        }
    }

    /// Appends all signals read anywhere in this statement tree
    /// (conditions, right-hand sides, indices, partial-write targets).
    pub fn collect_reads(&self, out: &mut Vec<SignalId>) {
        match self {
            Stmt::Block(stmts) => {
                for s in stmts {
                    s.collect_reads(out);
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                rhs.collect_reads(out);
                lhs.collect_reads(out);
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
                ..
            } => {
                cond.collect_reads(out);
                then_s.collect_reads(out);
                if let Some(e) = else_s {
                    e.collect_reads(out);
                }
            }
            Stmt::Case {
                scrutinee,
                arms,
                default,
                ..
            } => {
                scrutinee.collect_reads(out);
                for arm in arms {
                    for l in &arm.labels {
                        l.collect_reads(out);
                    }
                    arm.body.collect_reads(out);
                }
                if let Some(d) = default {
                    d.collect_reads(out);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                init.collect_reads(out);
                cond.collect_reads(out);
                step.collect_reads(out);
                body.collect_reads(out);
            }
            Stmt::Nop => {}
        }
    }

    /// Appends all signals this statement tree may write.
    pub fn collect_writes(&self, out: &mut Vec<SignalId>) {
        match self {
            Stmt::Block(stmts) => {
                for s in stmts {
                    s.collect_writes(out);
                }
            }
            Stmt::Assign { lhs, .. } => out.push(lhs.target()),
            Stmt::If { then_s, else_s, .. } => {
                then_s.collect_writes(out);
                if let Some(e) = else_s {
                    e.collect_writes(out);
                }
            }
            Stmt::Case { arms, default, .. } => {
                for arm in arms {
                    arm.body.collect_writes(out);
                }
                if let Some(d) = default {
                    d.collect_writes(out);
                }
            }
            Stmt::For {
                init, step, body, ..
            } => {
                init.collect_writes(out);
                step.collect_writes(out);
                body.collect_writes(out);
            }
            Stmt::Nop => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;

    fn s(i: u32) -> SignalId {
        SignalId(i)
    }

    #[test]
    fn reads_and_writes_of_if() {
        let st = Stmt::if_else(
            Expr::sig(s(0)),
            Stmt::assign(s(1), Expr::sig(s(2)), false),
            Stmt::assign(s(1), Expr::val(4, 0), false),
        );
        let mut reads = Vec::new();
        st.collect_reads(&mut reads);
        reads.sort_unstable();
        reads.dedup();
        assert_eq!(reads, vec![s(0), s(2)]);
        let mut writes = Vec::new();
        st.collect_writes(&mut writes);
        writes.dedup();
        assert_eq!(writes, vec![s(1)]);
    }

    #[test]
    fn partial_write_reads_target() {
        let st = Stmt::Assign {
            lhs: LValue::BitSelect {
                base: s(4),
                index: Expr::sig(s(5)),
            },
            rhs: Expr::val(1, 1),
            blocking: true,
            segment: SegmentId(0),
        };
        let mut reads = Vec::new();
        st.collect_reads(&mut reads);
        reads.sort_unstable();
        assert_eq!(reads, vec![s(4), s(5)]);
        assert!(LValue::BitSelect {
            base: s(4),
            index: Expr::sig(s(5))
        }
        .is_partial());
    }

    #[test]
    fn case_reads_labels_and_scrutinee() {
        let st = Stmt::Case {
            scrutinee: Expr::sig(s(0)),
            arms: vec![CaseArm {
                labels: vec![Expr::val(2, 1), Expr::sig(s(3))],
                body: Stmt::assign(s(1), Expr::sig(s(2)), false),
            }],
            default: Some(Box::new(Stmt::assign(s(1), Expr::val(4, 0), false))),
            kind: CaseKind::Exact,
            decision: DecisionId(0),
        };
        let mut reads = Vec::new();
        st.collect_reads(&mut reads);
        reads.sort_unstable();
        reads.dedup();
        assert_eq!(reads, vec![s(0), s(2), s(3)]);
    }

    #[test]
    fn for_collects_everything() {
        let st = Stmt::For {
            init: Box::new(Stmt::assign(s(0), Expr::val(8, 0), true)),
            cond: Expr::bin(BinaryOp::Lt, Expr::sig(s(0)), Expr::val(8, 4)),
            step: Box::new(Stmt::assign(
                s(0),
                Expr::bin(BinaryOp::Add, Expr::sig(s(0)), Expr::val(8, 1)),
                true,
            )),
            body: Box::new(Stmt::assign(s(1), Expr::sig(s(2)), true)),
            decision: DecisionId(0),
        };
        let mut writes = Vec::new();
        st.collect_writes(&mut writes);
        writes.sort_unstable();
        writes.dedup();
        assert_eq!(writes, vec![s(0), s(1)]);
    }
}
