//! Expression trees.

use crate::ids::SignalId;
use eraser_logic::LogicVec;
use std::fmt;

/// Unary RTL operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise NOT (`~`).
    Not,
    /// Two's-complement negation (`-`).
    Neg,
    /// Logical NOT (`!`), 1-bit result.
    LogicalNot,
    /// Reduction AND (`&`), 1-bit result.
    RedAnd,
    /// Reduction OR (`|`), 1-bit result.
    RedOr,
    /// Reduction XOR (`^`), 1-bit result.
    RedXor,
}

/// Binary RTL operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Bitwise AND (`&`).
    And,
    /// Bitwise OR (`|`).
    Or,
    /// Bitwise XOR (`^`).
    Xor,
    /// Bitwise XNOR (`~^`).
    Xnor,
    /// Addition (`+`).
    Add,
    /// Subtraction (`-`).
    Sub,
    /// Multiplication (`*`).
    Mul,
    /// Unsigned division (`/`).
    Div,
    /// Unsigned remainder (`%`).
    Rem,
    /// Logical shift left (`<<`).
    Shl,
    /// Logical shift right (`>>`).
    Shr,
    /// Arithmetic shift right (`>>>`).
    AShr,
    /// Four-state equality (`==`), 1-bit result.
    Eq,
    /// Four-state inequality (`!=`), 1-bit result.
    Ne,
    /// Case equality (`===`), 1-bit result.
    CaseEq,
    /// Case inequality (`!==`), 1-bit result.
    CaseNe,
    /// Unsigned less-than (`<`), 1-bit result.
    Lt,
    /// Unsigned less-or-equal (`<=`), 1-bit result.
    Le,
    /// Unsigned greater-than (`>`), 1-bit result.
    Gt,
    /// Unsigned greater-or-equal (`>=`), 1-bit result.
    Ge,
    /// Logical AND (`&&`), 1-bit result.
    LogicalAnd,
    /// Logical OR (`||`), 1-bit result.
    LogicalOr,
}

impl BinaryOp {
    /// True for operators whose result is a single bit.
    pub fn is_single_bit(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::CaseEq
                | BinaryOp::CaseNe
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::LogicalAnd
                | BinaryOp::LogicalOr
        )
    }
}

/// A four-state RTL expression.
///
/// Expressions reference design signals by [`SignalId`]; they appear as
/// right-hand sides of assignments, branch conditions, case labels and index
/// computations. Evaluation is provided by [`crate::eval::eval_expr`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Const(LogicVec),
    /// The full value of a signal.
    Signal(SignalId),
    /// A unary operator application.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operator application.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// The ternary conditional `cond ? then_e : else_e`.
    Ternary {
        /// Condition (any width, reduced to a truth value).
        cond: Box<Expr>,
        /// Value when true.
        then_e: Box<Expr>,
        /// Value when false.
        else_e: Box<Expr>,
    },
    /// Concatenation `{msb, ..., lsb}` — parts stored MSB-first, exactly as
    /// written in Verilog source.
    Concat(Vec<Expr>),
    /// Replication `{count{value}}`.
    Replicate(u32, Box<Expr>),
    /// Constant part select `signal[hi:lo]`.
    Slice {
        /// Signal being selected from.
        base: SignalId,
        /// High bit index (inclusive).
        hi: u32,
        /// Low bit index (inclusive).
        lo: u32,
    },
    /// Variable bit select `signal[index]`, 1-bit result; out-of-range reads
    /// produce `X`.
    Index {
        /// Signal being selected from.
        base: SignalId,
        /// Bit index expression.
        index: Box<Expr>,
    },
    /// Indexed part select `signal[start +: width]`; out-of-range bits read
    /// as `X`.
    IndexedPart {
        /// Signal being selected from.
        base: SignalId,
        /// Start (low) bit index expression.
        start: Box<Expr>,
        /// Width of the selection.
        width: u32,
    },
}

impl Expr {
    /// Convenience constructor for a signal reference.
    pub fn sig(id: SignalId) -> Expr {
        Expr::Signal(id)
    }

    /// Convenience constructor for an unsigned constant.
    pub fn val(width: u32, value: u64) -> Expr {
        Expr::Const(LogicVec::from_u64(width, value))
    }

    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a unary operation.
    pub fn un(op: UnaryOp, operand: Expr) -> Expr {
        Expr::Unary(op, Box::new(operand))
    }

    /// Appends every signal this expression reads to `out` (with
    /// duplicates; callers dedup).
    pub fn collect_reads(&self, out: &mut Vec<SignalId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Signal(s) => out.push(*s),
            Expr::Unary(_, e) => e.collect_reads(out),
            Expr::Binary(_, l, r) => {
                l.collect_reads(out);
                r.collect_reads(out);
            }
            Expr::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                cond.collect_reads(out);
                then_e.collect_reads(out);
                else_e.collect_reads(out);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    p.collect_reads(out);
                }
            }
            Expr::Replicate(_, e) => e.collect_reads(out),
            Expr::Slice { base, .. } => out.push(*base),
            Expr::Index { base, index } => {
                out.push(*base);
                index.collect_reads(out);
            }
            Expr::IndexedPart { base, start, .. } => {
                out.push(*base);
                start.collect_reads(out);
            }
        }
    }

    /// The sorted, deduplicated set of signals this expression reads.
    pub fn reads(&self) -> Vec<SignalId> {
        let mut v = Vec::new();
        self.collect_reads(&mut v);
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Signal(s) => write!(f, "{s}"),
            Expr::Unary(op, e) => write!(f, "({op:?} {e})"),
            Expr::Binary(op, l, r) => write!(f, "({l} {op:?} {r})"),
            Expr::Ternary {
                cond,
                then_e,
                else_e,
            } => write!(f, "({cond} ? {then_e} : {else_e})"),
            Expr::Concat(parts) => {
                write!(f, "{{")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "}}")
            }
            Expr::Replicate(n, e) => write!(f, "{{{n}{{{e}}}}}"),
            Expr::Slice { base, hi, lo } => write!(f, "{base}[{hi}:{lo}]"),
            Expr::Index { base, index } => write!(f, "{base}[{index}]"),
            Expr::IndexedPart { base, start, width } => {
                write!(f, "{base}[{start} +: {width}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_sorted_and_deduped() {
        let e = Expr::bin(
            BinaryOp::Add,
            Expr::sig(SignalId(3)),
            Expr::bin(
                BinaryOp::And,
                Expr::sig(SignalId(1)),
                Expr::sig(SignalId(3)),
            ),
        );
        assert_eq!(e.reads(), vec![SignalId(1), SignalId(3)]);
    }

    #[test]
    fn index_reads_base_and_index() {
        let e = Expr::Index {
            base: SignalId(5),
            index: Box::new(Expr::sig(SignalId(2))),
        };
        assert_eq!(e.reads(), vec![SignalId(2), SignalId(5)]);
    }

    #[test]
    fn const_reads_nothing() {
        assert!(Expr::val(8, 3).reads().is_empty());
    }

    #[test]
    fn single_bit_classification() {
        assert!(BinaryOp::Eq.is_single_bit());
        assert!(BinaryOp::LogicalAnd.is_single_bit());
        assert!(!BinaryOp::Add.is_single_bit());
        assert!(!BinaryOp::Shl.is_single_bit());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::bin(BinaryOp::Add, Expr::sig(SignalId(0)), Expr::val(4, 1));
        assert_eq!(format!("{e}"), "(s0 Add 4'h1)");
    }
}
