//! Intermediate representation of elaborated RTL designs.
//!
//! An elaborated design is the directed graph the ERASER paper calls the
//! *RTL graph* (Fig. 2): a set of [`Signal`]s connected by
//!
//! * **RTL nodes** ([`RtlNode`]) — primitive combinational operators
//!   produced by flattening continuous-assign expression trees, and
//! * **behavioral nodes** ([`BehavioralNode`]) — `always` blocks with a
//!   sensitivity list and a statement body.
//!
//! The crate also provides the static analyses the ERASER algorithm needs:
//!
//! * per-statement read/write sets ([`analysis`]),
//! * the control flow graph and **visibility dependency graph** of each
//!   behavioral body ([`vdg`]), whose *path decision* and *path dependency*
//!   nodes drive the implicit-redundancy check (Algorithm 1 of the paper),
//! * combinational levelization for compiled-style evaluation ([`analysis`]),
//! * a generic four-state expression evaluator ([`eval`]).
//!
//! Designs are constructed through [`DesignBuilder`], either directly (see
//! the builder's example) or by the `eraser-frontend` Verilog compiler.

pub mod analysis;
pub mod batch;
pub mod design;
pub mod eval;
pub mod expr;
pub mod ids;
pub mod node;
pub mod stmt;
pub mod tape;
pub mod vdg;

pub use batch::{run_batch, BatchProgram, BatchRef, BatchTape};
pub use design::{
    BuildError, CombItem, Design, DesignBuilder, Driver, PortDir, Signal, SignalKind,
};
pub use eval::{
    eval_binary, eval_binary_assign, eval_expr, eval_expr_cloning, eval_expr_into, EvalScratch,
    ValueSource,
};
pub use expr::{BinaryOp, Expr, UnaryOp};
pub use ids::{BehavioralId, DecisionId, RtlNodeId, SegmentId, SignalId};
pub use node::{BehavioralNode, EdgeKind, RtlNode, RtlOp, Sensitivity};
pub use stmt::{CaseArm, CaseKind, LValue, Stmt};
pub use tape::{
    compile_expr, run_tape, tapes_for_backend, BehavioralTapes, DecisionTape, EvalBackend,
    EvalTape, SegmentTapes, TapeProgram, TapeRef, TapeScratch,
};
pub use vdg::{DecisionEval, DecisionInfo, SegmentInfo, Vdg, VdgNode};
